PYTHON ?= python

.PHONY: install test lint bench experiments examples all clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# simlint is in-tree and always runs; ruff runs when installed (CI installs
# it via the dev extras, bare environments may not have it).
lint:
	$(PYTHON) -m repro.analysis.simlint src/
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src/ tests/ benchmarks/ examples/; \
	else \
		echo "ruff not installed; skipping (pip install -e '.[dev]')"; \
	fi

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro all

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

all: lint test bench experiments

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
