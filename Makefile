PYTHON ?= python

.PHONY: install test bench experiments examples all clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro all

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

all: test bench experiments

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
