PYTHON ?= python

.PHONY: install test lint flow effects costs batch race faults bench experiments sweep examples all clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# simlint, simrace, simflow, simeffect, simcost and simbatch are in-tree
# and always run; ruff runs when installed (CI installs it via the dev
# extras, bare environments may not).
lint:
	$(PYTHON) -m repro.analysis.simlint src/
	$(PYTHON) -m repro.analysis.simrace src/
	$(PYTHON) -m repro.analysis.simflow src/
	$(PYTHON) -m repro.analysis.simeffect src/
	$(PYTHON) -m repro.analysis.simcost src/
	$(PYTHON) -m repro.analysis.simcost --check-config src/
	$(PYTHON) -m repro.analysis.simbatch src/
	$(PYTHON) -m repro.analysis.simbatch --check-opportunities src/
	$(PYTHON) -m repro.analysis.analyze --check-suppressions src/
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src/ tests/ benchmarks/ examples/; \
	else \
		echo "ruff not installed; skipping (pip install -e '.[dev]')"; \
	fi

# Address-space & unit flow analysis alone (also part of `make lint`).
flow:
	$(PYTHON) -m repro.analysis.simflow src/

# Interprocedural effect analysis + kernel-eligibility report (EFFECTS.json).
effects:
	$(PYTHON) -m repro.analysis.simeffect --report EFFECTS.json src/repro

# Static latency accounting + counter-conservation report (COSTS.json).
costs:
	$(PYTHON) -m repro.analysis.simcost --report COSTS.json src/repro

# Loop-dependence & batching-safety report (BATCH.json): the reorder
# oracle for the planned vectorized engine.
batch:
	$(PYTHON) -m repro.analysis.simbatch --report BATCH.json src/repro

# Dynamic half of simrace: perturb DES schedules on the tiny OLTP config
# and fail on any undocumented schedule-dependent stat.
race:
	$(PYTHON) -m repro race --seeds 5

# Deterministic cross-layer fault-injection campaign (simfault), CI scale.
faults:
	$(PYTHON) -m repro faults --smoke

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro all

# Parallel, cached regeneration of EXPERIMENTS.md plus the perf artifact.
sweep:
	$(PYTHON) -m repro sweep --json BENCH_sweep.json

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

all: lint test bench experiments

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
