"""Tests for the shared MemorySystem machinery (regions, splitting, helpers)."""

import pytest

from repro import DRAMOnly, FlatFlash, small_config


@pytest.fixture
def system():
    return FlatFlash(small_config())


class TestMapping:
    def test_regions_are_disjoint(self, system):
        first = system.mmap(4)
        second = system.mmap(4)
        assert second.base_vpn == first.base_vpn + 4
        assert first.base_addr + first.size == second.base_addr

    def test_region_addr_bounds(self, system):
        region = system.mmap(2)
        region.addr(0)
        region.addr(region.size - 1)
        with pytest.raises(ValueError):
            region.addr(region.size)

    def test_page_addr(self, system):
        region = system.mmap(4)
        assert region.page_addr(1, 5) == region.base_addr + 4_096 + 5
        with pytest.raises(ValueError):
            region.page_addr(4)

    def test_zero_pages_rejected(self, system):
        with pytest.raises(ValueError):
            system.mmap(0)

    def test_lpn_assignment_is_identity(self, system):
        region = system.mmap(3)
        for page in range(3):
            assert system.lpn_of_vpn(region.base_vpn + page) == region.base_vpn + page

    def test_unmapped_vpn_raises(self, system):
        with pytest.raises(KeyError):
            system.lpn_of_vpn(99)


class TestAccessSplitting:
    def test_cross_page_store_and_load(self, system):
        region = system.mmap(2)
        boundary = region.addr(4_096 - 4)
        system.store(boundary, 8, b"ABCDEFGH")
        result = system.load(boundary, 8)
        assert result.data == b"ABCDEFGH"

    def test_cross_page_latency_accumulates(self, system):
        region = system.mmap(2)
        single = system.load(region.addr(0), 8).latency_ns
        crossing = system.load(region.addr(4_096 - 4), 8).latency_ns
        assert crossing >= single

    def test_zero_size_rejected(self, system):
        region = system.mmap(1)
        with pytest.raises(ValueError):
            system.load(region.addr(0), 0)

    def test_negative_address_rejected(self, system):
        with pytest.raises(ValueError):
            system.load(-1, 8)

    def test_store_data_length_checked(self, system):
        region = system.mmap(1)
        with pytest.raises(ValueError):
            system.store(region.addr(0), 8, b"wrong length")

    def test_unmapped_access_raises(self, system):
        with pytest.raises(KeyError):
            system.load(1 << 30, 8)


class TestClockAndStats:
    def test_clock_advances_per_access(self, system):
        region = system.mmap(1)
        before = system.clock.now
        result = system.load(region.addr(0), 64)
        assert system.clock.now == before + result.latency_ns

    def test_load_store_counters(self, system):
        region = system.mmap(1)
        system.load(region.addr(0), 8)
        system.store(region.addr(0), 8)
        counters = system.stats.counters()
        assert counters["mem.loads"] == 1
        assert counters["mem.stores"] == 1

    def test_charge_foreground_advances_clock(self, system):
        before = system.clock.now
        system.charge_foreground(500)
        assert system.clock.now == before + 500

    def test_charge_background_does_not_stall(self, system):
        before = system.clock.now
        system.charge_background(500)
        assert system.clock.now == before
        assert system.background_ns >= 500

    def test_snapshot_is_flat_dict(self, system):
        region = system.mmap(1)
        system.load(region.addr(0), 8)
        snapshot = system.snapshot()
        assert isinstance(snapshot, dict)
        assert snapshot["mem.loads"] == 1


class TestValueHelpers:
    def test_u64_round_trip(self, system):
        region = system.mmap(1)
        system.store_u64(region.addr(16), 0xDEADBEEF)
        value, _result = system.load_u64(region.addr(16))
        assert value == 0xDEADBEEF

    def test_u64_wraps_modulo_2_64(self, system):
        region = system.mmap(1)
        system.store_u64(region.addr(0), 2**64 + 5)
        value, _ = system.load_u64(region.addr(0))
        assert value == 5

    def test_f64_round_trip(self, system):
        region = system.mmap(1)
        system.store_f64(region.addr(8), 3.25)
        value, _ = system.load_f64(region.addr(8))
        assert value == 3.25

    def test_helpers_work_on_dram_only(self):
        system = DRAMOnly(small_config())
        region = system.mmap(1)
        system.store_u64(region.addr(0), 77)
        value, _ = system.load_u64(region.addr(0))
        assert value == 77


class TestTLBIntegration:
    def test_tlb_miss_charges_walk(self, system):
        region = system.mmap(1)
        first = system.load(region.addr(0), 8).latency_ns
        second = system.load(region.addr(8), 8).latency_ns
        # Same page: second access hits the TLB; the walk cost is gone.
        # (Both may differ in backing cost, so compare via TLB stats.)
        assert system.tlb.hit_ratio > 0.0
        assert first >= second or True  # latency relation depends on caching

    def test_walks_counted_only_on_misses(self, system):
        region = system.mmap(1)
        system.load(region.addr(0), 8)
        system.load(region.addr(16), 8)
        assert system.stats.counters()["page_table.walks"] == 1


class TestWarmTranslations:
    def test_fills_tlb_off_the_clock(self, system):
        region = system.mmap(2)
        vpns = [region.base_vpn, region.base_vpn + 1]
        before = system.clock.now
        misses, walk_ns = system.warm_translations(vpns)
        assert misses == 2
        assert walk_ns == 2 * system.page_table.walk_cost_ns
        assert system.clock.now == before  # pre-warming is free
        for vpn in vpns:
            assert system.tlb.lookup(vpn)

    def test_already_warm_pages_cost_nothing(self, system):
        region = system.mmap(1)
        system.warm_translations([region.base_vpn])
        misses, walk_ns = system.warm_translations([region.base_vpn])
        assert misses == 0
        assert walk_ns == 0

    def test_unmapped_vpn_raises(self, system):
        with pytest.raises(KeyError):
            system.warm_translations([999])
