"""Tests for the slab-allocated hash KV store."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import DRAMOnly, FlatFlash, UnifiedMMap, small_config
from repro.apps.slab_kvstore import SIZE_CLASSES, SlabKVStore, StoreFullError


def make_store(capacity=128, system_cls=FlatFlash, dram_pages=64):
    config = small_config()
    config.geometry.dram_pages = dram_pages
    config.geometry.ssd_pages = 8_192
    if system_cls is DRAMOnly:
        config.geometry.dram_pages = 4_096
    return SlabKVStore(system_cls(config.validate()), capacity=capacity)


def test_set_get_round_trip():
    store = make_store()
    store.set(42, b"hello slab world")
    assert store.get(42) == b"hello slab world"
    assert 42 in store
    assert len(store) == 1


def test_missing_key_returns_none():
    store = make_store()
    assert store.get(7) is None
    assert 7 not in store


def test_key_zero_works():
    store = make_store()
    store.set(0, b"zero")
    assert store.get(0) == b"zero"


def test_empty_value():
    store = make_store()
    store.set(1, b"")
    assert store.get(1) == b""


def test_update_replaces_and_frees_old_slot():
    store = make_store()
    store.set(5, b"short")
    store.set(5, b"x" * 200)  # moves to a bigger class
    assert store.get(5) == b"x" * 200
    assert len(store) == 1
    # The 64-byte class slot was recycled.
    assert store.slabs[0].live_slots == 0


def test_size_classes_chosen_by_length():
    store = make_store()
    store.set(1, b"a" * 64)
    store.set(2, b"b" * 65)
    assert store.slabs[0].live_slots == 1
    assert store.slabs[1].live_slots == 1


def test_oversized_value_rejected():
    store = make_store()
    with pytest.raises(ValueError):
        store.set(1, b"z" * (SIZE_CLASSES[-1] + 1))


def test_delete_and_reuse():
    store = make_store()
    store.set(9, b"temp")
    assert store.delete(9)
    assert store.get(9) is None
    assert len(store) == 0
    assert not store.delete(9)


def test_delete_preserves_probe_chains():
    store = make_store(capacity=64)
    # Force collisions by filling many keys, then delete from the middle.
    for key in range(40):
        store.set(key, bytes([key]) * 8)
    for key in range(0, 40, 3):
        assert store.delete(key)
    for key in range(40):
        if key % 3 == 0:
            assert store.get(key) is None
        else:
            assert store.get(key) == bytes([key]) * 8


def test_capacity_enforced():
    store = make_store(capacity=8)
    for key in range(8):
        store.set(key, b"v")
    with pytest.raises(StoreFullError):
        store.set(99, b"v")


def test_slab_exhaustion():
    store = make_store(capacity=128)
    with pytest.raises(StoreFullError):
        for key in range(200):
            store.set(key, b"a" * 64)  # all in class 0, 128 slots


def test_requires_tracked_data():
    config = small_config(track_data=False)
    with pytest.raises(ValueError):
        SlabKVStore(FlatFlash(config), capacity=8)


def test_accesses_charge_the_memory_system():
    store = make_store()
    before = store.system.clock.now
    store.set(1, b"data")
    store.get(1)
    assert store.system.clock.now > before


def test_works_on_every_system():
    for system_cls in (FlatFlash, UnifiedMMap, DRAMOnly):
        store = make_store(capacity=32, system_cls=system_cls)
        for key in range(20):
            store.set(key, bytes([key]) * (8 + key * 9 % 300))
        for key in range(20):
            assert store.get(key) == bytes([key]) * (8 + key * 9 % 300)


def test_memory_footprint_reported():
    store = make_store()
    assert store.memory_bytes > 0
    assert store.memory_bytes == store.index_region.size + sum(
        slab.region.size for slab in store.slabs
    )


@settings(deadline=None, max_examples=20)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["set", "delete", "get"]),
            st.integers(0, 60),
            st.integers(0, 400),
        ),
        min_size=1,
        max_size=120,
    )
)
def test_slab_store_behaves_like_a_dict(ops):
    store = make_store(capacity=128)
    model = {}
    for op, key, length in ops:
        value = bytes([key % 251 + 1]) * length if length else b""
        if op == "set":
            store.set(key, value)
            model[key] = value
        elif op == "delete":
            assert store.delete(key) == (key in model)
            model.pop(key, None)
        else:
            assert store.get(key) == model.get(key)
    assert len(store) == len(model)
    for key, value in model.items():
        assert store.get(key) == value
