"""simbatch rule tests: one firing and one clean fixture per rule.

Mirrors ``tests/test_simcost.py``: simbatch is whole-program, so
fixtures go through :func:`analyze_sources` with explicit (path, source)
pairs.  Contracts are parsed syntactically, so fixture files only need
the ``@batchable``/``@reduction`` decorator *names* — no importable
``repro.batch`` stub is required.  Fixture paths sit under
``repro/host/`` so they land in the simbatch hot-path scope.

The seeded-mutant class is the SB001/SB003 regression gate: the real
repo tree is clean, so each test plants one realistic independence-
breaking bug in a declared ``@batchable`` loop
(``core/memory_system.py`` / ``host/plb.py``) and requires the rule to
catch it at the mutated line.

The cross-oracle class is the three-way consistency gate: every
``@batchable`` region committed to ``BATCH.json`` may only call kernels
certified in ``EFFECTS.json``, and each such kernel must carry a cost
entry in ``COSTS.json`` — the vectorized engine consults all three.
"""

import json
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro.analysis.simbatch import (
    OPPORTUNITY_RULE_CODE,
    RULES,
    analyze_paths,
    analyze_sources,
    opportunity_violations,
    report_for_paths,
)
from repro.analysis.simbatch.engine import read_sources
from repro.batch import COMMUTATIVE_OPS, batchable, reduction

SRC = pathlib.Path(__file__).resolve().parents[1] / "src"

# --------------------------------------------------------------------- #
# Stub modules for fixtures that need the clock spec seeds
# --------------------------------------------------------------------- #

CLOCK_STUB = textwrap.dedent(
    """
    class SimClock:
        def __init__(self) -> None:
            self.now = 0

        def advance(self, delta_ns):
            self.now += delta_ns

        def advance_to(self, ts_ns):
            self.now = ts_ns
    """
)


def codes(violations):
    return [v.code for v in violations]


def check(snippet, path="repro/host/fake.py", select=None, extra=()):
    sources = [(path, textwrap.dedent(snippet))] + list(extra)
    return analyze_sources(sources, select=select)


def check_opportunities(snippet, path="repro/host/fake.py"):
    return opportunity_violations([(path, textwrap.dedent(snippet))])


# --------------------------------------------------------------------- #
# Runtime contract decorators (repro.batch)
# --------------------------------------------------------------------- #


class TestContractDecorators:
    def test_batchable_marks_and_returns_the_function(self):
        @batchable
        def region(items):
            return list(items)

        assert region.__sim_batchable__ is True
        assert region([1, 2]) == [1, 2]

    def test_reduction_accumulates_declarations(self):
        @reduction(var="a", op="+")
        @reduction(var="b", op="max")
        def region(items):
            return items

        assert region.__sim_reductions__ == (("b", "max"), ("a", "+"))

    def test_reduction_rejects_non_identifier_var(self):
        with pytest.raises(ValueError, match="identifier"):
            reduction(var="1bad", op="+")

    def test_reduction_rejects_order_sensitive_op(self):
        with pytest.raises(ValueError, match="op must be one of"):
            reduction(var="x", op="//")

    def test_batchable_rejects_non_callable(self):
        with pytest.raises(ValueError, match="decorate a function"):
            batchable("not a function")


# --------------------------------------------------------------------- #
# SB000: syntax errors
# --------------------------------------------------------------------- #


def test_sb000_syntax_error_is_reported_not_raised():
    violations = check("def broken(:\n")
    assert codes(violations) == ["SB000"]
    assert violations[0].line == 1


# --------------------------------------------------------------------- #
# SB001: carried dependence inside a declared @batchable loop
# --------------------------------------------------------------------- #


def test_sb001_flags_undeclared_fold_with_suggestion():
    violations = check(
        """
        class Walker:
            @batchable
            def run(self, items):
                total = 0
                for item in items:
                    total += item
                return total
        """
    )
    assert codes(violations) == ["SB001"]
    assert "@reduction(var='total', op='+')" in violations[0].message


def test_sb001_clean_when_fold_is_declared():
    violations = check(
        """
        class Walker:
            @batchable
            @reduction(var="total", op="+")
            def run(self, items):
                total = 0
                for item in items:
                    total += item
                return total
        """
    )
    assert violations == []


def test_sb001_flags_mismatched_declared_op():
    violations = check(
        """
        class Walker:
            @batchable
            @reduction(var="total", op="*")
            def run(self, items):
                total = 0
                for item in items:
                    total += item
                return total
        """
    )
    assert codes(violations) == ["SB001"]
    assert "declared @reduction(op='*')" in violations[0].message


def test_sb001_flags_recurrence():
    violations = check(
        """
        class Walker:
            @batchable
            def smooth(self, items, scale):
                acc = 0
                for item in items:
                    acc = acc * scale + item
                return acc
        """
    )
    assert codes(violations) == ["SB001"]
    assert "'acc'" in violations[0].message


def test_sb001_flags_data_dependent_trip_count():
    violations = check(
        """
        class Walker:
            @batchable
            def drain(self, n):
                while n > 0:
                    n -= 1
                return n
        """
    )
    assert codes(violations) == ["SB001"]
    assert "loop condition" in violations[0].message


# --------------------------------------------------------------------- #
# SB002: undeclared order-sensitive reduction
# --------------------------------------------------------------------- #


def test_sb002_flags_last_writer_wins_output():
    violations = check(
        """
        class Walker:
            @batchable
            def last(self, items):
                winner = None
                for item in items:
                    winner = item
                return winner
        """
    )
    assert codes(violations) == ["SB002"]
    assert "last-writer-wins" in violations[0].message


def test_sb002_flags_order_sensitive_append():
    violations = check(
        """
        class Walker:
            @batchable
            def take(self, items):
                out = []
                for item in items:
                    out.append(item)
                    if len(out) > 3:
                        break
                return out
        """
    )
    assert codes(violations) == ["SB002"]
    assert "append" in violations[0].message


def test_sb002_clean_positional_gather():
    violations = check(
        """
        class Walker:
            @batchable
            def gather(self, items):
                out = []
                for item in items:
                    out.append(item * 2)
                return out
        """
    )
    assert violations == []


# --------------------------------------------------------------------- #
# SB003: cross-iteration aliasing via container mutation
# --------------------------------------------------------------------- #


def test_sb003_flags_unkeyed_subscript_store():
    violations = check(
        """
        class Cache:
            def __init__(self):
                self._slots = {}

            @batchable
            def fill(self, items):
                for item in items:
                    self._slots["last"] = item
        """
    )
    assert codes(violations) == ["SB003"]
    assert "not keyed off the loop variable" in violations[0].message


def test_sb003_clean_keyed_scatter():
    violations = check(
        """
        class Cache:
            def __init__(self):
                self._slots = {}

            @batchable
            def fill(self, items):
                for item in items:
                    self._slots[item] = 1
        """
    )
    assert violations == []


def test_sb003_clean_keyed_dict_pop():
    violations = check(
        """
        class Cache:
            def __init__(self):
                self._slots = {}

            @batchable
            def evict(self, keys):
                for key in keys:
                    self._slots.pop(key, None)
        """
    )
    assert violations == []


# --------------------------------------------------------------------- #
# SB004: yield/clock-advance/fault-hook inside a batchable region
# --------------------------------------------------------------------- #


def test_sb004_flags_clock_advance_with_witness_chain():
    violations = check(
        """
        from repro.sim.clock import SimClock

        class Device:
            def __init__(self, clock: SimClock):
                self.clock = clock

            def _tick(self):
                self.clock.advance(5)

            @batchable
            def run(self, items):
                for item in items:
                    self._tick()
        """,
        extra=[("repro/sim/clock.py", CLOCK_STUB)],
    )
    assert codes(violations) == ["SB004"]
    assert "advances clock" in violations[0].message
    assert "_tick" in violations[0].message  # witness chain names the callee


def test_sb004_flags_yield_inside_region():
    violations = check(
        """
        class Device:
            @batchable
            def emit(self, items):
                for item in items:
                    yield item
        """
    )
    assert "SB004" in codes(violations)


# --------------------------------------------------------------------- #
# SB005: batchable region calls a function not certified in EFFECTS.json
# --------------------------------------------------------------------- #


def test_sb005_flags_uncertified_state_mutator():
    violations = check(
        """
        class Store:
            def __init__(self):
                self._n = 0

            def bump(self):
                self._n += 1

            @batchable
            def run(self, items):
                for item in items:
                    self.bump()
        """
    )
    assert codes(violations) == ["SB005"]
    assert "not certified in EFFECTS.json" in violations[0].message


def test_sb005_clean_certified_kernel_call():
    violations = check(
        """
        from repro.effects import kernel

        class Table:
            def __init__(self):
                self._slots = {}

            @kernel
            def lookup(self, key):
                return self._slots.get(key)

        class Scanner:
            def __init__(self, table: Table):
                self.table = table

            @batchable
            def probe(self, keys):
                found = []
                for key in keys:
                    found.append(self.table.lookup(key))
                return found
        """
    )
    assert violations == []


def test_sb005_clean_effect_free_helper():
    violations = check(
        """
        class Scanner:
            def _double(self, value):
                return value * 2

            @batchable
            def run(self, items):
                out = []
                for item in items:
                    out.append(self._double(item))
                return out
        """
    )
    assert violations == []


# --------------------------------------------------------------------- #
# SB006: stale contract vs analysis
# --------------------------------------------------------------------- #


def test_sb006_flags_batchable_without_a_loop():
    violations = check(
        """
        class Walker:
            @batchable
            def once(self, item):
                return item * 2
        """
    )
    assert codes(violations) == ["SB006"]
    assert "contains no loop" in violations[0].message


def test_sb006_flags_reduction_var_that_never_carries():
    violations = check(
        """
        class Walker:
            @batchable
            @reduction(var="ghost", op="+")
            def run(self, items):
                out = []
                for item in items:
                    out.append(item)
                return out
        """
    )
    assert codes(violations) == ["SB006"]
    assert "'ghost'" in violations[0].message


# --------------------------------------------------------------------- #
# SB007: opportunity audit (--check-opportunities only)
# --------------------------------------------------------------------- #

OPPORTUNITY_FIXTURE = """
    from repro.effects import kernel

    class Table:
        def __init__(self):
            self._slots = {}

        @kernel
        def lookup(self, key):
            return self._slots.get(key)

    class Scanner:
        def __init__(self, table: Table):
            self.table = table

        def probe(self, keys):
            found = []
            for key in keys:
                found.append(self.table.lookup(key))
            return found
"""


def test_sb007_flags_undeclared_batchable_loop():
    violations = check_opportunities(OPPORTUNITY_FIXTURE)
    assert codes(violations) == ["SB007"]
    assert "provably VECTORIZABLE" in violations[0].message
    assert "Table.lookup" in violations[0].message


def test_sb007_not_raised_by_the_contract_scan():
    # The default scan polices declared regions only; coverage gaps are
    # the --check-opportunities pass's job.
    assert check(OPPORTUNITY_FIXTURE) == []


def test_sb007_silent_on_order_dependent_loops():
    violations = check_opportunities(
        """
        from repro.effects import kernel

        class Table:
            def __init__(self):
                self._slots = {}

            @kernel
            def lookup(self, key):
                return self._slots.get(key)

        class Scanner:
            def __init__(self, table: Table):
                self.table = table

            def probe(self, keys):
                last = None
                for key in keys:
                    last = self.table.lookup(key)
                return last
        """
    )
    assert violations == []


# --------------------------------------------------------------------- #
# Scope, suppressions, select
# --------------------------------------------------------------------- #


def test_rules_only_fire_in_hot_path_scope():
    snippet = """
        class Walker:
            @batchable
            def run(self, items):
                total = 0
                for item in items:
                    total += item
                return total
    """
    assert check(snippet, path="repro/host/fake.py") != []
    assert check(snippet, path="repro/analysis/fake.py") == []
    assert check(snippet, path="tools/fake.py") == []


def test_suppression_comment_silences_a_finding():
    violations = check(
        """
        class Walker:
            @batchable
            def run(self, items):
                total = 0
                for item in items:
                    total += item  # simbatch: disable=SB001
                return total
        """
    )
    assert violations == []


def test_select_filters_to_requested_codes():
    snippet = """
        class Cache:
            def __init__(self):
                self._slots = {}

            @batchable
            def run(self, items):
                total = 0
                for item in items:
                    total += item
                    self._slots["last"] = item
                return total
    """
    assert codes(check(snippet)) == ["SB001", "SB003"]
    assert codes(check(snippet, select=["SB003"])) == ["SB003"]


def test_stale_simbatch_suppression_is_flagged_by_sup001(tmp_path):
    from repro.analysis import analyze

    clean = tmp_path / "repro" / "host" / "clean.py"
    clean.parent.mkdir(parents=True)
    clean.write_text(
        "def twice(items):\n"
        "    return [item * 2 for item in items]  # simbatch: disable=SB001\n"
    )
    stale, crashes = analyze.check_suppressions([str(tmp_path / "repro")])
    assert crashes == []
    assert [v.code for v in stale] == ["SUP001"]
    assert "[simbatch]" in stale[0].message


# --------------------------------------------------------------------- #
# Rule catalogue
# --------------------------------------------------------------------- #


def test_rule_catalogue_is_complete_and_disjoint():
    assert [rule.code for rule in RULES] == [
        "SB001", "SB002", "SB003", "SB004", "SB005", "SB006",
    ]
    assert OPPORTUNITY_RULE_CODE == "SB007"
    for rule in RULES:
        assert rule.title
        assert rule.explanation
        assert rule.sim_scope_only


def test_commutative_ops_match_the_declared_contract_set():
    assert COMMUTATIVE_OPS == {"+", "*", "min", "max", "or", "and", "|", "&", "^"}


# --------------------------------------------------------------------- #
# Seeded mutants: the SB001/SB003 regression gate on real repo code
# --------------------------------------------------------------------- #


def _mutated_repo_sources(suffix, old, new):
    sources = read_sources([str(SRC / "repro")])
    out = []
    mutated_line = None
    for path, text in sources:
        if path.endswith(suffix) and old in text:
            before = text[: text.index(old)]
            mutated_line = before.count("\n") + 1
            text = text.replace(old, new, 1)
        out.append((path, text))
    assert mutated_line is not None, f"mutation target not found: {old!r}"
    return out, mutated_line


class TestSeededMutants:
    def test_sb001_catches_broken_walk_ns_fold(self):
        """Replacing warm_translations' declared '+' fold with a running
        average (a true recurrence) must fire SB001 at the mutated line."""
        mutant, line = _mutated_repo_sources(
            "core/memory_system.py",
            "walk_ns += cost",
            "walk_ns = (walk_ns + cost) // 2",
        )
        violations = [v for v in analyze_sources(mutant) if v.code == "SB001"]
        assert len(violations) == 1, [v.format() for v in violations]
        assert violations[0].path.endswith("core/memory_system.py")
        assert violations[0].line == line
        assert "walk_ns" in violations[0].message

    def test_sb003_catches_unkeyed_retire(self):
        """Replacing batch_retire's keyed pop with popitem() (an arbitrary-
        slot mutation) must fire SB003 at the mutated line."""
        mutant, line = _mutated_repo_sources(
            "host/plb.py",
            "            self._by_ssd_tag.pop(entry.ssd_tag, None)\n"
            "            retired += 1",
            "            self._by_ssd_tag.popitem()\n"
            "            retired += 1",
        )
        violations = [v for v in analyze_sources(mutant) if v.code == "SB003"]
        assert len(violations) == 1, [v.format() for v in violations]
        assert violations[0].path.endswith("host/plb.py")
        assert violations[0].line == line
        assert "_by_ssd_tag" in violations[0].message


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #


def _run_cli(args, tmp_path):
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis.simbatch", *args],
        capture_output=True,
        text=True,
        cwd=tmp_path,
        env={"PYTHONPATH": str(SRC)},
    )


def _write_fixture_tree(tmp_path, body):
    root = tmp_path / "repro" / "host"
    root.mkdir(parents=True)
    (root / "fake.py").write_text(textwrap.dedent(body))
    return root


def test_cli_exits_zero_on_clean_tree(tmp_path):
    _write_fixture_tree(
        tmp_path,
        """
        class Walker:
            @batchable
            @reduction(var="total", op="+")
            def run(self, items):
                total = 0
                for item in items:
                    total += item
                return total
        """,
    )
    result = _run_cli(["repro"], tmp_path)
    assert result.returncode == 0, result.stdout + result.stderr
    assert "clean" in result.stdout


def test_cli_exits_nonzero_on_violation(tmp_path):
    _write_fixture_tree(
        tmp_path,
        """
        class Walker:
            @batchable
            def run(self, items):
                total = 0
                for item in items:
                    total += item
                return total
        """,
    )
    result = _run_cli(["repro"], tmp_path)
    assert result.returncode == 1
    assert "SB001" in result.stdout


def test_cli_list_rules(tmp_path):
    result = _run_cli(["--list-rules"], tmp_path)
    assert result.returncode == 0
    for code in ("SB001", "SB006", "SB007"):
        assert code in result.stdout


def test_cli_json_shared_schema(tmp_path):
    _write_fixture_tree(tmp_path, "x = 1\n")
    result = _run_cli(["--json", "repro"], tmp_path)
    assert result.returncode == 0, result.stdout + result.stderr
    payload = json.loads(result.stdout)
    assert payload["tool"] == "simbatch"
    assert payload["count"] == 0
    assert payload["findings"] == []


def test_cli_report_writes_batch_json(tmp_path):
    _write_fixture_tree(
        tmp_path,
        """
        class Walker:
            @batchable
            @reduction(var="total", op="+")
            def run(self, items):
                total = 0
                for item in items:
                    total += item
                return total
        """,
    )
    result = _run_cli(["--report", "BATCH.json", "repro"], tmp_path)
    assert result.returncode == 0, result.stdout + result.stderr
    report = json.loads((tmp_path / "BATCH.json").read_text())
    assert report["tool"] == "simbatch"
    assert report["summary"]["regions"] == 1
    assert report["summary"]["certified_regions"] == 1
    (region,) = report["regions"]
    assert region["function"] == "host.fake.Walker.run"
    assert region["certified"] is True
    assert region["reductions"] == [{"var": "total", "op": "+"}]
    (loop,) = report["loops"]
    assert loop["classification"] == "REDUCTION"
    assert loop["declared"] is True


def test_cli_check_opportunities_flags_undeclared_loop(tmp_path):
    _write_fixture_tree(tmp_path, OPPORTUNITY_FIXTURE)
    result = _run_cli(["--check-opportunities", "repro"], tmp_path)
    assert result.returncode == 1
    assert "SB007" in result.stdout
    # The default scan stays clean on the same tree.
    assert _run_cli(["repro"], tmp_path).returncode == 0


# --------------------------------------------------------------------- #
# Repo gates: the tree is clean and BATCH.json answers the ROADMAP
# --------------------------------------------------------------------- #


def test_repo_tree_is_simbatch_clean():
    violations = analyze_paths([str(SRC)])
    assert violations == [], "\n".join(v.format() for v in violations)


def test_repo_has_no_undeclared_batchable_opportunities():
    sources = read_sources([str(SRC / "repro")])
    violations = opportunity_violations(sources)
    assert violations == [], "\n".join(v.format() for v in violations)


class TestRepoBatchReport:
    @pytest.fixture(scope="class")
    def report(self):
        return report_for_paths([str(SRC / "repro")])

    def test_every_region_is_certified(self, report):
        assert report["summary"]["regions"] == len(report["regions"])
        for region in report["regions"]:
            assert region["certified"] is True, region
            assert region["violations"] == []

    def test_roadmap_access_loops_are_certified(self, report):
        """The loops ROADMAP item 1 batches must be certified: PLB lookup,
        TLB lookup + page-table walk, and the SSD-Cache lookup."""
        kernels_by_region = {
            r["function"]: set(r["kernel_calls"]) for r in report["regions"]
        }
        assert "host.plb.PLB.lookup" in kernels_by_region["host.plb.PLB.batch_lookup"]
        warm = kernels_by_region["core.memory_system.MemorySystem.warm_translations"]
        assert "host.tlb.TLB.lookup" in warm
        assert "host.page_table.PageTable.walk" in warm
        assert (
            "ssd.ssd_cache.SSDCache.lookup"
            in kernels_by_region["ssd.ssd_cache.SSDCache.batch_lookup"]
        )

    def test_declared_regions_cover_the_contract_surface(self, report):
        functions = {r["function"] for r in report["regions"]}
        assert {
            "core.hierarchy.FlatFlash._assemble_plb_lines",
            "core.memory_system.MemorySystem.warm_translations",
            "host.plb.PLB.batch_lookup",
            "host.plb.PLB.batch_retire",
            "host.tlb.TLB.batch_invalidate",
            "ssd.ssd_cache.SSDCache.batch_lookup",
            "workloads.trace.pack_ops",
        } <= functions

    def test_no_opportunities_remain(self, report):
        assert report["summary"]["opportunities"] == 0

    def test_summary_counts_are_consistent(self, report):
        summary = report["summary"]
        assert summary["loops"] == len(report["loops"])
        assert summary["loops"] == (
            summary["vectorizable"] + summary["reduction"]
            + summary["order_dependent"]
        )
        declared = [loop for loop in report["loops"] if loop["declared"]]
        assert {loop["classification"] for loop in declared} <= {
            "VECTORIZABLE", "REDUCTION",
        }

    def test_order_dependent_loops_carry_witnesses(self, report):
        for loop in report["loops"]:
            if loop["classification"] != "ORDER_DEPENDENT":
                continue
            assert loop["carried"], loop
            for dep in loop["carried"]:
                assert dep["kind"]
                assert dep["line"] > 0

    def test_committed_batch_json_is_current(self, report):
        def relative(document):
            # The committed report was generated from the repo root with
            # a relative path; the fixture uses an absolute one.
            text = json.dumps(document, sort_keys=True)
            return text.replace(str(SRC.parent) + "/", "")

        committed = json.loads(
            (SRC.parent / "BATCH.json").read_text(encoding="utf-8")
        )
        assert relative(committed) == relative(report), (
            "BATCH.json is stale — regenerate with "
            "`python -m repro.analysis.simbatch --report BATCH.json src/repro`"
        )


# --------------------------------------------------------------------- #
# Cross-oracle consistency: BATCH.json vs EFFECTS.json vs COSTS.json
# --------------------------------------------------------------------- #


class TestCrossOracleConsistency:
    @pytest.fixture(scope="class")
    def oracles(self):
        root = SRC.parent
        return (
            json.loads((root / "BATCH.json").read_text(encoding="utf-8")),
            json.loads((root / "EFFECTS.json").read_text(encoding="utf-8")),
            json.loads((root / "COSTS.json").read_text(encoding="utf-8")),
        )

    def test_region_kernel_calls_are_certified_in_effects_json(self, oracles):
        batch, effects, _costs = oracles
        certified = set(effects["certified"])
        for region in batch["regions"]:
            missing = set(region["kernel_calls"]) - certified
            assert not missing, (
                f"{region['function']} calls kernels not certified in "
                f"EFFECTS.json: {sorted(missing)}"
            )

    def test_region_kernel_calls_have_cost_entries(self, oracles):
        batch, _effects, costs = oracles
        costed = {entry["function"] for entry in costs["entry_points"]}
        for region in batch["regions"]:
            missing = set(region["kernel_calls"]) - costed
            assert not missing, (
                f"{region['function']} calls kernels with no COSTS.json "
                f"entry: {sorted(missing)}"
            )
