"""Tests for the debug event-trace facility."""

import pytest

from repro import FlatFlash, UnifiedMMap, small_config


def hammer(system, region, page=0, touches=16):
    for line in range(touches):
        system.load(region.page_addr(page, (line % 64) * 64), 64)


def test_disabled_by_default():
    system = FlatFlash(small_config())
    region = system.mmap(8)
    hammer(system, region)
    assert system.events() == []


def test_promotion_events_recorded():
    system = FlatFlash(small_config())
    system.enable_event_log()
    region = system.mmap(8)
    hammer(system, region)
    system.quiesce()
    starts = system.events("promotion_start")
    completes = system.events("promotion_complete")
    assert len(starts) == 1
    assert len(completes) == 1
    assert starts[0][2]["vpn"] == region.base_vpn
    assert starts[0][0] <= completes[0][0]  # ordered timestamps


def test_eviction_events_recorded():
    system = FlatFlash(small_config())
    system.enable_event_log()
    region = system.mmap(64)
    for page in range(system.dram.num_frames + 4):
        hammer(system, region, page=page, touches=10)
        system.quiesce()
    assert system.events("eviction")


def test_fault_events_on_paging_baseline():
    system = UnifiedMMap(small_config())
    system.enable_event_log()
    region = system.mmap(4)
    system.load(region.addr(0), 8)
    faults = system.events("fault")
    assert len(faults) == 1
    assert faults[0][2]["vpn"] == region.base_vpn


def test_ring_capacity_bounds_memory():
    system = UnifiedMMap(small_config())
    system.enable_event_log(capacity=4)
    region = system.mmap(16)
    for page in range(16):
        system.load(region.page_addr(page, 0), 8)
    assert len(system.events()) == 4  # only the newest survive


def test_filter_by_kind():
    system = UnifiedMMap(small_config())
    system.enable_event_log()
    frames = system.dram.num_frames
    region = system.mmap(frames + 4)
    for page in range(frames + 4):
        system.load(region.page_addr(page, 0), 8)
    kinds = {event[1] for event in system.events()}
    assert "fault" in kinds
    assert "eviction" in kinds
    assert all(event[1] == "fault" for event in system.events("fault"))


def test_disable_clears():
    system = FlatFlash(small_config())
    system.enable_event_log()
    region = system.mmap(4)
    hammer(system, region)
    system.disable_event_log()
    assert system.events() == []


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        FlatFlash(small_config()).enable_event_log(capacity=0)
