"""Tests for the processor cache model."""

import pytest

from repro.host.cpu_cache import CPUCache


def make_cache(lines=8, ways=2, line_size=64):
    return CPUCache(num_lines=lines, ways=ways, line_size=line_size)


def test_miss_then_hit():
    cache = make_cache()
    hit, _ = cache.access(0, is_write=False)
    assert not hit
    hit, _ = cache.access(0, is_write=False)
    assert hit


def test_same_line_different_offsets_hit():
    cache = make_cache()
    cache.access(0, is_write=False)
    hit, _ = cache.access(63, is_write=False)
    assert hit
    hit, _ = cache.access(64, is_write=False)
    assert not hit  # next line


def test_write_marks_dirty():
    cache = make_cache()
    cache.access(0, is_write=True)
    assert cache.is_dirty(0)
    cache.access(64, is_write=False)
    assert not cache.is_dirty(64)


def test_read_hit_preserves_dirty():
    cache = make_cache()
    cache.access(0, is_write=True)
    cache.access(0, is_write=False)
    assert cache.is_dirty(0)


def test_eviction_returns_dirty_victim_address():
    cache = make_cache(lines=2, ways=2)  # 1 set, 2 ways
    cache.access(0 * 64, is_write=True)
    cache.access(1 * 64, is_write=False)
    _hit, evicted = cache.access(2 * 64, is_write=False)
    assert evicted == 0  # dirty line 0 written back


def test_clean_eviction_returns_none():
    cache = make_cache(lines=2, ways=2)
    cache.access(0, is_write=False)
    cache.access(64, is_write=False)
    _hit, evicted = cache.access(128, is_write=False)
    assert evicted is None


def test_lru_within_set():
    cache = make_cache(lines=2, ways=2)
    cache.access(0, is_write=False)
    cache.access(64, is_write=False)
    cache.access(0, is_write=False)  # line 0 most recent
    cache.access(128, is_write=False)  # evicts line 1
    assert cache.contains(0)
    assert not cache.contains(64)


def test_flush_line_reports_dirtiness():
    cache = make_cache()
    cache.access(0, is_write=True)
    assert cache.flush_line(0) is True
    assert not cache.contains(0)
    assert cache.flush_line(0) is False  # already gone


def test_flush_range_counts_dirty_lines():
    cache = make_cache(lines=16, ways=4)
    cache.access(0, is_write=True)
    cache.access(64, is_write=True)
    cache.access(128, is_write=False)
    assert cache.flush_range(0, 192) == 2


def test_flush_range_bounds():
    cache = make_cache()
    with pytest.raises(ValueError):
        cache.flush_range(0, 0)


def test_hit_ratio():
    cache = make_cache()
    cache.access(0, is_write=False)
    cache.access(0, is_write=False)
    assert cache.hit_ratio == pytest.approx(0.5)


def test_writeback_counter():
    cache = make_cache(lines=2, ways=2)
    cache.access(0, is_write=True)
    cache.access(64, is_write=True)
    cache.access(128, is_write=False)
    cache.access(192, is_write=False)
    assert cache.stats.counters()["cpu_cache.writebacks"] == 2


def test_invalid_shape_rejected():
    with pytest.raises(ValueError):
        CPUCache(num_lines=0)
    with pytest.raises(ValueError):
        CPUCache(num_lines=4, ways=8)
    with pytest.raises(ValueError):
        CPUCache(line_size=0)
