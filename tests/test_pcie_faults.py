"""Tests for the PCIe fault plane: retry, backoff, degradation."""

import pytest

from repro.config import LatencyConfig, small_config
from repro.core.hierarchy import FlatFlash
from repro.core.persistence import create_pmem_region
from repro.faults.plan import FaultConfig, FaultInjector
from repro.host.bridge import MMIORetryPolicy
from repro.interconnect.pcie import PCIeFaultError, PCIeLink


def make_link(**config_overrides):
    injector = FaultInjector(FaultConfig(**config_overrides))
    return PCIeLink(LatencyConfig(), 64, faults=injector)


def make_system(faults, **tweaks):
    config = small_config(track_data=True, faults=faults)
    config.promotion.enabled = False  # keep pages on the MMIO path
    config.cacheable_mmio = False  # every access pays the link
    for name, value in tweaks.items():
        setattr(config, name, value)
    return FlatFlash(config)


# --------------------------------------------------------------------- #
# Link-level fault semantics
# --------------------------------------------------------------------- #


def test_forced_timeout_raises_with_timeout_latency():
    link = make_link(forced={"pcie.mmio_read.timeout": (0,)})
    with pytest.raises(PCIeFaultError) as exc:
        link.mmio_read_cost(8)
    assert exc.value.site == "pcie.mmio_read"
    assert exc.value.kind == "timeout"
    assert exc.value.latency_ns == LatencyConfig().mmio_timeout_ns
    # The very next transaction is clean.
    assert link.mmio_read_cost(8) > 0


def test_forced_corrupt_write_raises_normal_cost():
    link = make_link(forced={"pcie.mmio_write.corrupt": (0,)})
    with pytest.raises(PCIeFaultError) as exc:
        link.mmio_write_cost(8)
    assert exc.value.kind == "corrupt"
    reference = make_link().mmio_write_cost(8)
    assert exc.value.latency_ns == reference


def test_verify_read_and_dma_are_never_faulted():
    link = make_link(pcie_timeout_rate=1.0, pcie_corrupt_rate=1.0)
    assert link.verify_read_cost() > 0
    assert link.dma_to_host_cost(4096) > 0
    assert link.dma_from_host_cost(4096) > 0


# --------------------------------------------------------------------- #
# Retry policy unit behavior
# --------------------------------------------------------------------- #


def test_backoff_is_exponential():
    policy = MMIORetryPolicy(3, 1_000, 4, 8)
    assert policy.backoff_ns(0) == 1_000
    assert policy.backoff_ns(1) == 4_000
    assert policy.backoff_ns(2) == 16_000
    assert policy.stats.counters()["bridge.mmio_backoff_ns"] == 21_000
    assert policy.stats.counters()["bridge.mmio_retries"] == 3


def test_consecutive_failures_degrade_and_success_resets():
    policy = MMIORetryPolicy(3, 1_000, 2, 3)
    lpn = 7
    assert policy.note_failure(lpn) is False
    policy.note_success(lpn)  # run broken: counter resets
    assert policy.note_failure(lpn) is False
    assert policy.note_failure(lpn) is False
    assert policy.note_failure(lpn) is True  # third consecutive -> degraded
    assert policy.is_degraded(lpn)
    assert policy.degraded_pages == 1


def test_policy_validates_arguments():
    with pytest.raises(ValueError):
        MMIORetryPolicy(-1, 0, 1, 1)
    with pytest.raises(ValueError):
        MMIORetryPolicy(0, 0, 0, 1)
    with pytest.raises(ValueError):
        MMIORetryPolicy(0, 0, 1, 0)


# --------------------------------------------------------------------- #
# System-level retry / degradation
# --------------------------------------------------------------------- #


def test_transient_timeout_is_retried_and_access_succeeds():
    faults = FaultConfig(forced={"pcie.mmio_read.timeout": (0,)})
    system = make_system(faults)
    region = system.mmap(1, name="retry")
    system.store_u64(region.addr(0), 0xCAFE)
    value, result = system.load_u64(region.addr(0))
    assert value == 0xCAFE
    assert result.source == "ssd"
    counters = system.stats.counters()
    assert counters["pcie.mmio_timeouts"] == 1
    assert counters["bridge.mmio_failures"] == 1
    assert counters["bridge.mmio_retries"] == 1
    # The faulted attempt's timeout and the backoff wait are both charged.
    assert result.latency_ns > LatencyConfig().mmio_timeout_ns


def test_retry_exhaustion_falls_back_to_block_path_once():
    config = FaultConfig(
        forced={"pcie.mmio_read.timeout": (0, 1)}, mmio_max_retries=1
    )
    system = make_system(config)
    region = system.mmap(1, name="giveup")
    system.store_u64(region.addr(0), 0xF0F0)
    value, result = system.load_u64(region.addr(0))
    assert value == 0xF0F0
    assert result.source == "ssd_block"
    counters = system.stats.counters()
    assert counters["bridge.mmio_giveups"] == 1
    assert counters.get("bridge.degraded_pages", 0) == 0
    # One-shot fallback: the page keeps its MMIO path afterwards.
    _value, after = system.load_u64(region.addr(0))
    assert after.source == "ssd"


def test_threshold_crossing_degrades_page_permanently():
    config = FaultConfig(
        forced={"pcie.mmio_read.timeout": (0, 1)},
        mmio_max_retries=1,
        mmio_degraded_threshold=2,
    )
    system = make_system(config)
    region = system.mmap(1, name="degrade")
    system.store_u64(region.addr(0), 0xD00D)
    value, result = system.load_u64(region.addr(0))
    assert value == 0xD00D
    assert result.source == "ssd_block"
    counters = system.stats.counters()
    assert counters["bridge.degraded_pages"] == 1
    # Every later access stays on the block path, fault-free or not.
    _value, after = system.load_u64(region.addr(0))
    assert after.source == "ssd_block"
    assert system.stats.counters()["bridge.degraded_accesses"] >= 2


def test_degraded_page_writes_are_durable_read_modify_write():
    config = FaultConfig(
        forced={"pcie.mmio_write.timeout": (0, 1)},
        mmio_max_retries=1,
        mmio_degraded_threshold=2,
    )
    system = make_system(config)
    region = system.mmap(1, name="degwrite")
    result = system.store_u64(region.addr(8), 0xABCD)
    assert result.source == "ssd_block"
    value, read_back = system.load_u64(region.addr(8))
    assert value == 0xABCD
    assert read_back.source == "ssd_block"


def test_degraded_page_is_not_promoted():
    config = FaultConfig(
        forced={"pcie.mmio_read.timeout": (0, 1)},
        mmio_max_retries=1,
        mmio_degraded_threshold=2,
    )
    system = FlatFlash(small_config(track_data=True, faults=config))
    region = system.mmap(1, name="nopromo")
    system.store_u64(region.addr(0), 1)
    for _ in range(64):  # plenty of touches to trip any promotion policy
        system.load_u64(region.addr(0))
    assert system.promotions == 0


def test_atomic_store_retries_through_faults():
    faults = FaultConfig(forced={"pcie.mmio_atomic.timeout": (0,)})
    system = make_system(faults)
    pmem = create_pmem_region(system, 1, name="atomic")
    cost = pmem.atomic_store(0, 8)
    assert cost > LatencyConfig().mmio_timeout_ns
    assert system.stats.counters()["bridge.mmio_retries"] == 1


def test_corrupt_posted_write_never_lands_partially():
    """A corrupted posted write is dropped wholesale and retried."""
    faults = FaultConfig(forced={"pcie.mmio_write.corrupt": (0,)})
    system = make_system(faults)
    region = system.mmap(1, name="corrupt")
    system.store_u64(region.addr(0), 0x1234_5678_9ABC_DEF0)
    value, _ = system.load_u64(region.addr(0))
    assert value == 0x1234_5678_9ABC_DEF0
    assert system.stats.counters()["pcie.mmio_corruptions"] == 1
