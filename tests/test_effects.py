"""Runtime behavior of the declared effect contracts (repro.effects).

Both decorators are metadata-only: they must not wrap, rename, or slow
down the decorated function — simeffect reads them syntactically and
these attributes exist for reflective tooling only.
"""

import pytest

from repro.effects import EFFECTS, KERNEL_SAFE_EFFECTS, effects, kernel


def test_effect_vocabulary():
    assert EFFECTS == {
        "READS_CLOCK",
        "ADVANCES_CLOCK",
        "YIELDS",
        "RNG",
        "MUTATES_STATS",
        "MUTATES_STATE",
        "PERSISTS",
        "FAULT_HOOK",
    }


def test_kernel_safe_subset():
    assert KERNEL_SAFE_EFFECTS == {"MUTATES_STATE", "MUTATES_STATS"}
    assert KERNEL_SAFE_EFFECTS < EFFECTS


def test_kernel_bare_form():
    @kernel
    def lookup(tag):
        return tag

    assert lookup.__sim_kernel__ == {"allow": (), "may_raise": ()}
    assert lookup(7) == 7  # still the original function
    assert lookup.__name__ == "lookup"


def test_kernel_parameterized_form():
    @kernel(allow=("READS_CLOCK",), may_raise=("KeyError", "ValueError"))
    def walk(vpn):
        return vpn

    assert walk.__sim_kernel__ == {
        "allow": ("READS_CLOCK",),
        "may_raise": ("KeyError", "ValueError"),
    }
    assert walk(3) == 3


def test_kernel_rejects_unknown_allow_name():
    with pytest.raises(ValueError, match="NOT_AN_EFFECT"):
        kernel(allow=("NOT_AN_EFFECT",))


def test_effects_declaration():
    @effects("MUTATES_STATE", "MUTATES_STATS")
    def insert(key, value):
        return key, value

    assert insert.__sim_effects__ == ("MUTATES_STATE", "MUTATES_STATS")
    assert insert(1, 2) == (1, 2)


def test_effects_rejects_unknown_name():
    with pytest.raises(ValueError, match="MUTATES_EVERYTHING"):
        effects("MUTATES_EVERYTHING")


def test_decorators_do_not_wrap():
    def original(x):
        return x

    assert kernel(original) is original
    assert effects("MUTATES_STATE")(original) is original


def test_kernel_composes_with_staticmethod():
    class Host:
        @staticmethod
        @kernel
        def tag(addr):
            return addr

    assert Host.tag.__sim_kernel__ == {"allow": (), "may_raise": ()}
    assert Host.tag(5) == 5


def test_hot_paths_carry_contracts():
    """The annotated hot-path entry points keep their runtime metadata."""
    from repro.host.plb import PLB
    from repro.host.tlb import TLB
    from repro.host.page_table import PageTable
    from repro.ssd.ssd_cache import SSDCache

    for func in (PLB.lookup, TLB.lookup, PageTable.walk, SSDCache.lookup):
        assert hasattr(func, "__sim_kernel__"), func
    from repro.core.memory_system import MemorySystem

    assert "ADVANCES_CLOCK" in MemorySystem.load.__sim_effects__
