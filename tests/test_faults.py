"""Tests for the simfault NAND/PCIe fault planes (repro.faults)."""

import pytest

from repro.config import LatencyConfig, small_config
from repro.core.hierarchy import FlatFlash
from repro.faults.plan import FAULT_SITES, FaultConfig, FaultInjector
from repro.ssd.flash import FlashArray, FlashPageState


def make_flash(faults=None, blocks=4, pages=8, page_size=256):
    return FlashArray(
        num_blocks=blocks,
        pages_per_block=pages,
        page_size=page_size,
        latency=LatencyConfig(),
        track_data=True,
        faults=faults,
    )


def injector(**overrides):
    return FaultInjector(FaultConfig(**overrides))


# --------------------------------------------------------------------- #
# Plan / injector
# --------------------------------------------------------------------- #


def test_default_config_is_inactive():
    assert not FaultConfig().active


@pytest.mark.parametrize(
    "field", ["nand_read_error_rate", "pcie_timeout_rate", "pcie_corrupt_rate"]
)
def test_any_rate_activates(field):
    assert FaultConfig(**{field: 0.1}).active


def test_wear_limit_and_forced_activate():
    assert FaultConfig(nand_wear_limit=4).active
    assert FaultConfig(forced={"nand.read": (0,)}).active


def test_validate_rejects_bad_rates_and_sites():
    with pytest.raises(ValueError):
        FaultConfig(nand_read_error_rate=1.5).validate()
    with pytest.raises(ValueError):
        FaultConfig(forced={"nand.bogus": (0,)}).validate()
    with pytest.raises(ValueError):
        FaultConfig(forced={"nand.read": (-1,)}).validate()
    with pytest.raises(ValueError):
        FaultConfig(mmio_backoff_multiplier=0).validate()


def test_same_seed_same_schedule():
    def realize():
        inj = injector(seed=7, nand_read_error_rate=0.3, pcie_timeout_rate=0.2)
        for _ in range(200):
            inj.fires("nand.read")
            inj.fires("pcie.mmio_read.timeout")
        return [(event.site, event.index) for event in inj.events]

    assert realize() == realize()


def test_sites_are_independent_streams():
    """Adding traffic at one site never changes another site's schedule."""
    lonely = injector(seed=3, nand_read_error_rate=0.25)
    noisy = injector(seed=3, nand_read_error_rate=0.25, pcie_timeout_rate=0.5)
    lonely_fires = [lonely.fires("nand.read") for _ in range(300)]
    noisy_fires = []
    for _ in range(300):
        noisy.fires("pcie.mmio_write.timeout")  # interleaved other-plane traffic
        noisy_fires.append(noisy.fires("nand.read"))
    assert lonely_fires == noisy_fires


def test_forced_sites_fire_exactly_there():
    inj = injector(forced={"nand.program": (1, 3)})
    fires = [inj.fires("nand.program") for _ in range(5)]
    assert fires == [False, True, False, True, False]
    assert inj.fired("nand.program") == 2
    assert inj.operations("nand.program") == 5


def test_zero_rate_never_draws_rng():
    inj = injector(forced={"nand.erase": (0,)})
    for _ in range(50):
        inj.fires("nand.read")
    assert inj._rngs == {}  # no generator was ever materialized


def test_summary_covers_all_sites_in_order():
    inj = injector(forced={"nand.read": (0,)})
    inj.fires("nand.read")
    assert tuple(inj.summary()) == FAULT_SITES


# --------------------------------------------------------------------- #
# NAND plane: flash-level semantics
# --------------------------------------------------------------------- #


def test_forced_read_fault_flags_op_but_carries_data():
    flash = make_flash(injector(forced={"nand.read": (1,)}))
    payload = bytes(range(256))
    flash.program(0, payload)
    assert flash.read(0).failed is False
    bad = flash.read(0)  # second read: forced index 1
    assert bad.failed is True
    assert bad.data == payload  # ECC error is a retryable event, not data loss


def test_forced_program_fail_burns_page():
    flash = make_flash(injector(forced={"nand.program": (0,)}))
    op = flash.program(0, b"\xaa" * 256)
    assert op.failed
    assert flash.state_of(0) is FlashPageState.INVALID
    # The page is consumed: a fresh program must use another page.
    ok = flash.program(1, b"\xbb" * 256)
    assert not ok.failed
    assert flash.read(1).data == b"\xbb" * 256


def test_forced_erase_fail_retires_block():
    flash = make_flash(injector(forced={"nand.erase": (0,)}))
    op = flash.erase(0)
    assert op.failed
    assert flash.blocks[0].bad
    with pytest.raises(RuntimeError):
        flash.erase(0)  # bad blocks must never be erased again


def test_wear_limit_retires_block_after_successful_erase():
    flash = make_flash(injector(nand_wear_limit=2))
    flash.erase(0)
    assert not flash.blocks[0].bad
    flash.erase(0)
    assert flash.blocks[0].bad
    assert flash.stats.counters()["flash.wear_retired_blocks"] == 1


def test_snapshot_restore_roundtrip():
    flash = make_flash(injector(forced={"nand.erase": (0,)}))
    flash.program(0, b"\x11" * 256)
    flash.program(1, b"\x22" * 256)
    flash.erase(2)  # forced index 0: this erase fails -> block 2 retired
    image = flash.snapshot_state()
    other = make_flash()
    other.restore_state(image)
    assert other.read(0).data == b"\x11" * 256
    assert other.read(1).data == b"\x22" * 256
    assert other.blocks[2].bad
    assert other.state_of(0) is FlashPageState.PROGRAMMED


# --------------------------------------------------------------------- #
# NAND plane: FTL absorption (system level, forced sites)
# --------------------------------------------------------------------- #


def test_ecc_retry_recovers_first_try_error():
    faults = FaultConfig(forced={"nand.read": (0,)})
    system = FlatFlash(small_config(track_data=True, faults=faults))
    region = system.mmap(1, name="ecc")
    system.store_u64(region.addr(0), 0xDEAD)
    value, _ = system.load_u64(region.addr(0))
    assert value == 0xDEAD
    counters = system.stats.counters()
    assert counters["flash.read_faults"] >= 1
    assert counters["ftl.ecc_retries"] >= 1
    assert counters.get("ftl.ecc_hard_errors", 0) == 0


def test_ecc_exhaustion_soft_decodes_without_data_loss():
    # First read plus every retry fails -> soft-decode rescue path.
    faults = FaultConfig(forced={"nand.read": (0, 1, 2, 3)}, ecc_max_retries=3)
    system = FlatFlash(small_config(track_data=True, faults=faults))
    region = system.mmap(1, name="hard")
    system.store_u64(region.addr(0), 0xBEEF)
    value, _ = system.load_u64(region.addr(0))
    assert value == 0xBEEF
    assert system.stats.counters()["ftl.ecc_hard_errors"] == 1


def test_program_fail_retries_to_next_page():
    faults = FaultConfig(forced={"nand.program": (0,)})
    system = FlatFlash(small_config(track_data=True, faults=faults))
    region = system.mmap(1, name="prog")
    system.store_u64(region.addr(0), 0xF00D)
    value, _ = system.load_u64(region.addr(0))
    assert value == 0xF00D
    assert system.stats.counters()["ftl.program_retries"] >= 1


def test_zero_fault_config_is_bit_identical_to_baseline():
    def run(config):
        system = FlatFlash(config)
        region = system.mmap(8, name="ident")
        for round_index in range(4):
            for page in range(8):
                system.store_u64(region.page_addr(page), round_index + page)
                system.load_u64(region.page_addr(page))
        system.quiesce()
        return system.stats.snapshot(), system.clock.now

    base_stats, base_ns = run(small_config(track_data=True))
    fault_stats, fault_ns = run(
        small_config(track_data=True, faults=FaultConfig(seed=99))
    )
    assert base_ns == fault_ns
    assert base_stats == fault_stats


def test_zero_fault_device_has_no_injector():
    system = FlatFlash(small_config(track_data=True, faults=FaultConfig()))
    assert system.ssd.faults is None
    assert system.bridge.mmio_retry is None
