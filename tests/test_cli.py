"""Tests for the command-line entry point."""

import pytest

from repro.__main__ import EXPERIMENTS, main


def test_list_prints_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.split()
    assert "fig8" in out
    assert "table2" in out
    assert "ablations" in out


def test_every_listed_experiment_is_callable():
    for name, runner in EXPERIMENTS.items():
        assert callable(runner), name


def test_run_table2(capsys):
    assert main(["run", "table2"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "4.80" in out


def test_run_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_all_writes_file(tmp_path, monkeypatch):
    # Patch the generator so the CLI path is tested without the full run.
    import repro.experiments.run_all as run_all

    monkeypatch.setattr(run_all, "generate", lambda: "# stub results\n")
    target = tmp_path / "out.md"
    assert main(["all", str(target)]) == 0
    assert target.read_text() == "# stub results\n"
