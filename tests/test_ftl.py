"""Tests for the page-level FTL: out-of-place writes, GC, remap hooks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import LatencyConfig
from repro.ssd.flash import FlashArray
from repro.ssd.ftl import OutOfSpaceError, PageFTL


def make_ftl(blocks=8, pages=8, overprovision=0.25, page_size=64):
    flash = FlashArray(
        num_blocks=blocks,
        pages_per_block=pages,
        page_size=page_size,
        latency=LatencyConfig(),
        track_data=True,
    )
    return FlashArray, flash, PageFTL(flash, overprovision=overprovision)


def test_exported_capacity_leaves_spares():
    _cls, flash, ftl = make_ftl(blocks=8, pages=8, overprovision=0.25)
    assert ftl.exported_pages <= (8 - 2) * 8
    assert ftl.exported_pages > 0


def test_map_page_programs_once():
    _cls, flash, ftl = make_ftl()
    ppn, cost = ftl.map_page(0)
    assert cost > 0
    again, cost2 = ftl.map_page(0)
    assert again == ppn
    assert cost2 == 0


def test_write_is_out_of_place():
    _cls, flash, ftl = make_ftl()
    first, _ = ftl.write(0, b"\x01" * 64)
    second, _ = ftl.write(0, b"\x02" * 64)
    assert first != second
    assert ftl.lookup(0) == second


def test_write_invalidates_old_page():
    _cls, flash, ftl = make_ftl()
    first, _ = ftl.write(0, b"\x01" * 64)
    ftl.write(0, b"\x02" * 64)
    assert flash.state_of(first).value == "invalid"


def test_read_returns_latest_data():
    _cls, flash, ftl = make_ftl()
    ftl.write(5, b"\xaa" * 64)
    ftl.write(5, b"\xbb" * 64)
    _ppn, data, _cost = ftl.read(5)
    assert data == b"\xbb" * 64


def test_read_unmapped_raises():
    _cls, flash, ftl = make_ftl()
    with pytest.raises(KeyError):
        ftl.read(3)


def test_lpn_out_of_range_rejected():
    _cls, flash, ftl = make_ftl()
    with pytest.raises(ValueError):
        ftl.write(ftl.exported_pages, None)


def test_reverse_lookup():
    _cls, flash, ftl = make_ftl()
    ppn, _ = ftl.write(7, None)
    assert ftl.lpn_of(ppn) == 7
    assert ftl.lpn_of(ppn + 1) is None


def test_gc_triggers_and_reclaims_space():
    _cls, flash, ftl = make_ftl(blocks=6, pages=4, overprovision=0.3)
    # Overwrite a small working set until GC must have run.
    for round_index in range(20):
        for lpn in range(4):
            ftl.write(lpn, bytes([round_index]) * 64)
    assert flash.total_erases > 0
    # Data still correct after all that GC.
    for lpn in range(4):
        _ppn, data, _ = ftl.read(lpn)
        assert data == bytes([19]) * 64


def test_gc_fires_relocate_hooks():
    _cls, flash, ftl = make_ftl(blocks=6, pages=4, overprovision=0.3)
    moves = []
    ftl.add_relocate_hook(lambda lpn, old, new: moves.append((lpn, old, new)))
    for round_index in range(20):
        for lpn in range(4):
            ftl.write(lpn, None)
    assert moves  # overwrites and/or GC moved live pages
    for lpn, old, new in moves:
        assert old != new


def test_write_amplification_starts_at_one():
    _cls, flash, ftl = make_ftl()
    ftl.write(0, None)
    assert ftl.write_amplification == 1.0


def test_write_amplification_grows_with_gc():
    _cls, flash, ftl = make_ftl(blocks=6, pages=4, overprovision=0.3)
    # Cold data interleaved with hot churn: victim blocks carry live pages
    # that GC must relocate, which is what drives amplification above 1.
    cold = list(range(8, 14))
    hot = list(range(3))
    for index, lpn in enumerate(cold):
        ftl.write(lpn, None)
        for _ in range(3):
            ftl.write(hot[index % len(hot)], None)
    for _ in range(20):
        for lpn in hot:
            ftl.write(lpn, None)
    assert ftl.write_amplification > 1.0


def test_out_of_space_when_capacity_exhausted():
    _cls, flash, ftl = make_ftl(blocks=4, pages=4, overprovision=0.0)
    with pytest.raises(OutOfSpaceError):
        # Map every exported page (all valid, no invalid pages to reclaim),
        # then keep writing fresh pages with nothing reclaimable.
        for lpn in range(ftl.exported_pages):
            ftl.map_page(lpn)
        for _ in range(100):
            for lpn in range(ftl.exported_pages):
                ftl.map_page(lpn)
        raise OutOfSpaceError  # pragma: no cover - loop must raise first


def test_page_source_folds_fresh_data_during_gc():
    _cls, flash, ftl = make_ftl(blocks=6, pages=4, overprovision=0.3)
    fresh = {0: b"\xff" * 64}
    ftl.page_source = lambda lpn: fresh.get(lpn)
    # Fill block 0 with lpn 0 plus three victims-to-be, then invalidate the
    # three: block 0 becomes the greedy GC victim with lpn 0 still live.
    for lpn in range(4):
        ftl.write(lpn, b"\x00" * 64)
    for lpn in range(1, 4):
        ftl.write(lpn, b"\x11" * 64)
    ftl.collect_garbage()
    _ppn, data, _ = ftl.read(0)
    assert data == b"\xff" * 64  # GC picked up the cache's fresher copy


def test_select_victim_prefers_most_invalid():
    _cls, flash, ftl = make_ftl(blocks=6, pages=4, overprovision=0.0)
    # Fill two blocks fully: lpns 0..7 land in blocks 0 and 1.
    for lpn in range(8):
        ftl.write(lpn, None)
    # Invalidate 3 pages of block 0 (rewrite lpns 0-2), 1 page of block 1;
    # plenty of free blocks remain, so no GC interferes.
    for lpn in (0, 1, 2, 4):
        ftl.write(lpn, None)
    victim = ftl.select_victim()
    assert victim == 0


@settings(deadline=None, max_examples=25)
@given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 255)), min_size=1, max_size=200))
def test_ftl_behaves_like_a_dict(ops):
    """Random overwrites: the FTL must always read back the latest value."""
    _cls, flash, ftl = make_ftl(blocks=8, pages=8, overprovision=0.25, page_size=64)
    model = {}
    for lpn, value in ops:
        payload = bytes([value]) * 64
        ftl.write(lpn, payload)
        model[lpn] = payload
    for lpn, expected in model.items():
        _ppn, data, _ = ftl.read(lpn)
        assert data == expected


@settings(deadline=None, max_examples=25)
@given(st.lists(st.integers(0, 7), min_size=1, max_size=300))
def test_mapping_and_reverse_stay_consistent(lpns):
    _cls, flash, ftl = make_ftl(blocks=8, pages=8, overprovision=0.25)
    for lpn in lpns:
        ftl.write(lpn, None)
    assert len(ftl.mapping) == len(ftl.reverse)
    for lpn, ppn in ftl.mapping.items():
        assert ftl.reverse[ppn] == lpn
        assert flash.state_of(ppn).value == "programmed"
