"""Tests for the FileBench op streams and OLTP transaction generators."""

import numpy as np
import pytest

from repro.workloads.filebench import (
    CREATE_FILE,
    LOG_APPEND,
    READ_FILE,
    repeated_ops,
    varmail_ops,
    webserver_ops,
    workload_by_name,
)
from repro.workloads.oltp import (
    TATP,
    TPCB,
    TPCC,
    TransactionSpec,
    generate_transactions,
)


class TestFileBench:
    def test_metadata_sizes_within_paper_range(self):
        # §3.5: metadata updates are 8-256 bytes.
        for op in (CREATE_FILE, LOG_APPEND):
            for size in op.updates:
                assert 8 <= size <= 256

    def test_repeated_ops_stream(self):
        stream = repeated_ops(CREATE_FILE, 10)
        assert len(stream) == 10
        assert stream.total_metadata_bytes == 10 * CREATE_FILE.metadata_bytes

    def test_repeated_requires_positive_count(self):
        with pytest.raises(ValueError):
            repeated_ops(CREATE_FILE, 0)

    def test_varmail_is_balanced_mix(self):
        stream = varmail_ops(2_000, np.random.default_rng(1))
        names = [op.name for op in stream]
        for expected in ("CreateFile", "AppendSync", "ReadFile", "DeleteFile"):
            share = names.count(expected) / len(names)
            assert 0.15 < share < 0.35

    def test_webserver_mostly_reads_and_logs(self):
        stream = webserver_ops(2_000, np.random.default_rng(2))
        names = [op.name for op in stream]
        assert names.count("LogAppend") / len(names) > 0.4
        assert names.count("ReadFile") / len(names) > 0.3

    def test_workload_by_name_all_five(self):
        for name in ("CreateFile", "RenameFile", "CreateDirectory", "VarMail", "WebServer"):
            stream = workload_by_name(name, 20)
            assert len(stream) == 20

    def test_workload_by_name_unknown(self):
        with pytest.raises(ValueError):
            workload_by_name("NopeBench", 10)

    def test_read_file_has_no_updates(self):
        assert READ_FILE.metadata_bytes == 0


class TestOLTP:
    def test_specs_match_paper_log_range(self):
        # §3.5: 64-1,424 bytes of log per transaction across the workloads.
        for spec in (TPCC, TPCB, TATP):
            assert spec.log_bytes_min >= 64
            assert spec.log_bytes_max <= 1_424

    def test_tpcc_is_biggest_logger(self):
        assert TPCC.log_bytes_max > TPCB.log_bytes_max > TATP.log_bytes_max

    def test_tatp_is_read_mostly(self):
        assert TATP.record_reads > TATP.record_writes
        assert TPCB.record_writes >= TPCB.record_reads

    def test_generate_transactions_shape(self):
        txs = generate_transactions(TPCB, 50, table_bytes=64 * 1_024)
        assert len(txs) == 50
        for tx in txs:
            assert len(tx.read_offsets) == TPCB.record_reads
            assert len(tx.write_offsets) == TPCB.record_writes
            assert TPCB.log_bytes_min <= tx.log_bytes <= TPCB.log_bytes_max

    def test_offsets_record_aligned_and_in_table(self):
        txs = generate_transactions(TPCC, 30, table_bytes=32 * 1_024)
        for tx in txs:
            for offset in tx.read_offsets + tx.write_offsets:
                assert offset % TPCC.record_size == 0
                assert 0 <= offset < 32 * 1_024

    def test_skew_produces_hot_records(self):
        txs = generate_transactions(
            TPCB, 2_000, table_bytes=1_024 * 64, skew=0.9,
            rng=np.random.default_rng(7),
        )
        offsets = [o for tx in txs for o in tx.write_offsets]
        unique_share = len(set(offsets)) / len(offsets)
        assert unique_share < 0.5  # heavy reuse of hot rows

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            generate_transactions(TPCB, 0, table_bytes=1_024)
        with pytest.raises(ValueError):
            generate_transactions(TPCB, 5, table_bytes=8)
        bad = TransactionSpec("bad", 1, 1, 0, 10, 100)
        with pytest.raises(ValueError):
            bad.validate()
