"""simeffect rule tests: one violating and one clean fixture per rule.

Mirrors ``tests/test_simlint.py`` / ``tests/test_simflow.py``: every SE
rule gets a minimal fixture that fires it and a clean twin that must
stay quiet, plus suppression, ``--select``, CLI, report, and
repo-is-clean tests.  simeffect is whole-program, so fixtures go through
:func:`analyze_sources` with explicit (path, source) pairs.
"""

import json
import pathlib
import subprocess
import sys
import textwrap

from repro.analysis.simeffect import (
    RULES,
    analyze_paths,
    analyze_sources,
    report_for_paths,
)

SRC = pathlib.Path(__file__).resolve().parents[1] / "src"


def codes(violations):
    return [v.code for v in violations]


def check(snippet, path="repro/sim/fake.py", select=None, **kwargs):
    return analyze_sources(
        [(path, textwrap.dedent(snippet))], select=select, **kwargs
    )


# --------------------------------------------------------------------- #
# SE000: syntax errors
# --------------------------------------------------------------------- #


def test_se000_syntax_error_is_reported_not_raised():
    violations = check("def broken(:\n")
    assert codes(violations) == ["SE000"]
    assert violations[0].line == 1


# --------------------------------------------------------------------- #
# SE001: kernel contract violated by a non-kernel-safe effect
# --------------------------------------------------------------------- #


def test_se001_flags_rng_in_kernel():
    violations = check(
        """
        import random
        from repro.effects import kernel

        class Sampler:
            @kernel
            def pick(self):
                return random.random()
        """,
        select=["SE001"],
    )
    assert codes(violations) == ["SE001"]
    assert "RNG" in violations[0].message


def test_se001_flags_transitive_effect_with_witness_chain():
    violations = check(
        """
        import random
        from repro.effects import kernel

        class Sampler:
            def _draw(self):
                return random.random()

            @kernel
            def pick(self):
                return self._draw()
        """,
        select=["SE001"],
    )
    assert codes(violations) == ["SE001"]
    assert "_draw" in violations[0].message  # witness chain names the callee


def test_se001_allow_widens_the_contract():
    violations = check(
        """
        import random
        from repro.effects import kernel

        class Sampler:
            @kernel(allow=("RNG",))
            def pick(self):
                return random.random()
        """,
        select=["SE001"],
    )
    assert violations == []


def test_se001_clean_kernel_mutating_state():
    violations = check(
        """
        from repro.effects import kernel

        class Table:
            def __init__(self):
                self.hits = 0

            @kernel
            def touch(self):
                self.hits += 1
                return self.hits
        """,
        select=["SE001"],
    )
    assert violations == []


# --------------------------------------------------------------------- #
# SE002: inferred effects exceed the declared @effects(...) set
# --------------------------------------------------------------------- #


def test_se002_flags_undeclared_mutation():
    violations = check(
        """
        from repro.effects import effects

        class Table:
            @effects("MUTATES_STATS")
            def put(self, value):
                self.value = value
        """,
        select=["SE002"],
    )
    assert codes(violations) == ["SE002"]
    assert "MUTATES_STATE" in violations[0].message


def test_se002_clean_when_declaration_covers_inference():
    violations = check(
        """
        from repro.effects import effects

        class Table:
            @effects("MUTATES_STATE")
            def put(self, value):
                self.value = value
        """,
        select=["SE002"],
    )
    assert violations == []


# --------------------------------------------------------------------- #
# SE003: unresolved dynamic dispatch inside the kernel scope
# --------------------------------------------------------------------- #


def test_se003_flags_unknown_receiver_in_kernel():
    violations = check(
        """
        from repro.effects import kernel

        class Prober:
            @kernel
            def probe(self, thing):
                return thing.mystery()
        """,
        select=["SE003"],
    )
    assert codes(violations) == ["SE003"]
    assert "mystery" in violations[0].message


def test_se003_clean_typed_receiver():
    violations = check(
        """
        from repro.effects import kernel

        class Leaf:
            def value(self):
                return 1

        class Prober:
            @kernel
            def probe(self, thing: Leaf):
                return thing.value()
        """,
        select=["SE003"],
    )
    assert violations == []


# --------------------------------------------------------------------- #
# SE004: heap allocation inside the kernel scope
# --------------------------------------------------------------------- #


def test_se004_flags_list_display_in_kernel():
    violations = check(
        """
        from repro.effects import kernel

        class Table:
            @kernel
            def snapshot(self):
                return [1, 2, 3]
        """,
        select=["SE004"],
    )
    assert codes(violations) == ["SE004"]


def test_se004_flags_allocation_in_kernel_callee():
    violations = check(
        """
        from repro.effects import kernel

        class Table:
            def _rows(self):
                return {"a": 1}

            @kernel
            def snapshot(self):
                return self._rows()
        """,
        select=["SE004"],
    )
    assert codes(violations) == ["SE004"]


def test_se004_clean_tuple_return():
    violations = check(
        """
        from repro.effects import kernel

        class Table:
            @kernel
            def snapshot(self):
                return (1, 2, 3)
        """,
        select=["SE004"],
    )
    assert violations == []


def test_se004_exception_path_formatting_is_exempt():
    violations = check(
        """
        from repro.effects import kernel

        class Table:
            @kernel(may_raise=("ValueError",))
            def get(self, key):
                if key < 0:
                    raise ValueError([key])
                return key
        """,
        select=["SE004"],
    )
    assert violations == []


# --------------------------------------------------------------------- #
# SE005: kernel raises an exception not in may_raise
# --------------------------------------------------------------------- #


def test_se005_flags_undeclared_raise():
    violations = check(
        """
        from repro.effects import kernel

        class Table:
            @kernel
            def get(self, key):
                if key < 0:
                    raise ValueError("negative key")
                return key
        """,
        select=["SE005"],
    )
    assert codes(violations) == ["SE005"]
    assert "ValueError" in violations[0].message


def test_se005_clean_declared_raise():
    violations = check(
        """
        from repro.effects import kernel

        class Table:
            @kernel(may_raise=("ValueError",))
            def get(self, key):
                if key < 0:
                    raise ValueError("negative key")
                return key
        """,
        select=["SE005"],
    )
    assert violations == []


def test_se005_clean_caught_exception():
    violations = check(
        """
        from repro.effects import kernel

        class Table:
            @kernel
            def get(self, key):
                try:
                    if key < 0:
                        raise ValueError("negative key")
                except ValueError:
                    return 0
                return key
        """,
        select=["SE005"],
    )
    assert violations == []


# --------------------------------------------------------------------- #
# SE006: lock acquired around no lock-meaningful effect
# --------------------------------------------------------------------- #


#: Minimal stand-in for ``repro.sim.des`` so fixtures can resolve the
#: DES command classes the same way a whole-tree scan does.
_DES_STUB = (
    "class Acquire:\n"
    "    def __init__(self, lock):\n"
    "        self.lock = lock\n"
    "class Release:\n"
    "    def __init__(self, lock):\n"
    "        self.lock = lock\n"
)


def check_with_des(snippet, select=None):
    return analyze_sources(
        [
            ("repro/sim/des.py", _DES_STUB),
            ("repro/sim/fake.py", textwrap.dedent(snippet)),
        ],
        select=select,
    )


def test_se006_flags_pointless_lock():
    violations = check_with_des(
        """
        from repro.sim.des import Acquire, Release

        def reader(lock, table):
            yield Acquire(lock)
            value = 1 + 1
            yield Release(lock)
            return value
        """,
        select=["SE006"],
    )
    assert codes(violations) == ["SE006"]


def test_se006_clean_lock_guarding_mutation():
    violations = check_with_des(
        """
        from repro.sim.des import Acquire, Release

        def writer(lock, table):
            yield Acquire(lock)
            table.count = 1
            yield Release(lock)
        """,
        select=["SE006"],
    )
    assert violations == []


# --------------------------------------------------------------------- #
# Suppressions, sim scope, whole-program behavior
# --------------------------------------------------------------------- #


def test_suppression_comment_silences_a_finding():
    violations = check(
        """
        from repro.effects import kernel

        class Table:
            @kernel
            def snapshot(self):
                return [1, 2, 3]  # simeffect: disable=SE004
        """,
    )
    assert violations == []


def test_suppression_can_be_bypassed():
    violations = check(
        """
        from repro.effects import kernel

        class Table:
            @kernel
            def snapshot(self):
                return [1, 2, 3]  # simeffect: disable=SE004
        """,
        apply_suppressions=False,
    )
    assert codes(violations) == ["SE004"]


def test_rules_outside_sim_scope_stay_quiet():
    violations = check(
        """
        from repro.effects import kernel

        class Table:
            @kernel
            def snapshot(self):
                return [1, 2, 3]
        """,
        path="repro/experiments/fake.py",
    )
    assert violations == []


def test_effects_flow_across_files():
    common = textwrap.dedent(
        """
        import random

        class Source:
            def draw(self):
                return random.random()
        """
    )
    user = textwrap.dedent(
        """
        from repro.sim.fake_source import Source
        from repro.effects import kernel

        class Consumer:
            @kernel
            def pick(self, source: Source):
                return source.draw()
        """
    )
    violations = analyze_sources(
        [
            ("repro/sim/fake_source.py", common),
            ("repro/sim/fake_user.py", user),
        ],
        select=["SE001"],
    )
    assert codes(violations) == ["SE001"]
    assert violations[0].path == "repro/sim/fake_user.py"


def test_rule_catalogue_is_complete():
    assert [rule.code for rule in RULES] == [
        "SE001",
        "SE002",
        "SE003",
        "SE004",
        "SE005",
        "SE006",
    ]
    for rule in RULES:
        assert rule.title
        assert rule.explanation


# --------------------------------------------------------------------- #
# CLI + report
# --------------------------------------------------------------------- #


def _run_cli(module, args, tmp_path):
    return subprocess.run(
        [sys.executable, "-m", module, *args],
        capture_output=True,
        text=True,
        cwd=tmp_path,
        env={"PYTHONPATH": str(SRC)},
    )


_SE004_BAD = (
    "from repro.effects import kernel\n"
    "class Table:\n"
    "    @kernel\n"
    "    def snapshot(self):\n"
    "        return [1, 2, 3]\n"
)


def _write_bad(tmp_path, name="bad.py", body=_SE004_BAD):
    bad = tmp_path / "repro" / "sim" / name
    bad.parent.mkdir(parents=True, exist_ok=True)
    bad.write_text(body)
    return bad


def test_cli_exits_nonzero_on_violation(tmp_path):
    _write_bad(tmp_path)
    result = _run_cli("repro.analysis.simeffect", ["repro"], tmp_path)
    assert result.returncode == 1
    assert "SE004" in result.stdout


def test_cli_exits_zero_on_clean_tree(tmp_path):
    good = tmp_path / "repro" / "sim" / "good.py"
    good.parent.mkdir(parents=True)
    good.write_text("def distance(a, b):\n    return a - b\n")
    result = _run_cli("repro.analysis.simeffect", ["repro"], tmp_path)
    assert result.returncode == 0
    assert "clean" in result.stdout


def test_cli_list_rules(tmp_path):
    result = _run_cli("repro.analysis.simeffect", ["--list-rules"], tmp_path)
    assert result.returncode == 0
    for code in ("SE001", "SE006"):
        assert code in result.stdout


def test_cli_rejects_unknown_select(tmp_path):
    result = _run_cli(
        "repro.analysis.simeffect", ["--select", "SE999", "."], tmp_path
    )
    assert result.returncode == 2
    assert "SE999" in result.stderr


def test_cli_json_shared_schema(tmp_path):
    _write_bad(tmp_path)
    result = _run_cli("repro.analysis.simeffect", ["--json", "repro"], tmp_path)
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload["tool"] == "simeffect"
    assert payload["schema_version"] == 1
    assert payload["count"] == len(payload["findings"])
    for finding in payload["findings"]:
        assert set(finding) == {"path", "line", "col", "code", "message"}


def test_cli_report_writes_effects_json(tmp_path):
    good = tmp_path / "repro" / "sim" / "good.py"
    good.parent.mkdir(parents=True)
    good.write_text(
        "from repro.effects import kernel\n"
        "class Table:\n"
        "    def __init__(self):\n"
        "        self.hits = 0\n"
        "    @kernel\n"
        "    def touch(self):\n"
        "        self.hits += 1\n"
        "        return self.hits\n"
    )
    out = tmp_path / "EFFECTS.json"
    result = _run_cli(
        "repro.analysis.simeffect", ["--report", str(out), "repro"], tmp_path
    )
    assert result.returncode == 0
    report = json.loads(out.read_text())
    assert report["tool"] == "simeffect"
    assert report["summary"]["certified_kernels"] == 1
    (entry,) = report["functions"]
    assert entry["contract"] == "kernel"
    assert entry["kernel_eligible"] is True
    assert entry["certified_kernel"] is True


def test_report_disqualifier_names_concrete_effect(tmp_path):
    report_entry = None
    violations_source = textwrap.dedent(
        """
        import random
        from repro.effects import kernel

        class Sampler:
            def _draw(self):
                return random.random()

            @kernel
            def pick(self):
                return self._draw()
        """
    )
    bad = tmp_path / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(violations_source)
    report = report_for_paths([str(tmp_path / "repro")])
    (report_entry,) = report["functions"]
    assert report_entry["kernel_eligible"] is False
    disq = report_entry["disqualifiers"]
    assert any(d.get("effect") == "RNG" for d in disq)
    chain = next(d["chain"] for d in disq if d.get("effect") == "RNG")
    assert "_draw" in chain


# --------------------------------------------------------------------- #
# Repo gate: the tree is clean and the required kernels certify
# --------------------------------------------------------------------- #


def test_repo_tree_is_simeffect_clean():
    violations = analyze_paths([str(SRC)])
    assert violations == [], "\n".join(v.format() for v in violations)


def test_repo_report_certifies_required_kernels():
    report = report_for_paths([str(SRC / "repro")])
    certified = set(report["certified"])
    required = {
        "host.plb.PLB.lookup",
        "host.tlb.TLB.lookup",
        "host.page_table.PageTable.walk",
        "ssd.ssd_cache.SSDCache.lookup",
    }
    assert required <= certified, f"missing: {required - certified}"
    # Every non-eligible annotated function must state a concrete reason.
    for entry in report["functions"]:
        if not entry["kernel_eligible"]:
            assert entry["disqualifiers"], entry["function"]
            for disq in entry["disqualifiers"]:
                assert "effect" in disq or "unresolved_call" in disq
