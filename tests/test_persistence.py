"""Tests for byte-granular persistence: pmem regions, fences, crashes."""

import pytest

from repro import FlatFlash, create_pmem_region, small_config


@pytest.fixture
def system():
    return FlatFlash(small_config())


@pytest.fixture
def pmem(system):
    return create_pmem_region(system, num_pages=4)


class TestRegionBasics:
    def test_region_pages_have_persist_bit(self, system, pmem):
        for page in range(4):
            pte = system.page_table.lookup(pmem.region.base_vpn + page)
            assert pte.persist

    def test_requires_persist_region(self, system):
        from repro.core.persistence import PersistentRegion

        plain = system.mmap(2)
        with pytest.raises(ValueError):
            PersistentRegion(system, plain)

    def test_size_and_addr(self, pmem):
        assert pmem.size == 4 * 4_096
        assert pmem.addr(10) == pmem.region.base_addr + 10


class TestDurabilityProtocol:
    def test_persist_store_writes_data(self, system, pmem):
        pmem.persist_store(0, 8, b"ledger01")
        assert pmem.load(0, 8) == b"ledger01"

    def test_persist_store_charges_flush_and_posted_write(self, system, pmem):
        cost = pmem.persist_store(0, 64, b"\x00" * 64)
        latency = system.config.latency
        assert cost >= latency.mmio_write_cacheline_ns + latency.clflush_ns

    def test_commit_costs_verify_read(self, system, pmem):
        assert pmem.commit() == system.config.latency.mmio_verify_read_ns

    def test_durable_store_is_store_plus_fence(self, system, pmem):
        cost = pmem.durable_store(0, 8)
        latency = system.config.latency
        assert cost >= (
            latency.mmio_write_cacheline_ns
            + latency.clflush_ns
            + latency.mmio_verify_read_ns
        )

    def test_byte_persist_cheaper_than_page_write(self, system, pmem):
        # The headline claim: a small durable update costs far less than
        # the page-granular path (flash program + DMA).  Warm the page so
        # the measurement excludes the one-time SSD-Cache fill.
        pmem.persist_store(0, 8)
        byte_cost = pmem.durable_store(0, 64)
        latency = system.config.latency
        page_cost = latency.flash_program_page_ns + latency.dma_page_transfer_ns
        assert byte_cost < page_cost

    def test_atomic_store_durable_without_fence(self, system, pmem):
        cost = pmem.atomic_store(0, 8)
        assert cost >= system.config.latency.mmio_read_cacheline_ns
        system.ssd.crash()
        # No explicit commit, yet the atomic survived (non-posted).
        assert pmem.recover_bytes(0, 8) is not None

    def test_clock_advances_for_persist_ops(self, system, pmem):
        before = system.clock.now
        pmem.durable_store(0, 8)
        assert system.clock.now > before


class TestCrashSemantics:
    def test_committed_data_survives_crash(self, system, pmem):
        pmem.persist_store(0, 8, b"COMMITED")
        pmem.commit()
        system.ssd.crash()
        assert pmem.recover_bytes(0, 8) == b"COMMITED"

    def test_unfenced_data_lost_on_crash(self, system, pmem):
        pmem.persist_store(0, 8, b"fenced!!")
        pmem.commit()
        pmem.persist_store(8, 8, b"unfenced")
        system.ssd.crash()
        assert pmem.recover_bytes(0, 8) == b"fenced!!"
        assert pmem.recover_bytes(8, 8) == b"\x00" * 8

    def test_unfenced_overwrite_rolls_back_to_old_value(self, system, pmem):
        pmem.persist_store(0, 8, b"version1")
        pmem.commit()
        pmem.persist_store(0, 8, b"version2")
        system.ssd.crash()
        assert pmem.recover_bytes(0, 8) == b"version1"

    def test_multiple_unfenced_writes_all_roll_back(self, system, pmem):
        pmem.persist_store(0, 4, b"AAAA")
        pmem.commit()
        pmem.persist_store(0, 4, b"BBBB")
        pmem.persist_store(4, 4, b"CCCC")
        pmem.persist_store(0, 4, b"DDDD")
        system.ssd.crash()
        assert pmem.recover_bytes(0, 4) == b"AAAA"
        assert pmem.recover_bytes(4, 4) == b"\x00" * 4

    def test_without_battery_everything_in_cache_dies(self):
        system = FlatFlash(small_config(battery_backed=False))
        pmem = create_pmem_region(system, num_pages=2)
        pmem.persist_store(0, 8, b"volatile")
        pmem.commit()
        system.ssd.crash()
        assert pmem.recover_bytes(0, 8) == b"\x00" * 8

    def test_recover_bytes_rejects_page_crossing(self, pmem):
        with pytest.raises(ValueError):
            pmem.recover_bytes(4_090, 16)


class TestFilePersistenceCounters:
    def test_counters_track_protocol(self, system, pmem):
        pmem.persist_store(0, 8)
        pmem.commit()
        counters = system.stats.counters()
        assert counters["pmem.persist_stores"] == 1
        assert counters["pmem.commits"] == 1
