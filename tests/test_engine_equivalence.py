"""Differential gate for the trace-replay engine (ROADMAP item 1).

Random traces — mixed read/write, multi-thread, skewed and sequential,
promotion-triggering densities — are executed twice against identically
configured systems: once through the scalar ``load``/``store`` loop and
once through :func:`repro.engine.replay`.  Every observable must match
exactly: per-op latencies, stats counters (hit/miss classifications,
promotion decisions), final page-table state, TLB content and order,
DRAM frame state, and the simulated clock.

Two seeded mutants then check the gate has teeth: an off-by-one at a
chunk boundary and a dropped promotion settle must each be caught at the
expected assertion.

The suite-wide sanitizer/domain-tag instrumentation is switched off here
(module fixture): with it on, :func:`repro.engine.guards.fused_blockers`
forces the whole-trace scalar fallback, which is exercised separately in
``test_fallback_under_instrumentation``.
"""

import importlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import DRAMOnly, TraditionalStack, UnifiedMMap
from repro.config import EngineConfig, small_config
from repro.core.hierarchy import FlatFlash
from repro.engine import AccessTrace, replay
from repro.sim import domain_tags, sanitizers

# The package re-exports the replay *function* under the submodule's
# name, so fetch the module itself for monkeypatching internals.
replay_module = importlib.import_module("repro.engine.replay")

SYSTEMS = {
    "FlatFlash": FlatFlash,
    "UnifiedMMap": UnifiedMMap,
    "TraditionalStack": TraditionalStack,
    "DRAMOnly": DRAMOnly,
}
REGION_PAGES = 24


@pytest.fixture(scope="module", autouse=True)
def _plain_simulators():
    """Shadow instrumentation off, so the fused fast path actually runs."""
    previous_sanitizers = sanitizers.set_default_enabled(False)
    previous_tags = domain_tags.set_enabled(False)
    yield
    sanitizers.set_default_enabled(previous_sanitizers)
    domain_tags.set_enabled(previous_tags)


def build_system(kind_name, track_data=False, chunk_ops=64):
    """A small system + one mapped region; tiny chunks exercise chunking."""
    config = small_config(
        track_data=track_data, engine=EngineConfig(enabled=True, chunk_ops=chunk_ops)
    )
    if kind_name == "DRAMOnly":
        config.geometry.dram_pages = REGION_PAGES + 8
    kind = SYSTEMS[kind_name]
    system = kind(config)
    region = system.mmap(REGION_PAGES)
    return system, region


def observable_state(system):
    """Everything the scalar path can have mutated, exactly."""
    page_table = {
        vpn: (pte.domain.name, pte.present, pte.frame_index, pte.ssd_page, pte.persist)
        for vpn, pte in system.page_table._entries.items()
    }
    tlb_order = list(system.tlb._cached.keys())
    frames = [
        (
            frame.index,
            frame.vpn,
            frame.dirty,
            frame.referenced,
            None if frame.data is None else bytes(frame.data),
        )
        for frame in system.dram.frames
    ]
    return {
        "page_table": page_table,
        "tlb": tlb_order,
        "frames": frames,
        "clock": system.clock.now,
        "stats": system.stats.snapshot(),
    }


def run_scalar(system, trace):
    """Reference semantics: one public load/store per trace row."""
    latencies = []
    for addr, size, op, _thread, _ts in trace.rows.tolist():
        if op:
            result = system.store(int(addr), int(size))
        else:
            result = system.load(int(addr), int(size))
        latencies.append(result.latency_ns)
    return latencies


def assert_equivalent(kind_name, trace, track_data=False, chunk_ops=64):
    scalar_system, _ = build_system(kind_name, track_data, chunk_ops)
    engine_system, _ = build_system(kind_name, track_data, chunk_ops)
    scalar_latencies = run_scalar(scalar_system, trace)
    result = replay(engine_system, trace)
    assert result.blockers == [], "fused mode unexpectedly off"
    assert result.latencies.tolist() == scalar_latencies, "latencies diverged"
    scalar_state = observable_state(scalar_system)
    engine_state = observable_state(engine_system)
    for key in scalar_state:
        assert engine_state[key] == scalar_state[key], f"{kind_name} diverged on {key}"
    return result


# --------------------------------------------------------------------- #
# Hypothesis-generated traces
# --------------------------------------------------------------------- #

page = 4096


@st.composite
def traces(draw, max_ops=120):
    """Mixed-shape traces over the mapped region, as (addr, size, op) rows."""
    num_ops = draw(st.integers(min_value=1, max_value=max_ops))
    shape = draw(st.sampled_from(["uniform", "hot", "sequential"]))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    if shape == "uniform":
        addrs = rng.integers(0, REGION_PAGES * page - 128, size=num_ops)
    elif shape == "hot":
        # High page reuse: SSD-resident pages cross FlatFlash's promotion
        # threshold, so in-flight promotions and settles get exercised.
        hot_pages = rng.integers(0, max(2, REGION_PAGES // 8), size=num_ops)
        addrs = hot_pages * page + rng.integers(0, page - 64, size=num_ops)
    else:
        stride = draw(st.sampled_from([8, 64, 256]))
        addrs = (np.arange(num_ops, dtype=np.int64) * stride) % (REGION_PAGES * page - 128)
    sizes = rng.choice([1, 8, 64, 100, 128], size=num_ops)
    ops = rng.integers(0, 2, size=num_ops)
    threads = rng.integers(0, 4, size=num_ops)
    return addrs.astype(np.int64), sizes.astype(np.int64), ops, threads


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    rows=traces(),
    kind_name=st.sampled_from(sorted(SYSTEMS)),
    track_data=st.booleans(),
)
def test_random_traces_equivalent(rows, kind_name, track_data):
    addrs, sizes, ops, threads = rows
    base = build_system(kind_name)[1].addr(0)
    trace = AccessTrace.from_columns(base + addrs, sizes, ops, threads=threads)
    assert_equivalent(kind_name, trace, track_data=track_data)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(chunk_ops=st.integers(min_value=1, max_value=130), seed=st.integers(0, 2**31))
def test_chunk_boundaries_invisible(chunk_ops, seed):
    """Chunk size is an implementation detail: any value replays the same."""
    rng = np.random.default_rng(seed)
    num_ops = 128
    addrs = rng.integers(0, REGION_PAGES * page - 128, size=num_ops).astype(np.int64)
    trace = AccessTrace.interleaved_rw(addrs, 8)
    assert_equivalent("FlatFlash", trace, chunk_ops=chunk_ops)


def test_promotion_decisions_match():
    """Hot SSD pages cross the promotion threshold identically both ways."""
    rng = np.random.default_rng(3)
    hot = rng.integers(0, 3, size=400) * page + rng.integers(0, page - 8, size=400)
    trace = AccessTrace.interleaved_rw(hot.astype(np.int64), 8)
    scalar_system, _ = build_system("FlatFlash")
    engine_system, _ = build_system("FlatFlash")
    run_scalar(scalar_system, trace)
    replay(engine_system, trace)
    promoted_scalar = scalar_system.stats.counters().get("mem.promotions", 0)
    promoted_engine = engine_system.stats.counters().get("mem.promotions", 0)
    assert promoted_scalar == promoted_engine
    assert observable_state(scalar_system) == observable_state(engine_system)


def test_fallback_under_instrumentation():
    """Sanitizers active -> whole-trace scalar fallback, still exact."""
    previous = sanitizers.set_default_enabled(True)
    try:
        rng = np.random.default_rng(5)
        addrs = rng.integers(0, REGION_PAGES * page - 128, size=60).astype(np.int64)
        trace = AccessTrace.interleaved_rw(addrs, 8)
        scalar_system, _ = build_system("FlatFlash")
        engine_system, _ = build_system("FlatFlash")
        scalar_latencies = run_scalar(scalar_system, trace)
        result = replay(engine_system, trace)
        assert result.blockers  # fused mode refused, not silently wrong
        assert result.fused_ops == 0
        assert result.latencies.tolist() == scalar_latencies
        assert observable_state(scalar_system) == observable_state(engine_system)
    finally:
        sanitizers.set_default_enabled(previous)


def test_raising_replay_leaves_scalar_state():
    """An unmapped row raises exactly like scalar, with stats flushed."""
    scalar_system, region = build_system("FlatFlash")
    engine_system, _ = build_system("FlatFlash")
    good = region.addr(0) + np.arange(10, dtype=np.int64) * 8
    unmapped = np.int64(REGION_PAGES * page * 64)
    addrs = np.concatenate([good, [unmapped]])
    trace = AccessTrace.loads(addrs, 8)
    with pytest.raises(KeyError) as scalar_err:
        run_scalar(scalar_system, trace)
    with pytest.raises(KeyError) as engine_err:
        replay(engine_system, trace)
    assert str(scalar_err.value) == str(engine_err.value)
    assert observable_state(scalar_system) == observable_state(engine_system)


# --------------------------------------------------------------------- #
# Seeded mutants: the gate must catch them at the expected assertion
# --------------------------------------------------------------------- #


def test_mutant_chunk_boundary_off_by_one_is_caught(monkeypatch):
    """Dropping the row straddling a chunk boundary must trip the gate."""

    real = replay_module._replay_fused

    def mutant_replay_fused(system, rows, latencies):
        return real(system, rows[:-1], latencies[:-1])

    monkeypatch.setattr(replay_module, "_replay_fused", mutant_replay_fused)
    rng = np.random.default_rng(9)
    addrs = rng.integers(0, REGION_PAGES * page - 128, size=64).astype(np.int64)
    trace = AccessTrace.interleaved_rw(addrs, 8)
    with pytest.raises(AssertionError, match="latencies diverged"):
        assert_equivalent("FlatFlash", trace, chunk_ops=64)


def test_mutant_dropped_promotion_is_caught(monkeypatch):
    """Skipping promotion settles must show up in page-table/frame state."""
    monkeypatch.setattr(FlatFlash, "_settle_promotions", lambda self: None)
    rng = np.random.default_rng(3)
    hot = rng.integers(0, 3, size=400) * page + rng.integers(0, page - 8, size=400)
    trace = AccessTrace.interleaved_rw(hot.astype(np.int64), 8)
    engine_system, _ = build_system("FlatFlash")
    replay(engine_system, trace)
    mutated = observable_state(engine_system)
    monkeypatch.undo()
    reference_system, _ = build_system("FlatFlash")
    replay(reference_system, trace)
    reference = observable_state(reference_system)
    assert mutated != reference  # the suite's state comparison catches it
    assert mutated["page_table"] != reference["page_table"]
