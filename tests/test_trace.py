"""Tests for trace recording, persistence and replay."""

import numpy as np
import pytest

from repro import DRAMOnly, FlatFlash, UnifiedMMap, small_config
from repro.workloads.trace import OP_LOAD, Trace, TraceRecorder, synthetic_trace


def test_append_and_len():
    trace = Trace()
    trace.append_load(0, 64)
    trace.append_store(64, 8)
    assert len(trace) == 2
    assert trace.read_ratio == 0.5


def test_footprint():
    trace = Trace()
    trace.append_load(100, 28)
    assert trace.footprint_bytes == 128
    assert Trace().footprint_bytes == 0


def test_invalid_ops_rejected():
    trace = Trace()
    with pytest.raises(ValueError):
        trace.append_load(-1, 8)
    with pytest.raises(ValueError):
        trace.append_store(0, 0)


def test_save_load_round_trip(tmp_path):
    trace = synthetic_trace(50, 4_096, seed=2)
    path = str(tmp_path / "trace.npz")
    trace.save(path)
    loaded = Trace.load(path)
    assert list(loaded) == list(trace)


def test_load_malformed_rejected(tmp_path):
    path = str(tmp_path / "bad.npz")
    np.savez_compressed(path, ops=np.zeros((3, 2), dtype=np.int64))
    with pytest.raises(ValueError):
        Trace.load(path)


def test_replay_returns_stats():
    trace = synthetic_trace(100, 8 * 4_096, seed=3)
    system = FlatFlash(small_config(track_data=False))
    stats = trace.replay(system)
    assert stats.count == 100


def test_replay_maps_region_for_footprint():
    trace = Trace([(OP_LOAD, 5 * 4_096, 64)])
    system = FlatFlash(small_config(track_data=False))
    trace.replay(system)
    assert system.regions[0].num_pages == 6


def test_replay_region_too_small_rejected():
    trace = Trace([(OP_LOAD, 2 * 4_096, 64)])
    system = FlatFlash(small_config(track_data=False))
    region = system.mmap(1)
    with pytest.raises(ValueError):
        trace.replay(system, region)


def test_same_trace_fair_comparison():
    trace = synthetic_trace(300, 16 * 4_096, read_ratio=0.9, seed=4)
    means = {}
    for cls in (FlatFlash, UnifiedMMap):
        system = cls(small_config(track_data=False))
        means[cls.name] = trace.replay(system).mean
    assert means["FlatFlash"] != means["UnifiedMMap"]  # systems differ...
    # ...but replaying twice on identical systems is exactly reproducible.
    again = trace.replay(FlatFlash(small_config(track_data=False))).mean
    assert again == means["FlatFlash"]


def test_recorder_captures_and_forwards():
    system = FlatFlash(small_config())
    region = system.mmap(4)
    recorder = TraceRecorder(system, region)
    recorder.store(region.addr(64), 8, b"recorded")
    result = recorder.load(region.addr(64), 8)
    assert result.data == b"recorded"
    assert len(recorder.trace) == 2
    # The recorded trace replays on a fresh system.
    replay_stats = recorder.trace.replay(DRAMOnly(small_config()))
    assert replay_stats.count == 2


def test_synthetic_trace_locality():
    hot = synthetic_trace(2_000, 64 * 4_096, locality=0.9, seed=5)
    cold = synthetic_trace(2_000, 64 * 4_096, locality=0.0, seed=5)
    hot_footprint = len({offset for _op, offset, _s in hot})
    cold_footprint = len({offset for _op, offset, _s in cold})
    assert hot_footprint < cold_footprint


def test_synthetic_trace_validation():
    with pytest.raises(ValueError):
        synthetic_trace(10, 4_096, read_ratio=2.0)
    with pytest.raises(ValueError):
        synthetic_trace(10, 4_096, locality=1.0)
    with pytest.raises(ValueError):
        synthetic_trace(10, 32)


def test_pack_ops_normalizes_types():
    from repro.workloads.trace import pack_ops

    packed = pack_ops([(float(OP_LOAD), 64.0, 8.0)])
    assert packed == [(OP_LOAD, 64, 8)]
    assert all(isinstance(v, int) for v in packed[0])


def test_pack_ops_rejects_bad_rows():
    from repro.workloads.trace import pack_ops

    with pytest.raises(ValueError):
        pack_ops([(99, 0, 8)])
    with pytest.raises(ValueError):
        pack_ops([(OP_LOAD, -1, 8)])
    with pytest.raises(ValueError):
        pack_ops([(OP_LOAD, 0, 0)])
