"""Tests for the mini transactional engine and its logging schemes."""

import pytest

from repro import FlatFlash, TraditionalStack, UnifiedMMap, small_config
from repro.apps.database import LoggingScheme, MiniDB, run_oltp
from repro.workloads.oltp import TATP, TPCB, generate_transactions


def make_db(system_cls=FlatFlash, scheme=LoggingScheme.PER_TRANSACTION):
    system = system_cls(small_config(track_data=False))
    return MiniDB(system, scheme=scheme, table_pages=32, log_pages=8)


def test_run_returns_throughput():
    db = make_db()
    txs = generate_transactions(TPCB, 40, table_bytes=db.table.size)
    result = db.run(txs, num_threads=4)
    assert result.transactions == 40
    assert result.throughput_tps > 0
    assert result.system == "FlatFlash"


def test_thread_count_validated():
    db = make_db()
    txs = generate_transactions(TPCB, 4, table_bytes=db.table.size)
    with pytest.raises(ValueError):
        db.run(txs, num_threads=0)


def test_empty_transactions_rejected():
    db = make_db()
    with pytest.raises(ValueError):
        db.run([], num_threads=2)


def test_more_threads_increase_throughput():
    results = {}
    for threads in (1, 8):
        db = make_db()
        txs = generate_transactions(TPCB, 80, table_bytes=db.table.size)
        results[threads] = db.run(txs, num_threads=threads).throughput_tps
    assert results[8] > results[1]


def test_centralized_lock_contends():
    db = make_db(scheme=LoggingScheme.CENTRALIZED)
    txs = generate_transactions(TPCB, 64, table_bytes=db.table.size)
    result = db.run(txs, num_threads=8)
    assert result.log_lock_contention > 0.0


def test_per_transaction_has_no_log_lock():
    db = make_db(scheme=LoggingScheme.PER_TRANSACTION)
    txs = generate_transactions(TPCB, 64, table_bytes=db.table.size)
    result = db.run(txs, num_threads=8)
    assert result.log_lock_contention == 0.0


def test_per_tx_beats_centralized_at_high_threads():
    throughput = {}
    for scheme in LoggingScheme:
        db = make_db(scheme=scheme)
        txs = generate_transactions(TPCB, 160, table_bytes=db.table.size)
        throughput[scheme] = db.run(txs, num_threads=16).throughput_tps
    assert (
        throughput[LoggingScheme.PER_TRANSACTION]
        > throughput[LoggingScheme.CENTRALIZED]
    )


def test_flatflash_commit_has_no_channel_hold():
    db = make_db(FlatFlash)
    software, held, post = db._commit_costs(300)
    assert held == 0
    assert post > 0


def test_block_commit_holds_a_channel():
    db = make_db(UnifiedMMap)
    _software, held, _post = db._commit_costs(300)
    assert held > 0


def test_traditional_pays_more_commit_software():
    trad = make_db(TraditionalStack)
    unified = make_db(UnifiedMMap)
    assert trad._commit_costs(300)[0] > unified._commit_costs(300)[0]


def test_flatflash_commit_cost_scales_with_log_bytes():
    db = make_db(FlatFlash)
    small = db._commit_costs(64)[2]
    large = db._commit_costs(1_024)[2]
    assert large > small


def test_run_oltp_convenience():
    system = FlatFlash(small_config(track_data=False))
    result = run_oltp(system, TATP, num_transactions=40, num_threads=4, table_pages=16)
    assert result.workload == "TATP"
    assert result.threads == 4


def test_commits_recorded():
    db = make_db()
    txs = generate_transactions(TPCB, 12, table_bytes=db.table.size)
    db.run(txs, num_threads=2)
    assert db.system.stats.counters()["db.commits"] == 12


class TestGroupCommitModel:
    def test_small_logs_amortize_channel_hold(self):
        """Tiny records (TATP) pack many per page; big records (TPCC)
        serialize harder on the log channel."""
        db = make_db(UnifiedMMap)
        tatp_held = db._commit_costs(128)[1]
        tpcc_held = db._commit_costs(1_400)[1]
        assert tatp_held < tpcc_held

    def test_group_factor_capped(self):
        db = make_db(UnifiedMMap)
        held_tiny = db._commit_costs(1)[1]
        program = db.system.config.latency.flash_program_page_ns
        assert held_tiny >= program // 16  # at most 16-way grouping

    def test_flatflash_unaffected_by_group_model(self):
        db = make_db(FlatFlash)
        assert db._commit_costs(128)[1] == 0
