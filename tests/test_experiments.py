"""Smoke tests: every experiment driver runs at tiny scale and keeps the
paper's qualitative shape."""

import pytest

from repro.experiments import (
    ablations,
    common,
    fig8,
    fig9,
    fig10,
    fig11_12,
    fig13,
    fig14,
    table2,
    table3,
)


class TestCommon:
    def test_scaled_config_ratios(self):
        config = common.scaled_config(dram_pages=32, ssd_to_dram=128)
        assert config.geometry.ssd_pages == 32 * 128
        assert not config.track_data

    def test_scaled_config_latency_override(self):
        config = common.scaled_config(flash_read_page_ns=5_000)
        assert config.latency.flash_read_page_ns == 5_000

    def test_scaled_config_unknown_field(self):
        with pytest.raises(TypeError):
            common.scaled_config(warp_drive=True)

    def test_build_system_names(self):
        for name in common.SYSTEMS:
            system = common.build_system(name, common.scaled_config(dram_pages=2_048, ssd_to_dram=4))
            assert system.name == name

    def test_build_system_unknown(self):
        with pytest.raises(ValueError):
            common.build_system("MagicStore", common.scaled_config())

    def test_experiment_result_filtering(self):
        result = common.ExperimentResult("x", "y")
        result.add(a=1, b="u")
        result.add(a=2, b="v")
        assert result.column("a") == [1, 2]
        assert result.filtered(b="v")[0]["a"] == 2


class TestDrivers:
    def test_table2_matches_paper_exactly(self):
        result = table2.run()
        for row in result.rows:
            assert row["measured_us"] == row["paper_us"]

    def test_fig8_ordering_shape(self):
        result = fig8.run(ratios=[32], dram_pages=16, num_ops=400, warmup_ops=200)
        flat = result.filtered(system="FlatFlash")[0]
        unified = result.filtered(system="UnifiedMMap")[0]
        assert flat["random_ns"] < unified["random_ns"]

    def test_fig9a_flatflash_wins_gups(self):
        result = fig9.run_fig9a(ratios=[64], dram_pages=16, num_updates=1_500)
        flat = result.filtered(system="FlatFlash")[0]
        unified = result.filtered(system="UnifiedMMap")[0]
        assert flat["mean_update_ns"] < unified["mean_update_ns"]
        assert flat["page_movements"] <= unified["page_movements"]

    def test_fig9b_monotone_in_cache_size(self):
        result = fig9.run_fig9b(
            cache_ratios=[0.001, 0.02], dram_pages=16, num_updates=1_200
        )
        speedups = [row["speedup_vs_unified"] for row in result.rows]
        assert speedups[-1] >= speedups[0]

    def test_fig10_smoke(self):
        result = fig10.run(
            algorithms=["connected-components"],
            graph_names=["twitter-like"],
            dram_ratios=[4],
            cc_iterations=1,
        )
        assert len(result.rows) == 3  # three systems

    def test_fig11_12_smoke(self):
        result = fig11_12.run(
            workload_names=["YCSB-B"], ws_ratios=[8], dram_pages=16, num_ops=1_200
        )
        flat = result.filtered(system="FlatFlash")[0]
        unified = result.filtered(system="UnifiedMMap")[0]
        assert flat["p99_ns"] <= unified["p99_ns"]
        assert flat["page_movements"] <= unified["page_movements"]

    def test_fig13_byte_beats_block_everywhere(self):
        from repro.apps.filesystem import FileSystemKind

        result = fig13.run(
            workloads=["CreateFile"],
            kinds=[FileSystemKind.EXT4, FileSystemKind.BTRFS],
            ops_per_workload=30,
        )
        for row in result.rows:
            assert row["speedup"] > 1.0

    def test_fig14_scaling_smoke(self):
        result = fig14.run_threads(
            workload_names=["TPCB"], thread_counts=[4, 8], transactions_per_thread=25
        )
        flat8 = result.filtered(system="FlatFlash", threads=8)[0]
        unified8 = result.filtered(system="UnifiedMMap", threads=8)[0]
        assert flat8["throughput_tps"] > unified8["throughput_tps"]

    def test_fig14d_smoke(self):
        result = fig14.run_device_latency_sweep(
            latencies_us=[20, 1], threads=8, transactions_per_thread=25
        )
        assert len(result.rows) == 6

    def test_table3_hybrid_wins_perf_per_dollar(self):
        result = table3.run(workloads=["GUPS"])
        assert result.rows[0]["cost_effectiveness"] > 1.0


class TestAblations:
    def test_promotion_policy_traffic_story(self):
        result = ablations.run_promotion_policy(num_ops=1_500, dram_pages=16)
        rows = {row["policy"]: row for row in result.rows}
        assert rows["fixed(1)"]["page_movements"] > rows["adaptive (Alg. 1)"]["page_movements"]

    def test_plb_reduces_stall(self):
        result = ablations.run_plb(num_ops=1_500, dram_pages=16)
        rows = {row["mode"]: row for row in result.rows}
        assert (
            rows["stall on promotion"]["mean_ns"]
            > rows["PLB (off critical path)"]["mean_ns"]
        )

    def test_cacheable_mmio_hot_lines(self):
        result = ablations.run_cacheable_mmio(num_ops=600)
        rows = {row["mode"]: row for row in result.rows}
        assert rows["uncacheable"]["hot_line_ns"] > rows["cacheable (CAPI)"]["hot_line_ns"]

    def test_logging_scheme_sweep(self):
        result = ablations.run_logging_scheme(thread_counts=[2, 8], tx_per_thread=20)
        high = result.filtered(threads=8)[0]
        assert high["per_tx_tps"] >= high["central_tps"]


class TestBreakdownAndInterference:
    def test_breakdown_shares_sum_to_one(self):
        from repro.experiments import breakdown

        result = breakdown.run(dram_pages=16, num_ops=1_200)
        for system in {row["system"] for row in result.rows}:
            share = sum(r["share"] for r in result.filtered(system=system))
            assert share == pytest.approx(1.0, abs=0.01)

    def test_breakdown_baselines_serve_all_from_dram(self):
        from repro.experiments import breakdown

        result = breakdown.run(dram_pages=16, num_ops=1_000)
        for baseline in ("TraditionalStack", "UnifiedMMap"):
            rows = result.filtered(system=baseline)
            assert len(rows) == 1
            assert rows[0]["source"] == "dram"

    def test_breakdown_flatflash_uses_multiple_sources(self):
        from repro.experiments import breakdown

        result = breakdown.run(dram_pages=16, num_ops=1_000)
        sources = {row["source"] for row in result.filtered(system="FlatFlash")}
        assert len(sources) >= 2

    def test_interference_smoke(self):
        from repro.experiments import interference

        result = interference.run(dram_pages=16, num_ops=800)
        rows = {row["system"]: row for row in result.rows}
        assert rows["FlatFlash"]["loaded_mean_ns"] < rows["UnifiedMMap"]["loaded_mean_ns"]

    def test_prefetch_ablation_smoke(self):
        from repro.experiments import ablations

        result = ablations.run_prefetch(num_ops=1_200, dram_pages=16)
        rows = {row["mode"]: row for row in result.rows}
        assert rows["prefetch after 2"]["prefetches"] > 0

    def test_device_tech_smoke(self):
        from repro.experiments import device_tech

        profile = device_tech.PROFILES[1]
        result = device_tech.run(profiles=[profile], num_ops=1_000, dram_pages=16)
        assert all(row["speedup"] > 0 for row in result.rows)

    def test_latency_cdf_monotone_and_flatflash_dominates(self):
        from repro.experiments import fig11_12

        table = fig11_12.run_cdf(num_ops=1_500, dram_pages=16)
        # Parse the rendered rows: each CDF column must be non-decreasing
        # and end at 1.0, and FlatFlash's curve must dominate the others.
        columns = {name: [] for name in ("TraditionalStack", "UnifiedMMap", "FlatFlash")}
        for row in table.rows:
            for index, name in enumerate(columns):
                columns[name].append(float(row[1 + index]))
        for name, series in columns.items():
            assert series == sorted(series), name
            assert series[-1] == pytest.approx(1.0)
        for flat, unified in zip(columns["FlatFlash"], columns["UnifiedMMap"]):
            assert flat >= unified - 1e-9


class TestSummaryOrdering:
    """Rendered summary dicts must iterate in first-appearance order, not
    set order — the parallel sweep's byte-identity depends on it (spawn
    workers run under fresh hash seeds)."""

    def test_fig13_speedup_range_order(self):
        result = fig13.run(ops_per_workload=30, dram_pages=16)
        expected = list(dict.fromkeys(row["filesystem"] for row in result.rows))
        assert list(fig13.speedup_range(result)) == expected

    def test_fig10_speedup_over_order(self):
        result = fig10.run(
            graph_names=["twitter-like"], dram_ratios=[3], pagerank_iterations=1,
            cc_iterations=1,
        )
        expected = list(dict.fromkeys(row["algorithm"] for row in result.rows))
        assert list(fig10.speedup_over(result, "UnifiedMMap")) == expected

    def test_fig14_max_scaling_order(self):
        result = fig14.run_threads(
            workload_names=["TPCB", "TATP"],
            thread_counts=[4],
            transactions_per_thread=20,
        )
        expected = list(dict.fromkeys(row["workload"] for row in result.rows))
        assert list(fig14.max_scaling(result, "UnifiedMMap")) == expected
