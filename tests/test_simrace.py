"""simrace rule tests: one violating and one clean fixture per rule.

Mirrors ``tests/test_simlint.py``: every SR rule gets a minimal process
fixture that fires it and a minimal fixture that must stay quiet, plus
suppression, CLI, shared-JSON-schema, and repo-is-clean tests.
"""

import json
import pathlib
import subprocess
import sys
import textwrap

from repro.analysis.simrace import RULES, analyze_paths, analyze_source


def codes(violations):
    return [v.code for v in violations]


def check(snippet, path="repro/sim/fake.py", select=None):
    return analyze_source(textwrap.dedent(snippet), path=path, select=select)


# --------------------------------------------------------------------- #
# SR000: syntax errors
# --------------------------------------------------------------------- #


def test_sr000_syntax_error_is_reported_not_raised():
    violations = check("def broken(:\n")
    assert codes(violations) == ["SR000"]
    assert violations[0].line == 1


# --------------------------------------------------------------------- #
# SR001: read-modify-write straddling a yield without a lock
# --------------------------------------------------------------------- #


def test_sr001_flags_rmw_across_yield():
    violations = check(
        """
        def worker(stats, lock):
            value = stats.hits
            yield Delay(10)
            stats.hits = value + 1
        """,
        select=["SR001"],
    )
    assert codes(violations) == ["SR001"]
    assert violations[0].line == 5  # the write completes the stale RMW
    assert "stats.hits" in violations[0].message
    assert "line 3" in violations[0].message  # ...and the read is cited


def test_sr001_clean_when_lock_held_across_yield():
    violations = check(
        """
        def worker(stats, lock):
            yield Acquire(lock)
            value = stats.hits
            yield Delay(10)
            stats.hits = value + 1
            yield Release(lock)
        """,
        select=["SR001"],
    )
    assert violations == []


def test_sr001_clean_same_slice_rmw():
    violations = check(
        """
        def worker(stats, lock):
            yield Delay(10)
            stats.hits = stats.hits + 1
            stats.misses += 1
        """,
        select=["SR001"],
    )
    assert violations == []


def test_sr001_flags_rmw_through_helper():
    # Interprocedural: the read happens inside a helper the process calls.
    violations = check(
        """
        def _read(stats):
            return stats.hits

        def worker(stats, lock):
            value = _read(stats)
            yield Delay(10)
            stats.hits = value + 1
        """,
        select=["SR001"],
    )
    assert codes(violations) == ["SR001"]


def test_sr001_lock_released_before_yield_still_flags():
    # Holding the lock for the read only does not protect the RMW.
    violations = check(
        """
        def worker(stats, lock):
            yield Acquire(lock)
            value = stats.hits
            yield Release(lock)
            yield Delay(10)
            stats.hits = value + 1
        """,
        select=["SR001"],
    )
    assert codes(violations) == ["SR001"]


# --------------------------------------------------------------------- #
# SR002: lock leaked on some path
# --------------------------------------------------------------------- #


def test_sr002_flags_return_with_lock_held():
    violations = check(
        """
        def worker(lock, fast):
            yield Acquire(lock)
            if fast:
                return
            yield Delay(10)
            yield Release(lock)
        """,
        select=["SR002"],
    )
    assert codes(violations) == ["SR002"]
    assert violations[0].line == 3  # anchored at the leaking Acquire


def test_sr002_clean_correlated_conditions():
    # Acquire and Release gated on the same pure condition: balanced.
    violations = check(
        """
        def worker(lock, centralized):
            if centralized:
                yield Acquire(lock)
            yield Delay(10)
            if centralized:
                yield Release(lock)
        """,
        select=["SR002"],
    )
    assert violations == []


def test_sr002_clean_release_on_every_path():
    violations = check(
        """
        def worker(lock, fast):
            yield Acquire(lock)
            if fast:
                yield Release(lock)
                return
            yield Delay(10)
            yield Release(lock)
        """,
        select=["SR002"],
    )
    assert violations == []


def test_sr002_raise_paths_are_exempt():
    # The scheduler's error cleanup releases held locks; a raising path
    # is not a leak.
    violations = check(
        """
        def worker(lock, bad):
            yield Acquire(lock)
            if bad:
                raise ValueError("bad")
            yield Release(lock)
        """,
        select=["SR002"],
    )
    assert violations == []


# --------------------------------------------------------------------- #
# SR003: inconsistent lock acquisition order
# --------------------------------------------------------------------- #


def test_sr003_flags_reversed_lock_order():
    violations = check(
        """
        def forward(a, b):
            yield Acquire(a)
            yield Acquire(b)
            yield Release(b)
            yield Release(a)

        def backward(a, b):
            yield Acquire(b)
            yield Acquire(a)
            yield Release(a)
            yield Release(b)
        """,
        select=["SR003"],
    )
    assert codes(violations) == ["SR003"]
    assert "deadlock" in violations[0].message.lower()


def test_sr003_clean_consistent_order():
    violations = check(
        """
        def one(a, b):
            yield Acquire(a)
            yield Acquire(b)
            yield Release(b)
            yield Release(a)

        def two(a, b):
            yield Acquire(a)
            yield Acquire(b)
            yield Release(b)
            yield Release(a)
        """,
        select=["SR003"],
    )
    assert violations == []


def test_sr003_sees_through_spawn_bindings():
    # The same generator spawned with swapped lock arguments races itself.
    violations = check(
        """
        def worker(first, second):
            yield Acquire(first)
            yield Acquire(second)
            yield Release(second)
            yield Release(first)

        def main(sim, log_lock, page_lock):
            sim.spawn(worker(log_lock, page_lock))
            sim.spawn(worker(page_lock, log_lock))
        """,
        select=["SR003"],
    )
    assert codes(violations) == ["SR003"]


# --------------------------------------------------------------------- #
# SR004: unlocked write to an object shared by multiple processes
# --------------------------------------------------------------------- #


def test_sr004_flags_loop_spawn_shared_write():
    violations = check(
        """
        def worker(stats):
            yield Delay(10)
            stats.hits = stats.hits + 1

        def main(sim, stats):
            for _ in range(4):
                sim.spawn(worker(stats))
        """,
        select=["SR004"],
    )
    assert codes(violations) == ["SR004"]
    assert violations[0].line == 4  # the unlocked write


def test_sr004_clean_per_instance_argument():
    # Each spawn passes its own object (the loop variable): not shared.
    violations = check(
        """
        def worker(stats):
            yield Delay(10)
            stats.hits = stats.hits + 1

        def main(sim, all_stats):
            for stats in all_stats:
                sim.spawn(worker(stats))
        """,
        select=["SR004"],
    )
    assert violations == []


def test_sr004_clean_when_write_is_locked():
    violations = check(
        """
        def worker(stats, lock):
            yield Acquire(lock)
            stats.hits = stats.hits + 1
            yield Release(lock)

        def main(sim, stats, lock):
            for _ in range(4):
                sim.spawn(worker(stats, lock))
        """,
        select=["SR004"],
    )
    assert violations == []


def test_sr004_clean_single_spawn():
    violations = check(
        """
        def worker(stats):
            yield Delay(10)
            stats.hits = stats.hits + 1

        def main(sim, stats):
            sim.spawn(worker(stats))
        """,
        select=["SR004"],
    )
    assert violations == []


# --------------------------------------------------------------------- #
# Suppressions
# --------------------------------------------------------------------- #


def test_suppression_comment_silences_one_code():
    violations = check(
        """
        def worker(stats, lock):
            value = stats.hits
            yield Delay(10)
            stats.hits = value + 1  # simrace: disable=SR001
        """,
    )
    assert violations == []


def test_suppression_without_codes_silences_everything():
    violations = check(
        """
        def worker(lock, fast):
            yield Acquire(lock)  # simrace: disable
            if fast:
                return
            yield Release(lock)
        """,
    )
    assert violations == []


def test_suppression_for_other_code_does_not_silence():
    violations = check(
        """
        def worker(stats, lock):
            value = stats.hits
            yield Delay(10)
            stats.hits = value + 1  # simrace: disable=SR004
        """,
    )
    assert codes(violations) == ["SR001"]


def test_simlint_suppression_does_not_silence_simrace():
    violations = check(
        """
        def worker(stats, lock):
            value = stats.hits
            yield Delay(10)
            stats.hits = value + 1  # simlint: disable
        """,
    )
    assert codes(violations) == ["SR001"]


# --------------------------------------------------------------------- #
# Catalogue and non-process files
# --------------------------------------------------------------------- #


def test_rule_catalogue_is_complete():
    assert [rule.code for rule in RULES] == ["SR001", "SR002", "SR003", "SR004"]
    for rule in RULES:
        assert rule.title
        assert rule.explanation


def test_files_without_processes_are_skipped():
    violations = check(
        """
        def plain(a, b):
            return a + b

        def numbers():
            yield 1
            yield 2
        """,
    )
    assert violations == []


# --------------------------------------------------------------------- #
# CLI + shared JSON schema
# --------------------------------------------------------------------- #

_SR001_BAD = textwrap.dedent(
    """
    def worker(stats, lock):
        value = stats.hits
        yield Delay(10)
        stats.hits = value + 1
    """
)


def _run_cli(module, args, tmp_path):
    return subprocess.run(
        [sys.executable, "-m", module, *args],
        capture_output=True,
        text=True,
        cwd=tmp_path,
        env={"PYTHONPATH": str(pathlib.Path(__file__).resolve().parents[1] / "src")},
    )


def test_cli_exits_nonzero_on_violation(tmp_path):
    bad = tmp_path / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(_SR001_BAD)
    result = _run_cli("repro.analysis.simrace", ["repro"], tmp_path)
    assert result.returncode == 1
    assert "SR001" in result.stdout


def test_cli_exits_zero_on_clean_tree(tmp_path):
    good = tmp_path / "repro" / "sim" / "good.py"
    good.parent.mkdir(parents=True)
    good.write_text("def worker(lock):\n    yield Delay(10)\n")
    result = _run_cli("repro.analysis.simrace", ["repro"], tmp_path)
    assert result.returncode == 0
    assert "clean" in result.stdout


def test_cli_list_rules(tmp_path):
    result = _run_cli("repro.analysis.simrace", ["--list-rules"], tmp_path)
    assert result.returncode == 0
    for code in ("SR001", "SR004"):
        assert code in result.stdout


def test_cli_rejects_unknown_select(tmp_path):
    result = _run_cli("repro.analysis.simrace", ["--select", "SR999", "."], tmp_path)
    assert result.returncode == 2
    assert "SR999" in result.stderr


def _assert_findings_schema(payload, tool):
    assert payload["tool"] == tool
    assert payload["schema_version"] == 1
    assert payload["count"] == len(payload["findings"])
    assert isinstance(payload["files_checked"], int)
    for finding in payload["findings"]:
        assert set(finding) == {"path", "line", "col", "code", "message"}


def test_json_output_shared_schema(tmp_path):
    bad = tmp_path / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    # One file violating both tools: a mutable default (SL008) on a
    # process whose RMW straddles a yield (SR001).
    bad.write_text(
        "def worker(stats, lock, items=[]):\n"
        "    value = stats.hits\n"
        "    yield Delay(10)\n"
        "    stats.hits = value + 1\n"
    )
    race = _run_cli("repro.analysis.simrace", ["--json", "repro"], tmp_path)
    lint = _run_cli("repro.analysis.simlint", ["--json", "repro"], tmp_path)
    assert race.returncode == 1
    assert lint.returncode == 1
    race_payload = json.loads(race.stdout)
    lint_payload = json.loads(lint.stdout)
    _assert_findings_schema(race_payload, "simrace")
    _assert_findings_schema(lint_payload, "simlint")
    assert [f["code"] for f in race_payload["findings"]] == ["SR001"]
    assert "SL008" in [f["code"] for f in lint_payload["findings"]]


def test_json_output_clean_tree_exits_zero(tmp_path):
    good = tmp_path / "repro" / "sim" / "good.py"
    good.parent.mkdir(parents=True)
    good.write_text("def worker(lock):\n    yield Delay(10)\n")
    result = _run_cli("repro.analysis.simrace", ["--json", "repro"], tmp_path)
    assert result.returncode == 0
    payload = json.loads(result.stdout)
    assert payload["count"] == 0
    assert payload["findings"] == []


def test_repo_tree_is_simrace_clean():
    src = pathlib.Path(__file__).resolve().parents[1] / "src"
    violations = analyze_paths([str(src)])
    assert violations == [], "\n".join(v.format() for v in violations)
