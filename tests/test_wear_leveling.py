"""Tests for wear statistics and static wear leveling in the FTL."""

import pytest

from repro.config import LatencyConfig
from repro.ssd.flash import FlashArray
from repro.ssd.ftl import PageFTL


def make_ftl(blocks=8, pages=4, wear_level_threshold=0):
    flash = FlashArray(blocks, pages, 64, LatencyConfig(), track_data=True)
    ftl = PageFTL(
        flash, overprovision=0.25, wear_level_threshold=wear_level_threshold
    )
    return flash, ftl


def churn(ftl, hot_lpns, rounds):
    for _ in range(rounds):
        for lpn in hot_lpns:
            ftl.write(lpn, None)


def test_wear_stats_shape():
    flash, ftl = make_ftl()
    ftl.write(0, None)
    stats = ftl.wear_stats()
    assert set(stats) == {"min", "max", "mean", "spread"}
    assert stats["spread"] == stats["max"] - stats["min"]


def test_negative_threshold_rejected():
    flash = FlashArray(4, 4, 64, LatencyConfig())
    with pytest.raises(ValueError):
        PageFTL(flash, wear_level_threshold=-1)


def test_no_leveling_when_disabled():
    flash, ftl = make_ftl(wear_level_threshold=0)
    # Cold data in the first block, then heavy hot churn.
    for lpn in range(8, 12):
        ftl.write(lpn, bytes([lpn]) * 64)
    churn(ftl, range(3), rounds=60)
    assert ftl.stats.counters()["ftl.wear_levelings"] == 0


def test_leveling_triggers_and_moves_cold_block():
    flash, ftl = make_ftl(wear_level_threshold=4)
    cold = {lpn: bytes([lpn]) * 64 for lpn in range(8, 12)}
    for lpn, payload in cold.items():
        ftl.write(lpn, payload)
    churn(ftl, range(3), rounds=80)
    assert ftl.stats.counters()["ftl.wear_levelings"] >= 1
    # Cold data is intact after relocation.
    for lpn, payload in cold.items():
        _ppn, data, _ = ftl.read(lpn)
        assert data == payload


def test_leveling_reduces_wear_spread():
    spreads = {}
    for threshold in (0, 4):
        flash, ftl = make_ftl(wear_level_threshold=threshold)
        for lpn in range(8, 12):
            ftl.write(lpn, None)
        churn(ftl, range(3), rounds=80)
        spreads[threshold] = ftl.wear_stats()["spread"]
    assert spreads[4] < spreads[0]


def test_leveling_fires_relocate_hooks():
    flash, ftl = make_ftl(wear_level_threshold=4)
    moves = []
    ftl.add_relocate_hook(lambda lpn, old, new: moves.append(lpn))
    for lpn in range(8, 12):
        ftl.write(lpn, None)
    churn(ftl, range(3), rounds=80)
    assert any(lpn >= 8 for lpn in moves)  # cold lpns were relocated


def test_victim_tie_break_prefers_less_worn_block():
    flash, ftl = make_ftl(blocks=6, pages=2)
    # Two fully-invalid blocks with different erase counts.
    ftl.write(0, None)
    ftl.write(1, None)  # block 0 full
    ftl.write(2, None)
    ftl.write(3, None)  # block 1 full
    for lpn in range(4):
        ftl.write(lpn, None)  # invalidate both blocks
    flash.blocks[0].erase_count = 5  # pretend block 0 is worn
    victim = ftl.select_victim()
    assert victim == 1
