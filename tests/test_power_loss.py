"""Power-loss injection, restart, and crash-recovery invariants.

Includes the property-based sweep (hypothesis) of power-loss instants
across a WAL commit: at no instant may recovery observe a torn commit —
the recovered log is always an exact prefix of what was appended, and
every acknowledged (fenced) append survives.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.flatfs import FlatFS
from repro.apps.wal import WriteAheadLog
from repro.config import small_config
from repro.core.hierarchy import FlatFlash
from repro.core.persistence import PersistentRegion, create_pmem_region
from repro.faults.power import PowerLossInjector, restart_system
from repro.faults.recovery import (
    check_flatfs,
    check_log_monotonic,
    check_wal_prefix,
)
from repro.sim.clock import PowerLossTriggered, SimClock


# --------------------------------------------------------------------- #
# Clock deadline semantics
# --------------------------------------------------------------------- #


def test_advance_past_deadline_raises_and_disarms():
    clock = SimClock()
    clock.arm_power_loss(100)
    clock.advance(99)
    with pytest.raises(PowerLossTriggered) as exc:
        clock.advance(5)
    assert exc.value.at_ns == 100
    assert clock.power_deadline is None  # disarmed before raising
    clock.advance(1_000)  # crash handling may keep advancing freely


def test_advance_to_honors_deadline():
    clock = SimClock()
    clock.arm_power_loss(50)
    with pytest.raises(PowerLossTriggered):
        clock.advance_to(60)


def test_disarm_cancels():
    clock = SimClock()
    clock.arm_power_loss(10)
    clock.disarm_power_loss()
    clock.advance(100)
    assert clock.now == 100


def test_reset_clears_deadline():
    clock = SimClock()
    clock.arm_power_loss(10)
    clock.reset()
    clock.advance(100)
    assert clock.now == 100


def test_injector_reports_untripped_run():
    system = FlatFlash(small_config(track_data=True))
    injector = PowerLossInjector(system, 10**15)
    assert injector.run(lambda: system.clock.advance(10)) is False
    assert injector.tripped_at_ns is None
    assert system.clock.power_deadline is None


# --------------------------------------------------------------------- #
# Restart: surviving image, rebuilt address space
# --------------------------------------------------------------------- #


def test_restart_preserves_durable_bytes_and_addresses():
    system = FlatFlash(small_config(track_data=True))
    pmem = create_pmem_region(system, 2, name="surv")
    pmem.durable_store(100, 8, b"ABCDEFGH")
    plain = system.mmap(2, name="volatile")
    system.store(plain.addr(0), 4, b"wxyz")
    restarted = restart_system(system)
    # Same region descriptors, same virtual addresses, fresh host state.
    assert restarted.regions == system.regions
    assert restarted.clock.now == 0
    again = PersistentRegion(restarted, pmem.region)
    assert again.recover_bytes(100, 8) == b"ABCDEFGH"
    # The plain region is still mapped and readable after restart.
    assert restarted.load(plain.addr(0), 4).latency_ns > 0


def test_restart_drops_unfenced_posted_writes():
    system = FlatFlash(small_config(track_data=True))
    pmem = create_pmem_region(system, 1, name="unfenced")
    pmem.durable_store(0, 4, b"OLD!")
    pmem.persist_store(0, 4, b"NEW!")  # posted, never fenced
    restarted = restart_system(system)
    again = PersistentRegion(restarted, pmem.region)
    assert again.recover_bytes(0, 4) == b"OLD!"


# --------------------------------------------------------------------- #
# Property: no torn WAL commit at any power-loss instant (satellite)
# --------------------------------------------------------------------- #

_PAYLOADS = [bytes([index]) * (8 + 3 * index) for index in range(10)]


def _wal_workload_span():
    system = FlatFlash(small_config(track_data=True))
    wal = WriteAheadLog.create(system, num_pages=2, name="span")
    for payload in _PAYLOADS:
        wal.append(payload)
    return system.clock.now


_SPAN = _wal_workload_span()


@settings(deadline=None, max_examples=40)
@given(st.integers(min_value=1, max_value=_SPAN))
def test_power_loss_never_tears_a_wal_commit(at_ns):
    system = FlatFlash(small_config(track_data=True))
    wal = WriteAheadLog.create(system, num_pages=2, name="prop")
    completed = []

    def workload():
        for payload in _PAYLOADS:
            wal.append(payload)  # fence=True: durable once append returns
            completed.append(payload)

    tripped = PowerLossInjector(system, at_ns).run(workload)
    if not tripped:
        assert completed == _PAYLOADS
        return
    restarted = restart_system(system)
    recovered = WriteAheadLog(
        PersistentRegion(restarted, wal.pmem.region)
    ).recover()
    assert check_wal_prefix(_PAYLOADS, recovered) == []
    # Every acknowledged append must have survived the crash.
    assert len(recovered) >= len(completed)


@settings(deadline=None, max_examples=15)
@given(st.integers(min_value=1, max_value=_SPAN))
def test_recovered_log_can_continue_appending(at_ns):
    system = FlatFlash(small_config(track_data=True))
    wal = WriteAheadLog.create(system, num_pages=2, name="cont")

    def workload():
        for payload in _PAYLOADS:
            wal.append(payload)

    if not PowerLossInjector(system, at_ns).run(workload):
        return
    restarted = restart_system(system)
    again = WriteAheadLog(PersistentRegion(restarted, wal.pmem.region))
    prefix = again.recover()
    again.append(b"post-crash")
    assert again.records() == prefix + [b"post-crash"]


def test_monotonic_log_survives_midstream_loss():
    import struct

    system = FlatFlash(small_config(track_data=True))
    wal = WriteAheadLog.create(system, num_pages=2, name="mono")

    def workload():
        for sequence in range(12):
            wal.append(struct.pack("<Q", sequence))

    target = FlatFlash(small_config(track_data=True))
    probe = WriteAheadLog.create(target, num_pages=2, name="probe")
    for sequence in range(12):
        probe.append(struct.pack("<Q", sequence))
    midpoint = target.clock.now // 2

    assert PowerLossInjector(system, midpoint).run(workload)
    restarted = restart_system(system)
    recovered = WriteAheadLog(
        PersistentRegion(restarted, wal.pmem.region)
    ).recover()
    assert check_log_monotonic(recovered) == []
    assert 0 < len(recovered) < 12


# --------------------------------------------------------------------- #
# FlatFS power loss: fsck clean after redo recovery
# --------------------------------------------------------------------- #


def _flatfs_ops(fs):
    fs.mkdir("/d")
    fs.create("/d/a")
    fs.write_file("/d/a", b"abc" * 200)
    fs.create("/top")
    fs.link("/d/a", "/hard")
    fs.rename("/top", "/d/top")
    fs.unlink("/hard")
    fs.mkdir("/d/e")
    fs.create("/d/e/f")
    fs.unlink("/d/top")


def _flatfs_span():
    system = FlatFlash(small_config(track_data=True))
    fs = FlatFS(system, num_inodes=16, data_blocks=16)
    start = system.clock.now
    _flatfs_ops(fs)
    return start, system.clock.now


@pytest.mark.parametrize("fraction", [1, 3, 7, 12, 19, 23])
def test_flatfs_fsck_clean_after_power_loss(fraction):
    start, end = _flatfs_span()
    at_ns = start + max(1, ((end - start) * fraction) // 24)
    system = FlatFlash(small_config(track_data=True))
    fs = FlatFS(system, num_inodes=16, data_blocks=16)
    tripped = PowerLossInjector(system, at_ns).run(lambda: _flatfs_ops(fs))
    assert tripped  # all sampled instants sit inside the op stream
    restarted = restart_system(system)
    recovered = FlatFS.reattach(restarted, fs)
    recovered.recover()
    assert check_flatfs(recovered) == []
    # The namespace keeps working post-recovery.
    recovered.create("/after-crash")
    assert recovered.exists("/after-crash")
    assert recovered.fsck() == []
