"""End-to-end crash-consistency integration: a bank ledger on FlatFlash.

This is the paper's §3.5 story exercised as one system: account balances
live in a persistent region, every transfer first appends a durable WAL
record (byte-granular, fenced), then applies the balance updates with
posted (un-fenced) stores.

One subtlety makes naive redo logging wrong here: the write-verify read is
a *device-global* fence, so the WAL append of transfer N+1 also makes
transfer N's posted balance updates durable.  Replaying the whole log over
the balances would then double-apply them.  The ledger therefore stores an
``applied-sequence`` next to each balance (updated atomically in one posted
write) and recovery replays only records newer than each account's applied
sequence — the classic idempotent-redo discipline.

Invariants checked at every possible crash point:

* total money is conserved,
* every balance equals the executed prefix of transfers.
"""

import struct

from hypothesis import given, settings, strategies as st

from repro import FlatFlash, create_pmem_region, small_config
from repro.apps.wal import WriteAheadLog

ACCOUNTS = 8
INITIAL = 1_000
_RECORD = struct.Struct("<QHHq")  # seq, from, to, amount
_SLOT = struct.Struct("<qQ")  # balance, applied seq


class MiniBank:
    """Crash-consistent transfers: durable WAL first, idempotent redo."""

    def __init__(self, system: FlatFlash) -> None:
        self.system = system
        self.ledger = create_pmem_region(system, num_pages=1, name="balances")
        self.wal = WriteAheadLog.create(system, num_pages=2, name="bank-wal")
        self._seq = 0
        for account in range(ACCOUNTS):
            self._write_slot(account, INITIAL, 0)
        self.ledger.commit()  # the initial checkpoint is durable

    # ------------------------------------------------------------------ #
    # Ledger slots (balance + applied sequence, one atomic posted write)
    # ------------------------------------------------------------------ #

    def _write_slot(self, account: int, balance: int, seq: int) -> None:
        self.ledger.persist_store(
            account * _SLOT.size, _SLOT.size, _SLOT.pack(balance, seq)
        )

    def _read_slot(self, account: int):
        raw = self.ledger.load(account * _SLOT.size, _SLOT.size)
        return _SLOT.unpack(raw)

    def _read_slot_recovered(self, account: int):
        raw = self.ledger.recover_bytes(account * _SLOT.size, _SLOT.size)
        return _SLOT.unpack(raw)

    def balance(self, account: int) -> int:
        return self._read_slot(account)[0]

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #

    def transfer(self, source: int, target: int, amount: int) -> None:
        if source == target or amount == 0:
            return  # no-op: nothing to log or apply
        self._seq += 1
        # 1. Durable intent record (fenced append).
        self.wal.append(_RECORD.pack(self._seq, source, target, amount))
        # 2. Posted, un-fenced balance updates tagged with the sequence.
        balance, _ = self._read_slot(source)
        self._write_slot(source, balance - amount, self._seq)
        balance, _ = self._read_slot(target)
        self._write_slot(target, balance + amount, self._seq)

    def checkpoint(self) -> None:
        """Fence the ledger and truncate the log."""
        self.ledger.commit()
        self.wal.truncate()

    def recover(self) -> dict:
        """Post-crash state: durable ledger + idempotent WAL redo."""
        slots = {
            account: list(self._read_slot_recovered(account))
            for account in range(ACCOUNTS)
        }
        for payload in self.wal.recover():
            seq, source, target, amount = _RECORD.unpack(payload)
            if slots[source][1] < seq:
                slots[source][0] -= amount
                slots[source][1] = seq
            if slots[target][1] < seq:
                slots[target][0] += amount
                slots[target][1] = seq
        return {account: slot[0] for account, slot in slots.items()}


def fresh_bank() -> MiniBank:
    return MiniBank(FlatFlash(small_config()))


def test_transfers_visible_before_crash():
    bank = fresh_bank()
    bank.transfer(0, 1, 250)
    assert bank.balance(0) == 750
    assert bank.balance(1) == 1_250


def test_recovery_replays_wal_over_checkpoint():
    bank = fresh_bank()
    bank.transfer(0, 1, 100)
    bank.transfer(1, 2, 50)
    bank.system.ssd.crash()
    balances = bank.recover()
    assert balances[0] == 900
    assert balances[1] == 1_050
    assert balances[2] == 1_050


def test_checkpoint_makes_balances_durable_without_wal():
    bank = fresh_bank()
    bank.transfer(0, 1, 300)
    bank.checkpoint()
    bank.system.ssd.crash()
    balances = bank.recover()
    assert balances[0] == 700
    assert balances[1] == 1_300


def test_total_conserved_across_crash():
    bank = fresh_bank()
    bank.transfer(3, 4, 17)
    bank.transfer(4, 5, 400)
    bank.transfer(5, 3, 1)
    bank.system.ssd.crash()
    assert sum(bank.recover().values()) == ACCOUNTS * INITIAL


def test_self_transfer_is_idempotent_too():
    bank = fresh_bank()
    bank.transfer(2, 2, 99)
    bank.system.ssd.crash()
    assert bank.recover()[2] == INITIAL


transfer_lists = st.lists(
    st.tuples(
        st.integers(0, ACCOUNTS - 1),
        st.integers(0, ACCOUNTS - 1),
        st.integers(1, 500),
    ),
    min_size=1,
    max_size=25,
)


@settings(deadline=None, max_examples=25)
@given(transfer_lists, st.integers(0, 25), st.booleans())
def test_crash_anywhere_preserves_invariants(transfers, crash_after, mid_checkpoint):
    """Crash after any prefix of transfers (optionally with a checkpoint in
    the middle): recovery must reconstruct exactly the executed prefix."""
    bank = fresh_bank()
    executed = []
    for index, (source, target, amount) in enumerate(transfers):
        if index == crash_after:
            break
        if mid_checkpoint and index == len(transfers) // 2:
            bank.checkpoint()
        bank.transfer(source, target, amount)
        executed.append((source, target, amount))
    bank.system.ssd.crash()
    balances = bank.recover()
    expected = {account: INITIAL for account in range(ACCOUNTS)}
    for source, target, amount in executed:
        if source != target:
            expected[source] -= amount
            expected[target] += amount
    assert balances == expected
    assert sum(balances.values()) == ACCOUNTS * INITIAL
