"""Tests for the host bridge: routing and persist-bit tagging."""

import pytest

from repro.host.bridge import HostBridge
from repro.interconnect.pcie import BarWindow


@pytest.fixture
def bridge():
    return HostBridge(
        dram_bytes=16 * 4_096,
        ssd_bar=BarWindow(base=1 << 40, size=64 * 4_096),
        page_size=4_096,
        plb_entries=8,
    )


def test_routes_dram_addresses(bridge):
    target, page, offset, persist = bridge.route(3 * 4_096 + 17)
    assert target == "dram"
    assert page == 3
    assert offset == 17
    assert not persist


def test_routes_ssd_addresses(bridge):
    addr = (1 << 40) + 5 * 4_096 + 100
    target, page, offset, _persist = bridge.route(addr)
    assert target == "ssd"
    assert page == 5
    assert offset == 100


def test_unmapped_address_raises(bridge):
    with pytest.raises(ValueError):
        bridge.route(17 * 4_096)  # between DRAM top and BAR base


def test_persist_bit_round_trip(bridge):
    addr = (1 << 40) + 4_096
    tagged = bridge.tag_persist(addr, True)
    assert tagged != addr
    untagged, persist = bridge.split_persist(tagged)
    assert untagged == addr
    assert persist


def test_persist_bit_travels_through_route(bridge):
    addr = bridge.tag_persist((1 << 40) + 4_096, True)
    target, page, _offset, persist = bridge.route(addr)
    assert target == "ssd"
    assert page == 1
    assert persist


def test_untagged_address_not_persist(bridge):
    _addr, persist = bridge.split_persist(123)
    assert not persist


def test_dram_addr_builder(bridge):
    assert bridge.dram_addr(2, 10) == 2 * 4_096 + 10
    with pytest.raises(ValueError):
        bridge.dram_addr(99)


def test_ssd_addr_builder(bridge):
    assert bridge.ssd_addr(3) == (1 << 40) + 3 * 4_096
    with pytest.raises(ValueError):
        bridge.ssd_addr(64)


def test_bar_overlapping_dram_rejected():
    with pytest.raises(ValueError):
        HostBridge(
            dram_bytes=1 << 41,
            ssd_bar=BarWindow(base=1 << 40, size=4_096),
            page_size=4_096,
            plb_entries=4,
        )


def test_routing_counters(bridge):
    bridge.route(0)
    bridge.route((1 << 40))
    counters = bridge.stats.counters()
    assert counters["bridge.requests_to_dram"] == 1
    assert counters["bridge.requests_to_ssd"] == 1


def test_plb_attached(bridge):
    assert bridge.plb.capacity == 8
