"""Tests for graph generation and CSR structure."""

import numpy as np
import pytest

from repro.workloads.graphs import (
    CSRGraph,
    connected_pairs_graph,
    power_law_degrees,
    power_law_graph,
)


def test_power_law_graph_valid_csr():
    graph = power_law_graph(500, avg_degree=6, seed=1)
    graph.validate()
    assert graph.num_vertices == 500
    assert graph.num_edges == graph.indptr[-1]


def test_average_degree_close_to_requested():
    graph = power_law_graph(2_000, avg_degree=10, seed=2)
    assert graph.num_edges / graph.num_vertices == pytest.approx(10, rel=0.3)


def test_degree_distribution_is_skewed():
    graph = power_law_graph(2_000, avg_degree=10, seed=3)
    in_degrees = np.bincount(graph.indices, minlength=graph.num_vertices)
    # Heavy tail: the top vertex collects far more than the mean.
    assert in_degrees.max() > 10 * in_degrees.mean()


def test_neighbors_and_degree():
    graph = power_law_graph(100, avg_degree=4, seed=4)
    vertex = int(np.argmax(np.diff(graph.indptr)))
    assert graph.degree(vertex) == len(graph.neighbors(vertex))


def test_determinism_by_seed():
    a = power_law_graph(300, avg_degree=5, seed=9)
    b = power_law_graph(300, avg_degree=5, seed=9)
    assert np.array_equal(a.indices, b.indices)
    c = power_law_graph(300, avg_degree=5, seed=10)
    assert not np.array_equal(a.indices, c.indices)


def test_power_law_degrees_bounds():
    rng = np.random.default_rng(0)
    degrees = power_law_degrees(1_000, 8.0, 2.1, rng)
    assert degrees.min() >= 1
    assert degrees.mean() == pytest.approx(8.0, rel=0.35)


def test_power_law_parameters_validated():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        power_law_degrees(0, 8, 2.1, rng)
    with pytest.raises(ValueError):
        power_law_degrees(10, -1, 2.1, rng)
    with pytest.raises(ValueError):
        power_law_degrees(10, 8, 1.0, rng)


def test_csr_validation_catches_bad_indptr():
    graph = CSRGraph(3, np.array([0, 2, 1, 2]), np.array([0, 1]))
    with pytest.raises(ValueError):
        graph.validate()


def test_csr_validation_catches_out_of_range_edges():
    graph = CSRGraph(2, np.array([0, 1, 2]), np.array([0, 5]))
    with pytest.raises(ValueError):
        graph.validate()


def test_connected_pairs_graph_component_count():
    graph = connected_pairs_graph(40, num_components=4, seed=6)
    graph.validate()
    # Union-find ground truth: count weakly connected components.
    parent = list(range(graph.num_vertices))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for source in range(graph.num_vertices):
        for target in graph.neighbors(source):
            a, b = find(source), find(int(target))
            if a != b:
                parent[a] = b
    roots = {find(v) for v in range(graph.num_vertices)}
    assert len(roots) == 4


def test_connected_pairs_invalid_component_count():
    with pytest.raises(ValueError):
        connected_pairs_graph(10, 0)
    with pytest.raises(ValueError):
        connected_pairs_graph(10, 11)
