"""Tests for the graph engine: results must be *correct*, not just timed."""

import numpy as np
import networkx as nx
import pytest

from repro import DRAMOnly, FlatFlash, small_config
from repro.apps.graph_analytics import GraphEngine
from repro.workloads.graphs import CSRGraph, connected_pairs_graph, power_law_graph


def to_networkx(graph: CSRGraph) -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_nodes_from(range(graph.num_vertices))
    for source in range(graph.num_vertices):
        for target in graph.neighbors(source):
            g.add_edge(source, int(target))
    return g


@pytest.fixture
def small_graph():
    return power_law_graph(120, avg_degree=5, seed=11)


def make_engine(graph, system_cls=FlatFlash):
    config = small_config(track_data=False)
    return GraphEngine(system_cls(config), graph)


def test_pagerank_sums_to_one(small_graph):
    engine = make_engine(small_graph)
    ranks = engine.pagerank(iterations=3)
    assert ranks.sum() == pytest.approx(1.0, abs=1e-6)


def test_pagerank_matches_networkx(small_graph):
    engine = make_engine(small_graph)
    ours = engine.pagerank(iterations=40, charge_accesses=False)
    reference = nx.pagerank(
        to_networkx(small_graph), alpha=0.85, max_iter=200, tol=1e-10
    )
    ref = np.array([reference[v] for v in range(small_graph.num_vertices)])
    # Parallel-edge handling can differ slightly; ordering must agree at top.
    top_ours = set(np.argsort(ours)[-5:])
    top_ref = set(np.argsort(ref)[-5:])
    assert len(top_ours & top_ref) >= 4
    assert np.corrcoef(ours, ref)[0, 1] > 0.98


def test_pagerank_same_result_with_and_without_charging(small_graph):
    engine_a = make_engine(small_graph)
    engine_b = make_engine(small_graph)
    charged = engine_a.pagerank(iterations=3, charge_accesses=True)
    free = engine_b.pagerank(iterations=3, charge_accesses=False)
    assert np.allclose(charged, free)


def test_pagerank_charges_memory_accesses(small_graph):
    engine = make_engine(small_graph)
    engine.pagerank(iterations=1)
    counters = engine.system.stats.counters()
    assert counters["mem.loads"] > small_graph.num_vertices


def test_connected_components_ground_truth():
    graph = connected_pairs_graph(60, num_components=5, seed=12)
    engine = make_engine(graph)
    labels = engine.connected_components(max_iterations=100)
    assert len(set(labels.tolist())) == 5


def test_connected_components_members_share_labels():
    graph = connected_pairs_graph(40, num_components=2, seed=13)
    engine = make_engine(graph)
    labels = engine.connected_components(max_iterations=100)
    reference = nx.weakly_connected_components(to_networkx(graph))
    for component in reference:
        values = {int(labels[v]) for v in component}
        assert len(values) == 1


def test_invalid_iterations_rejected(small_graph):
    engine = make_engine(small_graph)
    with pytest.raises(ValueError):
        engine.pagerank(iterations=0)


def test_engine_maps_three_regions(small_graph):
    engine = make_engine(small_graph)
    names = [region.name for region in engine.system.regions]
    assert any("indptr" in name for name in names)
    assert any("edges" in name for name in names)
    assert any("state" in name for name in names)


def test_results_identical_across_systems(small_graph):
    flat = make_engine(small_graph, FlatFlash).pagerank(iterations=2)
    dram = GraphEngine(
        DRAMOnly(small_config(track_data=False).scaled(dram_pages=4_096)), small_graph
    ).pagerank(iterations=2)
    assert np.allclose(flat, dram)


class TestShardedPageRank:
    def test_results_match_unsharded(self, small_graph=None):
        graph = power_law_graph(300, avg_degree=6, seed=21)
        plain = make_engine(graph).pagerank(iterations=4, charge_accesses=False)
        sharded = make_engine(graph).pagerank_sharded(
            iterations=4, num_shards=5, charge_accesses=False
        )
        assert np.allclose(plain, sharded)

    def test_single_shard_equals_unsharded(self):
        graph = power_law_graph(200, avg_degree=5, seed=22)
        plain = make_engine(graph).pagerank(iterations=2, charge_accesses=False)
        sharded = make_engine(graph).pagerank_sharded(
            iterations=2, num_shards=1, charge_accesses=False
        )
        assert np.allclose(plain, sharded)

    def test_shard_bounds_validated(self):
        graph = power_law_graph(100, avg_degree=4, seed=23)
        engine = make_engine(graph)
        with pytest.raises(ValueError):
            engine.pagerank_sharded(num_shards=0)
        with pytest.raises(ValueError):
            engine.pagerank_sharded(iterations=0)

    def test_sharded_charges_sequential_streams(self):
        graph = power_law_graph(300, avg_degree=6, seed=24)
        engine = make_engine(graph)
        engine.pagerank_sharded(iterations=1, num_shards=4)
        names = [region.name for region in engine.system.regions]
        assert any("shards" in name for name in names)
        assert engine.system.stats.counters()["mem.loads"] > 0

    def test_sharded_keeps_window_writes_local(self):
        """The write working set per shard pass is the shard interval, so
        with shards sized under DRAM the paging baselines stop thrashing."""
        from repro import UnifiedMMap

        # Vertex state (4 pages) exceeds DRAM (2 frames): the unsharded
        # engine's scattered writes thrash, the sharded windows do not.
        graph = power_law_graph(2_000, avg_degree=3, seed=25)

        def run(shards):
            config = small_config(track_data=False)
            config.geometry.dram_pages = 2
            config.geometry.ssd_pages = 8_192
            engine = GraphEngine(UnifiedMMap(config.validate()), graph)
            if shards is None:
                engine.pagerank(iterations=1)
            else:
                engine.pagerank_sharded(iterations=1, num_shards=shards)
            return engine.system.page_movements

        assert run(4) < run(None) / 5
