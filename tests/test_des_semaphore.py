"""Tests for the DES counting semaphore."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.des import AcquireSlot, Delay, ReleaseSlot, Semaphore, Simulator


def worker(sem, hold_ns):
    yield AcquireSlot(sem)
    yield Delay(hold_ns)
    yield ReleaseSlot(sem)


def test_capacity_validated():
    with pytest.raises(ValueError):
        Semaphore(0)


def test_uncontended_slots_run_in_parallel():
    sim = Simulator()
    sem = Semaphore(4)
    for _ in range(4):
        sim.spawn(worker(sem, 100))
    assert sim.run() == 100
    assert sem.contention_ratio == 0.0


def test_overcommit_serializes_in_batches():
    sim = Simulator()
    sem = Semaphore(2)
    for _ in range(6):
        sim.spawn(worker(sem, 100))
    # 6 holders over 2 slots -> 3 batches of 100ns.
    assert sim.run() == 300
    assert sem.contended_acquisitions == 4


def test_capacity_one_behaves_like_a_lock():
    sim = Simulator()
    sem = Semaphore(1)
    for _ in range(3):
        sim.spawn(worker(sem, 50))
    assert sim.run() == 150


def test_release_without_slot_raises():
    sim = Simulator()
    sem = Semaphore(1)

    def bad():
        yield ReleaseSlot(sem)

    sim.spawn(bad())
    with pytest.raises(RuntimeError):
        sim.run()


def test_fifo_handoff():
    sim = Simulator()
    sem = Semaphore(1)
    order = []

    def named(name, start):
        yield Delay(start)
        yield AcquireSlot(sem)
        order.append(name)
        yield Delay(10)
        yield ReleaseSlot(sem)

    sim.spawn(named("a", 0))
    sim.spawn(named("b", 1))
    sim.spawn(named("c", 2))
    sim.run()
    assert order == ["a", "b", "c"]


def test_blocked_forever_is_deadlock():
    sim = Simulator()
    sem = Semaphore(1)

    def hog():
        yield AcquireSlot(sem)
        yield Delay(10)
        # never releases

    def waiter():
        yield AcquireSlot(sem)
        yield ReleaseSlot(sem)

    sim.spawn(hog())
    sim.spawn(waiter())
    with pytest.raises(RuntimeError, match="deadlock"):
        sim.run()


@settings(deadline=None, max_examples=30)
@given(
    st.integers(1, 6),
    st.lists(st.integers(1, 200), min_size=1, max_size=18),
)
def test_makespan_matches_batch_model_for_equal_holds(capacity, holds):
    """With equal hold times, makespan = ceil(n/capacity) * hold."""
    hold = holds[0]
    sim = Simulator()
    sem = Semaphore(capacity)
    for _ in range(len(holds)):
        sim.spawn(worker(sem, hold))
    batches = -(-len(holds) // capacity)
    assert sim.run() == batches * hold
