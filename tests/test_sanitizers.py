"""Tests for the runtime invariant sanitizers (repro.sim.sanitizers).

Each section deliberately corrupts simulator state — or drives an API the
way a buggy caller would — and asserts the sanitizer raises a diagnostic
naming the offending page / lock / time, at the operation that breaks the
invariant rather than at the end of the run.
"""

import pytest

from repro import FlatFlash, create_pmem_region, small_config
from repro.config import LatencyConfig
from repro.host.bridge import HostBridge
from repro.interconnect.pcie import BarWindow
from repro.sim import sanitizers
from repro.sim.clock import SimClock
from repro.sim.des import (
    Acquire,
    AcquireSlot,
    Delay,
    Lock,
    Release,
    Semaphore,
    Simulator,
)
from repro.sim.sanitizers import (
    ClockSanitizer,
    ClockSanitizerError,
    FlashSanitizer,
    FlashSanitizerError,
    LockSanitizer,
    LockSanitizerError,
    PersistenceSanitizer,
    PersistenceSanitizerError,
    SanitizerConfig,
    SanitizerError,
)
from repro.ssd.flash import FlashArray, FlashPageState


# --------------------------------------------------------------------- #
# Config plumbing
# --------------------------------------------------------------------- #


def test_sanitizer_errors_are_runtime_errors():
    for cls in (
        SanitizerError,
        ClockSanitizerError,
        FlashSanitizerError,
        LockSanitizerError,
        PersistenceSanitizerError,
    ):
        assert issubclass(cls, RuntimeError)


def test_set_default_enabled_returns_previous():
    previous = sanitizers.set_default_enabled(False)
    try:
        assert sanitizers.default_enabled() is False
        assert sanitizers.set_default_enabled(True) is False
        assert sanitizers.default_enabled() is True
    finally:
        sanitizers.set_default_enabled(previous)


def test_config_from_default_follows_process_default():
    # The suite conftest enables sanitizers globally.
    config = SanitizerConfig.from_default()
    assert config.any_enabled()
    assert config.flash and config.clock and config.lock and config.persistence


def test_config_validate_rejects_non_bool():
    config = SanitizerConfig(flash="yes")
    with pytest.raises(ValueError, match="flash"):
        config.validate()


def test_system_wires_sanitizers_when_enabled():
    system = FlatFlash(small_config())
    assert system.ssd.flash_sanitizer is not None
    assert system.ssd.persistence_sanitizer is not None


def test_system_without_sanitizers_when_disabled():
    previous = sanitizers.set_default_enabled(False)
    try:
        system = FlatFlash(small_config())
        assert system.ssd.flash_sanitizer is None
        assert system.ssd.persistence_sanitizer is None
    finally:
        sanitizers.set_default_enabled(previous)


# --------------------------------------------------------------------- #
# ClockSanitizer
# --------------------------------------------------------------------- #


def make_clock():
    return SimClock(sanitizer=ClockSanitizer())


def test_clock_rejects_float_delta():
    clock = make_clock()
    with pytest.raises(ClockSanitizerError, match="12.5"):
        clock.advance(12.5)


def test_clock_rejects_bool_delta():
    clock = make_clock()
    with pytest.raises(ClockSanitizerError, match="True"):
        clock.advance(True)


def test_clock_rejects_negative_delta():
    clock = make_clock()
    clock.advance(100)
    with pytest.raises(ClockSanitizerError, match="-5"):
        clock.advance(-5)


def test_clock_detects_tampered_state():
    clock = make_clock()
    clock.advance(100)
    clock._now = 42  # corrupt the clock behind the sanitizer's back
    with pytest.raises(ClockSanitizerError, match="t=42ns.*t=100ns"):
        clock.advance(10)


def test_clock_clean_integer_advances():
    clock = make_clock()
    clock.advance(100)
    clock.advance_to(250)
    clock.advance(0)
    assert clock.now == 250


# --------------------------------------------------------------------- #
# FlashSanitizer
# --------------------------------------------------------------------- #


def make_flash():
    return FlashArray(
        num_blocks=4,
        pages_per_block=8,
        page_size=64,
        latency=LatencyConfig(),
        sanitizer=FlashSanitizer(),
    )


def test_flash_program_to_programmed_page_names_ppn():
    flash = make_flash()
    flash.program(3, bytes(64))
    with pytest.raises(FlashSanitizerError, match="ppn=3"):
        flash.program(3, bytes(64))


def test_flash_detects_corrupted_page_state():
    flash = make_flash()
    flash.program(0, bytes(64))
    # Corrupt the primary state: the page looks erased to the array, but
    # the sanitizer's shadow still knows it was programmed.
    flash.blocks[0].states[0] = FlashPageState.ERASED
    with pytest.raises(FlashSanitizerError, match="ppn=0.*programmed"):
        flash.program(0, bytes(64))


def test_flash_erase_of_valid_pages_names_block():
    flash = make_flash()
    flash.program(8, bytes(64))  # block 1
    with pytest.raises(FlashSanitizerError, match="block 1"):
        flash.erase(1)


def test_flash_double_erase_names_block():
    flash = make_flash()
    flash.erase(2)
    with pytest.raises(FlashSanitizerError, match="double erase of block 2"):
        flash.erase(2)


def test_flash_erase_after_program_is_clean():
    flash = make_flash()
    flash.program(0, bytes(64))
    flash.invalidate(0)
    flash.erase(0)
    flash.program(0, bytes(64))
    flash.invalidate(0)
    flash.erase(0)  # not a double erase: the block was programmed in between


def test_flash_accounting_leak_reports_both_counts():
    sanitizer = FlashSanitizer()
    sanitizer.attach(num_blocks=2, pages_per_block=4)
    sanitizer.on_program(0)
    sanitizer.on_program(1)
    with pytest.raises(
        FlashSanitizerError, match="GC collect.*2 programmed pages.*1 logical"
    ):
        sanitizer.check_accounting(1, context="GC collect")
    sanitizer.check_accounting(2)  # balanced: no raise


# --------------------------------------------------------------------- #
# LockSanitizer
# --------------------------------------------------------------------- #


def test_lock_release_by_non_holder_names_lock_and_holder():
    sim = Simulator(sanitizer=LockSanitizer())
    lock = Lock("wal")

    def owner():
        yield Acquire(lock)
        yield Delay(100)
        yield Release(lock)

    def thief():
        yield Delay(10)
        yield Release(lock)

    sim.spawn(owner())
    sim.spawn(thief())
    with pytest.raises(LockSanitizerError, match="'wal'.*held by 0"):
        sim.run()


def test_lock_held_at_exit_names_lock():
    sim = Simulator(sanitizer=LockSanitizer())
    lock = Lock("btree-root")

    def leaker():
        yield Acquire(lock)
        yield Delay(5)

    sim.spawn(leaker())
    with pytest.raises(LockSanitizerError, match="btree-root.*deadlocked"):
        sim.run()


def test_lock_cycle_detected_at_block_time():
    sim = Simulator(sanitizer=LockSanitizer())
    lock_a = Lock("a")
    lock_b = Lock("b")

    def first():
        yield Acquire(lock_a)
        yield Delay(10)
        yield Acquire(lock_b)
        yield Release(lock_b)
        yield Release(lock_a)

    def second():
        yield Acquire(lock_b)
        yield Delay(10)
        yield Acquire(lock_a)
        yield Release(lock_a)
        yield Release(lock_b)

    sim.spawn(first())
    sim.spawn(second())
    with pytest.raises(LockSanitizerError, match="deadlock.*cycle"):
        sim.run()


def test_semaphore_slot_leak_at_exit():
    sim = Simulator(sanitizer=LockSanitizer())
    channels = Semaphore(2, name="channels")

    def leaker():
        yield AcquireSlot(channels)
        yield Delay(5)

    sim.spawn(leaker())
    with pytest.raises(LockSanitizerError, match="channels.*deadlocked"):
        sim.run()


def test_balanced_locking_is_clean():
    sim = Simulator(sanitizer=LockSanitizer())
    lock = Lock("log")

    def worker():
        for _ in range(3):
            yield Delay(10)
            yield Acquire(lock)
            yield Delay(20)
            yield Release(lock)

    for _ in range(4):
        sim.spawn(worker())
    sim.run()


# --------------------------------------------------------------------- #
# PersistenceSanitizer
# --------------------------------------------------------------------- #


def test_unfenced_durable_ack_names_pending_write():
    system = FlatFlash(small_config())
    pmem = create_pmem_region(system, num_pages=2)
    pmem.persist_store(128, 8, b"ledger01")
    sanitizer = system.ssd.persistence_sanitizer
    with pytest.raises(
        PersistenceSanitizerError, match=r"checkpoint.*1 posted.*offset=128"
    ):
        sanitizer.ack_durable("checkpoint")


def test_durable_store_fences_and_acks_clean():
    system = FlatFlash(small_config())
    pmem = create_pmem_region(system, num_pages=2)
    pmem.durable_store(0, 8, b"ledger01")
    assert system.ssd.persistence_sanitizer.pending_persist_writes == 0


def test_crash_clears_pending_writes():
    system = FlatFlash(small_config())
    pmem = create_pmem_region(system, num_pages=2)
    pmem.persist_store(0, 8, b"ledger01")
    system.ssd.crash()
    system.ssd.persistence_sanitizer.ack_durable("post-crash")  # nothing pending


def test_fence_with_unordered_link_writes_raises():
    sanitizer = PersistenceSanitizer()
    sanitizer.on_posted_tlp(3)
    with pytest.raises(PersistenceSanitizerError, match="3 posted cache lines"):
        sanitizer.on_fence()
    sanitizer.on_ordering_read()
    sanitizer.on_fence()  # ordered now: clean


def test_persist_routed_to_dram_names_frame():
    bridge = HostBridge(
        dram_bytes=1 << 20,
        ssd_bar=BarWindow(base=1 << 30, size=1 << 20),
        page_size=4096,
        plb_entries=8,
        persistence_sanitizer=PersistenceSanitizer(),
    )
    tagged = bridge.tag_persist(5 * 4096, persist=True)
    with pytest.raises(PersistenceSanitizerError, match="DRAM frame 5"):
        bridge.route(tagged)
    # The same address without the P bit routes fine.
    assert bridge.route(5 * 4096)[0] == "dram"
