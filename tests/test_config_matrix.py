"""Flag-interaction matrix: FlatFlash must be a correct memory under every
combination of its feature flags.

The hierarchy has five orthogonal switches (payload tracking excluded —
it must be on to check data): cacheable MMIO, PLB, promotion, sequential
prefetch, battery backing.  Any pairwise interaction bug (e.g. prefetch x
PLB-disabled, cacheable x promotion) shows up as a wrong byte here.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import FlatFlash, small_config

FLAG_MATRIX = list(
    itertools.product((False, True), repeat=4)
)  # cacheable, plb, promotion, prefetch


def build(cacheable: bool, plb: bool, promotion: bool, prefetch: bool) -> FlatFlash:
    config = small_config()
    config.cacheable_mmio = cacheable
    config.plb_enabled = plb
    config.promotion.enabled = promotion
    config.promotion.sequential_prefetch = 2 if prefetch else 0
    return FlatFlash(config.validate())


@pytest.mark.parametrize("cacheable,plb,promotion,prefetch", FLAG_MATRIX)
def test_scripted_workload_correct_under_all_flags(cacheable, plb, promotion, prefetch):
    system = build(cacheable, plb, promotion, prefetch)
    region = system.mmap(12)
    rng = np.random.default_rng(42)
    model = bytearray(region.size)
    for _ in range(150):
        offset = int(rng.integers(0, region.size - 8))
        if rng.random() < 0.5:
            payload = bytes(rng.integers(0, 256, 8, dtype=np.uint8))
            system.store(region.addr(offset), 8, payload)
            model[offset : offset + 8] = payload
        else:
            data = system.load(region.addr(offset), 8).data
            assert data == bytes(model[offset : offset + 8])
    system.quiesce()
    for page in range(region.num_pages):
        data = system.load(region.addr(page * 4_096), 4_096).data
        assert data == bytes(model[page * 4_096 : (page + 1) * 4_096])


@pytest.mark.parametrize("cacheable,plb,promotion,prefetch", FLAG_MATRIX)
def test_sequential_sweep_correct_under_all_flags(cacheable, plb, promotion, prefetch):
    """Sequential sweeps exercise promotion/prefetch/PLB interactions."""
    system = build(cacheable, plb, promotion, prefetch)
    region = system.mmap(8)
    for page in range(8):
        system.store(region.page_addr(page, 32), 8, bytes([page + 1]) * 8)
    for sweep in range(3):
        for page in range(8):
            for line in range(0, 64, 8):
                system.load(region.page_addr(page, line * 64), 64)
    system.quiesce()
    for page in range(8):
        assert system.load(region.page_addr(page, 32), 8).data == bytes([page + 1]) * 8


@settings(deadline=None, max_examples=16)
@given(
    st.tuples(st.booleans(), st.booleans(), st.booleans(), st.booleans()),
    st.lists(
        st.tuples(st.integers(0, 12 * 4_096 - 16), st.integers(0, 255)),
        min_size=1,
        max_size=60,
    ),
)
def test_random_flags_random_ops(flags, writes):
    system = build(*flags)
    region = system.mmap(12)
    model = {}
    for offset, value in writes:
        payload = bytes([value]) * 16
        system.store(region.addr(offset), 16, payload)
        model[offset] = payload
    system.quiesce()
    for offset, payload in model.items():
        current = system.load(region.addr(offset), 16).data
        # Later overlapping writes may have clobbered earlier ones; rebuild
        # the expected bytes from the model in write order.
        expected = bytearray(16)
        base = offset
        replayed = bytearray(12 * 4_096)
        for o, v in writes:
            replayed[o : o + 16] = bytes([v]) * 16
        expected[:] = replayed[base : base + 16]
        assert current == bytes(expected)
