"""Tests for the log2-bucketed latency histogram."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import Histogram


def test_bucket_boundaries():
    hist = Histogram("h", base_ns=1_000)
    assert hist.bucket_of(0) == 0
    assert hist.bucket_of(999) == 0
    assert hist.bucket_of(1_000) == 1
    assert hist.bucket_of(1_999) == 1
    assert hist.bucket_of(2_000) == 2
    assert hist.bucket_of(4_000) == 3


def test_overflow_clamps_to_last_bucket():
    hist = Histogram("h", base_ns=1_000, num_buckets=3)
    assert hist.bucket_of(10**12) == 2


def test_bucket_bound():
    hist = Histogram("h", base_ns=1_000)
    assert hist.bucket_bound_ns(0) == 1_000
    assert hist.bucket_bound_ns(3) == 8_000


def test_record_and_cdf():
    hist = Histogram("h", base_ns=1_000, num_buckets=4)
    hist.extend([100, 200, 1_500, 5_000])
    cdf = hist.cdf()
    assert cdf[0] == pytest.approx(0.5)  # two samples under 1us
    assert cdf[1] == pytest.approx(0.75)
    assert cdf[-1] == pytest.approx(1.0)


def test_empty_cdf_is_zero():
    assert Histogram("h").cdf()[-1] == 0.0


def test_quantile_bound():
    hist = Histogram("h", base_ns=1_000)
    hist.extend([100] * 99 + [50_000])
    assert hist.quantile_bound_ns(0.5) == 1_000
    assert hist.quantile_bound_ns(0.99) == 1_000
    assert hist.quantile_bound_ns(1.0) >= 50_000


def test_quantile_validation():
    hist = Histogram("h")
    hist.record(1)
    with pytest.raises(ValueError):
        hist.quantile_bound_ns(0.0)
    with pytest.raises(ValueError):
        hist.quantile_bound_ns(1.5)


def test_negative_latency_rejected():
    with pytest.raises(ValueError):
        Histogram("h").record(-1)


def test_invalid_shape_rejected():
    with pytest.raises(ValueError):
        Histogram("h", base_ns=0)
    with pytest.raises(ValueError):
        Histogram("h", num_buckets=1)


@given(st.lists(st.integers(0, 10**9), min_size=1, max_size=200))
def test_cdf_is_monotone_and_complete(samples):
    hist = Histogram("h")
    hist.extend(samples)
    cdf = hist.cdf()
    assert all(b >= a for a, b in zip(cdf, cdf[1:]))
    assert cdf[-1] == pytest.approx(1.0)
    assert hist.count == len(samples)


@given(st.lists(st.integers(0, 10**7), min_size=1, max_size=100))
def test_quantile_bound_covers_true_quantile(samples):
    """The bucket bound at fraction f is >= the exact f-quantile sample."""
    import math

    hist = Histogram("h")
    hist.extend(samples)
    ordered = sorted(samples)
    for fraction in (0.5, 0.9, 1.0):
        rank = max(1, math.ceil(fraction * len(ordered)))  # nearest-rank
        exact = ordered[rank - 1]
        assert hist.quantile_bound_ns(fraction) >= min(
            exact, hist.bucket_bound_ns(len(hist.buckets) - 1)
        )
