"""Tests for FlatFS: a real file system on byte-granular persistence."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import FlatFlash, small_config
from repro.apps.flatfs import DIRECT_BLOCKS, FlatFS, FsError


def make_fs(num_inodes=32, data_blocks=48):
    config = small_config()
    config.geometry.dram_pages = 32
    config.geometry.ssd_pages = 8_192
    config.geometry.ssd_cache_pages = 64
    return FlatFS(
        FlatFlash(config.validate()), num_inodes=num_inodes, data_blocks=data_blocks
    )


class TestBasicOps:
    def test_create_and_exists(self):
        fs = make_fs()
        fs.create("/hello.txt")
        assert fs.exists("/hello.txt")
        assert not fs.exists("/other.txt")
        assert fs.listdir("/") == ["hello.txt"]

    def test_create_duplicate_rejected(self):
        fs = make_fs()
        fs.create("/a")
        with pytest.raises(FsError):
            fs.create("/a")

    def test_write_read_round_trip(self):
        fs = make_fs()
        fs.create("/data.bin")
        payload = bytes(range(256)) * 20
        fs.write_file("/data.bin", payload)
        assert fs.read_file("/data.bin") == payload
        assert fs.stat("/data.bin")["size"] == len(payload)

    def test_empty_file(self):
        fs = make_fs()
        fs.create("/empty")
        assert fs.read_file("/empty") == b""

    def test_overwrite_shrinks_and_frees_blocks(self):
        fs = make_fs()
        fs.create("/f")
        fs.write_file("/f", b"x" * (3 * 4_096))
        used_before = sum(fs._bitmap_get(b) for b in range(fs.data_blocks))
        fs.write_file("/f", b"y" * 10)
        used_after = sum(fs._bitmap_get(b) for b in range(fs.data_blocks))
        assert used_after < used_before
        assert fs.read_file("/f") == b"y" * 10

    def test_file_too_big_rejected(self):
        fs = make_fs(data_blocks=DIRECT_BLOCKS + 8)
        fs.create("/big")
        with pytest.raises(FsError):
            fs.write_file("/big", b"z" * (DIRECT_BLOCKS + 1) * 4_096)

    def test_mkdir_and_nested_paths(self):
        fs = make_fs()
        fs.mkdir("/docs")
        fs.mkdir("/docs/sub")
        fs.create("/docs/sub/readme")
        fs.write_file("/docs/sub/readme", b"nested!")
        assert fs.read_file("/docs/sub/readme") == b"nested!"
        assert fs.listdir("/docs") == ["sub"]
        assert fs.listdir("/docs/sub") == ["readme"]

    def test_unlink_file(self):
        fs = make_fs()
        fs.create("/gone")
        fs.write_file("/gone", b"abc" * 100)
        fs.unlink("/gone")
        assert not fs.exists("/gone")
        with pytest.raises(FsError):
            fs.read_file("/gone")

    def test_unlink_nonempty_dir_rejected(self):
        fs = make_fs()
        fs.mkdir("/d")
        fs.create("/d/f")
        with pytest.raises(FsError):
            fs.unlink("/d")
        fs.unlink("/d/f")
        fs.unlink("/d")
        assert not fs.exists("/d")

    def test_rename_within_dir(self):
        fs = make_fs()
        fs.create("/old")
        fs.write_file("/old", b"content")
        fs.rename("/old", "/new")
        assert not fs.exists("/old")
        assert fs.read_file("/new") == b"content"

    def test_rename_across_dirs(self):
        fs = make_fs()
        fs.mkdir("/a")
        fs.mkdir("/b")
        fs.create("/a/f")
        fs.rename("/a/f", "/b/g")
        assert fs.listdir("/a") == []
        assert fs.listdir("/b") == ["g"]

    def test_rename_onto_existing_rejected(self):
        fs = make_fs()
        fs.create("/x")
        fs.create("/y")
        with pytest.raises(FsError):
            fs.rename("/x", "/y")

    def test_long_name_rejected(self):
        fs = make_fs()
        with pytest.raises(FsError):
            fs.create("/" + "n" * 40)

    def test_missing_parent_rejected(self):
        fs = make_fs()
        with pytest.raises(FsError):
            fs.create("/nope/file")

    def test_inode_exhaustion(self):
        fs = make_fs(num_inodes=4)
        fs.create("/a")
        fs.create("/b")
        fs.create("/c")
        with pytest.raises(FsError):
            fs.create("/d")

    def test_inodes_recycled_after_unlink(self):
        fs = make_fs(num_inodes=4)
        for round_index in range(6):
            fs.create("/tmp")
            fs.unlink("/tmp")

    def test_metadata_ops_are_byte_granular(self):
        fs = make_fs()
        before = fs.system.stats.counters().get("pmem.persist_stores", 0)
        fs.create("/f")
        after = fs.system.stats.counters()["pmem.persist_stores"]
        assert after > before  # inode went through the byte-persist path


class TestCrashRecovery:
    def crash_and_recover(self, fs):
        fs.system.ssd.crash()
        return fs.recover()

    def test_created_file_survives_crash(self):
        fs = make_fs()
        fs.create("/keep")
        self.crash_and_recover(fs)
        assert fs.exists("/keep")

    def test_write_metadata_survives_crash(self):
        fs = make_fs()
        fs.create("/f")
        fs.write_file("/f", b"durable" * 10)
        self.crash_and_recover(fs)
        assert fs.stat("/f")["size"] == 70

    def test_rename_survives_crash(self):
        fs = make_fs()
        fs.create("/before")
        fs.rename("/before", "/after")
        self.crash_and_recover(fs)
        assert fs.exists("/after")
        assert not fs.exists("/before")

    def test_unlink_survives_crash(self):
        fs = make_fs()
        fs.create("/f")
        fs.unlink("/f")
        self.crash_and_recover(fs)
        assert not fs.exists("/f")

    def test_recovery_is_idempotent(self):
        fs = make_fs()
        fs.create("/f")
        fs.mkdir("/d")
        fs.system.ssd.crash()
        fs.recover()
        fs.system.ssd.crash()
        fs.recover()  # double recovery must not corrupt anything
        assert fs.exists("/f")
        assert fs.exists("/d")
        fs.create("/d/g")  # and the fs keeps working
        assert fs.listdir("/d") == ["g"]

    def test_checkpoint_truncates_journal(self):
        fs = make_fs()
        fs.create("/a")
        fs.checkpoint()
        assert fs.wal.records() == []
        fs.system.ssd.crash()
        assert fs.recover() == 0
        assert fs.exists("/a")


@settings(deadline=None, max_examples=12)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["create", "mkdir", "unlink", "rename"]),
            st.integers(0, 5),
            st.integers(0, 5),
        ),
        min_size=1,
        max_size=15,
    ),
    st.integers(0, 15),
)
def test_crash_anywhere_namespace_consistent(ops, crash_after):
    """Execute a namespace-op prefix, crash, recover: the recovered tree
    must equal the executed prefix exactly."""
    fs = make_fs(num_inodes=24, data_blocks=32)
    model = set()
    executed = 0
    for op, a, b in ops:
        if executed == crash_after:
            break
        name, other = f"/n{a}", f"/n{b}"
        try:
            if op == "create":
                fs.create(name)
                model.add(name)
            elif op == "mkdir":
                fs.mkdir(name)
                model.add(name)
            elif op == "unlink":
                fs.unlink(name)
                model.discard(name)
            else:
                fs.rename(name, other)
                model.discard(name)
                model.add(other)
        except FsError:
            continue  # invalid op against current state: skipped by both
        executed += 1
    fs.system.ssd.crash()
    fs.recover()
    assert set("/" + name for name in fs.listdir("/")) == model


class TestHardLinksAndAppend:
    def test_link_shares_content(self):
        fs = make_fs()
        fs.create("/orig")
        fs.write_file("/orig", b"shared bytes")
        fs.link("/orig", "/alias")
        assert fs.read_file("/alias") == b"shared bytes"
        assert fs.stat("/orig")["ino"] == fs.stat("/alias")["ino"]
        assert fs.stat("/orig")["nlink"] == 2

    def test_write_through_one_name_visible_through_other(self):
        fs = make_fs()
        fs.create("/a")
        fs.link("/a", "/b")
        fs.write_file("/b", b"updated")
        assert fs.read_file("/a") == b"updated"

    def test_unlink_one_name_keeps_the_other(self):
        fs = make_fs()
        fs.create("/a")
        fs.write_file("/a", b"keep")
        fs.link("/a", "/b")
        fs.unlink("/a")
        assert not fs.exists("/a")
        assert fs.read_file("/b") == b"keep"
        assert fs.stat("/b")["nlink"] == 1

    def test_unlink_last_name_frees_inode_and_blocks(self):
        fs = make_fs()
        fs.create("/a")
        fs.write_file("/a", b"x" * 4_096)
        fs.link("/a", "/b")
        used = sum(fs._bitmap_get(blk) for blk in range(fs.data_blocks))
        fs.unlink("/a")
        assert sum(fs._bitmap_get(blk) for blk in range(fs.data_blocks)) == used
        fs.unlink("/b")
        assert sum(fs._bitmap_get(blk) for blk in range(fs.data_blocks)) == used - 1

    def test_link_to_directory_rejected(self):
        fs = make_fs()
        fs.mkdir("/d")
        with pytest.raises(FsError):
            fs.link("/d", "/d2")

    def test_link_survives_crash(self):
        fs = make_fs()
        fs.create("/a")
        fs.link("/a", "/b")
        fs.system.ssd.crash()
        fs.recover()
        assert fs.stat("/b")["nlink"] == 2

    def test_append(self):
        fs = make_fs()
        fs.create("/log")
        fs.append_file("/log", b"line1\n")
        fs.append_file("/log", b"line2\n")
        assert fs.read_file("/log") == b"line1\nline2\n"

    def test_append_across_block_boundary(self):
        fs = make_fs()
        fs.create("/big")
        fs.write_file("/big", b"a" * 4_090)
        fs.append_file("/big", b"b" * 20)
        data = fs.read_file("/big")
        assert len(data) == 4_110
        assert data.endswith(b"b" * 20)


class TestFsck:
    def test_fresh_fs_is_clean(self):
        assert make_fs().fsck() == []

    def test_clean_after_mixed_operations(self):
        fs = make_fs()
        fs.mkdir("/d")
        fs.create("/d/a")
        fs.write_file("/d/a", b"x" * 5_000)
        fs.link("/d/a", "/alias")
        fs.create("/b")
        fs.rename("/b", "/d/b")
        fs.unlink("/alias")
        fs.write_file("/d/a", b"short")
        assert fs.fsck() == []

    def test_detects_leaked_block(self):
        fs = make_fs()
        fs._bitmap_set(17, True)  # corrupt: bit set, no owner
        assert any("leaked block 17" in p for p in fs.fsck())

    def test_detects_dangling_dirent(self):
        fs = make_fs()
        fs.create("/f")
        ino = fs.stat("/f")["ino"]
        fs._set_inode(ino, 0, 0, 0, [0] * 10)  # free the inode behind the name
        assert any("free inode" in p for p in fs.fsck())

    def test_detects_bad_nlink(self):
        fs = make_fs()
        fs.create("/f")
        ino = fs.stat("/f")["ino"]
        fs._set_inode(ino, 1, 5, 0, [0] * 10)  # nlink=5 with one dirent
        assert any("nlink=5" in p for p in fs.fsck())


@settings(deadline=None, max_examples=10)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["create", "mkdir", "write", "link", "unlink", "rename"]),
            st.integers(0, 5),
            st.integers(0, 5),
            st.integers(0, 6_000),
        ),
        min_size=1,
        max_size=20,
    ),
    st.booleans(),
)
def test_fsck_clean_after_anything_including_crash(ops, crash_at_end):
    """Whatever sequence of operations runs — including a crash plus
    recovery — the file system's structural invariants must hold."""
    fs = make_fs(num_inodes=24, data_blocks=40)
    for op, a, b, size in ops:
        name, other = f"/n{a}", f"/n{b}"
        try:
            if op == "create":
                fs.create(name)
            elif op == "mkdir":
                fs.mkdir(name)
            elif op == "write":
                fs.write_file(name, b"w" * size)
            elif op == "link":
                fs.link(name, other)
            elif op == "unlink":
                fs.unlink(name)
            else:
                fs.rename(name, other)
        except FsError:
            continue
    if crash_at_end:
        fs.system.ssd.crash()
        fs.recover()
    assert fs.fsck() == []
