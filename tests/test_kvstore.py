"""Tests for the KV store application."""

import pytest

from repro import DRAMOnly, FlatFlash, small_config
from repro.apps.kvstore import KVStore, run_ycsb
from repro.workloads.ycsb import YCSB_B, YCSB_D


@pytest.fixture
def store():
    return KVStore(FlatFlash(small_config()), capacity_records=512)


def test_put_get_round_trip(store):
    store.put(7, b"value-7")
    value, _latency = store.get(7)
    assert value.rstrip(b"\x00") == b"value-7"


def test_values_padded_to_record_size(store):
    store.put(0, b"x")
    value, _ = store.get(0)
    assert len(value) == store.record_size


def test_oversized_value_rejected(store):
    with pytest.raises(ValueError):
        store.put(0, b"y" * 100)


def test_key_bounds_checked(store):
    with pytest.raises(KeyError):
        store.get(512)
    with pytest.raises(KeyError):
        store.put(-1)


def test_u64_helpers(store):
    store.put_u64(3, 123_456)
    value, _ = store.get_u64(3)
    assert value == 123_456


def test_counters(store):
    store.put(0)
    store.get(0)
    counters = store.system.stats.counters()
    assert counters["kv.puts"] == 1
    assert counters["kv.gets"] == 1


def test_records_span_pages():
    store = KVStore(FlatFlash(small_config()), capacity_records=256, record_size=64)
    assert store.region.num_pages == 4
    store.put(255, b"last")
    assert store.get(255)[0].rstrip(b"\x00") == b"last"


def test_invalid_shapes_rejected():
    system = FlatFlash(small_config())
    with pytest.raises(ValueError):
        KVStore(system, capacity_records=0)
    with pytest.raises(ValueError):
        KVStore(system, capacity_records=10, record_size=8_192)


def test_run_ycsb_b_returns_latency_per_op(store):
    stats = run_ycsb(store, YCSB_B, num_ops=300, num_records=256)
    assert stats.count == 300
    assert stats.mean > 0


def test_run_ycsb_d_handles_inserts(store):
    stats = run_ycsb(store, YCSB_D, num_ops=300, num_records=128)
    assert stats.count == 300


def test_kvstore_on_dram_only_is_fast():
    system = DRAMOnly(small_config())
    store = KVStore(system, capacity_records=256)
    stats = run_ycsb(store, YCSB_B, num_ops=200, num_records=200)
    assert stats.mean < 1_000  # all-DRAM: sub-microsecond


class TestFullYCSBSuite:
    def make_store(self):
        return KVStore(FlatFlash(small_config()), capacity_records=512)

    def test_ycsb_c_is_read_only(self):
        from repro.workloads.ycsb import YCSB_C

        store = self.make_store()
        run_ycsb(store, YCSB_C, num_ops=300, num_records=256)
        assert store.system.stats.counters()["kv.puts"] == 0
        assert store.system.stats.counters()["kv.gets"] == 300

    def test_ycsb_a_writes_more_than_b(self):
        from repro.workloads.ycsb import YCSB_A, YCSB_B

        puts = {}
        for workload in (YCSB_A, YCSB_B):
            store = self.make_store()
            run_ycsb(store, workload, num_ops=400, num_records=256)
            puts[workload.name] = store.system.stats.counters()["kv.puts"]
        assert puts["YCSB-A"] > 5 * puts["YCSB-B"]

    def test_update_heavy_costs_more_flash_traffic(self):
        from repro.workloads.ycsb import YCSB_A, YCSB_C

        writes = {}
        for workload in (YCSB_A, YCSB_C):
            # Promotion off so dirty data stays on the SSD side, where the
            # destage makes the write traffic visible on the flash counters.
            config = small_config()
            config.promotion.enabled = False
            store = KVStore(FlatFlash(config), capacity_records=512)
            run_ycsb(store, workload, num_ops=400, num_records=256)
            store.system.ssd.gc.flush_dirty()
            writes[workload.name] = store.system.ssd.flash.total_programs
        assert writes["YCSB-A"] > writes["YCSB-C"]
