"""simflow rule tests: one violating and one clean fixture per rule.

Mirrors ``tests/test_simlint.py`` / ``tests/test_simrace.py``: every SF
rule gets a minimal fixture that fires it and a clean twin that must
stay quiet, plus suppression, ``--select``, ``--baseline``, CLI,
shared-JSON-schema, umbrella, and repo-is-clean tests.
"""

import json
import pathlib
import subprocess
import sys
import textwrap

from repro.analysis.simflow import RULES, analyze_paths, analyze_source


def codes(violations):
    return [v.code for v in violations]


def check(snippet, path="repro/sim/fake.py", select=None):
    return analyze_source(textwrap.dedent(snippet), path=path, select=select)


# --------------------------------------------------------------------- #
# SF000: syntax errors
# --------------------------------------------------------------------- #


def test_sf000_syntax_error_is_reported_not_raised():
    violations = check("def broken(:\n")
    assert codes(violations) == ["SF000"]
    assert violations[0].line == 1


# --------------------------------------------------------------------- #
# SF001: arithmetic/comparison mixing two address domains
# --------------------------------------------------------------------- #


def test_sf001_flags_lpn_plus_ppn():
    violations = check(
        """
        def mix(lpn, ppn):
            return lpn + ppn
        """,
        select=["SF001"],
    )
    assert codes(violations) == ["SF001"]
    assert "LPN" in violations[0].message
    assert "PPN" in violations[0].message


def test_sf001_flags_cross_domain_comparison():
    violations = check(
        """
        def confused(vpn, ppn):
            return vpn < ppn
        """,
        select=["SF001"],
    )
    assert codes(violations) == ["SF001"]


def test_sf001_annotations_beat_innocent_names():
    violations = check(
        """
        from repro.units import LPN, PPN

        def mix(first: LPN, second: PPN):
            return first + second
        """,
        select=["SF001"],
    )
    assert codes(violations) == ["SF001"]


def test_sf001_clean_same_domain_distance():
    violations = check(
        """
        def distance(lpn, other_lpn):
            return lpn - other_lpn
        """,
        select=["SF001"],
    )
    assert violations == []


def test_sf001_clean_address_plus_plain_offset():
    violations = check(
        """
        def neighbour(ppn, step):
            return ppn + step + 1
        """,
        select=["SF001"],
    )
    assert violations == []


# --------------------------------------------------------------------- #
# SF002: argument domain contradicts the signature (same layer)
# --------------------------------------------------------------------- #


def test_sf002_flags_lpn_passed_as_ppn():
    violations = check(
        """
        def read_flash(ppn):
            return ppn

        def caller(lpn):
            return read_flash(lpn)
        """,
        select=["SF002"],
    )
    assert codes(violations) == ["SF002"]
    assert "read_flash" in violations[0].message


def test_sf002_clean_matching_argument():
    violations = check(
        """
        def read_flash(ppn):
            return ppn

        def caller(ppn):
            return read_flash(ppn)
        """,
        select=["SF002"],
    )
    assert violations == []


def test_sf002_annotation_on_callee_wins_over_its_name():
    # The callee *declares* LPN for a parameter named ppn; passing an lpn
    # is therefore correct, and the analysis must trust the annotation.
    violations = check(
        """
        from repro.units import LPN

        def oddly_named(ppn: LPN):
            return ppn

        def caller(lpn):
            return oddly_named(lpn)
        """,
    )
    assert violations == []


# --------------------------------------------------------------------- #
# SF003: crossing a layer boundary without a registered translation
# --------------------------------------------------------------------- #


def test_sf003_flags_vpn_into_ssd_layer():
    violations = check(
        """
        def lookup_lpn(lpn):
            return lpn

        def caller(vpn):
            return lookup_lpn(vpn)
        """,
        select=["SF003"],
    )
    assert codes(violations) == ["SF003"]
    assert "host" in violations[0].message
    assert "ssd" in violations[0].message


def test_sf003_hints_at_the_registered_translation():
    violations = check(
        """
        def trim(lpn):
            return lpn

        def caller(vpn):
            return trim(vpn)
        """,
        select=["SF003"],
    )
    assert codes(violations) == ["SF003"]
    assert "lpn_of_vpn" in violations[0].message


def test_sf003_clean_with_explicit_domain_cast():
    violations = check(
        """
        from repro.units import LPN

        def lookup_lpn(lpn):
            return lpn

        def caller(vpn):
            return lookup_lpn(LPN(vpn))
        """,
        select=["SF003"],
    )
    assert violations == []


def test_sf003_clean_through_registered_translation():
    # ftl.lookup is a registered lpn -> ppn translation, so the result
    # may flow into a ppn consumer without complaint.
    violations = check(
        """
        def read_flash(ppn):
            return ppn

        def caller(self, lpn):
            ppn = self.ftl.lookup(lpn)
            return read_flash(ppn)
        """,
    )
    assert violations == []


# --------------------------------------------------------------------- #
# SF004: time-unit mixing
# --------------------------------------------------------------------- #


def test_sf004_flags_ns_plus_us():
    violations = check(
        """
        def total(delay_us):
            total_ns = 0
            total_ns = total_ns + delay_us
            return total_ns
        """,
        select=["SF004"],
    )
    assert codes(violations) == ["SF004"]


def test_sf004_clean_after_conversion():
    violations = check(
        """
        def total(delay_us):
            total_ns = 0
            total_ns = total_ns + delay_us * 1000
            return total_ns
        """,
        select=["SF004"],
    )
    assert violations == []


def test_sf004_flags_cycles_vs_ns_comparison():
    violations = check(
        """
        def deadline(elapsed_cycles, budget_ns):
            return elapsed_cycles > budget_ns
        """,
        select=["SF004"],
    )
    assert codes(violations) == ["SF004"]


# --------------------------------------------------------------------- #
# SF005: container keyed by one domain, indexed by another
# --------------------------------------------------------------------- #


def test_sf005_flags_ppn_index_into_lpn_keyed_map():
    violations = check(
        """
        class Ftl:
            def bad(self, ppn):
                return self._lpn_to_ppn[ppn]
        """,
        select=["SF005"],
    )
    assert codes(violations) == ["SF005"]


def test_sf005_flags_membership_probe():
    violations = check(
        """
        class Ftl:
            def bad(self, ppn):
                return ppn in self._lpn_to_ppn
        """,
        select=["SF005"],
    )
    assert codes(violations) == ["SF005"]


def test_sf005_sees_annotated_containers():
    violations = check(
        """
        from typing import Dict
        from repro.units import LPN

        class Cache:
            def __init__(self):
                self._where: Dict[LPN, int] = {}

            def bad(self, ppn):
                return self._where[ppn]
        """,
        select=["SF005"],
    )
    assert codes(violations) == ["SF005"]


def test_sf005_clean_matching_key():
    violations = check(
        """
        class Ftl:
            def good(self, lpn):
                return self._lpn_to_ppn[lpn]
        """,
        select=["SF005"],
    )
    assert violations == []


def test_sf005_clean_dict_get_with_matching_key():
    violations = check(
        """
        class Ftl:
            def good(self, lpn):
                return self._lpn_to_ppn.get(lpn)
        """,
        select=["SF005"],
    )
    assert violations == []


# --------------------------------------------------------------------- #
# Suppressions and scope
# --------------------------------------------------------------------- #


def test_suppression_comment_silences_one_code():
    violations = check(
        """
        def mix(lpn, ppn):
            return lpn + ppn  # simflow: disable=SF001
        """,
    )
    assert violations == []


def test_suppression_without_codes_silences_everything():
    violations = check(
        """
        def mix(lpn, ppn):
            return lpn + ppn  # simflow: disable
        """,
    )
    assert violations == []


def test_suppression_for_other_code_does_not_silence():
    violations = check(
        """
        def mix(lpn, ppn):
            return lpn + ppn  # simflow: disable=SF005
        """,
    )
    assert codes(violations) == ["SF001"]


def test_simlint_suppression_does_not_silence_simflow():
    violations = check(
        """
        def mix(lpn, ppn):
            return lpn + ppn  # simlint: disable
        """,
    )
    assert codes(violations) == ["SF001"]


def test_files_outside_sim_scope_are_skipped():
    violations = check(
        """
        def mix(lpn, ppn):
            return lpn + ppn
        """,
        path="repro/workloads/fake.py",
    )
    assert violations == []


def test_rule_catalogue_is_complete():
    assert [rule.code for rule in RULES] == [
        "SF001",
        "SF002",
        "SF003",
        "SF004",
        "SF005",
    ]
    for rule in RULES:
        assert rule.title
        assert rule.explanation


# --------------------------------------------------------------------- #
# CLI + shared JSON schema + baselines
# --------------------------------------------------------------------- #

_SF001_BAD = "def mix(lpn, ppn):\n    return lpn + ppn\n"


def _run_cli(module, args, tmp_path):
    return subprocess.run(
        [sys.executable, "-m", module, *args],
        capture_output=True,
        text=True,
        cwd=tmp_path,
        env={"PYTHONPATH": str(pathlib.Path(__file__).resolve().parents[1] / "src")},
    )


def _write_bad(tmp_path, name="bad.py", body=_SF001_BAD):
    bad = tmp_path / "repro" / "sim" / name
    bad.parent.mkdir(parents=True, exist_ok=True)
    bad.write_text(body)
    return bad


def test_cli_exits_nonzero_on_violation(tmp_path):
    _write_bad(tmp_path)
    result = _run_cli("repro.analysis.simflow", ["repro"], tmp_path)
    assert result.returncode == 1
    assert "SF001" in result.stdout


def test_cli_exits_zero_on_clean_tree(tmp_path):
    good = tmp_path / "repro" / "sim" / "good.py"
    good.parent.mkdir(parents=True)
    good.write_text("def distance(lpn, other_lpn):\n    return lpn - other_lpn\n")
    result = _run_cli("repro.analysis.simflow", ["repro"], tmp_path)
    assert result.returncode == 0
    assert "clean" in result.stdout


def test_cli_list_rules(tmp_path):
    result = _run_cli("repro.analysis.simflow", ["--list-rules"], tmp_path)
    assert result.returncode == 0
    for code in ("SF001", "SF005"):
        assert code in result.stdout


def test_cli_rejects_unknown_select(tmp_path):
    result = _run_cli("repro.analysis.simflow", ["--select", "SF999", "."], tmp_path)
    assert result.returncode == 2
    assert "SF999" in result.stderr


def test_cli_select_filters_rules(tmp_path):
    _write_bad(tmp_path)
    result = _run_cli("repro.analysis.simflow", ["--select", "SF005", "repro"], tmp_path)
    assert result.returncode == 0


def test_json_output_shared_schema(tmp_path):
    _write_bad(tmp_path)
    result = _run_cli("repro.analysis.simflow", ["--json", "repro"], tmp_path)
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload["tool"] == "simflow"
    assert payload["schema_version"] == 1
    assert payload["count"] == len(payload["findings"])
    assert isinstance(payload["files_checked"], int)
    for finding in payload["findings"]:
        assert set(finding) == {"path", "line", "col", "code", "message"}
    assert [f["code"] for f in payload["findings"]] == ["SF001"]


def test_baseline_round_trip(tmp_path):
    _write_bad(tmp_path)
    snapshot = tmp_path / "baseline.json"
    wrote = _run_cli(
        "repro.analysis.simflow",
        ["repro", "--write-baseline", str(snapshot)],
        tmp_path,
    )
    assert wrote.returncode == 0
    assert snapshot.exists()
    # Baselined findings stop failing the run...
    masked = _run_cli(
        "repro.analysis.simflow", ["repro", "--baseline", str(snapshot)], tmp_path
    )
    assert masked.returncode == 0
    assert "clean" in masked.stdout
    # ...but a *new* finding still does.
    _write_bad(tmp_path, name="worse.py", body="def f(vpn, ppn):\n    return vpn + ppn\n")
    fresh = _run_cli(
        "repro.analysis.simflow", ["repro", "--baseline", str(snapshot)], tmp_path
    )
    assert fresh.returncode == 1
    assert "worse.py" in fresh.stdout
    assert "bad.py" not in fresh.stdout


def test_baseline_works_for_simlint_and_simrace_too(tmp_path):
    bad = tmp_path / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    # SL008 (mutable default) + SR001 (RMW across a yield) in one file.
    bad.write_text(
        "def worker(stats, lock, items=[]):\n"
        "    value = stats.hits\n"
        "    yield Delay(10)\n"
        "    stats.hits = value + 1\n"
    )
    for module in ("repro.analysis.simlint", "repro.analysis.simrace"):
        snapshot = tmp_path / f"{module.rsplit('.', 1)[-1]}.baseline.json"
        wrote = _run_cli(module, ["repro", "--write-baseline", str(snapshot)], tmp_path)
        assert wrote.returncode == 0
        masked = _run_cli(module, ["repro", "--baseline", str(snapshot)], tmp_path)
        assert masked.returncode == 0


# --------------------------------------------------------------------- #
# The `python -m repro analyze` umbrella
# --------------------------------------------------------------------- #


def test_analyze_umbrella_merges_all_three_tools(tmp_path):
    bad = tmp_path / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    # One file that trips all three families: SL008 mutable default,
    # SR001 cross-yield RMW, SF001 domain mixing.
    bad.write_text(
        "def worker(stats, lock, lpn, ppn, items=[]):\n"
        "    value = stats.hits\n"
        "    yield Delay(10)\n"
        "    stats.hits = value + 1\n"
        "    return lpn + ppn\n"
    )
    result = _run_cli("repro", ["analyze", "--json", "repro"], tmp_path)
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload["tool"] == "analyze"
    assert payload["schema_version"] == 1
    assert payload["count"] == len(payload["findings"])
    assert set(payload["by_tool"]) == {
        "simlint", "simrace", "simflow", "simeffect", "simcost", "simbatch",
    }
    found_codes = {f["code"] for f in payload["findings"]}
    assert "SL008" in found_codes
    assert "SR001" in found_codes
    assert "SF001" in found_codes
    for finding in payload["findings"]:
        assert set(finding) == {"tool", "path", "line", "col", "code", "message"}


def test_analyze_umbrella_clean_tree(tmp_path):
    good = tmp_path / "repro" / "sim" / "good.py"
    good.parent.mkdir(parents=True)
    good.write_text("def distance(lpn, other_lpn):\n    return lpn - other_lpn\n")
    result = _run_cli("repro", ["analyze", "repro"], tmp_path)
    assert result.returncode == 0
    assert "clean" in result.stdout


def test_analyze_umbrella_shares_one_baseline(tmp_path):
    bad = tmp_path / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "def worker(stats, lock, lpn, ppn, items=[]):\n"
        "    value = stats.hits\n"
        "    yield Delay(10)\n"
        "    stats.hits = value + 1\n"
        "    return lpn + ppn\n"
    )
    snapshot = tmp_path / "all.baseline.json"
    wrote = _run_cli(
        "repro", ["analyze", "repro", "--write-baseline", str(snapshot)], tmp_path
    )
    assert wrote.returncode == 0
    masked = _run_cli(
        "repro", ["analyze", "repro", "--baseline", str(snapshot)], tmp_path
    )
    assert masked.returncode == 0


def test_analyze_module_runs_standalone(tmp_path):
    good = tmp_path / "repro" / "sim" / "good.py"
    good.parent.mkdir(parents=True)
    good.write_text("def distance(lpn, other_lpn):\n    return lpn - other_lpn\n")
    result = _run_cli("repro.analysis.analyze", ["repro"], tmp_path)
    assert result.returncode == 0
    assert "clean" in result.stdout


# --------------------------------------------------------------------- #
# Repo gate
# --------------------------------------------------------------------- #


def test_repo_tree_is_simflow_clean():
    src = pathlib.Path(__file__).resolve().parents[1] / "src"
    violations = analyze_paths([str(src)])
    assert violations == [], "\n".join(v.format() for v in violations)
