"""Cache correctness: hits, the four miss triggers, and damage recovery.

The synthetic cells below count their executions so every test can
assert not just the ``cached`` flag but that the expensive function
genuinely did or did not run.
"""

import importlib
import sys
import textwrap

import pytest

from repro.config import FlatFlashConfig, LatencyConfig
from repro.sweep.cache import (
    CACHE_FORMAT,
    KeyBuilder,
    SweepCache,
    clear,
    config_fingerprint,
)
from repro.sweep.engine import run_sweep
from repro.sweep.model import CellResult
from repro.sweep.registry import Cell, Registry

CALLS = {"alpha": 0, "agg": 0}


def _cell_alpha(scale: int = 1) -> CellResult:
    CALLS["alpha"] += 1
    return CellResult(
        sections=[f"alpha section, scale {scale}\n"],
        rows=[{"scale": scale, "value": 10 * scale}],
        metrics={"value": 10 * scale},
    )


def _cell_agg(deps) -> CellResult:
    CALLS["agg"] += 1
    total = sum(row["value"] for dep in deps.values() for row in dep.rows)
    return CellResult(rows=[{"total": total}], metrics={"total": total})


def _registry(scale: int = 1) -> Registry:
    return Registry(
        [
            Cell("alpha", _cell_alpha, params={"scale": scale}),
            Cell("agg", _cell_agg, deps=("alpha",)),
        ]
    )


@pytest.fixture(autouse=True)
def _reset_calls():
    CALLS["alpha"] = 0
    CALLS["agg"] = 0


class TestEngineCaching:
    def test_hit_on_unchanged_rerun(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        first = run_sweep(_registry(), cache=cache)
        second = run_sweep(_registry(), cache=cache)
        assert [run.cached for run in first.runs] == [False, False]
        assert [run.cached for run in second.runs] == [True, True]
        assert CALLS == {"alpha": 1, "agg": 1}
        assert first.results["agg"].rows == second.results["agg"].rows

    def test_param_change_misses(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        run_sweep(_registry(scale=1), cache=cache)
        report = run_sweep(_registry(scale=2), cache=cache)
        assert not report.run_for("alpha").cached
        assert report.results["alpha"].rows == [{"scale": 2, "value": 20}]

    def test_dep_result_change_invalidates_aggregate(self, tmp_path):
        """The aggregate's params never changed — only its input did."""
        cache = SweepCache(tmp_path / "cache")
        run_sweep(_registry(scale=1), cache=cache)
        report = run_sweep(_registry(scale=3), cache=cache)
        assert not report.run_for("agg").cached
        assert report.results["agg"].rows == [{"total": 30}]

    def test_no_cache_recomputes_every_time(self, tmp_path):
        run_sweep(_registry(), cache=None)
        run_sweep(_registry(), cache=None)
        assert CALLS == {"alpha": 2, "agg": 2}
        assert not (tmp_path / "cache").exists()

    def test_corrupted_entry_recovers(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        run_sweep(_registry(), cache=cache)
        for key in cache.keys():
            cache._entry_path(key).write_bytes(b"\x00 definitely not a pickle")
        report = run_sweep(_registry(), cache=cache)
        assert [run.cached for run in report.runs] == [False, False]
        assert report.results["alpha"].rows == [{"scale": 1, "value": 10}]
        # The damaged entries were rewritten: a third run hits again.
        third = run_sweep(_registry(), cache=cache)
        assert [run.cached for run in third.runs] == [True, True]


class TestSweepCacheStore:
    def test_renamed_entry_is_not_served(self, tmp_path):
        """An entry whose recorded key disagrees with its address is stale."""
        cache = SweepCache(tmp_path)
        result = CellResult(rows=[{"x": 1}])
        cache.store("alpha", "a" * 64, result)
        (tmp_path / ("a" * 64 + ".pkl")).rename(tmp_path / ("b" * 64 + ".pkl"))
        assert cache.load("alpha", "b" * 64) is None

    def test_wrong_cell_name_is_not_served(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.store("alpha", "a" * 64, CellResult(rows=[{"x": 1}]))
        assert cache.load("beta", "a" * 64) is None

    def test_missing_entry_is_a_miss(self, tmp_path):
        assert SweepCache(tmp_path).load("alpha", "0" * 64) is None

    def test_clear_removes_entries(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.store("alpha", "a" * 64, CellResult())
        cache.store("beta", "c" * 64, CellResult())
        assert clear(tmp_path) == 2
        assert cache.keys() == []

    def test_format_bump_orphans_entries(self, tmp_path, monkeypatch):
        cache = SweepCache(tmp_path)
        cache.store("alpha", "a" * 64, CellResult(rows=[{"x": 1}]))
        monkeypatch.setattr("repro.sweep.cache.CACHE_FORMAT", CACHE_FORMAT + 1)
        assert cache.load("alpha", "a" * 64) is None


class TestKeyIngredients:
    def test_config_fingerprint_sees_latency_table(self):
        base = config_fingerprint(FlatFlashConfig())
        edited = config_fingerprint(
            FlatFlashConfig(latency=LatencyConfig(flash_read_page_ns=21_000))
        )
        assert base != edited

    def test_key_differs_across_configs(self):
        cell = Cell("alpha", _cell_alpha)
        default = KeyBuilder().key(cell, {})
        tweaked = KeyBuilder(
            config=FlatFlashConfig(latency=LatencyConfig(flash_read_page_ns=21_000))
        ).key(cell, {})
        assert default != tweaked

    def test_key_differs_across_dep_hashes(self):
        cell = Cell("agg", _cell_agg, deps=("alpha",))
        builder = KeyBuilder()
        assert builder.key(cell, {"alpha": "x" * 64}) != builder.key(
            cell, {"alpha": "y" * 64}
        )

    def test_source_edit_invalidates(self, tmp_path, monkeypatch):
        """Editing any module in the cell's import closure changes the key."""
        package = tmp_path / "fakepkg"
        package.mkdir()
        (package / "__init__.py").write_text("")
        (package / "helper.py").write_text("ANSWER = 41\n")
        (package / "cells.py").write_text(
            textwrap.dedent(
                """
                from fakepkg import helper

                def make():
                    return helper.ANSWER
                """
            )
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        module = importlib.import_module("fakepkg.cells")
        try:
            cell = Cell("fake", module.make)
            before = KeyBuilder(prefix="fakepkg").key(cell, {})
            # A fresh builder re-reads sources, exactly like a new sweep run.
            unchanged = KeyBuilder(prefix="fakepkg").key(cell, {})
            assert before == unchanged
            # Edit a transitively imported module, not the cell's own file.
            (package / "helper.py").write_text("ANSWER = 42\n")
            after = KeyBuilder(prefix="fakepkg").key(cell, {})
            assert before != after
        finally:
            for name in list(sys.modules):
                if name == "fakepkg" or name.startswith("fakepkg."):
                    del sys.modules[name]

    def test_closure_follows_transitive_imports(self):
        builder = KeyBuilder()
        closure = builder.module_closure("repro.experiments.fig8")
        assert "repro.experiments.fig8" in closure
        assert "repro.experiments.common" in closure
        assert "repro.config" in closure  # via common's transitive imports
