"""Tests for the cost, lifetime and reporting helpers."""

import pytest

from repro import FlatFlash, UnifiedMMap, small_config
from repro.analysis.cost import DollarCostModel, cost_effectiveness
from repro.analysis.lifetime import (
    flash_programs,
    lifetime_improvement,
    write_amplification,
)
from repro.analysis.report import Table, comparison_rows, format_ratio


class TestDollarCostModel:
    def test_hybrid_cost(self):
        model = DollarCostModel()
        assert model.hybrid_cost(dram_gb=2, ssd_gb=100) == 2 * 30 + 100 * 2

    def test_dram_only_cost_includes_base(self):
        model = DollarCostModel()
        assert model.dram_only_cost(32) == 32 * 30 + 1_500

    def test_negative_capacity_rejected(self):
        model = DollarCostModel()
        with pytest.raises(ValueError):
            model.hybrid_cost(-1, 0)
        with pytest.raises(ValueError):
            model.dram_only_cost(-1)

    def test_cost_effectiveness_row(self):
        row = cost_effectiveness(
            "GUPS",
            flatflash_elapsed_ns=900,
            dram_only_elapsed_ns=100,
            dram_gb=2,
            ssd_gb=32,
            dataset_gb=32,
        )
        assert row.slowdown == pytest.approx(9.0)
        assert row.cost_saving == pytest.approx((32 * 30 + 1_500) / (60 + 64))
        assert row.cost_effectiveness == pytest.approx(row.cost_saving / 9.0)

    def test_invalid_elapsed_rejected(self):
        with pytest.raises(ValueError):
            cost_effectiveness("x", 0, 10, 1, 1, 1)


class TestLifetime:
    def test_flash_programs_counted(self):
        system = FlatFlash(small_config())
        region = system.mmap(4)
        system.store(region.addr(0), 8)
        system.ssd.gc.flush_dirty()
        assert flash_programs(system) >= 4  # mapping programs + destage

    def test_write_amplification_at_least_one(self):
        system = FlatFlash(small_config())
        region = system.mmap(4)
        system.store(region.addr(0), 8)
        system.ssd.gc.flush_dirty()
        assert write_amplification(system) >= 1.0

    def test_lifetime_improvement_ratio(self):
        baseline = UnifiedMMap(small_config())
        flat = FlatFlash(small_config())
        for system in (baseline, flat):
            region = system.mmap(4)
            for page in range(4):
                system.store(region.page_addr(page, 0), 8)
        # Force comparable write-back for both.
        ratio = lifetime_improvement(baseline, flat)
        assert ratio > 0

    def test_idle_systems_report_one(self):
        a = FlatFlash(small_config())
        b = FlatFlash(small_config())
        assert lifetime_improvement(a, b) == 1.0


class TestReport:
    def test_format_ratio(self):
        assert format_ratio(2.345) == "2.3x"
        assert format_ratio(2.345, digits=2) == "2.35x"

    def test_table_renders_aligned(self):
        table = Table("Title", ["a", "bb"])
        table.add_row(1, "x")
        table.add_row(22, "yy")
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "Title"
        assert len({len(line) for line in lines[1:]}) == 1  # aligned widths

    def test_table_row_arity_checked(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_table_extend(self):
        table = Table("t", ["a"])
        table.extend([[1], [2]])
        assert len(table.rows) == 2

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table("t", [])

    def test_comparison_rows_annotates_ratios(self):
        cells = comparison_rows("label", [2.0, 4.0])
        assert cells[0] == "label"
        assert "2.00x" in cells[2]

    def test_comparison_rows_validation(self):
        with pytest.raises(ValueError):
            comparison_rows("l", [])
        with pytest.raises(ValueError):
            comparison_rows("l", [1.0], baseline_index=5)
