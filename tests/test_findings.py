"""Shared findings plumbing: baselines, stale suppressions, crash handling.

Covers the edge cases the per-tool suites don't: duplicate findings on
one line, findings that move between lines, baselines naming deleted
files, the ``SUP001`` stale-suppression audit, and the umbrella runner's
exit-code contract when an analyzer crashes mid-run.
"""

import argparse
import json
import pathlib
import subprocess
import sys

import pytest

from repro.analysis import analyze
from repro.analysis.findings import (
    ALL_CODES,
    UNUSED_SUPPRESSION_CODE,
    Violation,
    baseline_key,
    filter_baseline,
    load_baseline,
    parse_suppressions,
    strip_suppression_comments,
    unused_suppressions,
    write_baseline,
)

SRC = pathlib.Path(__file__).resolve().parents[1] / "src"


def _violation(path="repro/sim/x.py", line=5, col=0, code="SL001", message="msg"):
    return Violation(path, line, col, code, message)


# --------------------------------------------------------------------- #
# Baseline edge cases
# --------------------------------------------------------------------- #


class TestBaselineEdgeCases:
    def test_duplicate_findings_on_one_line_share_one_key(self, tmp_path):
        """Two identical findings at the same site collapse to one baseline
        entry, and the baseline still filters both occurrences."""
        twins = [_violation(), _violation()]
        snapshot = tmp_path / "baseline.json"
        write_baseline(str(snapshot), "simlint", twins)
        keys = load_baseline(str(snapshot))
        assert keys == {baseline_key(twins[0])}
        assert filter_baseline(twins, keys) == []

    def test_moved_finding_stays_baselined(self, tmp_path):
        """Keys are (path, code, message): a finding that drifts to another
        line after an unrelated edit stays filtered."""
        snapshot = tmp_path / "baseline.json"
        write_baseline(str(snapshot), "simlint", [_violation(line=5)])
        keys = load_baseline(str(snapshot))
        assert filter_baseline([_violation(line=50)], keys) == []
        assert filter_baseline([_violation(line=50, col=7)], keys) == []

    def test_message_change_unbaselines_a_finding(self, tmp_path):
        snapshot = tmp_path / "baseline.json"
        write_baseline(str(snapshot), "simlint", [_violation(message="old")])
        keys = load_baseline(str(snapshot))
        fresh = _violation(message="new")
        assert filter_baseline([fresh], keys) == [fresh]

    def test_deleted_file_entries_are_harmless(self, tmp_path):
        """Baseline entries for files that no longer produce findings (or
        no longer exist) are simply never matched."""
        snapshot = tmp_path / "baseline.json"
        write_baseline(
            str(snapshot),
            "simlint",
            [_violation(path="repro/sim/deleted.py"), _violation()],
        )
        keys = load_baseline(str(snapshot))
        live = [_violation(), _violation(path="repro/sim/other.py", code="SL002")]
        remaining = filter_baseline(live, keys)
        assert remaining == [live[1]]

    def test_empty_baseline_document_filters_nothing(self, tmp_path):
        snapshot = tmp_path / "empty.json"
        snapshot.write_text(json.dumps({"tool": "simlint", "findings": []}))
        keys = load_baseline(str(snapshot))
        v = _violation()
        assert filter_baseline([v], keys) == [v]


# --------------------------------------------------------------------- #
# Suppression stripping + stale-suppression detection (SUP001)
# --------------------------------------------------------------------- #


class TestSuppressionAudit:
    def test_strip_preserves_line_numbers(self):
        source = "a = 1\nb = 2  # simlint: disable=SL001\nc = 3\n"
        stripped = strip_suppression_comments(source, "simlint")
        assert len(stripped.splitlines()) == 3
        assert parse_suppressions(stripped.splitlines(), "simlint") == {}
        # the non-marker part of the line is intact
        assert stripped.splitlines()[1].startswith("b = 2  #")

    def test_strip_only_touches_the_named_tool(self):
        source = "x = 1  # simflow: disable=SF001\n"
        assert strip_suppression_comments(source, "simlint") == source.rstrip("\n")

    def test_stale_blanket_marker_is_flagged(self):
        lines = ["x = 1  # simlint: disable"]
        stale = unused_suppressions("p.py", lines, "simlint", [])
        assert [v.code for v in stale] == [UNUSED_SUPPRESSION_CODE]
        assert "no simlint finding" in stale[0].message

    def test_used_blanket_marker_is_quiet(self):
        lines = ["x = 1  # simlint: disable"]
        raw = [_violation(path="p.py", line=1)]
        assert unused_suppressions("p.py", lines, "simlint", raw) == []

    def test_partially_stale_code_list(self):
        lines = ["x = 1  # simlint: disable=SL001,SL009"]
        raw = [_violation(path="p.py", line=1, code="SL001")]
        stale = unused_suppressions("p.py", lines, "simlint", raw)
        assert len(stale) == 1
        assert "SL009" in stale[0].message
        assert "SL001" not in stale[0].message

    def test_findings_from_other_files_do_not_count(self):
        lines = ["x = 1  # simlint: disable=SL001"]
        raw = [_violation(path="other.py", line=1, code="SL001")]
        stale = unused_suppressions("p.py", lines, "simlint", raw)
        assert [v.code for v in stale] == [UNUSED_SUPPRESSION_CODE]

    def test_all_codes_marker_constant(self):
        table = parse_suppressions(["y = 2  # simrace: disable"], "simrace")
        assert table == {1: {ALL_CODES}}


# --------------------------------------------------------------------- #
# Umbrella: --check-suppressions end to end
# --------------------------------------------------------------------- #


def _run_analyze(args, tmp_path):
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis.analyze", *args],
        capture_output=True,
        text=True,
        cwd=tmp_path,
        env={"PYTHONPATH": str(SRC)},
    )


class TestCheckSuppressionsCLI:
    def test_stale_marker_fails_the_run(self, tmp_path):
        bad = tmp_path / "repro" / "sim" / "stale.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "def fine(a, b):\n"
            "    return a + b  # simlint: disable=SL003\n"
        )
        result = _run_analyze(["--check-suppressions", "repro"], tmp_path)
        assert result.returncode == 1
        assert "SUP001" in result.stdout
        assert "[simlint]" in result.stdout

    def test_used_marker_passes(self, tmp_path):
        # SL004: _us-suffixed timing name in sim scope — really fires here,
        # so its suppression is *used* and the audit stays quiet.
        used = tmp_path / "repro" / "sim" / "used.py"
        used.parent.mkdir(parents=True)
        used.write_text(
            "def cost(latency_ns):\n"
            "    latency_us = latency_ns // 1000  # simlint: disable=SL004\n"
            "    return latency_us\n"
        )
        plain = _run_analyze(["repro"], tmp_path)
        assert plain.returncode == 0, plain.stdout + plain.stderr
        audited = _run_analyze(["--check-suppressions", "repro"], tmp_path)
        assert audited.returncode == 0, audited.stdout + audited.stderr

    def test_repo_tree_has_no_stale_suppressions(self):
        stale, crashes = analyze.check_suppressions([str(SRC / "repro")])
        assert crashes == []
        assert stale == [], "\n".join(v.format() for v in stale)


# --------------------------------------------------------------------- #
# Crash handling: a crashing analyzer must not look like a clean pass
# --------------------------------------------------------------------- #


def _boom(path):
    raise RuntimeError("boom")


class TestCrashHandling:
    @pytest.fixture()
    def tree(self, tmp_path):
        good = tmp_path / "repro" / "sim" / "good.py"
        good.parent.mkdir(parents=True)
        good.write_text("def distance(a, b):\n    return a - b\n")
        return tmp_path

    def test_run_all_records_crashes(self, tree, monkeypatch):
        monkeypatch.setattr(
            analyze, "TOOLS", analyze.TOOLS + (("simboom", _boom),)
        )
        per_tool, files, crashes = analyze.run_all([str(tree / "repro")])
        assert files == 1
        assert len(crashes) == 1
        assert crashes[0].tool == "simboom"
        assert "RuntimeError: boom" in crashes[0].error
        # the other tools still report their (empty) results
        assert set(per_tool) == {
            "simlint", "simrace", "simflow", "simeffect", "simcost",
            "simbatch", "simboom",
        }

    def test_run_exits_2_on_crash(self, tree, monkeypatch, capsys):
        monkeypatch.setattr(
            analyze, "TOOLS", analyze.TOOLS + (("simboom", _boom),)
        )
        args = argparse.Namespace(
            paths=[str(tree / "repro")], json=False, check_suppressions=False,
            baseline=None, write_baseline=None,
        )
        assert analyze.run(args) == 2
        err = capsys.readouterr().err
        assert "CRASH" in err
        assert "NOT fully analyzed" in err

    def test_json_document_carries_crashes(self, tree, monkeypatch, capsys):
        monkeypatch.setattr(
            analyze, "TOOLS", analyze.TOOLS + (("simboom", _boom),)
        )
        args = argparse.Namespace(
            paths=[str(tree / "repro")], json=True, check_suppressions=False,
            baseline=None, write_baseline=None,
        )
        assert analyze.run(args) == 2
        payload = json.loads(capsys.readouterr().out)
        (crash,) = payload["crashes"]
        assert crash["tool"] == "simboom"
        assert "boom" in crash["error"]

    def test_clean_run_without_crashes_exits_0(self, tree):
        args = argparse.Namespace(
            paths=[str(tree / "repro")], json=False, check_suppressions=False,
            baseline=None, write_baseline=None,
        )
        assert analyze.run(args) == 0


# --------------------------------------------------------------------- #
# CLI edge cases shared by every analyzer family
# --------------------------------------------------------------------- #

#: (module, example rule code) for each analyzer CLI.
TOOL_CLIS = [
    ("simlint", "SL001"),
    ("simrace", "SR001"),
    ("simflow", "SF001"),
    ("simeffect", "SE001"),
    ("simcost", "SC001"),
    ("simbatch", "SB001"),
]


def _run_tool(tool, args, tmp_path):
    return subprocess.run(
        [sys.executable, "-m", f"repro.analysis.{tool}", *args],
        capture_output=True,
        text=True,
        cwd=tmp_path,
        env={"PYTHONPATH": str(SRC)},
    )


class TestSharedCLIEdgeCases:
    """Every tool must agree on exit codes for degenerate inputs:

    * an empty target directory is a *clean pass* (0), not an error;
    * an unreadable input is exit 2 with a message on stderr — never a
      silent "clean";
    * an unknown ``--select`` code is a usage error (argparse's exit 2).
    """

    @pytest.mark.parametrize("tool,_code", TOOL_CLIS)
    def test_empty_directory_is_clean(self, tool, _code, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        result = _run_tool(tool, [str(empty)], tmp_path)
        assert result.returncode == 0, result.stdout + result.stderr
        assert "no Python files" in result.stderr

    @pytest.mark.parametrize("tool,_code", TOOL_CLIS)
    def test_unreadable_file_exits_2(self, tool, _code, tmp_path):
        # A directory named *.py: collected by the file walk, unreadable
        # as source.  (chmod tricks don't work when tests run as root.)
        target = tmp_path / "tree"
        (target / "trap.py").mkdir(parents=True)
        result = _run_tool(tool, [str(target)], tmp_path)
        assert result.returncode == 2, result.stdout + result.stderr
        assert result.stderr.strip() != ""

    @pytest.mark.parametrize("tool,_code", TOOL_CLIS)
    def test_invalid_utf8_exits_2(self, tool, _code, tmp_path):
        target = tmp_path / "tree"
        target.mkdir()
        (target / "bad.py").write_bytes(b"x = 1\n\xff\xfe\n")
        result = _run_tool(tool, [str(target)], tmp_path)
        assert result.returncode == 2, result.stdout + result.stderr
        assert result.stderr.strip() != ""

    @pytest.mark.parametrize("tool,code", TOOL_CLIS)
    def test_unknown_select_code_is_usage_error(self, tool, code, tmp_path):
        target = tmp_path / "tree"
        target.mkdir()
        (target / "ok.py").write_text("x = 1\n")
        result = _run_tool(tool, ["--select", "ZZ999", str(target)], tmp_path)
        assert result.returncode == 2
        assert "unknown rule code" in result.stderr

    @pytest.mark.parametrize("tool,code", TOOL_CLIS)
    def test_known_select_code_and_json_shape(self, tool, code, tmp_path):
        target = tmp_path / "tree"
        target.mkdir()
        (target / "ok.py").write_text("x = 1\n")
        result = _run_tool(tool, ["--select", code, "--json", str(target)], tmp_path)
        assert result.returncode == 0, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        assert payload["tool"] == tool
        assert payload["count"] == 0
        assert payload["files_checked"] == 1
        assert payload["findings"] == []
