"""Tests for the NAND flash array model."""

import pytest

from repro.config import LatencyConfig
from repro.ssd.flash import FlashArray, FlashPageState


def make_flash(blocks=4, pages=8, page_size=256, track_data=True):
    return FlashArray(
        num_blocks=blocks,
        pages_per_block=pages,
        page_size=page_size,
        latency=LatencyConfig(),
        track_data=track_data,
    )


def test_geometry():
    flash = make_flash(blocks=4, pages=8)
    assert flash.total_pages == 32


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        make_flash(blocks=0)


def test_pages_start_erased():
    flash = make_flash()
    assert flash.state_of(0) is FlashPageState.ERASED


def test_program_then_read_round_trips_data():
    flash = make_flash()
    payload = bytes(range(256))
    flash.program(3, payload)
    op = flash.read(3)
    assert op.data == payload


def test_program_without_data_reads_zeros():
    flash = make_flash()
    flash.program(0)
    assert flash.read(0).data == b"\x00" * 256


def test_read_erased_page_returns_zeros():
    flash = make_flash()
    assert flash.read(5).data == b"\x00" * 256


def test_program_costs_program_latency():
    flash = make_flash()
    assert flash.program(0).latency_ns == LatencyConfig().flash_program_page_ns


def test_read_costs_read_latency():
    flash = make_flash()
    assert flash.read(0).latency_ns == LatencyConfig().flash_read_page_ns


def test_program_twice_without_erase_raises():
    flash = make_flash()
    flash.program(0)
    with pytest.raises(RuntimeError):
        flash.program(0)


def test_program_wrong_size_rejected():
    flash = make_flash()
    with pytest.raises(ValueError):
        flash.program(0, b"short")


def test_invalidate_marks_page():
    flash = make_flash()
    flash.program(0)
    flash.invalidate(0)
    assert flash.state_of(0) is FlashPageState.INVALID


def test_invalidate_non_programmed_raises():
    flash = make_flash()
    with pytest.raises(RuntimeError):
        flash.invalidate(0)


def test_erase_returns_block_to_erased():
    flash = make_flash(pages=4)
    for offset in range(4):
        flash.program(offset)
        flash.invalidate(offset)
    flash.erase(0)
    for offset in range(4):
        assert flash.state_of(offset) is FlashPageState.ERASED


def test_erase_with_valid_pages_raises():
    flash = make_flash()
    flash.program(0)
    with pytest.raises(RuntimeError):
        flash.erase(0)


def test_erase_increments_wear():
    flash = make_flash(pages=2)
    flash.program(0)
    flash.invalidate(0)
    flash.erase(0)
    assert flash.blocks[0].erase_count == 1
    assert flash.max_erase_count == 1
    assert flash.total_erases == 1


def test_erase_clears_data():
    flash = make_flash(pages=2)
    flash.program(0, bytes(256))
    flash.invalidate(0)
    flash.erase(0)
    flash.program(0)  # must be programmable again
    assert flash.read(0).data == b"\x00" * 256


def test_block_page_accounting():
    flash = make_flash(pages=4)
    flash.program(0)
    flash.program(1)
    flash.invalidate(1)
    block = flash.blocks[0]
    assert block.valid_pages == 1
    assert block.invalid_pages == 1
    assert block.erased_pages == 2


def test_out_of_range_ppn_rejected():
    flash = make_flash(blocks=1, pages=4)
    with pytest.raises(ValueError):
        flash.read(4)
    with pytest.raises(ValueError):
        flash.erase(1)


def test_program_counter():
    flash = make_flash()
    flash.program(0)
    flash.program(1)
    assert flash.total_programs == 2


def test_no_data_tracking_mode():
    flash = make_flash(track_data=False)
    flash.program(0, None)
    assert flash.read(0).data is None
