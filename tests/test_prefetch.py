"""Tests for the sequential-prefetch promotion extension."""

import numpy as np
import pytest

from repro import FlatFlash, small_config
from repro.config import PromotionConfig
from repro.workloads.synthetic import random_access, sequential_access


def make_system(prefetch=2, dram_pages=16):
    config = small_config()
    config.track_data = False
    config.geometry.dram_pages = dram_pages
    config.promotion.sequential_prefetch = prefetch
    return FlatFlash(config.validate())


def sweep(system, region, pages):
    """Touch one line of each page in ascending order."""
    for page in range(pages):
        system.load(region.page_addr(page, 0), 64)


def test_disabled_by_default():
    config = small_config()
    assert config.promotion.sequential_prefetch == 0
    system = FlatFlash(config)
    region = system.mmap(16)
    sweep(system, region, 10)
    assert system.stats.counters()["mem.prefetch_promotions"] == 0


def test_negative_prefetch_rejected():
    with pytest.raises(ValueError):
        PromotionConfig(sequential_prefetch=-1).validate()


def test_sequential_sweep_triggers_prefetch():
    system = make_system(prefetch=2)
    region = system.mmap(32)
    sweep(system, region, 12)
    assert system.stats.counters()["mem.prefetch_promotions"] > 0


def test_random_pattern_never_prefetches():
    system = make_system(prefetch=2)
    region = system.mmap(32)
    # Shuffled page order with no ascending runs of length >= 2.
    pages = [5, 1, 9, 3, 12, 7, 0, 10, 4, 8]
    for page in pages:
        system.load(region.page_addr(page, 0), 64)
    assert system.stats.counters()["mem.prefetch_promotions"] == 0


def test_intra_page_accesses_keep_run_alive():
    system = make_system(prefetch=2)
    region = system.mmap(16)
    for page in range(4):
        for line in range(3):  # several touches within each page
            system.load(region.page_addr(page, line * 64), 64)
    assert system.stats.counters()["mem.prefetch_promotions"] > 0


def test_prefetched_page_lands_in_dram():
    from repro.host.page_table import Domain

    system = make_system(prefetch=2)
    region = system.mmap(16)
    sweep(system, region, 6)
    system.quiesce()
    promoted = [
        vpn
        for vpn, pte in system.page_table.mapped_vpns().items()
        if pte.domain is Domain.DRAM
    ]
    assert promoted  # the stream pulled pages into DRAM ahead of itself


def test_prefetch_improves_sequential_latency():
    means = {}
    for prefetch in (0, 2):
        system = make_system(prefetch=prefetch, dram_pages=24)
        # Uncacheable so the comparison isolates the prefetcher.
        system.config.cacheable_mmio = False
        region = system.mmap(32)
        stats = sequential_access(
            system, region, 2_000, rng=np.random.default_rng(4)
        )
        means[prefetch] = stats.mean
    assert means[2] < means[0]


def test_prefetch_does_not_hurt_random_access():
    means = {}
    for prefetch in (0, 2):
        system = make_system(prefetch=prefetch, dram_pages=16)
        region = system.mmap(64)
        stats = random_access(system, region, 1_500, rng=np.random.default_rng(5))
        means[prefetch] = stats.mean
    assert means[2] <= means[0] * 1.05  # no regression beyond noise


def test_data_correct_with_prefetch():
    config = small_config()
    config.promotion.sequential_prefetch = 2
    system = FlatFlash(config.validate())
    region = system.mmap(16)
    for page in range(8):
        system.store(region.page_addr(page, 8), 8, bytes([page]) * 8)
    sweep(system, region, 8)
    system.quiesce()
    for page in range(8):
        assert system.load(region.page_addr(page, 8), 8).data == bytes([page]) * 8
