"""Tests for the file-system persistence engines."""

import pytest

from repro import FlatFlash, UnifiedMMap, small_config
from repro.apps.filesystem import (
    BlockJournalFS,
    ByteGranularFS,
    FileSystemKind,
    _journal_pages,
    make_filesystem,
)
from repro.workloads.filebench import CREATE_FILE, READ_FILE, repeated_ops, workload_by_name


def test_journal_page_counts_ordered_by_amplification():
    # For the same op, COW (BtrFS) >= physical journal (EXT4) >= logical (XFS).
    ext4 = _journal_pages(FileSystemKind.EXT4, CREATE_FILE)
    xfs = _journal_pages(FileSystemKind.XFS, CREATE_FILE)
    btrfs = _journal_pages(FileSystemKind.BTRFS, CREATE_FILE)
    assert btrfs >= ext4 > xfs


def test_read_only_op_needs_no_journal():
    for kind in FileSystemKind:
        assert _journal_pages(kind, READ_FILE) == 0


def test_make_filesystem_picks_backend():
    flat = make_filesystem(FileSystemKind.EXT4, FlatFlash(small_config()))
    block = make_filesystem(FileSystemKind.EXT4, UnifiedMMap(small_config()))
    assert isinstance(flat, ByteGranularFS)
    assert isinstance(block, BlockJournalFS)


def test_byte_backend_requires_flatflash():
    with pytest.raises(TypeError):
        make_filesystem(
            FileSystemKind.EXT4, UnifiedMMap(small_config()), byte_granular=True
        )


def test_block_run_produces_flash_writes():
    system = UnifiedMMap(small_config())
    filesystem = make_filesystem(FileSystemKind.EXT4, system)
    outcome = filesystem.run(repeated_ops(CREATE_FILE, 10))
    assert outcome.operations == 10
    assert outcome.flash_page_writes >= 10  # journal amplification
    assert outcome.elapsed_ns > 0


def test_byte_backend_is_faster_per_op():
    flat_system = FlatFlash(small_config())
    block_system = UnifiedMMap(small_config())
    flat = make_filesystem(FileSystemKind.EXT4, flat_system)
    block = make_filesystem(FileSystemKind.EXT4, block_system)
    stream = repeated_ops(CREATE_FILE, 20)
    flat_result = flat.run(stream)
    block_result = block.run(stream)
    assert flat_result.mean_op_ns < block_result.mean_op_ns


def test_byte_backend_reduces_flash_writes():
    flat = make_filesystem(FileSystemKind.BTRFS, FlatFlash(small_config()))
    block = make_filesystem(FileSystemKind.BTRFS, UnifiedMMap(small_config()))
    stream = repeated_ops(CREATE_FILE, 20)
    flat_writes = flat.run(stream).flash_page_writes
    block_writes = block.run(stream).flash_page_writes
    assert flat_writes < block_writes


def test_btrfs_block_costs_more_than_xfs():
    xfs = make_filesystem(FileSystemKind.XFS, UnifiedMMap(small_config()))
    btrfs = make_filesystem(FileSystemKind.BTRFS, UnifiedMMap(small_config()))
    stream = repeated_ops(CREATE_FILE, 15)
    assert btrfs.run(stream).mean_op_ns > xfs.run(stream).mean_op_ns


def test_all_five_workloads_run_on_both_backends():
    for name in ("CreateFile", "RenameFile", "CreateDirectory", "VarMail", "WebServer"):
        for system_cls in (FlatFlash, UnifiedMMap):
            system = system_cls(small_config())
            filesystem = make_filesystem(FileSystemKind.EXT4, system)
            outcome = filesystem.run(workload_by_name(name, 8))
            assert outcome.operations == 8


def test_ops_per_sec_metric():
    system = FlatFlash(small_config())
    filesystem = make_filesystem(FileSystemKind.EXT4, system)
    outcome = filesystem.run(repeated_ops(CREATE_FILE, 5))
    assert outcome.ops_per_sec == pytest.approx(
        outcome.operations * 1e9 / outcome.elapsed_ns
    )
