"""simlint rule tests: one violating and one clean fixture per rule.

Each snippet is linted as if it lived at ``repro/sim/fake.py`` (inside the
simulation scope) unless the test is specifically about scope gating.
"""

import pathlib
import subprocess
import sys
import textwrap

from repro.analysis.simlint import RULES, Violation, lint_source
from repro.analysis.simlint.engine import infer_sim_scope

SIM_PATH = "repro/sim/fake.py"


def codes(violations):
    return [v.code for v in violations]


def lint(snippet, path=SIM_PATH, select=None):
    return lint_source(textwrap.dedent(snippet), path=path, select=select)


# --------------------------------------------------------------------- #
# SL000: syntax errors
# --------------------------------------------------------------------- #


def test_sl000_syntax_error_is_reported_not_raised():
    violations = lint("def broken(:\n")
    assert codes(violations) == ["SL000"]
    assert violations[0].line == 1


# --------------------------------------------------------------------- #
# SL001: wall-clock time
# --------------------------------------------------------------------- #


def test_sl001_flags_time_time():
    violations = lint(
        """
        import time

        def stamp():
            return time.time()
        """,
        select=["SL001"],
    )
    assert codes(violations) == ["SL001"]
    assert violations[0].line == 5
    assert "SimClock" in violations[0].message


def test_sl001_flags_datetime_now():
    violations = lint(
        """
        import datetime

        def stamp():
            return datetime.datetime.now()
        """,
        select=["SL001"],
    )
    assert codes(violations) == ["SL001"]
    assert violations[0].line == 5


def test_sl001_clean_simclock_usage():
    violations = lint(
        """
        def stamp(clock):
            clock.advance(125)
            return clock.now
        """,
        select=["SL001"],
    )
    assert violations == []


def test_sl001_skipped_outside_sim_scope():
    snippet = """
        import time

        def stamp():
            return time.time()
        """
    assert lint(snippet, path="repro/experiments/plot.py", select=["SL001"]) == []
    assert codes(lint(snippet, path="repro/ssd/ftl.py", select=["SL001"])) == ["SL001"]


# --------------------------------------------------------------------- #
# SL002: unseeded RNG
# --------------------------------------------------------------------- #


def test_sl002_flags_stdlib_global_rng():
    violations = lint(
        """
        import random

        def pick(items):
            return random.choice(items)
        """,
        select=["SL002"],
    )
    assert codes(violations) == ["SL002"]
    assert violations[0].line == 5


def test_sl002_flags_unseeded_default_rng():
    violations = lint(
        """
        import numpy as np

        def make_rng():
            return np.random.default_rng()
        """,
        select=["SL002"],
    )
    assert codes(violations) == ["SL002"]
    assert violations[0].line == 5
    assert "seed" in violations[0].message


def test_sl002_clean_seeded_default_rng():
    violations = lint(
        """
        import numpy as np

        def make_rng(seed):
            return np.random.default_rng(seed)
        """,
        select=["SL002"],
    )
    assert violations == []


def test_sl002_flags_bare_np_random_alias():
    violations = lint(
        """
        import numpy as np

        def pick_rng(rng=None):
            return rng or np.random
        """,
        select=["SL002"],
    )
    assert codes(violations) == ["SL002"]
    assert "bare np.random" in violations[0].message


def test_sl002_flags_any_np_random_call_outside_allowlist():
    # exponential is not in the historical legacy list: the namespace is
    # flagged wholesale now, not function by function.
    violations = lint(
        """
        import numpy as np

        def draw():
            return np.random.exponential(2.0)
        """,
        select=["SL002"],
    )
    assert codes(violations) == ["SL002"]


def test_sl002_clean_explicit_bit_generator():
    violations = lint(
        """
        import numpy as np

        def make_rng(seed):
            return np.random.Generator(np.random.PCG64(seed))
        """,
        select=["SL002"],
    )
    assert violations == []


# --------------------------------------------------------------------- #
# SL003: float division feeding latency
# --------------------------------------------------------------------- #


def test_sl003_flags_division_into_ns_name():
    violations = lint(
        """
        def cost(total, n):
            per_op_ns = total / n
            return per_op_ns
        """,
        select=["SL003"],
    )
    assert codes(violations) == ["SL003"]
    assert violations[0].line == 3


def test_sl003_flags_division_inside_delay():
    violations = lint(
        """
        def process(total, n):
            yield Delay(total / n)
        """,
        select=["SL003"],
    )
    assert codes(violations) == ["SL003"]
    assert violations[0].line == 3


def test_sl003_flags_division_in_cost_return():
    violations = lint(
        """
        def transfer_cost(size, width):
            return size / width
        """,
        select=["SL003"],
    )
    assert codes(violations) == ["SL003"]
    assert violations[0].line == 3


def test_sl003_clean_floor_division():
    violations = lint(
        """
        def cost(total, n):
            per_op_ns = total // n
            yield Delay(total // n)
            return per_op_ns
        """,
        select=["SL003"],
    )
    assert violations == []


# --------------------------------------------------------------------- #
# SL004: non-ns unit suffixes
# --------------------------------------------------------------------- #


def test_sl004_flags_us_assignment():
    violations = lint(
        """
        def configure():
            timeout_us = 100
            return timeout_us
        """,
        select=["SL004"],
    )
    assert codes(violations) == ["SL004"]
    assert violations[0].line == 3


def test_sl004_flags_ms_parameter():
    violations = lint(
        """
        def wait(delay_ms):
            return delay_ms
        """,
        select=["SL004"],
    )
    assert codes(violations) == ["SL004"]
    assert violations[0].line == 2


def test_sl004_clean_ns_names_and_conversion_constants():
    violations = lint(
        """
        NS_PER_US = 1000

        def wait(delay_ns):
            timeout_ns = delay_ns * 2
            return timeout_ns
        """,
        select=["SL004"],
    )
    assert violations == []


def test_sl004_skipped_outside_sim_scope():
    snippet = """
        def wait(delay_ms):
            return delay_ms
        """
    assert lint(snippet, path="repro/workloads/gen.py", select=["SL004"]) == []


# --------------------------------------------------------------------- #
# SL005: unknown yields in DES processes
# --------------------------------------------------------------------- #


def test_sl005_flags_non_command_yield():
    violations = lint(
        """
        def process(lock):
            yield Delay(10)
            yield 42
        """,
        select=["SL005"],
    )
    assert codes(violations) == ["SL005"]
    assert violations[0].line == 4


def test_sl005_flags_unknown_call_yield():
    violations = lint(
        """
        def process(lock):
            yield Acquire(lock)
            yield Sleep(10)
            yield Release(lock)
        """,
        select=["SL005"],
    )
    assert codes(violations) == ["SL005"]
    assert violations[0].line == 4
    assert "Sleep" in violations[0].message


def test_sl005_clean_command_only_process():
    violations = lint(
        """
        def process(lock, cmd):
            yield Acquire(lock)
            yield Delay(10)
            yield cmd
            yield Release(lock)
        """,
        select=["SL005"],
    )
    assert violations == []


def test_sl005_ignores_plain_generators():
    violations = lint(
        """
        def numbers():
            yield 1
            yield 2
        """,
        select=["SL005"],
    )
    assert violations == []


# --------------------------------------------------------------------- #
# SL006: lock balance
# --------------------------------------------------------------------- #


def test_sl006_flags_acquire_without_release():
    violations = lint(
        """
        def process(lock):
            yield Acquire(lock)
            yield Delay(10)
        """,
        select=["SL006"],
    )
    assert codes(violations) == ["SL006"]
    assert violations[0].line == 3
    assert "never released" in violations[0].message


def test_sl006_flags_release_missing_on_every_path():
    violations = lint(
        """
        def process(lock, fast):
            yield Acquire(lock)
            if fast:
                yield Delay(1)
            else:
                yield Delay(10)
            yield Delay(5)
        """,
        select=["SL006"],
    )
    assert codes(violations) == ["SL006"]
    assert violations[0].line == 3


def test_sl006_clean_balanced_process():
    violations = lint(
        """
        def process(lock):
            yield Acquire(lock)
            yield Delay(10)
            yield Release(lock)
        """,
        select=["SL006"],
    )
    assert violations == []


def test_sl006_clean_conditional_acquire_release_pair():
    # The database app acquires and releases under the same condition —
    # balanced on every path, so the rule must stay quiet.
    violations = lint(
        """
        def commit(self, lock, centralized):
            if centralized:
                yield Acquire(lock)
            yield Delay(10)
            if centralized:
                yield Release(lock)
        """,
        select=["SL006"],
    )
    assert violations == []


def test_sl006_clean_early_return_after_release():
    violations = lint(
        """
        def process(lock, flag):
            yield Acquire(lock)
            if flag:
                yield Release(lock)
                return
            yield Delay(5)
            yield Release(lock)
        """,
        select=["SL006"],
    )
    assert violations == []


def test_sl006_flags_slot_leak():
    violations = lint(
        """
        def process(sem):
            yield AcquireSlot(sem)
            yield Delay(10)
        """,
        select=["SL006"],
    )
    assert codes(violations) == ["SL006"]
    assert violations[0].line == 3
    assert "slot" in violations[0].message


# --------------------------------------------------------------------- #
# SL007: undeclared stats attributes
# --------------------------------------------------------------------- #


def test_sl007_flags_typoed_counter():
    violations = lint(
        """
        class Device:
            def __init__(self, stats):
                self.reads = stats.counter("reads")

            def read(self):
                self.reeds.add()
        """,
        select=["SL007"],
    )
    assert codes(violations) == ["SL007"]
    assert violations[0].line == 7
    assert "reeds" in violations[0].message


def test_sl007_clean_declared_counter():
    violations = lint(
        """
        class Device:
            def __init__(self, stats):
                self.reads = stats.counter("reads")

            def read(self):
                self.reads.add()
        """,
        select=["SL007"],
    )
    assert violations == []


def test_sl007_resolves_in_module_base_classes():
    violations = lint(
        """
        class Base:
            def __init__(self, stats):
                self.hits = stats.counter("hits")

        class Cache(Base):
            def lookup(self):
                self.hits.add()
        """,
        select=["SL007"],
    )
    assert violations == []


def test_sl007_skips_classes_with_imported_bases():
    violations = lint(
        """
        from somewhere import External

        class Cache(External):
            def lookup(self):
                self.hits.add()
        """,
        select=["SL007"],
    )
    assert violations == []


# --------------------------------------------------------------------- #
# SL008: mutable default arguments
# --------------------------------------------------------------------- #


def test_sl008_flags_list_default():
    violations = lint(
        """
        def gather(items=[]):
            return items
        """,
        select=["SL008"],
    )
    assert codes(violations) == ["SL008"]
    assert violations[0].line == 2


def test_sl008_flags_dict_call_default():
    violations = lint(
        """
        def gather(*, table=dict()):
            return table
        """,
        select=["SL008"],
    )
    assert codes(violations) == ["SL008"]
    assert violations[0].line == 2


def test_sl008_clean_none_default():
    violations = lint(
        """
        def gather(items=None):
            return list(items or ())
        """,
        select=["SL008"],
    )
    assert violations == []


# --------------------------------------------------------------------- #
# SL009: fault draws must come from the injected seeded RNG
# --------------------------------------------------------------------- #

FAULTS_PATH = "repro/faults/chaos.py"


def test_sl009_flags_stdlib_random_import():
    violations = lint(
        """
        import random

        def roll():
            return random.random()
        """,
        path=FAULTS_PATH,
        select=["SL009"],
    )
    assert codes(violations) == ["SL009"]


def test_sl009_flags_unseeded_default_rng():
    violations = lint(
        """
        import numpy as np

        def make_stream():
            return np.random.default_rng()
        """,
        path=FAULTS_PATH,
        select=["SL009"],
    )
    assert codes(violations) == ["SL009"]


def test_sl009_flags_legacy_numpy_global():
    violations = lint(
        """
        import numpy as np

        def roll():
            return np.random.uniform()
        """,
        path=FAULTS_PATH,
        select=["SL009"],
    )
    assert codes(violations) == ["SL009"]


def test_sl009_clean_seeded_rng():
    violations = lint(
        """
        import numpy as np

        def make_stream(seed, site_hash):
            return np.random.default_rng((seed, site_hash))
        """,
        path=FAULTS_PATH,
        select=["SL009"],
    )
    assert violations == []


def test_sl009_flags_bare_np_random_alias():
    violations = lint(
        """
        import numpy as np

        def stream_for(site, rng=None):
            return rng if rng is not None else np.random
        """,
        path=FAULTS_PATH,
        select=["SL009"],
    )
    assert codes(violations) == ["SL009"]
    assert "bare np.random" in violations[0].message


def test_sl009_only_applies_inside_faults_package():
    snippet = """
        import random

        def roll():
            return random.random()
        """
    assert lint(snippet, path="repro/workloads/gen.py", select=["SL009"]) == []
    assert codes(lint(snippet, path=FAULTS_PATH, select=["SL009"])) == ["SL009"]


# --------------------------------------------------------------------- #
# Suppression and scope machinery
# --------------------------------------------------------------------- #


def test_suppression_comment_silences_one_code():
    violations = lint(
        """
        def gather(items=[]):  # simlint: disable=SL008
            return items
        """,
    )
    assert violations == []


def test_suppression_without_codes_silences_everything():
    violations = lint(
        """
        def gather(items=[]):  # simlint: disable
            return items
        """,
    )
    assert violations == []


def test_suppression_for_other_code_does_not_silence():
    violations = lint(
        """
        def gather(items=[]):  # simlint: disable=SL001
            return items
        """,
    )
    assert codes(violations) == ["SL008"]


def test_infer_sim_scope():
    assert infer_sim_scope("src/repro/sim/clock.py")
    assert infer_sim_scope("repro/interconnect/pcie.py")
    assert not infer_sim_scope("src/repro/experiments/fig7.py")
    assert not infer_sim_scope("tests/test_clock.py")


def test_rule_catalogue_is_complete():
    assert [rule.code for rule in RULES] == [
        "SL001",
        "SL002",
        "SL003",
        "SL004",
        "SL005",
        "SL006",
        "SL007",
        "SL008",
        "SL009",
    ]
    for rule in RULES:
        assert rule.title
        assert rule.explanation


def test_violation_format():
    violation = Violation("repro/sim/x.py", 7, 4, "SL003", "float division")
    assert violation.format() == "repro/sim/x.py:7:4: SL003 float division"


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #


def _run_cli(args, tmp_path):
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis.simlint", *args],
        capture_output=True,
        text=True,
        cwd=tmp_path,
        env={"PYTHONPATH": str(pathlib.Path(__file__).resolve().parents[1] / "src")},
    )


def test_cli_exits_nonzero_on_violation(tmp_path):
    bad = tmp_path / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def f(items=[]):\n    return items\n")
    result = _run_cli(["repro"], tmp_path)
    assert result.returncode == 1
    assert "SL008" in result.stdout


def test_cli_exits_zero_on_clean_tree(tmp_path):
    good = tmp_path / "repro" / "sim" / "good.py"
    good.parent.mkdir(parents=True)
    good.write_text("def f(items=None):\n    return items\n")
    result = _run_cli(["repro"], tmp_path)
    assert result.returncode == 0
    assert "clean" in result.stdout


def test_cli_list_rules(tmp_path):
    result = _run_cli(["--list-rules"], tmp_path)
    assert result.returncode == 0
    for code in ("SL001", "SL008"):
        assert code in result.stdout


def test_repo_tree_is_simlint_clean():
    src = pathlib.Path(__file__).resolve().parents[1] / "src"
    from repro.analysis.simlint import lint_paths

    violations = lint_paths([str(src)])
    assert violations == [], "\n".join(v.format() for v in violations)
