"""Property-based tests: the hierarchy is a correct memory, always.

The defining invariant of every memory system under test: an arbitrary
interleaving of loads and stores behaves exactly like a flat byte array,
regardless of promotions, evictions, PLB windows, SSD-Cache churn and GC
happening underneath.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import DRAMOnly, FlatFlash, TraditionalStack, UnifiedMMap, small_config

PAGES = 12
SIZE = PAGES * 4_096

# (offset, length, value) triples; value None means load-and-check.
operations = st.lists(
    st.tuples(
        st.integers(0, SIZE - 16),
        st.sampled_from([1, 4, 8, 16]),
        st.one_of(st.none(), st.integers(0, 255)),
    ),
    min_size=1,
    max_size=120,
)


def run_against_model(system_cls, ops):
    system = system_cls(small_config())
    region = system.mmap(PAGES)
    model = bytearray(SIZE)
    for offset, length, value in ops:
        if value is None:
            data = system.load(region.addr(offset), length).data
            assert data == bytes(model[offset : offset + length]), (
                f"{system.name} diverged at [{offset}, {offset + length})"
            )
        else:
            payload = bytes([value]) * length
            system.store(region.addr(offset), length, payload)
            model[offset : offset + length] = payload
    # Final sweep: every page must match the model byte for byte (full-page
    # loads, so promotion/PLB merge bugs anywhere in a page are caught).
    for page in range(PAGES):
        data = system.load(region.addr(page * 4_096), 4_096).data
        assert data == bytes(model[page * 4_096 : (page + 1) * 4_096])


@settings(deadline=None, max_examples=40)
@given(operations)
def test_flatflash_is_a_correct_memory(ops):
    run_against_model(FlatFlash, ops)


@settings(deadline=None, max_examples=25)
@given(operations)
def test_unified_mmap_is_a_correct_memory(ops):
    run_against_model(UnifiedMMap, ops)


@settings(deadline=None, max_examples=25)
@given(operations)
def test_traditional_stack_is_a_correct_memory(ops):
    run_against_model(TraditionalStack, ops)


@settings(deadline=None, max_examples=15)
@given(operations)
def test_dram_only_is_a_correct_memory(ops):
    run_against_model(DRAMOnly, ops)


@settings(deadline=None, max_examples=20)
@given(
    st.lists(st.tuples(st.integers(0, PAGES - 1), st.integers(0, 255)), min_size=8, max_size=60),
    st.integers(0, 2**32 - 1),
)
def test_promotion_eviction_churn_preserves_data(writes, seed):
    """Hammer pages so hard that promotions and evictions must happen, then
    verify every page still reads back its last written value."""
    system = FlatFlash(small_config())
    region = system.mmap(PAGES)
    model = {}
    rng = np.random.default_rng(seed)
    for page, value in writes:
        payload = bytes([value]) * 8
        system.store(region.page_addr(page, 16), 8, payload)
        model[page] = payload
        # Random extra touches drive the promotion counters.
        for _ in range(int(rng.integers(0, 6))):
            line = int(rng.integers(0, 64))
            system.load(region.page_addr(page, line * 64), 64)
    system.quiesce()
    for page, payload in model.items():
        assert system.load(region.page_addr(page, 16), 8).data == payload


@settings(deadline=None, max_examples=20)
@given(st.integers(0, 2**32 - 1))
def test_clock_monotone_and_background_separate(seed):
    system = FlatFlash(small_config())
    region = system.mmap(PAGES)
    rng = np.random.default_rng(seed)
    last = system.clock.now
    for _ in range(100):
        offset = int(rng.integers(0, SIZE - 8))
        if rng.random() < 0.5:
            system.load(region.addr(offset), 8)
        else:
            system.store(region.addr(offset), 8)
        assert system.clock.now >= last
        last = system.clock.now
    assert system.background_ns >= 0


@settings(deadline=None, max_examples=15)
@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 255), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
def test_crash_recovery_respects_fences(script):
    """Persistence property: after a crash, every page holds the value of
    its last *fenced* write; unfenced tails roll back."""
    from repro.core.persistence import create_pmem_region

    system = FlatFlash(small_config())
    pmem = create_pmem_region(system, num_pages=4)
    durable = {}
    pending = {}
    for page, value, fence in script:
        payload = bytes([value]) * 8
        pmem.persist_store(page * 4_096, 8, payload)
        pending[page] = payload
        if fence:
            pmem.commit()
            durable.update(pending)
            pending.clear()
    system.ssd.crash()
    for page in range(4):
        expected = durable.get(page, b"\x00" * 8)
        assert pmem.recover_bytes(page * 4_096, 8) == expected
