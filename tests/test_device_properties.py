"""Device-level property tests: the SSD is a correct store under churn.

These drive the ByteAddressableSSD directly (below the memory systems)
with arbitrary interleavings of MMIO reads/writes, page writes, TRIMs and
GC, checking byte-exact contents against a dict model.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import small_config
from repro.ssd.device import ByteAddressableSSD

LPNS = 12
PAGE = 4_096


def make_device(cache_pages=8):
    config = small_config()
    config.geometry.ssd_cache_pages = cache_pages
    config.geometry.ssd_cache_ways = 4
    return ByteAddressableSSD(config.validate())


operations = st.lists(
    st.tuples(
        st.sampled_from(["mmio_write", "mmio_read", "page_write", "trim", "flush", "gc"]),
        st.integers(0, LPNS - 1),
        st.integers(0, PAGE - 16),
        st.integers(0, 255),
    ),
    min_size=1,
    max_size=120,
)


@settings(deadline=None, max_examples=30)
@given(operations)
def test_device_matches_dict_model(ops):
    device = make_device()
    pages = {}
    for lpn in range(LPNS):
        device.map_page(lpn)
        pages[lpn] = bytearray(PAGE)
    model_mapped = set(range(LPNS))
    for op, lpn, offset, value in ops:
        host_page = device.host_page_of(lpn) if lpn in model_mapped else None
        if op == "mmio_write" and host_page is not None:
            payload = bytes([value]) * 16
            device.mmio_write(host_page, offset, 16, payload)
            pages[lpn][offset : offset + 16] = payload
        elif op == "mmio_read" and host_page is not None:
            data = device.mmio_read(host_page, offset, 16).data
            assert data == bytes(pages[lpn][offset : offset + 16])
        elif op == "page_write" and host_page is not None:
            payload = bytes([value]) * PAGE
            device.write_page(lpn, payload)
            pages[lpn][:] = payload
        elif op == "trim" and host_page is not None:
            device.trim(lpn)
            model_mapped.discard(lpn)
        elif op == "flush":
            device.gc.flush_dirty()
        elif op == "gc" and device.ftl.select_victim() is not None:
            try:
                device.ftl.collect_garbage()
            except Exception:  # noqa: BLE001 - OutOfSpace acceptable here
                pass
    # Final check: every still-mapped page reads back its model bytes.
    for lpn in model_mapped:
        host_page = device.host_page_of(lpn)
        data = device.mmio_read(host_page, 0, PAGE).data
        assert data == bytes(pages[lpn]), f"lpn {lpn} diverged"


@settings(deadline=None, max_examples=20)
@given(
    st.lists(st.tuples(st.integers(0, LPNS - 1), st.integers(0, 255)), min_size=5, max_size=80),
)
def test_heavy_overwrite_churn_with_tiny_cache(writes):
    """A 4-page SSD-Cache forces constant eviction/destage; GC runs under
    pressure.  The newest write must always win."""
    device = make_device(cache_pages=4)
    model = {}
    for lpn in range(LPNS):
        device.map_page(lpn)
    for lpn, value in writes:
        payload = bytes([value]) * 32
        device.mmio_write(device.host_page_of(lpn), 64, 32, payload)
        model[lpn] = payload
    for lpn, payload in model.items():
        data = device.mmio_read(device.host_page_of(lpn), 64, 32).data
        assert data == payload


@settings(deadline=None, max_examples=20)
@given(st.integers(0, 2**32 - 1))
def test_flash_invariants_after_random_workload(seed):
    """Structural invariants of the flash/FTL after arbitrary churn."""
    rng = np.random.default_rng(seed)
    device = make_device()
    for lpn in range(LPNS):
        device.map_page(lpn)
    for _ in range(150):
        lpn = int(rng.integers(0, LPNS))
        action = rng.random()
        if action < 0.6:
            device.mmio_write(device.host_page_of(lpn), 0, 8)
        elif action < 0.8:
            device.write_page(lpn, None)
        else:
            device.gc.flush_dirty(limit=2)
    ftl = device.ftl
    # Mapping and reverse mapping are mutual inverses over programmed pages.
    assert len(ftl.mapping) == len(ftl.reverse)
    for lpn, ppn in ftl.mapping.items():
        assert ftl.reverse[ppn] == lpn
        assert device.flash.state_of(ppn).value == "programmed"
    # No block both free and holding valid pages.
    for block_index in ftl._free_blocks:
        assert device.flash.blocks[block_index].valid_pages == 0
