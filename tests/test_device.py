"""Tests for the byte-addressable SSD device."""

import pytest

from repro.config import small_config
from repro.ssd.device import ByteAddressableSSD
from repro.units import HostPage


@pytest.fixture
def device():
    return ByteAddressableSSD(small_config())


@pytest.fixture
def mapped(device):
    host_page, _cost = device.map_page(0)
    return device, host_page


class TestMapping:
    def test_map_page_returns_host_page_and_cost(self, device):
        host_page, cost = device.map_page(0)
        assert cost > 0  # first touch programs flash
        assert device.resolve_lpn(host_page) == 0

    def test_map_same_page_twice_is_stable(self, device):
        first, _ = device.map_page(0)
        second, cost = device.map_page(0)
        assert first == second
        assert cost == 0

    def test_host_merged_mode_exposes_ppns(self, device):
        host_page, _ = device.map_page(5)
        # The BAR page number *is* the ppn — asserted through the
        # sanctioned pun cast so the domain tags agree.
        assert HostPage(device.ftl.lookup(5)) == host_page

    def test_device_ftl_mode_exposes_lpns(self):
        device = ByteAddressableSSD(small_config(), host_merged_ftl=False)
        host_page, _ = device.map_page(5)
        assert host_page == 5

    def test_bar_window_spans_flash(self, device):
        assert device.bar.size == device.flash.total_pages * 4096


class TestMMIO:
    def test_read_miss_then_hit(self, mapped):
        device, page = mapped
        miss = device.mmio_read(page, 0, 64)
        assert not miss.cache_hit
        hit = device.mmio_read(page, 0, 64)
        assert hit.cache_hit
        assert hit.latency_ns < miss.latency_ns

    def test_write_then_read_round_trips(self, mapped):
        device, page = mapped
        device.mmio_write(page, 100, 4, b"abcd")
        result = device.mmio_read(page, 100, 4)
        assert result.data == b"abcd"

    def test_write_hit_cost_is_posted(self, mapped):
        device, page = mapped
        device.mmio_read(page, 0, 64)  # fill
        result = device.mmio_write(page, 0, 64)
        assert result.latency_ns == device.config.latency.mmio_write_cacheline_ns

    def test_read_hit_cost_is_one_round_trip(self, mapped):
        device, page = mapped
        device.mmio_read(page, 0, 64)
        result = device.mmio_read(page, 64, 64)
        assert result.latency_ns == device.config.latency.mmio_read_cacheline_ns

    def test_wrong_data_length_rejected(self, mapped):
        device, page = mapped
        with pytest.raises(ValueError):
            device.mmio_write(page, 0, 8, b"too long for size")

    def test_atomic_marks_durable(self, mapped):
        device, page = mapped
        device.mmio_atomic(page, 0, 8)
        assert device.stats.counters()["ssd.durable_writes"] == 1

    def test_unmapped_host_page_raises(self, device):
        with pytest.raises(KeyError):
            device.mmio_read(12345, 0, 64)


class TestPromotionInterface:
    def test_read_page_for_promotion_returns_fresh_data(self, mapped):
        device, page = mapped
        device.mmio_write(page, 0, 4, b"wxyz")
        data, dirty, cost = device.read_page_for_promotion(page)
        assert data[:4] == b"wxyz"
        assert dirty  # the cache copy was dirty
        assert cost > 0

    def test_promotion_invalidates_cache_copy(self, mapped):
        device, page = mapped
        device.mmio_read(page, 0, 64)
        device.read_page_for_promotion(page)
        assert not device.cache.contains(0)

    def test_clean_promotion_reports_not_dirty(self, mapped):
        device, page = mapped
        device.mmio_read(page, 0, 64)
        _data, dirty, _cost = device.read_page_for_promotion(page)
        assert not dirty

    def test_write_page_returns_new_location(self, mapped):
        device, page = mapped
        new_page, cost = device.write_page(0, b"\x07" * 4096)
        assert new_page != page  # out-of-place
        assert cost > 0
        assert device.resolve_lpn(page) == 0  # old address still resolves


class TestRemap:
    def test_rewrite_creates_remap_entry(self, mapped):
        device, old_page = mapped
        device.write_page(0, None)
        updates, cost = device.drain_remaps()
        assert old_page in updates
        assert cost > 0

    def test_drain_clears(self, mapped):
        device, _page = mapped
        device.write_page(0, None)
        device.drain_remaps()
        updates, cost = device.drain_remaps()
        assert updates == {}
        assert cost == 0

    def test_old_address_resolves_through_chain(self, mapped):
        device, original = mapped
        device.write_page(0, None)
        device.write_page(0, None)
        assert device.resolve_lpn(original) == 0


class TestBlockInterface:
    def test_block_read_returns_cached_fresh_copy(self, mapped):
        device, page = mapped
        device.mmio_write(page, 0, 4, b"hot!")
        data, _cost = device.read_page_block(0)
        assert data[:4] == b"hot!"

    def test_device_ftl_mode_charges_lookup(self):
        device = ByteAddressableSSD(small_config(), host_merged_ftl=False)
        device.map_page(0)
        _data, cost = device.read_page_block(0)
        assert cost >= device.config.latency.ftl_lookup_ns

    def test_block_write_invalidates_cache(self, mapped):
        device, page = mapped
        device.mmio_read(page, 0, 64)
        device.write_page_block(0, None)
        assert not device.cache.contains(0)


class TestPersistenceDomain:
    def test_crash_preserves_fenced_writes(self, mapped):
        device, page = mapped
        device.mmio_write(page, 0, 4, b"save", persist=True)
        device.verify_read()
        device.crash()
        assert device.recover_read(0)[:4] == b"save"

    def test_crash_drops_unfenced_writes(self, mapped):
        device, page = mapped
        device.mmio_write(page, 0, 4, b"good", persist=True)
        device.verify_read()
        device.mmio_write(page, 0, 4, b"BAD!", persist=True)
        device.crash()
        assert device.recover_read(0)[:4] == b"good"

    def test_crash_without_battery_loses_cache(self):
        config = small_config(battery_backed=False)
        device = ByteAddressableSSD(config)
        page, _ = device.map_page(0)
        device.mmio_write(page, 0, 4, b"lost", persist=True)
        device.verify_read()
        device.crash()
        assert device.recover_read(0)[:4] == b"\x00\x00\x00\x00"

    def test_non_persist_dirty_data_survives_with_battery(self, mapped):
        device, page = mapped
        device.mmio_write(page, 8, 4, b"norm")
        device.crash()
        assert device.recover_read(0)[8:12] == b"norm"


class TestBackgroundAccounting:
    def test_dirty_cache_eviction_charged_to_background(self):
        config = small_config()
        config.geometry.ssd_cache_pages = 4
        config.geometry.ssd_cache_ways = 2
        device = ByteAddressableSSD(config.validate())
        pages = []
        for lpn in range(6):
            page, _ = device.map_page(lpn)
            pages.append(page)
        for page in pages:
            device.mmio_write(page, 0, 8)
        assert device.take_background_ns() > 0
        assert device.take_background_ns() == 0  # drained


class TestSpanValidation:
    def test_read_beyond_page_rejected(self, mapped):
        device, page = mapped
        with pytest.raises(ValueError):
            device.mmio_read(page, 4_090, 16)

    def test_write_beyond_page_rejected(self, mapped):
        device, page = mapped
        with pytest.raises(ValueError):
            device.mmio_write(page, 4_095, 8)

    def test_negative_offset_rejected(self, mapped):
        device, page = mapped
        with pytest.raises(ValueError):
            device.mmio_read(page, -1, 8)

    def test_zero_size_rejected(self, mapped):
        device, page = mapped
        with pytest.raises(ValueError):
            device.mmio_read(page, 0, 0)

    def test_full_page_span_allowed(self, mapped):
        device, page = mapped
        result = device.mmio_read(page, 0, 4_096)
        assert len(result.data) == 4_096
