"""The `@counters` contract layer: invariant grammar + decorator metadata.

The static analyzer (`simcost`, covered by test_simcost.py) re-reads the
decorator from the AST; this suite pins down the runtime side — the
grammar `parse_invariant` accepts, the eager validation errors, and the
`__sim_counters__` metadata shape — so a contract typo fails at import
time with a readable message instead of silently weakening analysis.
"""

import pytest

from repro.costs import Invariant, counters, parse_invariant


class TestParseInvariant:
    def test_scoped_equality(self):
        inv = parse_invariant("lookup: plb.hits:total == 1")
        assert inv.scope == "lookup"
        assert inv.op == "=="
        assert inv.lhs == (("leg", "plb.hits:total"),)
        assert inv.rhs == (("const", 1),)

    def test_unscoped_sum(self):
        inv = parse_invariant("plb.hits:hit + plb.hits:miss == plb.hits:total")
        assert inv.scope is None
        assert inv.lhs == (("leg", "plb.hits:hit"), ("leg", "plb.hits:miss"))
        assert inv.rhs == (("leg", "plb.hits:total"),)

    def test_inequalities(self):
        assert parse_invariant("a.b <= 1").op == "<="
        assert parse_invariant("a.b >= 1").op == ">="

    def test_leg_suffixes(self):
        inv = parse_invariant("walk: mem.access:samples == 1")
        assert inv.legs() == ("mem.access:samples",)

    def test_legs_deduplicate_in_order(self):
        inv = parse_invariant("a.x + b.y == a.x + 2")
        assert inv.legs() == ("a.x", "b.y")

    def test_stat_names_keep_their_dots(self):
        # "bridge.mmio_retries" must not be mistaken for a method scope:
        # scopes are dotless by construction.
        inv = parse_invariant("bridge.mmio_retries <= 3")
        assert inv.scope is None
        assert inv.legs() == ("bridge.mmio_retries",)

    def test_whitespace_is_flexible(self):
        inv = parse_invariant("  trim:   ftl.trims   <=   1  ")
        assert inv.scope == "trim"
        assert inv.rhs == (("const", 1),)

    @pytest.mark.parametrize(
        "bad",
        [
            "plb.hits:total",  # no operator
            "a.b == 1 == 2",  # two operators... but "==" appears once? no: twice
            "a.b < 1",  # unsupported operator
            "1 == 2",  # no stat leg at all
            "a.b + == 1",  # empty term
            "lookup: == 1",  # scope but empty lhs
            "a.b:bogus == 1",  # unknown leg suffix
            "Plb.hits == 1",  # uppercase stat name
            "plain == 1",  # undotted term is neither int nor leg
        ],
    )
    def test_rejects_bad_grammar(self, bad):
        with pytest.raises(ValueError):
            parse_invariant(bad)

    def test_parse_returns_frozen_invariant(self):
        inv = parse_invariant("a.b == 1")
        assert isinstance(inv, Invariant)
        with pytest.raises(AttributeError):
            inv.op = "<="


class TestCountersDecorator:
    def test_attaches_metadata_and_returns_class_unchanged(self):
        @counters(owner="plb", conserve=("plb.hits:total <= 1",))
        class Component:
            marker = 42

        assert Component.marker == 42
        assert Component.__sim_counters__ == {
            "owner": "plb",
            "conserve": ("plb.hits:total <= 1",),
        }

    def test_empty_conserve_is_fine(self):
        @counters(owner="gc")
        class Quiet:
            pass

        assert Quiet.__sim_counters__["conserve"] == ()

    @pytest.mark.parametrize("owner", ["", "PLB", "9lb", "a-b", None])
    def test_bad_owner_fails_at_decoration_time(self, owner):
        with pytest.raises(ValueError):
            counters(owner=owner)

    def test_bad_invariant_fails_at_decoration_time(self):
        with pytest.raises(ValueError):
            counters(owner="plb", conserve=("plb.hits < 1",))

    def test_subclass_inherits_contract(self):
        # simcost walks the MRO, so a subclass without its own contract
        # must still expose the base's metadata.
        @counters(owner="mem", conserve=("mem.loads <= 1",))
        class Base:
            pass

        class Derived(Base):
            pass

        assert Derived.__sim_counters__["owner"] == "mem"


class TestRepoContracts:
    """Every shipped contract must parse and match its component."""

    def test_all_declared_contracts_parse(self):
        from repro.core.hierarchy import FlatFlash
        from repro.core.memory_system import MemorySystem
        from repro.core.promotion import PromotionManager
        from repro.host.bridge import HostBridge, MMIORetryPolicy
        from repro.host.page_table import PageTable
        from repro.host.plb import PLB
        from repro.host.tlb import TLB
        from repro.interconnect.pcie import PCIeLink
        from repro.ssd.ftl import PageFTL
        from repro.ssd.gc import GarbageCollector
        from repro.ssd.ssd_cache import SSDCache

        components = [
            FlatFlash, MemorySystem, PromotionManager, HostBridge,
            MMIORetryPolicy, PageTable, PLB, TLB, PCIeLink, PageFTL,
            GarbageCollector, SSDCache,
        ]
        for cls in components:
            meta = cls.__sim_counters__
            assert meta["owner"], cls
            for text in meta["conserve"]:
                inv = parse_invariant(text)
                assert inv.legs(), text
