"""Tests for the SSD-Cache (set-associative, RRIP, dirty tracking)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ssd.ssd_cache import LRUSet, SSDCache


def make_cache(pages=16, ways=4, page_size=64, policy="rrip", track_data=True):
    return SSDCache(
        num_pages=pages,
        ways=ways,
        page_size=page_size,
        track_data=track_data,
        policy=policy,
    )


def test_shape():
    cache = make_cache(pages=16, ways=4)
    assert cache.num_sets == 4
    assert cache.capacity_pages == 16


def test_insert_then_lookup_hits():
    cache = make_cache()
    cache.insert(5, b"\xab" * 64)
    entry = cache.lookup(5)
    assert entry is not None
    assert bytes(entry.data) == b"\xab" * 64


def test_lookup_miss_returns_none_and_counts():
    cache = make_cache()
    assert cache.lookup(9) is None
    assert cache.hit_ratio == 0.0


def test_hit_ratio_tracks():
    cache = make_cache()
    cache.insert(1, None)
    cache.lookup(1)
    cache.lookup(2)
    assert cache.hit_ratio == pytest.approx(0.5)


def test_peek_does_not_affect_stats():
    cache = make_cache()
    cache.insert(1, None)
    cache.peek(1)
    cache.peek(3)
    assert cache.stats.ratio("ssd_cache.hits").total == 0


def test_double_insert_rejected():
    cache = make_cache()
    cache.insert(1, None)
    with pytest.raises(ValueError):
        cache.insert(1, None)


def test_eviction_when_set_full():
    cache = make_cache(pages=4, ways=2)  # 2 sets
    # lpns 0, 2, 4 all map to set 0; third insert evicts one.
    cache.insert(0, None)
    cache.insert(2, None)
    victim = cache.insert(4, None)
    assert victim is not None
    assert victim.lpn in (0, 2)
    assert cache.occupancy == 2


def test_eviction_hooks_fire():
    cache = make_cache(pages=4, ways=2)
    evicted = []
    cache.add_evict_hook(lambda entry: evicted.append(entry.lpn))
    cache.insert(0, None)
    cache.insert(2, None)
    cache.insert(4, None)
    assert len(evicted) == 1


def test_dirty_eviction_counted():
    cache = make_cache(pages=4, ways=2)
    cache.insert(0, None, dirty=True)
    cache.insert(2, None, dirty=True)
    cache.insert(4, None)
    assert cache.stats.counters()["ssd_cache.dirty_evictions"] == 1


def test_invalidate_removes_entry():
    cache = make_cache()
    cache.insert(3, None)
    entry = cache.invalidate(3)
    assert entry is not None
    assert not cache.contains(3)
    assert cache.invalidate(3) is None


def test_write_bytes_marks_dirty_and_updates():
    cache = make_cache()
    cache.insert(1, b"\x00" * 64)
    cache.write_bytes(1, 8, b"\xff\xff")
    entry = cache.peek(1)
    assert entry.dirty
    assert cache.read_bytes(1, 8, 2) == b"\xff\xff"


def test_write_bytes_bounds_checked():
    cache = make_cache()
    cache.insert(1, None)
    with pytest.raises(ValueError):
        cache.write_bytes(1, 60, b"\x00" * 8)


def test_write_bytes_missing_page_raises():
    cache = make_cache()
    with pytest.raises(KeyError):
        cache.write_bytes(1, 0, b"\x00")


def test_dirty_entries_listing():
    cache = make_cache()
    cache.insert(1, None, dirty=True)
    cache.insert(2, None)
    cache.insert(3, None, dirty=True)
    assert sorted(e.lpn for e in cache.dirty_entries()) == [1, 3]


def test_clear_empties_without_hooks():
    cache = make_cache()
    fired = []
    cache.add_evict_hook(lambda entry: fired.append(entry))
    cache.insert(1, None)
    cache.insert(2, None)
    cache.clear()
    assert cache.occupancy == 0
    assert not fired


def test_wrong_page_size_rejected():
    cache = make_cache(page_size=64)
    with pytest.raises(ValueError):
        cache.insert(0, b"\x00" * 32)


def test_no_data_mode():
    cache = make_cache(track_data=False)
    cache.insert(0, None)
    assert cache.read_bytes(0, 0, 8) is None


def test_lru_policy_evicts_least_recent():
    cache = make_cache(pages=2, ways=2, policy="lru")  # 1 set
    cache.insert(0, None)
    cache.insert(1, None)
    cache.lookup(0)  # 0 is now more recent
    victim = cache.insert(2, None)
    assert victim.lpn == 1


def test_lru_set_prefers_free_way():
    lru = LRUSet(2)
    lru.on_insert(0)
    assert lru.select_victim([True, False]) == 1


def test_invalid_policy_rejected():
    with pytest.raises(ValueError):
        make_cache(policy="fifo")


def test_rrip_scan_resistance_keeps_rehit_page():
    cache = make_cache(pages=4, ways=4)  # fully associative single set
    cache.insert(0, None)
    cache.lookup(0)  # re-referenced: RRPV 0
    for lpn in range(1, 10):
        cache.insert(lpn, None)
        cache.lookup(lpn)  # a re-use, but after insertion
    # The steadily re-hit page should still be resident more often than
    # not; with RRIP the single-scan pages age out first.
    cache2 = make_cache(pages=4, ways=4)
    cache2.insert(0, None)
    for _ in range(6):
        cache2.lookup(0)
    for lpn in range(1, 4):
        cache2.insert(lpn, None)
    assert cache2.contains(0)


@settings(deadline=None, max_examples=30)
@given(st.lists(st.integers(0, 30), min_size=1, max_size=200))
def test_occupancy_never_exceeds_capacity(lpns):
    cache = make_cache(pages=8, ways=2)
    for lpn in lpns:
        if not cache.contains(lpn):
            cache.insert(lpn, None)
        else:
            cache.lookup(lpn)
    assert cache.occupancy <= cache.capacity_pages
    # The index and the entry array agree.
    listed = {entry.lpn for row in cache._entries for entry in row if entry}
    assert listed == set(cache._where)


@settings(deadline=None, max_examples=30)
@given(
    st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 255)), min_size=1, max_size=150
    )
)
def test_cached_data_matches_model(ops):
    """Whatever survives in the cache must hold the latest written bytes."""
    cache = make_cache(pages=8, ways=4, page_size=16)
    model = {}
    for lpn, value in ops:
        payload = bytes([value]) * 16
        if cache.contains(lpn):
            cache.write_bytes(lpn, 0, payload)
        else:
            cache.insert(lpn, payload, dirty=True)
        model[lpn] = payload
    for row in cache._entries:
        for entry in row:
            if entry is not None:
                assert bytes(entry.data) == model[entry.lpn]


def test_batch_lookup_counts_hits_and_gathers():
    cache = make_cache()
    cache.insert(1, None)
    cache.insert(3, None)
    hits, entries = cache.batch_lookup([1, 2, 3])
    assert hits == 2
    assert entries[0] is not None and entries[2] is not None
    assert entries[1] is None


def test_batch_lookup_updates_hit_ratio_per_probe():
    cache = make_cache()
    cache.insert(7, None)
    hits, _entries = cache.batch_lookup([7, 8, 9, 7])
    assert hits == 2
    assert cache.hit_ratio == pytest.approx(0.5)
