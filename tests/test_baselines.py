"""Tests for the paging baselines and the DRAM-only system."""

import pytest

from repro import DRAMOnly, FlatFlash, TraditionalStack, UnifiedMMap, small_config
from repro.host.page_table import Domain


class TestPagingBehaviour:
    @pytest.mark.parametrize("cls", [TraditionalStack, UnifiedMMap])
    def test_first_touch_faults(self, cls):
        system = cls(small_config())
        region = system.mmap(4)
        result = system.load(region.addr(0), 8)
        assert result.fault
        assert system.page_faults == 1

    @pytest.mark.parametrize("cls", [TraditionalStack, UnifiedMMap])
    def test_second_touch_is_dram(self, cls):
        system = cls(small_config())
        region = system.mmap(4)
        system.load(region.addr(0), 8)
        result = system.load(region.addr(64), 8)
        assert not result.fault
        assert result.latency_ns == system.config.latency.dram_load_ns

    @pytest.mark.parametrize("cls", [TraditionalStack, UnifiedMMap])
    def test_data_round_trips_through_swap(self, cls):
        system = cls(small_config())
        frames = system.dram.num_frames
        region = system.mmap(frames + 8)
        system.store(region.addr(4), 8, b"swapme!!")
        # Touch enough other pages to force page 0 out.
        for page in range(1, frames + 8):
            system.load(region.page_addr(page, 0), 8)
        result = system.load(region.addr(4), 8)
        assert result.data == b"swapme!!"
        assert system.stats.counters()["mem.pages_out"] >= 1

    def test_traditional_fault_costs_more_than_unified(self):
        traditional = TraditionalStack(small_config())
        unified = UnifiedMMap(small_config())
        region_t = traditional.mmap(4)
        region_u = unified.mmap(4)
        fault_t = traditional.load(region_t.addr(0), 8).latency_ns
        fault_u = unified.load(region_u.addr(0), 8).latency_ns
        assert fault_t > fault_u

    def test_traditional_loses_more_dram_to_metadata(self):
        traditional = TraditionalStack(small_config())
        unified = UnifiedMMap(small_config())
        assert traditional.dram.num_frames <= unified.dram.num_frames

    def test_traditional_uses_device_ftl(self):
        traditional = TraditionalStack(small_config())
        unified = UnifiedMMap(small_config())
        assert not traditional.ssd.host_merged_ftl
        assert unified.ssd.host_merged_ftl

    @pytest.mark.parametrize("cls", [TraditionalStack, UnifiedMMap])
    def test_fault_migrates_whole_page(self, cls):
        system = cls(small_config())
        region = system.mmap(2)
        system.load(region.addr(0), 8)
        assert system.stats.counters()["mem.pages_in"] == 1
        pte = system.page_table.lookup(region.base_vpn)
        assert pte.domain is Domain.DRAM

    @pytest.mark.parametrize("cls", [TraditionalStack, UnifiedMMap])
    def test_evicted_pages_fault_again(self, cls):
        system = cls(small_config())
        frames = system.dram.num_frames
        region = system.mmap(frames + 4)
        for page in range(frames + 4):
            system.load(region.page_addr(page, 0), 8)
        result = system.load(region.addr(0), 8)
        assert result.fault  # thrashing: page 0 was swapped out


class TestDRAMOnly:
    def test_all_accesses_at_dram_latency(self):
        system = DRAMOnly(small_config())
        region = system.mmap(8)
        walk = system.config.latency.page_table_walk_ns
        dram = system.config.latency.dram_load_ns
        for page in range(8):
            first = system.load(region.page_addr(page, 0), 8)
            assert first.latency_ns == dram + walk  # TLB miss on first touch
            assert not first.fault
            again = system.load(region.page_addr(page, 8), 8)
            assert again.latency_ns == dram

    def test_data_round_trip(self):
        system = DRAMOnly(small_config())
        region = system.mmap(4)
        system.store(region.addr(100), 8, b"dramonly")
        assert system.load(region.addr(100), 8).data == b"dramonly"

    def test_overcommit_raises(self):
        system = DRAMOnly(small_config())
        with pytest.raises(MemoryError):
            system.mmap(1_000)

    def test_no_page_movements(self):
        system = DRAMOnly(small_config())
        region = system.mmap(8)
        for page in range(8):
            system.load(region.page_addr(page, 0), 8)
        assert system.page_movements == 0


class TestCrossSystemAgreement:
    def test_all_systems_compute_identical_contents(self):
        """One scripted workload, four systems, byte-identical results."""
        import numpy as np

        rng = np.random.default_rng(8)
        script = [
            (int(rng.integers(0, 12 * 4_096 - 8)), bytes(rng.integers(0, 256, 8, dtype=np.uint8)))
            for _ in range(120)
        ]
        observations = []
        for cls in (FlatFlash, UnifiedMMap, TraditionalStack, DRAMOnly):
            system = cls(small_config())
            region = system.mmap(12)
            for offset, payload in script:
                system.store(region.addr(offset), 8, payload)
            reads = [system.load(region.addr(offset), 8).data for offset, _ in script]
            observations.append(reads)
        assert observations[0] == observations[1] == observations[2] == observations[3]
