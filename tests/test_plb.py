"""Tests for the Promotion Look-aside Buffer (Fig. 4 semantics)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.host.plb import PLB


def start_entry(plb, ssd_tag=10, frame=0, lines=8, complete_at=12_100):
    entry = plb.start(ssd_tag, frame, lines, complete_at)
    assert entry is not None
    return entry


def test_start_and_lookup():
    plb = PLB(entries=4)
    entry = start_entry(plb)
    assert plb.lookup(10) is entry
    assert plb.lookup(11) is None
    assert plb.in_flight == 1


def test_capacity_limit():
    plb = PLB(entries=2)
    start_entry(plb, ssd_tag=1)
    start_entry(plb, ssd_tag=2)
    assert plb.start(3, 0, 8, 0) is None
    assert not plb.has_free_entry


def test_duplicate_promotion_rejected():
    plb = PLB(entries=4)
    start_entry(plb, ssd_tag=1)
    with pytest.raises(ValueError):
        plb.start(1, 1, 8, 0)


def test_inbound_line_sets_copied_bit():
    plb = PLB(entries=4)
    entry = start_entry(plb)
    assert plb.inbound_line(entry, 0) is True
    assert entry.copied[0]


def test_inbound_after_cpu_store_is_dropped():
    """Fig. 4c: the store owns the line; the stale inbound copy dies."""
    plb = PLB(entries=4)
    entry = start_entry(plb)
    plb.cpu_store(entry, 3)
    assert plb.inbound_line(entry, 3) is False
    assert plb.stats.counters()["plb.inbound_lines_dropped"] == 1


def test_cpu_load_routing():
    plb = PLB(entries=4)
    entry = start_entry(plb)
    assert plb.cpu_load_from_dram(entry, 2) is False  # not copied: go to SSD
    plb.inbound_line(entry, 2)
    assert plb.cpu_load_from_dram(entry, 2) is True


def test_cpu_store_redirect_counted():
    plb = PLB(entries=4)
    entry = start_entry(plb)
    plb.cpu_store(entry, 0)
    assert plb.stats.counters()["plb.store_redirects"] == 1


def test_all_copied():
    plb = PLB(entries=4)
    entry = start_entry(plb, lines=3)
    for line in range(3):
        plb.inbound_line(entry, line)
    assert entry.all_copied


def test_retire_frees_entry():
    plb = PLB(entries=1)
    entry = start_entry(plb)
    plb.retire(entry)
    assert plb.in_flight == 0
    assert plb.has_free_entry
    assert plb.lookup(10) is None


def test_retire_twice_raises():
    plb = PLB(entries=2)
    entry = start_entry(plb)
    plb.retire(entry)
    with pytest.raises(ValueError):
        plb.retire(entry)


def test_entries_listing():
    plb = PLB(entries=4)
    start_entry(plb, ssd_tag=1)
    start_entry(plb, ssd_tag=2)
    assert {e.ssd_tag for e in plb.entries()} == {1, 2}


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        PLB(0)


@settings(deadline=None, max_examples=50)
@given(
    st.lists(
        st.tuples(st.sampled_from(["store", "inbound"]), st.integers(0, 7)),
        min_size=1,
        max_size=64,
    )
)
def test_no_lost_updates_under_any_interleaving(events):
    """Property: once a CPU store owns a line, no inbound copy may land on
    it — the DRAM copy of that line must be the store's, always."""
    plb = PLB(entries=1)
    entry = plb.start(0, 0, 8, 0)
    owner = ["nobody"] * 8  # who wrote the line last, per DRAM state
    stored = set()
    for kind, line in events:
        if kind == "store":
            plb.cpu_store(entry, line)
            owner[line] = "cpu"
            stored.add(line)
        else:
            if plb.inbound_line(entry, line):
                owner[line] = "ssd"
    for line in stored:
        assert owner[line] == "cpu", f"line {line} lost a CPU store"
    # And every line that saw any event is marked copied.
    for _kind, line in events:
        assert entry.copied[line]


def test_batch_lookup_positional_gather():
    plb = PLB(entries=4)
    e1 = start_entry(plb, ssd_tag=1)
    e2 = start_entry(plb, ssd_tag=2)
    assert plb.batch_lookup([2, 9, 1]) == [e2, None, e1]


def test_batch_lookup_counts_each_probe():
    plb = PLB(entries=4)
    start_entry(plb, ssd_tag=1)
    plb.batch_lookup([1, 1, 7, 8])
    assert plb._hits.ratio == pytest.approx(0.5)


def test_batch_retire_frees_and_counts():
    plb = PLB(entries=4)
    e1 = start_entry(plb, ssd_tag=1)
    e2 = start_entry(plb, ssd_tag=2)
    assert plb.batch_retire([e1, e2]) == 2
    assert plb.in_flight == 0
    assert plb.has_free_entry


def test_batch_retire_tolerates_already_retired():
    # Unlike retire(), the batched form is idempotent per entry so a
    # reordered/duplicated batch cannot raise halfway through.
    plb = PLB(entries=2)
    entry = start_entry(plb, ssd_tag=1)
    plb.retire(entry)
    assert plb.batch_retire([entry, entry]) == 2
    assert plb.in_flight == 0
