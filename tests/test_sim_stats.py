"""Tests for counters, ratios, latency stats and the registry."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import Counter, LatencyStats, RatioStat, StatRegistry


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0

    def test_add_default_one(self):
        counter = Counter("c")
        counter.add()
        assert counter.value == 1

    def test_add_amount(self):
        counter = Counter("c")
        counter.add(5)
        counter.add(3)
        assert counter.value == 8

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").add(-1)

    def test_reset(self):
        counter = Counter("c")
        counter.add(9)
        counter.reset()
        assert counter.value == 0

    def test_int_conversion(self):
        counter = Counter("c")
        counter.add(4)
        assert int(counter) == 4


class TestRatioStat:
    def test_empty_ratio_is_zero(self):
        assert RatioStat("r").ratio == 0.0

    def test_all_hits(self):
        ratio = RatioStat("r")
        for _ in range(4):
            ratio.record(True)
        assert ratio.ratio == 1.0

    def test_mixed(self):
        ratio = RatioStat("r")
        ratio.record(True)
        ratio.record(False)
        ratio.record(False)
        ratio.record(True)
        assert ratio.ratio == pytest.approx(0.5)
        assert ratio.misses == 2

    def test_reset(self):
        ratio = RatioStat("r")
        ratio.record(True)
        ratio.reset()
        assert ratio.total == 0


class TestLatencyStats:
    def test_mean_of_samples(self):
        stats = LatencyStats("l")
        stats.extend([100, 200, 300])
        assert stats.mean == pytest.approx(200.0)

    def test_count_and_total(self):
        stats = LatencyStats("l")
        stats.extend([10, 20])
        assert stats.count == 2
        assert stats.total == 30

    def test_min_max(self):
        stats = LatencyStats("l")
        stats.extend([5, 1, 9])
        assert stats.minimum == 1
        assert stats.maximum == 9

    def test_min_on_empty_raises(self):
        with pytest.raises(ValueError):
            LatencyStats("l").minimum

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats("l").record(-1)

    def test_percentile_nearest_rank(self):
        stats = LatencyStats("l")
        stats.extend(range(1, 101))  # 1..100
        assert stats.percentile(50) == 50
        assert stats.p99 == 99
        assert stats.percentile(100) == 100

    def test_percentile_single_sample(self):
        stats = LatencyStats("l")
        stats.record(42)
        assert stats.p50 == 42
        assert stats.p99 == 42

    def test_percentile_bounds(self):
        stats = LatencyStats("l")
        stats.record(1)
        with pytest.raises(ValueError):
            stats.percentile(0)
        with pytest.raises(ValueError):
            stats.percentile(101)

    def test_percentile_without_samples_raises(self):
        with pytest.raises(ValueError):
            LatencyStats("l").p99

    def test_streaming_mode_keeps_mean_not_percentiles(self):
        stats = LatencyStats("l", keep_samples=False)
        stats.extend([10, 30])
        assert stats.mean == pytest.approx(20.0)
        with pytest.raises(ValueError):
            stats.p50

    def test_reset(self):
        stats = LatencyStats("l")
        stats.record(5)
        stats.reset()
        assert stats.count == 0
        assert stats.mean == 0.0

    @given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1))
    def test_percentile_is_a_sample_and_bounded(self, samples):
        stats = LatencyStats("l")
        stats.extend(samples)
        for pct in (1, 50, 99, 100):
            value = stats.percentile(pct)
            assert value in samples
            assert stats.minimum <= value <= stats.maximum

    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=2))
    def test_percentiles_monotone(self, samples):
        stats = LatencyStats("l")
        stats.extend(samples)
        assert stats.percentile(25) <= stats.percentile(75) <= stats.percentile(100)


class TestStatRegistry:
    def test_counter_is_memoized(self):
        registry = StatRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_snapshot_contains_all_kinds(self):
        registry = StatRegistry()
        registry.counter("c").add(2)
        registry.ratio("r").record(True)
        registry.latency("l").record(100)
        snapshot = registry.as_dict()
        assert snapshot["c"] == 2
        assert snapshot["r.ratio"] == 1.0
        assert snapshot["l.count"] == 1

    def test_counters_view(self):
        registry = StatRegistry()
        registry.counter("a").add(3)
        assert registry.counters() == {"a": 3}

    def test_reset_clears_everything(self):
        registry = StatRegistry()
        registry.counter("c").add(2)
        registry.ratio("r").record(True)
        registry.latency("l").record(9)
        registry.reset()
        snapshot = registry.as_dict()
        assert snapshot["c"] == 0
        assert snapshot["r.total"] == 0
        assert snapshot["l.count"] == 0
