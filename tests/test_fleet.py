"""Fleet composition: identity, failover durability, determinism.

The three non-negotiable invariants of the sharded fleet:

* a zero-fault single-device fleet is bit-identical to a bare FlatFlash
  (same stats, same clock, same bytes);
* killing any single device with R >= 2 loses zero durable bytes — the
  WAL prefix and FlatFS fsck checkers pass after failover;
* every failover run replays byte-for-byte from its configuration.
"""

import json
import struct
import zlib

import pytest

from repro.apps.flatfs import FlatFS
from repro.apps.wal import WriteAheadLog
from repro.config import small_config
from repro.core.hierarchy import FlatFlash
from repro.faults.plan import FaultConfig
from repro.faults.recovery import check_wal_prefix
from repro.fleet import FlatFlashFleet, FleetConfig, FleetExhaustedError


def _mixed_workload(system, pages=24, rounds=3):
    region = system.mmap(pages, name="work")
    for round_index in range(rounds):
        for page in range(pages):
            system.store_u64(region.page_addr(page), round_index * 1_000 + page)
        for page in range(pages):
            value, _ = system.load_u64(region.page_addr(page))
            assert value == round_index * 1_000 + page
    return region


def _fingerprint(fleet, extra=b""):
    blob = json.dumps(
        {
            "events": [event.as_dict() for event in fleet.failover_events],
            "summary": fleet.fleet_summary(),
            "elapsed_ns": fleet.clock.now,
            "extra_crc": zlib.crc32(extra),
        },
        sort_keys=True,
    )
    return zlib.crc32(blob.encode("ascii"))


# --------------------------------------------------------------------- #
# Identity: one device, no faults == bare FlatFlash
# --------------------------------------------------------------------- #


def test_single_device_fleet_is_bit_identical_to_flatflash():
    bare = FlatFlash(small_config(track_data=True))
    fleet = FlatFlashFleet(
        small_config(track_data=True), FleetConfig(num_devices=1)
    )
    _mixed_workload(bare)
    _mixed_workload(fleet)
    assert fleet.clock.now == bare.clock.now
    member = dict(fleet.devices[0].stats.snapshot())
    baseline = dict(bare.stats.snapshot())
    diverged = {
        key
        for key in set(member) | set(baseline)
        if member.get(key) != baseline.get(key)
    }
    assert not diverged, f"member device stats diverged: {sorted(diverged)}"


def test_single_device_fleet_returns_identical_bytes():
    payload = bytes(range(256)) + b"x" * 44
    loads = []
    for system in (
        FlatFlash(small_config(track_data=True)),
        FlatFlashFleet(small_config(track_data=True), FleetConfig(num_devices=1)),
    ):
        region = system.mmap(4, name="bytes")
        system.store(region.addr(100), len(payload), payload)
        loads.append(system.load(region.addr(100), len(payload)).data)
    assert loads[0] == loads[1] == payload


# --------------------------------------------------------------------- #
# Failover: kill any device, lose zero durable bytes
# --------------------------------------------------------------------- #


def _wal_run(replication, kills, payload_count=30):
    fleet = FlatFlashFleet(
        small_config(track_data=True),
        FleetConfig(
            num_devices=3,
            replication_factor=replication,
            scheduled_losses=kills,
        ),
    )
    wal = WriteAheadLog.create(fleet, num_pages=4, name="t.wal")
    payloads = [
        struct.pack("<Q", index) + b"\xcd" * 24 for index in range(payload_count)
    ]
    for payload in payloads:
        wal.append(payload)
    return fleet, wal, payloads


@pytest.mark.parametrize("victim", [0, 1, 2])
def test_single_device_kill_loses_no_durable_bytes(victim):
    fleet, wal, payloads = _wal_run(2, ((150_000, victim),))
    summary = fleet.fleet_summary()
    assert summary["device_losses"] == 1
    assert summary["durable_pages_lost"] == 0
    assert len(fleet.failover_events) == 1
    event = fleet.failover_events[0]
    assert event.device == victim
    assert event.recovery_ns >= 0
    # Every acknowledged append is readable through normal loads after
    # the failover (no crash: the battery-backed SSD-Cache is durable).
    records = wal.records()
    assert len(records) == len(payloads)
    assert check_wal_prefix(payloads, records) == []


def test_unreplicated_fleet_loses_durable_pages():
    # The control arm: R=1 has no replicas, so a kill that lands on WAL
    # pages must surface as durable loss (this is what replication buys).
    fleet, _wal, _payloads = _wal_run(1, ((150_000, 0),))
    assert fleet.fleet_summary()["durable_pages_lost"] > 0


def test_sequential_double_kill_with_re_replication_survives():
    fleet, wal, payloads = _wal_run(
        2, ((120_000, 0), (260_000, 1)), payload_count=36
    )
    summary = fleet.fleet_summary()
    assert summary["device_losses"] == 2
    assert summary["durable_pages_lost"] == 0
    assert check_wal_prefix(payloads, wal.records()) == []


def test_exhausting_the_fleet_raises():
    with pytest.raises(FleetExhaustedError):
        _wal_run(2, ((50_000, 0), (60_000, 1), (70_000, 2)), payload_count=60)


def test_failover_replays_byte_for_byte():
    runs = []
    for _ in range(2):
        fleet, wal, _payloads = _wal_run(2, ((150_000, 1),))
        runs.append(_fingerprint(fleet, b"".join(wal.records())))
    assert runs[0] == runs[1]


def test_flatfs_survives_device_loss_after_journal_replay():
    fleet = FlatFlashFleet(
        small_config(track_data=True),
        FleetConfig(
            num_devices=3,
            replication_factor=2,
            scheduled_losses=((200_000, 1),),
        ),
    )
    fs = FlatFS(fleet, num_inodes=16, data_blocks=24, name="fs")
    payloads = {}
    seen = 0
    for index in range(6):
        path = f"/f{index}"
        fs.create(path)
        fs.write_file(path, bytes([index]) * (300 + 40 * index))
        payloads[path] = 300 + 40 * index
        # The recovery discipline: replay the (replicated, durable)
        # journal into relocated directory blocks as soon as a failover
        # is observed, before further namespace ops reuse zeroed slots.
        if len(fleet.failover_events) > seen:
            fs.replay_journal()
            seen = len(fleet.failover_events)
    assert seen == 1
    assert fs.fsck() == []
    assert sorted(fs.listdir("/")) == [f"f{index}" for index in range(6)]
    assert all(fs.stat(path)["size"] == size for path, size in payloads.items())
    assert fleet.fleet_summary()["durable_pages_lost"] == 0


# --------------------------------------------------------------------- #
# Fault planes: per-device streams and the device_loss site
# --------------------------------------------------------------------- #


def test_per_device_fault_schedules_are_independent():
    """Satellite invariant: a device's fault schedule is a pure function
    of (seed, device namespace, site, draw index) — other devices' draws,
    or even their existence, never perturb it."""
    from repro.faults.plan import FaultInjector

    config = FaultConfig(
        seed=3, pcie_timeout_rate=0.05, device_loss_rate=0.01
    )
    sites = ("pcie.mmio_write.timeout", "pcie.device_loss")
    draws = 300

    def schedule(injector, site):
        return [injector.fires(site) for _ in range(draws)]

    # Reference: each device's stream drawn alone.
    reference = {
        (ns, site): schedule(FaultInjector(config, namespace=ns), site)
        for ns in ("dev0", "dev1", "dev2")
        for site in sites
    }
    # Interleaved: three injectors drawing in lockstep (a fleet's view).
    injectors = {ns: FaultInjector(config, namespace=ns) for ns in ("dev0", "dev1", "dev2")}
    interleaved = {(ns, site): [] for ns in injectors for site in sites}
    for _ in range(draws):
        for ns, injector in injectors.items():
            for site in sites:
                interleaved[(ns, site)].append(injector.fires(site))
    assert interleaved == reference
    # The streams are genuinely distinct per device...
    assert (
        reference[("dev0", "pcie.mmio_write.timeout")]
        != reference[("dev1", "pcie.mmio_write.timeout")]
    )
    # ...and the un-namespaced (single-device) stream is preserved.
    legacy = schedule(FaultInjector(config), "pcie.mmio_write.timeout")
    relegacy = schedule(FaultInjector(config, namespace=""), "pcie.mmio_write.timeout")
    assert legacy == relegacy
    assert legacy != reference[("dev0", "pcie.mmio_write.timeout")]


def test_injected_device_loss_fires_and_fails_over():
    # With this (seed, rate, workload) at least one device's stream
    # fires without exhausting the fleet — deterministic because
    # per-device streams are seed-derived.
    faults = FaultConfig(seed=0, device_loss_rate=0.01)
    fleet = FlatFlashFleet(
        small_config(track_data=True, faults=faults),
        FleetConfig(num_devices=3, replication_factor=2),
    )
    wal = WriteAheadLog.create(fleet, num_pages=4, name="f.wal")
    payloads = [struct.pack("<Q", index) * 4 for index in range(1, 37)]
    for payload in payloads:
        wal.append(payload)
    summary = fleet.fleet_summary()
    assert 1 <= summary["device_losses"] < 3
    assert summary["durable_pages_lost"] == 0
    assert check_wal_prefix(payloads, wal.records()) == []
    # Every *declared* failover had its PCIe link killed first; a link
    # can also die near the end of the workload without accumulating
    # enough consecutive failures for the ladder to declare it.
    links_down = sum(
        int(device.stats.counters()["pcie.device_losses"])
        for device in fleet.devices
    )
    assert links_down >= summary["device_losses"] >= 1
