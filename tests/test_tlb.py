"""Tests for the TLB model."""

import pytest

from repro.host.tlb import TLB


def test_miss_then_hit():
    tlb = TLB(entries=4, shootdown_cost_ns=2_700)
    assert not tlb.lookup(1)
    tlb.fill(1)
    assert tlb.lookup(1)


def test_capacity_eviction_is_lru():
    tlb = TLB(entries=2, shootdown_cost_ns=0)
    tlb.fill(1)
    tlb.fill(2)
    tlb.lookup(1)  # 1 most recent
    tlb.fill(3)  # evicts 2
    assert tlb.lookup(1)
    assert not tlb.lookup(2)
    assert tlb.lookup(3)


def test_fill_existing_refreshes():
    tlb = TLB(entries=2, shootdown_cost_ns=0)
    tlb.fill(1)
    tlb.fill(2)
    tlb.fill(1)
    tlb.fill(3)  # evicts 2, not 1
    assert tlb.lookup(1)


def test_invalidate_costs_shootdown():
    tlb = TLB(entries=4, shootdown_cost_ns=2_700)
    tlb.fill(1)
    assert tlb.invalidate(1) == 2_700
    assert not tlb.lookup(1)


def test_invalidate_missing_still_charged():
    tlb = TLB(entries=4, shootdown_cost_ns=100)
    assert tlb.invalidate(9) == 100


def test_batch_invalidate_single_interrupt():
    tlb = TLB(entries=8, shootdown_cost_ns=2_700)
    for vpn in range(4):
        tlb.fill(vpn)
    cost = tlb.batch_invalidate([0, 1, 2, 3])
    assert cost == 2_700  # one interrupt for the whole batch
    assert len(tlb) == 0


def test_batch_invalidate_empty_is_free():
    tlb = TLB(entries=4, shootdown_cost_ns=2_700)
    assert tlb.batch_invalidate([]) == 0


def test_hit_ratio():
    tlb = TLB(entries=4, shootdown_cost_ns=0)
    tlb.fill(1)
    tlb.lookup(1)
    tlb.lookup(2)
    assert tlb.hit_ratio == pytest.approx(0.5)


def test_shootdown_counter():
    tlb = TLB(entries=4, shootdown_cost_ns=0)
    tlb.invalidate(1)
    tlb.invalidate(2)
    assert tlb.stats.counters()["tlb.shootdowns"] == 2


def test_invalid_shape_rejected():
    with pytest.raises(ValueError):
        TLB(0, 100)
    with pytest.raises(ValueError):
        TLB(4, -1)
