"""Tests for the discrete-event simulator."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.des import Acquire, Delay, Lock, Release, Simulator, Timeout


def test_single_process_delays_accumulate():
    sim = Simulator()

    def proc():
        yield Delay(100)
        yield Delay(50)

    sim.spawn(proc())
    assert sim.run() == 150


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Delay(-1)


def test_two_processes_run_concurrently():
    sim = Simulator()

    def proc(ns):
        yield Delay(ns)

    sim.spawn(proc(100))
    sim.spawn(proc(300))
    assert sim.run() == 300  # wall clock = slowest, not sum


def test_finish_time_per_process():
    sim = Simulator()

    def proc(ns):
        yield Delay(ns)

    a = sim.spawn(proc(100))
    b = sim.spawn(proc(250))
    sim.run()
    assert sim.finish_time(a) == 100
    assert sim.finish_time(b) == 250


def test_finish_time_unknown_pid():
    sim = Simulator()
    with pytest.raises(KeyError):
        sim.finish_time(7)


def test_start_offset():
    sim = Simulator()

    def proc():
        yield Delay(10)

    sim.spawn(proc(), start_ns=500)
    assert sim.run() == 510


def test_lock_serializes_critical_sections():
    sim = Simulator()
    lock = Lock()
    order = []

    def proc(name):
        yield Acquire(lock)
        order.append((name, sim.now, "in"))
        yield Delay(100)
        order.append((name, sim.now, "out"))
        yield Release(lock)

    sim.spawn(proc("a"))
    sim.spawn(proc("b"))
    assert sim.run() == 200  # serialized: 2 x 100
    # b enters only after a leaves
    assert order == [("a", 0, "in"), ("a", 100, "out"), ("b", 100, "in"), ("b", 200, "out")]


def test_uncontended_lock_adds_no_time():
    sim = Simulator()
    lock = Lock()

    def proc():
        yield Acquire(lock)
        yield Delay(10)
        yield Release(lock)
        yield Delay(5)

    sim.spawn(proc())
    assert sim.run() == 15
    assert lock.contention_ratio == 0.0


def test_lock_contention_counted():
    sim = Simulator()
    lock = Lock()

    def proc():
        yield Acquire(lock)
        yield Delay(100)
        yield Release(lock)

    for _ in range(4):
        sim.spawn(proc())
    sim.run()
    assert lock.acquisitions == 4
    assert lock.contended_acquisitions == 3
    assert lock.contention_ratio == pytest.approx(0.75)


def test_fifo_lock_handoff():
    sim = Simulator()
    lock = Lock()
    entries = []

    def proc(name, start):
        yield Delay(start)
        yield Acquire(lock)
        entries.append(name)
        yield Delay(50)
        yield Release(lock)

    sim.spawn(proc("first", 0))
    sim.spawn(proc("second", 1))
    sim.spawn(proc("third", 2))
    sim.run()
    assert entries == ["first", "second", "third"]


def test_release_by_non_holder_raises():
    sim = Simulator()
    lock = Lock()

    def bad():
        yield Release(lock)

    sim.spawn(bad())
    with pytest.raises(RuntimeError):
        sim.run()


def test_deadlock_detected():
    sim = Simulator()
    lock_a, lock_b = Lock("a"), Lock("b")

    def proc(first, second):
        yield Acquire(first)
        yield Delay(10)
        yield Acquire(second)
        yield Release(second)
        yield Release(first)

    sim.spawn(proc(lock_a, lock_b))
    sim.spawn(proc(lock_b, lock_a))
    with pytest.raises(RuntimeError, match="deadlock"):
        sim.run()


def test_timeout_raised():
    sim = Simulator()

    def slow():
        yield Delay(10_000)

    sim.spawn(slow())
    with pytest.raises(Timeout):
        sim.run(until_ns=100)


def test_unknown_command_rejected():
    sim = Simulator()

    def bad():
        yield "not a command"

    sim.spawn(bad())
    with pytest.raises(TypeError):
        sim.run()


def test_empty_simulation_finishes_at_zero():
    assert Simulator().run() == 0


@given(st.lists(st.integers(min_value=0, max_value=1_000), min_size=1, max_size=20))
def test_parallel_runtime_is_max_of_delays(delays):
    sim = Simulator()

    def proc(ns):
        yield Delay(ns)

    for ns in delays:
        sim.spawn(proc(ns))
    assert sim.run() == max(delays)


@given(
    st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=12),
)
def test_fully_serialized_runtime_is_sum(holds):
    sim = Simulator()
    lock = Lock()

    def proc(ns):
        yield Acquire(lock)
        yield Delay(ns)
        yield Release(lock)

    for ns in holds:
        sim.spawn(proc(ns))
    assert sim.run() == sum(holds)
