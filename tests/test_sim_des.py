"""Tests for the discrete-event simulator."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.des import Acquire, Delay, Lock, Release, Simulator, Timeout


def test_single_process_delays_accumulate():
    sim = Simulator()

    def proc():
        yield Delay(100)
        yield Delay(50)

    sim.spawn(proc())
    assert sim.run() == 150


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Delay(-1)


def test_two_processes_run_concurrently():
    sim = Simulator()

    def proc(ns):
        yield Delay(ns)

    sim.spawn(proc(100))
    sim.spawn(proc(300))
    assert sim.run() == 300  # wall clock = slowest, not sum


def test_finish_time_per_process():
    sim = Simulator()

    def proc(ns):
        yield Delay(ns)

    a = sim.spawn(proc(100))
    b = sim.spawn(proc(250))
    sim.run()
    assert sim.finish_time(a) == 100
    assert sim.finish_time(b) == 250


def test_finish_time_unknown_pid():
    sim = Simulator()
    with pytest.raises(KeyError):
        sim.finish_time(7)


def test_start_offset():
    sim = Simulator()

    def proc():
        yield Delay(10)

    sim.spawn(proc(), start_ns=500)
    assert sim.run() == 510


def test_lock_serializes_critical_sections():
    sim = Simulator()
    lock = Lock()
    order = []

    def proc(name):
        yield Acquire(lock)
        order.append((name, sim.now, "in"))
        yield Delay(100)
        order.append((name, sim.now, "out"))
        yield Release(lock)

    sim.spawn(proc("a"))
    sim.spawn(proc("b"))
    assert sim.run() == 200  # serialized: 2 x 100
    # b enters only after a leaves
    assert order == [("a", 0, "in"), ("a", 100, "out"), ("b", 100, "in"), ("b", 200, "out")]


def test_uncontended_lock_adds_no_time():
    sim = Simulator()
    lock = Lock()

    def proc():
        yield Acquire(lock)
        yield Delay(10)
        yield Release(lock)
        yield Delay(5)

    sim.spawn(proc())
    assert sim.run() == 15
    assert lock.contention_ratio == 0.0


def test_lock_contention_counted():
    sim = Simulator()
    lock = Lock()

    def proc():
        yield Acquire(lock)
        yield Delay(100)
        yield Release(lock)

    for _ in range(4):
        sim.spawn(proc())
    sim.run()
    assert lock.acquisitions == 4
    assert lock.contended_acquisitions == 3
    assert lock.contention_ratio == pytest.approx(0.75)


def test_fifo_lock_handoff():
    sim = Simulator()
    lock = Lock()
    entries = []

    def proc(name, start):
        yield Delay(start)
        yield Acquire(lock)
        entries.append(name)
        yield Delay(50)
        yield Release(lock)

    sim.spawn(proc("first", 0))
    sim.spawn(proc("second", 1))
    sim.spawn(proc("third", 2))
    sim.run()
    assert entries == ["first", "second", "third"]


def test_release_by_non_holder_raises():
    sim = Simulator()
    lock = Lock()

    def bad():
        yield Release(lock)

    sim.spawn(bad())
    with pytest.raises(RuntimeError):
        sim.run()


def test_deadlock_detected():
    sim = Simulator()
    lock_a, lock_b = Lock("a"), Lock("b")

    def proc(first, second):
        yield Acquire(first)
        yield Delay(10)
        yield Acquire(second)
        yield Release(second)
        yield Release(first)

    sim.spawn(proc(lock_a, lock_b))
    sim.spawn(proc(lock_b, lock_a))
    with pytest.raises(RuntimeError, match="deadlock"):
        sim.run()


def test_timeout_raised():
    sim = Simulator()

    def slow():
        yield Delay(10_000)

    sim.spawn(slow())
    with pytest.raises(Timeout):
        sim.run(until_ns=100)


def test_unknown_command_rejected():
    sim = Simulator()

    def bad():
        yield "not a command"

    sim.spawn(bad())
    with pytest.raises(TypeError):
        sim.run()


def test_empty_simulation_finishes_at_zero():
    assert Simulator().run() == 0


@given(st.lists(st.integers(min_value=0, max_value=1_000), min_size=1, max_size=20))
def test_parallel_runtime_is_max_of_delays(delays):
    sim = Simulator()

    def proc(ns):
        yield Delay(ns)

    for ns in delays:
        sim.spawn(proc(ns))
    assert sim.run() == max(delays)


@given(
    st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=12),
)
def test_fully_serialized_runtime_is_sum(holds):
    sim = Simulator()
    lock = Lock()

    def proc(ns):
        yield Acquire(lock)
        yield Delay(ns)
        yield Release(lock)

    for ns in holds:
        sim.spawn(proc(ns))
    assert sim.run() == sum(holds)


# --------------------------------------------------------------------- #
# Exception cleanup: a crashing process must not leak locks or slots
# --------------------------------------------------------------------- #


def test_exception_releases_held_lock_to_waiter():
    sim = Simulator()
    lock = Lock()
    entries = []

    def crasher():
        yield Acquire(lock)
        yield Delay(10)
        raise ValueError("boom")

    def waiter():
        yield Acquire(lock)
        entries.append("waiter")
        yield Release(lock)

    sim.spawn(crasher())
    waiter_pid = sim.spawn(waiter())
    with pytest.raises(ValueError, match="boom"):
        sim.run()
    # The crash released the lock and handed it to the waiter...
    assert lock.holder == waiter_pid
    # ...so resuming the simulation lets the waiter proceed.
    sim.run()
    assert entries == ["waiter"]
    assert lock.holder is None


def test_exception_releases_semaphore_slot():
    from repro.sim.des import AcquireSlot, ReleaseSlot, Semaphore

    sim = Simulator()
    semaphore = Semaphore(1)
    entries = []

    def crasher():
        yield AcquireSlot(semaphore)
        yield Delay(10)
        raise RuntimeError("crash with slot held")

    def waiter():
        yield AcquireSlot(semaphore)
        entries.append("waiter")
        yield ReleaseSlot(semaphore)

    sim.spawn(crasher())
    waiter_pid = sim.spawn(waiter())
    with pytest.raises(RuntimeError, match="crash with slot held"):
        sim.run()
    assert semaphore.holders == {waiter_pid}
    sim.run()
    assert entries == ["waiter"]
    assert not semaphore.holders


def test_exception_releases_everything_held():
    sim = Simulator()
    lock_a, lock_b = Lock("a"), Lock("b")
    entries = []

    def crasher():
        yield Acquire(lock_a)
        yield Acquire(lock_b)
        yield Delay(5)
        raise ValueError("double crash")

    def needs(lock, name):
        yield Acquire(lock)
        entries.append(name)
        yield Release(lock)

    sim.spawn(crasher())
    sim.spawn(needs(lock_a, "a"))
    sim.spawn(needs(lock_b, "b"))
    with pytest.raises(ValueError):
        sim.run()
    sim.run()
    assert sorted(entries) == ["a", "b"]


def test_exception_cleanup_keeps_sanitizer_consistent():
    from repro.sim.sanitizers import LockSanitizer

    sim = Simulator(sanitizer=LockSanitizer())
    lock = Lock()

    def crasher():
        yield Acquire(lock)
        raise ValueError("with sanitizer")

    sim.spawn(crasher())
    # The process exception propagates; the sanitizer must not report a
    # leaked lock (which would raise LockSanitizerError instead).
    with pytest.raises(ValueError, match="with sanitizer"):
        sim.run()
    assert lock.holder is None


def test_crashed_process_has_finish_time():
    sim = Simulator()

    def crasher():
        yield Delay(42)
        raise ValueError("late crash")

    pid = sim.spawn(crasher())
    with pytest.raises(ValueError):
        sim.run()
    assert sim.finish_time(pid) == 42


# --------------------------------------------------------------------- #
# Seeded schedule perturbation
# --------------------------------------------------------------------- #


def _tie_break_order(seed, procs=6):
    sim = Simulator(seed=seed)
    order = []

    def proc(name):
        yield Delay(10)
        order.append(name)

    for i in range(procs):
        sim.spawn(proc(i))
    assert sim.run() == 10
    return order


def test_unseeded_schedule_is_fifo():
    assert _tie_break_order(None) == list(range(6))


def test_seeded_schedule_is_deterministic():
    for seed in (1, 2, 3):
        assert _tie_break_order(seed) == _tie_break_order(seed)


def test_some_seed_perturbs_same_timestamp_order():
    baseline = list(range(6))
    assert any(_tie_break_order(seed) != baseline for seed in range(1, 11))


def test_seed_preserves_fifo_lock_handoff():
    # Perturbation reorders same-timestamp *events*; the lock queue itself
    # stays FIFO, so total serialized time is unchanged.
    sim = Simulator(seed=99)
    lock = Lock()

    def proc():
        yield Acquire(lock)
        yield Delay(100)
        yield Release(lock)

    for _ in range(4):
        sim.spawn(proc())
    assert sim.run() == 400


# --------------------------------------------------------------------- #
# Access recorder (Eraser lockset pass)
# --------------------------------------------------------------------- #


def test_recorder_flags_unlocked_shared_counter():
    from repro.sim.race import AccessRecorder
    from repro.sim.stats import Counter

    recorder = AccessRecorder()
    counter = Counter("hits")
    recorder.register(counter, "shared.hits")
    sim = Simulator(recorder=recorder)

    def proc():
        yield Delay(1)
        counter.add(1)
        yield Delay(1)

    sim.spawn(proc())
    sim.spawn(proc())
    sim.run()
    conflicts = recorder.conflicts()
    assert len(conflicts) == 1
    report = conflicts[0]
    assert (report.obj, report.attr) == ("shared.hits", "value")
    assert report.pids == (0, 1)
    assert report.writes == 2
    assert "empty candidate lockset" in report.describe()


def test_recorder_quiet_when_counter_is_locked():
    from repro.sim.race import AccessRecorder
    from repro.sim.stats import Counter

    recorder = AccessRecorder()
    counter = Counter("hits")
    lock = Lock("stats-lock")
    sim = Simulator(recorder=recorder)

    def proc():
        yield Delay(1)
        yield Acquire(lock)
        counter.add(1)
        yield Release(lock)

    sim.spawn(proc())
    sim.spawn(proc())
    sim.run()
    assert recorder.conflicts() == []
    # Accesses were still recorded, with the lock in the lockset.
    assert all("stats-lock" in record.lockset for record in recorder.records)


def test_recorder_quiet_for_single_process():
    from repro.sim.race import AccessRecorder
    from repro.sim.stats import Counter

    recorder = AccessRecorder()
    counter = Counter("solo")
    sim = Simulator(recorder=recorder)

    def proc():
        yield Delay(1)
        counter.add(1)

    sim.spawn(proc())
    sim.run()
    assert recorder.conflicts() == []  # one pid: no race


def test_recorder_ignores_accesses_outside_run():
    from repro.sim import race
    from repro.sim.race import AccessRecorder
    from repro.sim.stats import Counter

    recorder = AccessRecorder()
    counter = Counter("outside")
    sim = Simulator(recorder=recorder)

    def proc():
        yield Delay(1)

    sim.spawn(proc())
    sim.run()
    counter.add(1)  # after run(): recorder uninstalled, context cleared
    assert race.active() is None
    assert recorder.records == []


def test_run_perturbed_identical_for_deterministic_scenario():
    from repro.sim.race import run_perturbed

    def scenario(seed):
        sim = Simulator(seed=seed)
        lock = Lock()
        done = []

        def proc():
            yield Acquire(lock)
            yield Delay(100)
            yield Release(lock)
            done.append(sim.now)

        for _ in range(3):
            sim.spawn(proc())
        elapsed = sim.run()
        return {"elapsed": elapsed, "finished": len(done)}

    report = run_perturbed(scenario, seeds=4)
    assert report.identical
    assert "schedule-independent" in report.format()


def test_run_perturbed_reports_schedule_dependence():
    from repro.sim.race import run_perturbed

    def scenario(seed):
        # Deliberately schedule-dependent: records which same-timestamp
        # process runs first.
        winner = []
        sim = Simulator(seed=seed)

        def proc(name):
            yield Delay(10)
            if not winner:
                winner.append(name)

        for i in range(6):
            sim.spawn(proc(i))
        sim.run()
        return {"winner": winner[0]}

    report = run_perturbed(scenario, seeds=10)
    assert not report.identical
    assert any(diff.key == "winner" for diff in report.diffs)
    assert "schedule-DEPENDENT" in report.format()
