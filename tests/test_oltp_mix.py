"""Tests for the TPC-C transaction-type mix and multi-channel flash."""

import numpy as np
import pytest

from repro import FlatFlash, small_config
from repro.apps.database import MiniDB
from repro.config import GeometryConfig, LatencyConfig
from repro.ssd.flash import FlashArray
from repro.workloads.oltp import (
    TPCC_DELIVERY,
    TPCC_MIX,
    TPCC_NEW_ORDER,
    TPCC_ORDER_STATUS,
    TPCC_PAYMENT,
    TPCC_STOCK_LEVEL,
    generate_mixed_transactions,
)


class TestTPCCMix:
    def test_mix_weights_sum_to_one(self):
        assert sum(weight for _spec, weight in TPCC_MIX) == pytest.approx(1.0)

    def test_all_specs_valid(self):
        for spec, _weight in TPCC_MIX:
            spec.validate()

    def test_read_only_types_have_no_writes(self):
        assert TPCC_ORDER_STATUS.record_writes == 0
        assert TPCC_STOCK_LEVEL.record_writes == 0

    def test_new_order_logs_most(self):
        assert TPCC_NEW_ORDER.log_bytes_max > TPCC_PAYMENT.log_bytes_max
        assert TPCC_NEW_ORDER.log_bytes_max > TPCC_ORDER_STATUS.log_bytes_max

    def test_generate_mixed_respects_proportions(self):
        txs = generate_mixed_transactions(
            TPCC_MIX, 3_000, table_bytes=64 * 1_024, rng=np.random.default_rng(1)
        )
        names = [tx.spec.name for tx in txs]
        new_order_share = names.count("TPCC-NewOrder") / len(names)
        payment_share = names.count("TPCC-Payment") / len(names)
        assert new_order_share == pytest.approx(0.45, abs=0.04)
        assert payment_share == pytest.approx(0.43, abs=0.04)

    def test_generate_mixed_validation(self):
        with pytest.raises(ValueError):
            generate_mixed_transactions(TPCC_MIX, 0, table_bytes=1_024)
        bad_mix = [(TPCC_PAYMENT, 0.4)]
        with pytest.raises(ValueError):
            generate_mixed_transactions(bad_mix, 5, table_bytes=1_024)

    def test_mixed_transactions_run_on_minidb(self):
        system = FlatFlash(small_config(track_data=False))
        db = MiniDB(system, table_pages=32, log_pages=8)
        txs = generate_mixed_transactions(
            TPCC_MIX, 60, table_bytes=db.table.size, rng=np.random.default_rng(2)
        )
        result = db.run(txs, num_threads=4)
        assert result.transactions == 60
        assert result.throughput_tps > 0

    def test_delivery_is_heaviest(self):
        assert TPCC_DELIVERY.compute_ns >= TPCC_NEW_ORDER.compute_ns


class TestFlashChannels:
    def test_channel_of_stripes_by_block(self):
        flash = FlashArray(8, 4, 64, LatencyConfig(), num_channels=4)
        assert flash.channel_of(0) == 0
        assert flash.channel_of(3) == 0  # same block
        assert flash.channel_of(4) == 1  # next block
        assert flash.channel_of(16) == 0  # wraps at num_channels

    def test_invalid_channel_count_rejected(self):
        with pytest.raises(ValueError):
            FlashArray(4, 4, 64, LatencyConfig(), num_channels=0)
        with pytest.raises(ValueError):
            GeometryConfig(flash_channels=0).validate()

    def test_device_inherits_channel_config(self):
        config = small_config()
        config.geometry.flash_channels = 4
        system = FlatFlash(config.validate())
        assert system.ssd.flash.num_channels == 4

    def test_minidb_uses_device_channels(self):
        config = small_config(track_data=False)
        config.geometry.flash_channels = 2
        system = FlatFlash(config.validate())
        db = MiniDB(system, table_pages=8, log_pages=4)
        assert db.flash_channels == 2
