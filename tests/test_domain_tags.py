"""Shadow domain-tag tests: the dynamic counterpart of simflow.

The suite-wide conftest enables tagging for every test, so these tests
exercise the tag algebra directly and then prove the property the
sanitizer exists for: a deliberate lpn-as-ppn misuse raises at the
mixing point, while the real systems run clean end to end.
"""

import copy
import pickle
import struct

import pytest

from repro import FlatFlash, small_config
from repro.sim import domain_tags
from repro.sim.domain_tags import DomainTagError, TaggedInt
from repro.ssd.device import ByteAddressableSSD
from repro.units import LPN, PPN, VPN, HostPage


# --------------------------------------------------------------------- #
# Enable/disable switch
# --------------------------------------------------------------------- #


def test_disabled_tagging_is_identity():
    previous = domain_tags.set_enabled(False)
    try:
        value = LPN(7)
        assert type(value) is int
        assert domain_tags.domain_of(value) is None
        # check() never raises while tagging is off.
        domain_tags.check(PPN(3), "LPN")
    finally:
        domain_tags.set_enabled(previous)


def test_set_enabled_returns_previous_state():
    previous = domain_tags.set_enabled(True)
    assert domain_tags.set_enabled(previous) is True
    assert domain_tags.enabled() == previous


# --------------------------------------------------------------------- #
# Tag algebra
# --------------------------------------------------------------------- #


def test_tagged_value_behaves_like_its_int():
    value = LPN(5)
    assert isinstance(value, int)
    assert isinstance(value, TaggedInt)
    assert int(value) == 5
    assert value.domain == "LPN"
    assert repr(value) == "LPN(5)"
    assert domain_tags.domain_of(value) == "LPN"


def test_additive_plain_keeps_the_tag():
    neighbour = LPN(5) + 1
    assert isinstance(neighbour, TaggedInt)
    assert neighbour.domain == "LPN"
    also = 1 + LPN(5)
    assert also.domain == "LPN"
    back = LPN(5) - 2
    assert back.domain == "LPN"


def test_same_domain_difference_is_a_plain_distance():
    distance = LPN(9) - LPN(2)
    assert distance == 7
    assert not isinstance(distance, TaggedInt)


def test_cross_domain_arithmetic_raises():
    with pytest.raises(DomainTagError):
        LPN(1) + PPN(2)
    with pytest.raises(DomainTagError):
        PPN(2) - VPN(1)


def test_cross_domain_comparison_raises():
    with pytest.raises(DomainTagError):
        LPN(1) < PPN(2)
    with pytest.raises(DomainTagError):
        LPN(1) == PPN(1)
    with pytest.raises(DomainTagError):
        HostPage(4) >= VPN(4)


def test_same_domain_comparison_is_plain_bool():
    assert LPN(1) < LPN(2)
    assert LPN(3) == LPN(3)
    assert PPN(5) >= PPN(5)


def test_comparison_with_plain_int_is_allowed():
    # Range checks like `0 <= ppn < total` must keep working.
    assert 0 <= PPN(3) < 10
    assert LPN(4) == 4


def test_scaling_leaves_the_domain():
    assert not isinstance(LPN(4) * 2, TaggedInt)
    assert not isinstance(LPN(9) // 2, TaggedInt)
    assert not isinstance(LPN(9) % 4, TaggedInt)
    quotient, remainder = divmod(PPN(9), 4)
    assert not isinstance(quotient, TaggedInt)
    assert not isinstance(remainder, TaggedInt)
    assert not isinstance(PPN(1) << 3, TaggedInt)


def test_scaling_still_rejects_cross_domain():
    with pytest.raises(DomainTagError):
        LPN(4) * PPN(2)
    with pytest.raises(DomainTagError):
        LPN(4) % PPN(2)


def test_hash_and_dict_keys_see_the_plain_int():
    table = {LPN(3): "entry"}
    assert table[3] == "entry"
    assert table[LPN(3)] == "entry"
    assert 3 in table
    assert hash(LPN(3)) == hash(3)


def test_struct_pack_accepts_tagged_values():
    assert struct.pack("<Q", LPN(7)) == struct.pack("<Q", 7)


def test_retagging_is_the_sanctioned_translation():
    # The cast points are the permission slip: merged-BAR mode reads a
    # host-visible page number as a flash ppn through exactly this cast.
    host_page = HostPage(PPN(12))
    assert host_page.domain == "HOST_PAGE"
    assert int(host_page) == 12


def test_pickle_and_deepcopy_preserve_the_tag():
    original = PPN(42)
    for clone in (pickle.loads(pickle.dumps(original)), copy.deepcopy(original)):
        assert isinstance(clone, TaggedInt)
        assert clone.domain == "PPN"
        assert int(clone) == 42


# --------------------------------------------------------------------- #
# check(): the consumer-side guard
# --------------------------------------------------------------------- #


def test_check_passes_untagged_and_matching_values():
    domain_tags.check(5, "PPN")
    domain_tags.check(PPN(5), "PPN")


def test_check_rejects_wrong_domain_with_context():
    with pytest.raises(DomainTagError) as excinfo:
        domain_tags.check(LPN(5), "PPN", "FlashArray")
    message = str(excinfo.value)
    assert "PPN" in message
    assert "FlashArray" in message
    assert "LPN(5)" in message


# --------------------------------------------------------------------- #
# The bug class, on the real device
# --------------------------------------------------------------------- #


def test_lpn_as_ppn_misuse_raises_on_the_flash_array():
    device = ByteAddressableSSD(small_config())
    host_page, _cost = device.map_page(LPN(0))
    lpn = device.resolve_lpn(host_page)
    assert domain_tags.domain_of(lpn) == "LPN"
    # Correct route: translate through the FTL first.
    ppn = device.ftl.lookup(lpn)
    assert domain_tags.domain_of(ppn) == "PPN"
    device.flash.read(ppn)
    # The classic FTL bug: handing the logical page straight to the NAND.
    with pytest.raises(DomainTagError):
        device.flash.read(lpn)


def test_ppn_as_lpn_misuse_raises_on_the_cache():
    device = ByteAddressableSSD(small_config())
    _host_page, _cost = device.map_page(LPN(1))
    ppn = device.ftl.lookup(LPN(1))
    with pytest.raises(DomainTagError):
        device.cache.lookup(ppn)


def test_vpn_as_lpn_misuse_raises_on_the_ftl():
    device = ByteAddressableSSD(small_config())
    with pytest.raises(DomainTagError):
        device.ftl.map_page(VPN(0))


# --------------------------------------------------------------------- #
# The systems run clean with tagging on
# --------------------------------------------------------------------- #


def test_flatflash_end_to_end_is_tag_clean():
    assert domain_tags.enabled()
    system = FlatFlash(small_config())
    region = system.mmap(8, name="tags")
    # Hammer a few pages hard enough to trigger promotion, eviction and
    # the SSD-Cache/FTL/GC machinery behind them.
    for page in range(8):
        for _ in range(4):
            system.store(region.page_addr(page, 0), 8, b"12345678")
            system.load(region.page_addr(page, 0), 8)
    system.ssd.gc.flush_dirty()
    system.ssd.gc.collect()
    system.quiesce()
    system.munmap(region)
