"""Tests for the PCIe interconnect model."""

import pytest

from repro.config import LatencyConfig
from repro.interconnect.pcie import BarWindow, PCIeLink


@pytest.fixture
def link():
    return PCIeLink(LatencyConfig(), cacheline_size=64)


class TestBarWindow:
    def test_contains(self):
        bar = BarWindow(base=0x1000, size=0x100)
        assert bar.contains(0x1000)
        assert bar.contains(0x10FF)
        assert not bar.contains(0x1100)
        assert not bar.contains(0xFFF)

    def test_offset_of(self):
        bar = BarWindow(base=0x1000, size=0x100)
        assert bar.offset_of(0x1010) == 0x10

    def test_offset_outside_raises(self):
        bar = BarWindow(base=0x1000, size=0x100)
        with pytest.raises(ValueError):
            bar.offset_of(0x2000)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            BarWindow(base=-1, size=10)
        with pytest.raises(ValueError):
            BarWindow(base=0, size=0)

    def test_end(self):
        assert BarWindow(base=100, size=50).end == 150


class TestPCIeLink:
    def test_read_one_line_costs_table2_number(self, link):
        assert link.mmio_read_cost(64) == 4_800

    def test_read_sub_line_rounds_up(self, link):
        assert link.mmio_read_cost(8) == 4_800

    def test_read_multiple_lines_scales(self, link):
        assert link.mmio_read_cost(256) == 4 * 4_800

    def test_posted_write_is_cheap(self, link):
        assert link.mmio_write_cost(64) == 600

    def test_write_traffic_counted(self, link):
        link.mmio_write_cost(128)
        assert link.bytes_to_device == 128

    def test_read_traffic_counted(self, link):
        link.mmio_read_cost(64)
        link.mmio_read_cost(64)
        assert link.bytes_from_device == 128

    def test_atomic_counts_both_directions(self, link):
        cost = link.mmio_atomic_cost(8)
        assert cost == 4_800  # round trip, like a read
        assert link.bytes_to_device == 8
        assert link.bytes_from_device == 8

    def test_verify_read_cost(self, link):
        assert link.verify_read_cost() == 4_800

    def test_dma_page_cost(self, link):
        assert link.dma_to_host_cost(4_096) == 3_000

    def test_dma_larger_than_page_scales(self, link):
        assert link.dma_from_host_cost(8_192) == 6_000

    def test_zero_size_rejected(self, link):
        with pytest.raises(ValueError):
            link.mmio_read_cost(0)

    def test_invalid_cacheline_size_rejected(self):
        with pytest.raises(ValueError):
            PCIeLink(LatencyConfig(), cacheline_size=0)

    def test_stats_counters_exposed(self, link):
        link.mmio_read_cost(64)
        link.mmio_write_cost(64)
        counters = link.stats.counters()
        assert counters["pcie.mmio_reads"] == 1
        assert counters["pcie.mmio_writes"] == 1
