"""simcost rule tests: one firing and one clean fixture per rule.

Mirrors ``tests/test_simeffect.py``: simcost is whole-program, so
fixtures go through :func:`analyze_sources` with explicit (path, source)
pairs.  The evaluator only special-cases calls it can *resolve* to the
clock/stat primitives, so every fixture ships tiny stub modules under
the real ``repro.sim.clock`` / ``repro.sim.stats`` paths; the cost atoms
come from a stub ``repro/config.py`` LatencyConfig (the model reads the
analyzed program's own config, not the live one).

The seeded-mutant classes are the SC001/SC002 regression gate: the real
repo tree is clean, so each test plants one realistic accounting bug in
``core/memory_system.py`` and requires the rule to catch it.
"""

import json
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro.analysis.simcost import (
    RULES,
    analyze_paths,
    analyze_sources,
    config_violations,
    report_for_paths,
)
from repro.analysis.simcost.engine import read_sources

SRC = pathlib.Path(__file__).resolve().parents[1] / "src"

# --------------------------------------------------------------------- #
# Stub modules every fixture program shares
# --------------------------------------------------------------------- #

CLOCK_STUB = textwrap.dedent(
    """
    class SimClock:
        def __init__(self) -> None:
            self.now_ns = 0

        def advance(self, delta_ns):
            self.now_ns += delta_ns

        def advance_to(self, ts_ns):
            self.now_ns = ts_ns
    """
)

STATS_STUB = textwrap.dedent(
    """
    class Counter:
        def add(self, amount=1):
            pass

    class RatioStat:
        def record(self, hit):
            pass

    class LatencyStats:
        def record(self, value):
            pass

        def extend(self, values):
            pass

    class StatRegistry:
        def counter(self, name):
            return Counter()

        def ratio(self, name):
            return RatioStat()

        def latency(self, name):
            return LatencyStats()
    """
)

CONFIG_STUB = textwrap.dedent(
    """
    class LatencyConfig:
        read_ns: int = 100
        write_ns: int = 200
    """
)


def codes(violations):
    return [v.code for v in violations]


def check(snippet, path="repro/sim/fake.py", select=None, config=CONFIG_STUB,
          **kwargs):
    sources = [
        ("repro/sim/clock.py", CLOCK_STUB),
        ("repro/sim/stats.py", STATS_STUB),
        ("repro/config.py", textwrap.dedent(config)),
        (path, textwrap.dedent(snippet)),
    ]
    return analyze_sources(sources, select=select, **kwargs)


#: A component that charges both config atoms, so SC006 stays quiet
#: while other rules are under test.  Indented to match the inline
#: fixture strings it is concatenated with, so dedent sees one block.
DEV_HEADER = """
        from repro.config import LatencyConfig
        from repro.sim.clock import SimClock
        from repro.sim.stats import StatRegistry

        class Dev:
            def __init__(self, clock: SimClock, lat: LatencyConfig,
                         stats: StatRegistry) -> None:
                self.clock = clock
                self.lat = lat
                self._reads = stats.counter("dev.reads")

            def _burn_all_atoms(self) -> None:
                self.clock.advance(self.lat.read_ns)
                self.clock.advance(self.lat.write_ns)
"""


# --------------------------------------------------------------------- #
# SC000: syntax errors
# --------------------------------------------------------------------- #


def test_sc000_syntax_error_is_reported_not_raised():
    violations = check("def broken(:\n", select=["SC000"])
    assert codes(violations) == ["SC000"]
    assert violations[0].line == 1


# --------------------------------------------------------------------- #
# SC001: TimeNs result discarded without being charged
# --------------------------------------------------------------------- #


def test_sc001_flags_discarded_time_result():
    violations = check(
        DEV_HEADER
        + """
        TimeNs = int

        class Cache:
            def __init__(self, dev: Dev) -> None:
                self.dev = dev

            def probe_cost(self) -> TimeNs:
                return 40

            def touch(self) -> None:
                self.probe_cost()
        """,
        select=["SC001"],
    )
    assert codes(violations) == ["SC001"]
    assert "discarded" in violations[0].message


def test_sc001_clean_when_result_is_charged():
    violations = check(
        DEV_HEADER
        + """
        TimeNs = int

        class Cache:
            def __init__(self, dev: Dev) -> None:
                self.dev = dev

            def probe_cost(self) -> TimeNs:
                return 40

            def touch(self) -> None:
                self.dev.clock.advance(self.probe_cost())
        """,
        select=["SC001"],
    )
    assert violations == []


def test_sc001_clean_when_callee_charges_itself():
    violations = check(
        DEV_HEADER
        + """
        TimeNs = int

        class Cache:
            def __init__(self, dev: Dev) -> None:
                self.dev = dev

            def charge(self) -> TimeNs:
                cost = self.dev.lat.read_ns
                self.dev.clock.advance(cost)
                return cost

            def touch(self) -> None:
                self.charge()
        """,
        select=["SC001"],
    )
    assert violations == []


# --------------------------------------------------------------------- #
# SC002: the same cost charged twice on one path
# --------------------------------------------------------------------- #


def test_sc002_flags_double_charge():
    violations = check(
        DEV_HEADER
        + """
        class App:
            def __init__(self, dev: Dev) -> None:
                self.dev = dev

            def read(self) -> None:
                cost = self.dev.lat.read_ns
                self.dev.clock.advance(cost)
                self.dev.clock.advance(cost)
        """,
        select=["SC002"],
    )
    assert codes(violations) == ["SC002"]
    assert "read_ns" in violations[0].message


def test_sc002_clean_on_disjoint_branches():
    # The same constant charged on *different* paths is fine: each
    # concrete execution charges once.
    violations = check(
        DEV_HEADER
        + """
        class App:
            def __init__(self, dev: Dev) -> None:
                self.dev = dev

            def read(self, fast: bool) -> None:
                cost = self.dev.lat.read_ns
                if fast:
                    self.dev.clock.advance(cost)
                else:
                    self.dev.clock.advance(cost)
        """,
        select=["SC002"],
    )
    assert violations == []


# --------------------------------------------------------------------- #
# SC003: magic-number time
# --------------------------------------------------------------------- #


def test_sc003_flags_magic_number_advance():
    violations = check(
        DEV_HEADER
        + """
        class App:
            def __init__(self, dev: Dev) -> None:
                self.dev = dev

            def stall(self) -> None:
                self.dev.clock.advance(750)
        """,
        select=["SC003"],
    )
    assert codes(violations) == ["SC003"]
    assert "magic number" in violations[0].message


def test_sc003_clean_atom_traced_advance():
    violations = check(
        DEV_HEADER
        + """
        class App:
            def __init__(self, dev: Dev) -> None:
                self.dev = dev

            def read_two(self) -> None:
                self.dev.clock.advance(2 * self.dev.lat.read_ns)
        """,
        select=["SC003"],
    )
    assert violations == []


# --------------------------------------------------------------------- #
# SC004: counter-conservation invariants
# --------------------------------------------------------------------- #

COUNTED_HEADER = """
        from repro.config import LatencyConfig
        from repro.costs import counters
        from repro.sim.clock import SimClock
        from repro.sim.stats import StatRegistry
"""


def test_sc004_flags_violated_invariant():
    violations = check(
        COUNTED_HEADER
        + """
        @counters(owner="dev", conserve=("touch: dev.reads == 1",))
        class Dev:
            def __init__(self, clock: SimClock, lat: LatencyConfig,
                         stats: StatRegistry) -> None:
                self.clock = clock
                self.lat = lat
                self._reads = stats.counter("dev.reads")

            def _burn_all_atoms(self) -> None:
                self.clock.advance(self.lat.read_ns)
                self.clock.advance(self.lat.write_ns)

            def touch(self) -> None:
                self._reads.add()
                self._reads.add()
        """,
        select=["SC004"],
    )
    assert codes(violations) == ["SC004"]
    assert "dev.reads == 1" in violations[0].message


def test_sc004_verifies_conditional_bump_with_le():
    violations = check(
        COUNTED_HEADER
        + """
        @counters(owner="dev", conserve=("touch: dev.reads <= 1",))
        class Dev:
            def __init__(self, clock: SimClock, lat: LatencyConfig,
                         stats: StatRegistry) -> None:
                self.clock = clock
                self.lat = lat
                self._reads = stats.counter("dev.reads")

            def _burn_all_atoms(self) -> None:
                self.clock.advance(self.lat.read_ns)
                self.clock.advance(self.lat.write_ns)

            def touch(self, hot: bool) -> None:
                if hot:
                    self._reads.add()
        """,
        select=["SC004"],
    )
    assert violations == []


def test_sc004_flags_bad_invariant_grammar_in_decorator():
    violations = check(
        COUNTED_HEADER
        + """
        @counters(owner="dev", conserve=("dev.reads < 1",))
        class Dev:
            def __init__(self, clock: SimClock, lat: LatencyConfig,
                         stats: StatRegistry) -> None:
                self.clock = clock
                self.lat = lat
                self._reads = stats.counter("dev.reads")

            def _burn_all_atoms(self) -> None:
                self.clock.advance(self.lat.read_ns)
                self.clock.advance(self.lat.write_ns)
        """,
        select=["SC004"],
    )
    assert codes(violations) == ["SC004"]


# --------------------------------------------------------------------- #
# SC005: stat mutated outside its owning component
# --------------------------------------------------------------------- #


def test_sc005_flags_foreign_stat_mutation():
    violations = check(
        COUNTED_HEADER
        + """
        @counters(owner="dev")
        class Dev:
            def __init__(self, clock: SimClock, lat: LatencyConfig,
                         stats: StatRegistry) -> None:
                self.clock = clock
                self.lat = lat
                self._reads = stats.counter("dev.reads")

            def _burn_all_atoms(self) -> None:
                self.clock.advance(self.lat.read_ns)
                self.clock.advance(self.lat.write_ns)

        class Meddler:
            def __init__(self, stats: StatRegistry) -> None:
                self._sneak = stats.counter("dev.reads")

            def poke(self) -> None:
                self._sneak.add()
        """,
        select=["SC005"],
    )
    assert codes(violations) == ["SC005"]
    assert "owned by" in violations[0].message
    assert "Meddler" in violations[0].message


def test_sc005_clean_mutation_inside_owner():
    violations = check(
        COUNTED_HEADER
        + """
        @counters(owner="dev")
        class Dev:
            def __init__(self, clock: SimClock, lat: LatencyConfig,
                         stats: StatRegistry) -> None:
                self.clock = clock
                self.lat = lat
                self._reads = stats.counter("dev.reads")

            def _burn_all_atoms(self) -> None:
                self.clock.advance(self.lat.read_ns)
                self.clock.advance(self.lat.write_ns)

            def touch(self) -> None:
                self._reads.add()
        """,
        select=["SC005"],
    )
    assert violations == []


def test_sc005_subclass_of_owner_is_not_foreign():
    violations = check(
        COUNTED_HEADER
        + """
        @counters(owner="dev")
        class Dev:
            def __init__(self, clock: SimClock, lat: LatencyConfig,
                         stats: StatRegistry) -> None:
                self.clock = clock
                self.lat = lat
                self._reads = stats.counter("dev.reads")

            def _burn_all_atoms(self) -> None:
                self.clock.advance(self.lat.read_ns)
                self.clock.advance(self.lat.write_ns)

        class FastDev(Dev):
            def touch(self) -> None:
                self._reads.add()
        """,
        select=["SC005"],
    )
    assert violations == []


# --------------------------------------------------------------------- #
# SC006: dead cost constant
# --------------------------------------------------------------------- #


def test_sc006_flags_unused_latency_field():
    violations = check(
        DEV_HEADER,
        config="""
        class LatencyConfig:
            read_ns: int = 100
            write_ns: int = 200
            orphan_ns: int = 300
        """,
        select=["SC006"],
    )
    assert codes(violations) == ["SC006"]
    assert "orphan_ns" in violations[0].message


def test_sc006_clean_when_every_field_is_read():
    violations = check(DEV_HEADER, select=["SC006"])
    assert violations == []


def test_builtin_call_inside_counter_add_does_not_crash():
    # Call edges are keyed by line, so ``counter.add(sum(xs))`` puts
    # ``Counter.add`` as the lone candidate for the builtin call too;
    # the path evaluator must not mistake ``sum`` for the counter add.
    snippet = DEV_HEADER + """
        class App:
            def __init__(self, dev: Dev) -> None:
                self.dev = dev

            def tally(self, xs) -> None:
                self.dev._reads.add(sum(xs) - min(xs))
    """
    assert check(snippet) == []


# --------------------------------------------------------------------- #
# Suppressions and --select
# --------------------------------------------------------------------- #


def test_suppression_comment_silences_a_finding():
    snippet = DEV_HEADER + """
        class App:
            def __init__(self, dev: Dev) -> None:
                self.dev = dev

            def stall(self) -> None:
                self.dev.clock.advance(750)  # simcost: disable=SC003 (why)
    """
    assert check(snippet, select=["SC003"]) == []
    raw = check(snippet, select=["SC003"], apply_suppressions=False)
    assert codes(raw) == ["SC003"]


def test_select_filters_rules():
    snippet = DEV_HEADER + """
        class App:
            def __init__(self, dev: Dev) -> None:
                self.dev = dev

            def stall(self) -> None:
                cost = self.dev.lat.read_ns
                self.dev.clock.advance(cost)
                self.dev.clock.advance(cost)
                self.dev.clock.advance(750)
    """
    assert codes(check(snippet, select=["SC002"])) == ["SC002"]
    assert codes(check(snippet, select=["SC003"])) == ["SC003"]
    both = codes(check(snippet, select=["SC002", "SC003"]))
    assert sorted(both) == ["SC002", "SC003"]


def test_rule_catalogue_is_complete():
    assert [rule.code for rule in RULES] == [
        "SC001", "SC002", "SC003", "SC004", "SC005", "SC006",
    ]
    for rule in RULES:
        assert rule.title
        assert rule.explanation


# --------------------------------------------------------------------- #
# SC007 (--check-config): dead tuning knobs
# --------------------------------------------------------------------- #


def test_sc007_flags_never_read_config_knob():
    sources = [
        ("repro/sim/clock.py", CLOCK_STUB),
        ("repro/sim/stats.py", STATS_STUB),
        (
            "repro/config.py",
            textwrap.dedent(
                """
                class FlatFlashConfig:
                    page_size: int = 4096
                    phantom_knob: int = 7
                """
            ),
        ),
        (
            "repro/sim/fake.py",
            textwrap.dedent(
                """
                from repro.config import FlatFlashConfig

                def use(config: FlatFlashConfig) -> int:
                    return config.page_size
                """
            ),
        ),
    ]
    violations = config_violations(sources)
    assert codes(violations) == ["SC007"]
    assert "phantom_knob" in violations[0].message


def test_sc007_derived_accessor_reads_count():
    # A knob consumed only by a derived accessor *inside* config.py is
    # still live (the resolved_* pattern the real GeometryConfig uses).
    sources = [
        ("repro/sim/clock.py", CLOCK_STUB),
        ("repro/sim/stats.py", STATS_STUB),
        (
            "repro/config.py",
            textwrap.dedent(
                """
                class FlatFlashConfig:
                    cache_ratio: float = 0.1

                    def resolved_pages(self, total: int) -> int:
                        return int(total * self.cache_ratio)
                """
            ),
        ),
    ]
    assert config_violations(sources) == []


# --------------------------------------------------------------------- #
# Seeded mutants: the SC001/SC002 regression gate on real repo code
# --------------------------------------------------------------------- #


def _mutated_repo_sources(old, new):
    sources = read_sources([str(SRC / "repro")])
    out = []
    hit = False
    for path, text in sources:
        if path.endswith("core/memory_system.py") and old in text:
            text = text.replace(old, new, 1)
            hit = True
        out.append((path, text))
    assert hit, f"mutation target not found: {old!r}"
    return out


class TestSeededMutants:
    def test_sc001_catches_dropped_background_booking(self):
        """Discarding batch_invalidate's TimeNs instead of booking it to
        gc background time must fire SC001 at the mutated line."""
        mutant = _mutated_repo_sources(
            "self._background_ns.add(self.tlb.batch_invalidate(vpns))",
            "self.tlb.batch_invalidate(vpns)",
        )
        violations = [v for v in analyze_sources(mutant) if v.code == "SC001"]
        assert len(violations) == 1, [v.format() for v in violations]
        assert "batch_invalidate" in violations[0].message
        assert violations[0].path.endswith("core/memory_system.py")

    def test_sc002_catches_double_charged_access_latency(self):
        """Charging one access's latency twice must fire SC002 naming a
        constant that flowed into the doubled value."""
        mutant = _mutated_repo_sources(
            "        self.clock.advance(total_latency)\n",
            "        self.clock.advance(total_latency)\n"
            "        self.clock.advance(total_latency)\n",
        )
        violations = [v for v in analyze_sources(mutant) if v.code == "SC002"]
        assert len(violations) == 1, [v.format() for v in violations]
        assert "double charge" in violations[0].message


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #


def _run_cli(args, tmp_path):
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis.simcost", *args],
        capture_output=True,
        text=True,
        cwd=tmp_path,
        env={"PYTHONPATH": str(SRC)},
    )


def _write_fixture_tree(tmp_path):
    root = tmp_path / "repro"
    (root / "sim").mkdir(parents=True)
    (root / "sim" / "clock.py").write_text(CLOCK_STUB)
    (root / "sim" / "stats.py").write_text(STATS_STUB)
    (root / "config.py").write_text(CONFIG_STUB)
    (root / "sim" / "dev.py").write_text(textwrap.dedent(DEV_HEADER))
    return root


def test_cli_exits_zero_on_clean_tree(tmp_path):
    _write_fixture_tree(tmp_path)
    result = _run_cli(["repro"], tmp_path)
    assert result.returncode == 0, result.stdout + result.stderr
    assert "clean" in result.stdout


def test_cli_exits_nonzero_on_violation(tmp_path):
    root = _write_fixture_tree(tmp_path)
    (root / "sim" / "bad.py").write_text(
        textwrap.dedent(
            """
            from repro.sim.clock import SimClock

            class App:
                def __init__(self, clock: SimClock) -> None:
                    self.clock = clock

                def stall(self) -> None:
                    self.clock.advance(750)
            """
        )
    )
    result = _run_cli(["repro"], tmp_path)
    assert result.returncode == 1
    assert "SC003" in result.stdout


def test_cli_list_rules(tmp_path):
    result = _run_cli(["--list-rules"], tmp_path)
    assert result.returncode == 0
    for code in ("SC001", "SC006", "SC007"):
        assert code in result.stdout


def test_cli_json_shared_schema(tmp_path):
    _write_fixture_tree(tmp_path)
    result = _run_cli(["--json", "repro"], tmp_path)
    assert result.returncode == 0, result.stdout + result.stderr
    payload = json.loads(result.stdout)
    assert payload["tool"] == "simcost"
    assert payload["count"] == 0
    assert payload["findings"] == []


def test_cli_report_writes_costs_json(tmp_path):
    _write_fixture_tree(tmp_path)
    result = _run_cli(["--report", "COSTS.json", "repro"], tmp_path)
    assert result.returncode == 0, result.stdout + result.stderr
    report = json.loads((tmp_path / "COSTS.json").read_text())
    assert report["tool"] == "simcost"
    assert "entry_points" in report
    assert "invariants" in report
    assert "latency_fields" in report


def test_cli_check_config_flags_dead_knob(tmp_path):
    root = _write_fixture_tree(tmp_path)
    (root / "config.py").write_text(
        CONFIG_STUB
        + textwrap.dedent(
            """
            class FlatFlashConfig:
                phantom_knob: int = 7
            """
        )
    )
    result = _run_cli(["--check-config", "repro"], tmp_path)
    assert result.returncode == 1
    assert "SC007" in result.stdout
    assert "phantom_knob" in result.stdout


# --------------------------------------------------------------------- #
# Repo gates: the tree is clean and COSTS.json answers the ROADMAP
# --------------------------------------------------------------------- #


def test_repo_tree_is_simcost_clean():
    violations = analyze_paths([str(SRC)])
    assert violations == [], "\n".join(v.format() for v in violations)


def test_repo_config_has_no_dead_knobs():
    sources = read_sources([str(SRC / "repro")])
    violations = config_violations(sources)
    assert violations == [], "\n".join(v.format() for v in violations)


class TestRepoCostReport:
    @pytest.fixture(scope="class")
    def report(self):
        return report_for_paths([str(SRC / "repro")])

    def test_every_certified_kernel_has_an_entry(self, report):
        from repro.analysis.simeffect import report_for_paths as effects_report

        certified = set(effects_report([str(SRC / "repro")])["certified"])
        assert len(certified) == report["summary"]["kernels"]
        covered = {
            e["function"] for e in report["entry_points"] if e["group"] == "kernel"
        }
        assert certified <= covered, f"missing: {certified - covered}"

    def test_promotion_fault_and_persistence_paths_are_covered(self, report):
        groups = {e["group"] for e in report["entry_points"]}
        assert {"kernel", "promotion", "fault-retry", "persistence"} <= groups

    def test_entries_are_path_conditional(self, report):
        by_name = {e["function"]: e for e in report["entry_points"]}
        walk = by_name["host.page_table.PageTable.walk"]
        assert len(walk["paths"]) == 2
        raises = {p["raises"] for p in walk["paths"]}
        assert raises == {None, "KeyError"}
        for path in walk["paths"]:
            assert path["counters"]["page_table.walks"] == [1, 1]
        tlb = by_name["host.tlb.TLB.lookup"]
        conds = {tuple(p["conditions"]) for p in tlb["paths"]}
        assert len(conds) == len(tlb["paths"]) == 2

    def test_required_invariants_are_declared_and_verified(self, report):
        required = {
            ("host.plb.PLB", "lookup: plb.hits:total == 1"),
            ("host.plb.PLB", "plb.hits:hit + plb.hits:miss == plb.hits:total"),
            ("host.tlb.TLB", "lookup: tlb.hits:total == 1"),
            ("host.tlb.TLB", "tlb.hits:hit + tlb.hits:miss == tlb.hits:total"),
            ("host.page_table.PageTable", "walk: page_table.walks == 1"),
            ("ssd.ssd_cache.SSDCache", "lookup: ssd_cache.hits:total <= 1"),
            (
                "ssd.ssd_cache.SSDCache",
                "ssd_cache.hits:hit + ssd_cache.hits:miss == ssd_cache.hits:total",
            ),
        }
        status = {
            (inv["class"], inv["invariant"]): inv["status"]
            for inv in report["invariants"]
        }
        for key in required:
            assert status.get(key) == "verified", (key, status.get(key))

    def test_no_invariant_is_violated(self, report):
        summary = report["summary"]
        assert summary["invariants_violated"] == 0
        assert summary["invariants_declared"] == len(report["invariants"])

    def test_no_dead_latency_fields(self, report):
        assert report["dead_latency_fields"] == []

    def test_committed_costs_json_is_current(self, report):
        def relative(document):
            # The committed report was generated from the repo root with
            # a relative path; the fixture uses an absolute one.
            text = json.dumps(document, sort_keys=True)
            return text.replace(str(SRC.parent) + "/", "")

        committed = json.loads(
            (SRC.parent / "COSTS.json").read_text(encoding="utf-8")
        )
        assert relative(committed) == relative(report), (
            "COSTS.json is stale — regenerate with "
            "`python -m repro.analysis.simcost --report COSTS.json src/repro`"
        )
