"""Campaign-level determinism and sweep integration for simfault."""

import json

import pytest

from repro.experiments.fault_campaign import scenario_cell
from repro.faults.campaign import SCENARIO_NAMES, render_report, run_campaign
from repro.sweep.registry import default_registry


def test_scenario_names_cover_all_planes():
    assert "zero_faults" in SCENARIO_NAMES
    assert "nand_soak" in SCENARIO_NAMES
    assert "pcie_storm" in SCENARIO_NAMES
    assert any(name.startswith("power_") for name in SCENARIO_NAMES)


def test_smoke_campaign_is_clean_and_byte_identical():
    first = render_report(run_campaign(seed=11, smoke=True))
    second = render_report(run_campaign(seed=11, smoke=True))
    assert first == second  # same seed + plan -> byte-identical report
    report = json.loads(first)
    assert report["problem_count"] == 0
    assert report["seed"] == 11
    assert [entry["name"] for entry in report["scenarios"]] == list(
        SCENARIO_NAMES
    )


def test_different_seed_changes_probabilistic_scenarios():
    base = run_campaign(seed=0, smoke=True, scenarios=["nand_soak"])
    other = run_campaign(seed=1, smoke=True, scenarios=["nand_soak"])
    assert base["scenarios"][0]["plan"] != other["scenarios"][0]["plan"]


def test_report_is_sorted_and_newline_terminated():
    text = render_report(run_campaign(seed=0, smoke=True, scenarios=["zero_faults"]))
    assert text.endswith("\n")
    assert text == json.dumps(json.loads(text), sort_keys=True, indent=2) + "\n"


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError):
        run_campaign(scenarios=["nope"])


def test_registry_has_one_cell_per_scenario():
    registry = default_registry()
    names = set(registry.names())
    for scenario in SCENARIO_NAMES:
        assert f"faults:{scenario}" in names


def test_scenario_cell_is_data_only():
    result = scenario_cell("zero_faults")
    assert result.sections == []  # EXPERIMENTS.md must not change
    assert result.metrics["faults.zero_faults.problems"] == 0


def test_scenario_cell_surfaces_fault_metrics():
    result = scenario_cell("nand_soak")
    assert any(
        key.startswith("faults.nand_soak.flash.") for key in result.metrics
    )
