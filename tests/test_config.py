"""Tests for configuration validation and derivation."""

import pytest

from repro.config import (
    FlatFlashConfig,
    GeometryConfig,
    LatencyConfig,
    PromotionConfig,
    small_config,
)


def test_defaults_validate():
    FlatFlashConfig().validate()


def test_small_config_validates():
    config = small_config()
    assert config.geometry.dram_pages == 16


def test_small_config_overrides():
    config = small_config(track_data=False)
    assert not config.track_data


def test_small_config_unknown_override_rejected():
    with pytest.raises(TypeError):
        small_config(nonsense=True)


def test_negative_latency_rejected():
    latency = LatencyConfig(dram_load_ns=-1)
    with pytest.raises(ValueError):
        latency.validate()


def test_table2_defaults():
    latency = LatencyConfig()
    assert latency.mmio_read_cacheline_ns == 4_800
    assert latency.mmio_write_cacheline_ns == 600
    assert latency.page_promotion_ns == 12_100
    assert latency.pte_tlb_update_ns == 1_400
    assert latency.page_table_walk_ns == 700


def test_geometry_page_alignment_checked():
    geometry = GeometryConfig(page_size=100, cacheline_size=64)
    with pytest.raises(ValueError):
        geometry.validate()


def test_geometry_positive_sizes_checked():
    with pytest.raises(ValueError):
        GeometryConfig(dram_pages=0).validate()
    with pytest.raises(ValueError):
        GeometryConfig(ssd_pages=0).validate()
    with pytest.raises(ValueError):
        GeometryConfig(plb_entries=0).validate()


def test_ssd_cache_derived_from_ratio():
    geometry = GeometryConfig(ssd_pages=80_000, ssd_cache_ratio=0.00125)
    assert geometry.resolved_ssd_cache_pages() == 100


def test_ssd_cache_explicit_override():
    geometry = GeometryConfig(ssd_cache_pages=42)
    assert geometry.resolved_ssd_cache_pages() == 42


def test_ssd_cache_floor_is_ways():
    geometry = GeometryConfig(ssd_pages=100, ssd_cache_ratio=0.0001, ssd_cache_ways=8)
    assert geometry.resolved_ssd_cache_pages() == 8


def test_cachelines_per_page():
    assert GeometryConfig().cachelines_per_page == 64


def test_promotion_config_paper_defaults():
    promotion = PromotionConfig()
    assert promotion.lw_ratio == 0.25
    assert promotion.hi_ratio == 0.75
    assert promotion.max_threshold == 7
    assert promotion.reset_epoch == 10_000


def test_promotion_ratio_ordering_checked():
    with pytest.raises(ValueError):
        PromotionConfig(lw_ratio=0.8, hi_ratio=0.5).validate()


def test_scaled_copy_replaces_geometry():
    config = FlatFlashConfig()
    scaled = config.scaled(dram_pages=7)
    assert scaled.geometry.dram_pages == 7
    assert config.geometry.dram_pages != 7  # original untouched
