"""Tests for Algorithm 1 — hand-traced against the paper's pseudocode."""

import pytest

from repro.config import PromotionConfig
from repro.core.promotion import (
    AdaptivePromotionPolicy,
    FixedPromotionPolicy,
    PromotionManager,
)
from repro.ssd.ssd_cache import CacheEntry


def entry(lpn=0):
    return CacheEntry(lpn, None, dirty=False)


def make_policy(**overrides):
    config = PromotionConfig(**overrides)
    return AdaptivePromotionPolicy(config)


class TestAdaptivePolicy:
    def test_initial_threshold_is_max(self):
        policy = make_policy(max_threshold=7)
        assert policy.curr_threshold == 7

    def test_page_promotes_when_counter_reaches_threshold(self):
        policy = make_policy(max_threshold=3)
        page = entry()
        assert not policy.update(page)  # cnt 1
        assert not policy.update(page)  # cnt 2
        assert policy.update(page)  # cnt 3 == threshold
        assert page.page_cnt == 3

    def test_counters_track_paper_variables(self):
        policy = make_policy(max_threshold=3)
        page = entry()
        policy.update(page)
        policy.update(page)
        assert policy.net_agg_cnt == 2
        assert policy.access_cnt == 2
        assert policy.agg_promoted_cnt == 0
        policy.update(page)
        assert policy.agg_promoted_cnt == 3  # += pageCnt on promotion

    def test_low_reuse_raises_threshold(self):
        policy = make_policy(max_threshold=7, lw_ratio=0.25, hi_ratio=0.75)
        policy.curr_threshold = 3
        # Distinct pages, one access each: currRatio stays 0 <= LwRatio.
        for lpn in range(4):
            policy.update(entry(lpn))
        assert policy.curr_threshold == 7

    def test_threshold_capped_at_max(self):
        policy = make_policy(max_threshold=4)
        for lpn in range(20):
            policy.update(entry(lpn))
        assert policy.curr_threshold == 4

    def test_high_reuse_lowers_threshold_on_promotion(self):
        policy = make_policy(max_threshold=7, lw_ratio=0.25, hi_ratio=0.75)
        page = entry()
        results = [policy.update(page) for _ in range(7)]
        # Promoted exactly on the 7th access (counter catches the threshold
        # only at max), and the promoting access with ratio 1.0 lowers it.
        assert results == [False] * 6 + [True]
        assert policy.curr_threshold == 6

    def test_threshold_never_below_one(self):
        policy = make_policy(max_threshold=2)
        policy.curr_threshold = 1
        page = entry()
        policy.update(page)  # promotes immediately: ratio 1.0 >= HiRatio
        assert policy.curr_threshold >= 1

    def test_adjust_cnt_retires_counter(self):
        policy = make_policy()
        page = entry()
        policy.update(page)
        policy.update(page)
        policy.adjust_cnt(page)
        assert page.page_cnt == 0
        assert policy.net_agg_cnt == 0

    def test_reset_epoch_reseeds_access_cnt_from_net_agg(self):
        policy = make_policy(max_threshold=7, reset_epoch=5)
        pages = [entry(lpn) for lpn in range(2)]
        for index in range(5):
            policy.update(pages[index % 2])
        # After the 5th access: AccessCnt <- NetAggCnt (5, nothing evicted),
        # AggPromotedCnt <- 0, threshold back to max.
        assert policy.access_cnt == policy.net_agg_cnt == 5
        assert policy.agg_promoted_cnt == 0
        assert policy.curr_threshold == 7

    def test_reset_epoch_with_evictions_uses_live_sum(self):
        policy = make_policy(max_threshold=7, reset_epoch=4)
        keep, gone = entry(0), entry(1)
        policy.update(keep)
        policy.update(gone)
        policy.adjust_cnt(gone)  # evicted: NetAggCnt drops to 1
        policy.update(keep)
        policy.update(keep)  # 4th access triggers the epoch reset
        assert policy.access_cnt == 3  # NetAggCnt = keep's counter only

    def test_hand_traced_sequence(self):
        """Full trace with max_threshold=2, epoch large."""
        policy = make_policy(max_threshold=2, reset_epoch=1_000)
        a, b = entry(0), entry(1)
        # access a: cnt=1, no promo, ratio 0 -> lw branch, thr stays 2 (max)
        assert policy.update(a) is False
        assert (policy.curr_threshold, policy.agg_promoted_cnt) == (2, 0)
        # access a: cnt=2 == thr -> promote, AggPromoted=2, ratio=1.0 >= hi
        # -> thr 2 > 1 and promoteFlag -> thr=1
        assert policy.update(a) is True
        assert policy.curr_threshold == 1
        assert policy.agg_promoted_cnt == 2
        # access b: cnt=1 == thr(1) -> promote, AggPromoted=3, ratio=1.0
        # -> thr stays 1 (cannot go below 1)
        assert policy.update(b) is True
        assert policy.curr_threshold == 1


class TestFixedPolicy:
    def test_promotes_at_threshold(self):
        policy = FixedPromotionPolicy(threshold=2)
        page = entry()
        assert not policy.update(page)
        assert policy.update(page)

    def test_threshold_one_promotes_immediately(self):
        policy = FixedPromotionPolicy(threshold=1)
        assert policy.update(entry())

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            FixedPromotionPolicy(0)

    def test_adjust_resets_counter(self):
        policy = FixedPromotionPolicy(threshold=5)
        page = entry()
        policy.update(page)
        policy.adjust_cnt(page)
        assert page.page_cnt == 0


class TestPromotionManager:
    def test_candidates_queued_and_drained(self):
        manager = PromotionManager(PromotionConfig(max_threshold=1))
        manager.update(entry(7))
        assert manager.take_candidates() == [7]
        assert manager.take_candidates() == []

    def test_duplicate_candidates_deduped(self):
        manager = PromotionManager(policy=FixedPromotionPolicy(1))
        page = entry(3)
        manager.update(page)
        page.page_cnt = 0  # as if re-inserted
        manager.update(page)
        assert manager.take_candidates() == [3]

    def test_order_preserved(self):
        manager = PromotionManager(policy=FixedPromotionPolicy(1))
        manager.update(entry(5))
        manager.update(entry(2))
        assert manager.take_candidates() == [5, 2]

    def test_curr_threshold_exposed(self):
        manager = PromotionManager(PromotionConfig(max_threshold=6))
        assert manager.curr_threshold == 6
