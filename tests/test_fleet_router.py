"""Property-based tests: the shard router is a bijection, always.

Whatever sequence of placements, remaps and removals failover throws at
it, the router must remain a bijection between placed global pages and
``(device, local page)`` slots — and a fleet built on it must survive
the removal of any single device when durable pages carry replicas.
"""

from hypothesis import given, settings, strategies as st

from repro.config import small_config
from repro.fleet import FleetConfig, FlatFlashFleet, ShardRouter, make_policy

NUM_DEVICES = 3

policies = st.sampled_from(["striped", "hashed", "blocked"])

# A placement script: (vpn, device, local) triples drawn from small
# ranges so collisions (already-placed pages, claimed slots) do occur
# and must be rejected without corrupting the map.
placements = st.lists(
    st.tuples(
        st.integers(0, 23),
        st.integers(0, NUM_DEVICES - 1),
        st.integers(0, 15),
    ),
    min_size=1,
    max_size=60,
)


def _assert_bijective(router, model):
    """The router agrees with a plain dict model and is one-to-one."""
    assert len(router) == len(model)
    assert router.placed_vpns() == sorted(model)
    slots = list(model.values())
    assert len(set(slots)) == len(slots), "two pages share a slot"
    for vpn, (device, local) in model.items():
        assert router.route(vpn) == (device, local)
        assert router.vpn_at(device, local) == vpn
    for device in range(NUM_DEVICES):
        expected = sorted(
            (vpn, local)
            for vpn, (dev, local) in model.items()
            if dev == device
        )
        assert router.pages_on(device) == expected


@settings(deadline=None, max_examples=60)
@given(policies, placements)
def test_router_stays_bijective_under_placement(policy_name, script):
    router = ShardRouter(make_policy(policy_name), NUM_DEVICES)
    model = {}
    for vpn, device, local in script:
        try:
            router.place(vpn, device, local)
        except ValueError:
            # Page already placed or slot already claimed: the model
            # must agree that this placement was illegal.
            assert vpn in model or (device, local) in model.values()
        else:
            assert vpn not in model and (device, local) not in model.values()
            model[vpn] = (device, local)
    _assert_bijective(router, model)


@settings(deadline=None, max_examples=60)
@given(
    placements,
    st.lists(
        st.tuples(
            st.integers(0, 23),
            st.integers(0, NUM_DEVICES - 1),
            st.integers(16, 31),  # remap targets in a disjoint slot range
        ),
        max_size=40,
    ),
)
def test_router_round_trips_under_remap_and_remove(script, moves):
    router = ShardRouter(make_policy("striped"), NUM_DEVICES)
    model = {}
    for vpn, device, local in script:
        if vpn not in model and (device, local) not in model.values():
            router.place(vpn, device, local)
            model[vpn] = (device, local)
    for index, (vpn, device, local) in enumerate(moves):
        if vpn in model and (device, local) not in model.values():
            if index % 3 == 2:
                assert router.remove(vpn) == model.pop(vpn)
            else:
                router.remap(vpn, device, local)
                model[vpn] = (device, local)
        _assert_bijective(router, model)
    _assert_bijective(router, model)


@settings(deadline=None, max_examples=40)
@given(st.integers(0, 23))
def test_policies_pick_devices_in_range(vpn):
    for name in ("striped", "hashed", "blocked"):
        policy = make_policy(name, chunk=4)
        device = policy.device_of(vpn, NUM_DEVICES)
        assert 0 <= device < NUM_DEVICES
        # Pure function of the page number: replayable by construction.
        assert device == policy.device_of(vpn, NUM_DEVICES)


# --------------------------------------------------------------------- #
# End-to-end: arbitrary single-device removal with R >= 2
# --------------------------------------------------------------------- #

writes = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 255)),
    min_size=1,
    max_size=30,
)


@settings(deadline=None, max_examples=12)
@given(policies, st.integers(0, NUM_DEVICES - 1), writes)
def test_fleet_survives_any_single_device_removal(policy_name, victim, ops):
    fleet = FlatFlashFleet(
        small_config(track_data=True),
        FleetConfig(
            num_devices=NUM_DEVICES,
            replication_factor=2,
            striping=policy_name,
            stripe_chunk_pages=2,
        ),
    )
    region = fleet.mmap(8, persist=True, name="durable")
    expected = {}
    for page, value in ops:
        fleet.store_u64(region.page_addr(page), value)
        expected[page] = value
    fleet.devices[victim].ssd.fail_stop()
    # Durable pages must read back intact from the promoted replicas,
    # and the router must still be a bijection over all placed pages.
    for page, value in expected.items():
        got, _ = fleet.load_u64(region.page_addr(page))
        assert got == value
    assert fleet.fleet_summary()["durable_pages_lost"] == 0
    router = fleet._router
    for vpn in router.placed_vpns():
        device, local = router.route(vpn)
        assert device != victim or fleet.device_state(victim) == "active"
        assert router.vpn_at(device, local) == vpn
