"""Tests for the read-modify-write garbage collector with cache folding."""

import pytest

from repro.config import LatencyConfig
from repro.ssd.flash import FlashArray
from repro.ssd.ftl import PageFTL
from repro.ssd.gc import GarbageCollector
from repro.ssd.ssd_cache import SSDCache


def make_stack(blocks=8, pages=4, page_size=64, cache_pages=4):
    flash = FlashArray(blocks, pages, page_size, LatencyConfig(), track_data=True)
    ftl = PageFTL(flash, overprovision=0.25)
    cache = SSDCache(cache_pages, ways=2, page_size=page_size, track_data=True)
    gc = GarbageCollector(flash, ftl, cache)
    return flash, ftl, cache, gc


def test_flush_entry_writes_back_and_cleans():
    flash, ftl, cache, gc = make_stack()
    ftl.write(0, b"\x00" * 64)
    cache.insert(0, b"\xaa" * 64, dirty=True)
    cost = gc.flush_entry(cache.peek(0))
    assert cost > 0
    assert not cache.peek(0).dirty
    _ppn, data, _ = ftl.read(0)
    assert data == b"\xaa" * 64


def test_flush_clean_entry_is_free():
    flash, ftl, cache, gc = make_stack()
    ftl.write(0, None)
    cache.insert(0, b"\x00" * 64, dirty=False)
    assert gc.flush_entry(cache.peek(0)) == 0


def test_flush_dirty_flushes_everything():
    flash, ftl, cache, gc = make_stack()
    for lpn in range(3):
        ftl.write(lpn, b"\x00" * 64)
        cache.insert(lpn, bytes([lpn + 1]) * 64, dirty=True)
    gc.flush_dirty()
    assert not cache.dirty_entries()
    for lpn in range(3):
        _ppn, data, _ = ftl.read(lpn)
        assert data == bytes([lpn + 1]) * 64


def test_flush_dirty_with_limit():
    flash, ftl, cache, gc = make_stack()
    for lpn in range(3):
        ftl.write(lpn, None)
        cache.insert(lpn, b"\x01" * 64, dirty=True)
    gc.flush_dirty(limit=2)
    assert len(cache.dirty_entries()) == 1


def test_dirty_ratio():
    flash, ftl, cache, gc = make_stack(cache_pages=4)
    ftl.write(0, None)
    cache.insert(0, None, dirty=True)
    assert gc.dirty_ratio == pytest.approx(0.25)


def test_maybe_flush_respects_limit():
    flash, ftl, cache, gc = make_stack(cache_pages=4)
    gc.dirty_ratio_limit = 0.5
    ftl.write(0, None)
    cache.insert(0, None, dirty=True)
    assert gc.maybe_flush() == 0  # 25% dirty < 50% limit
    ftl.write(1, None)
    cache.insert(1, None, dirty=True)
    assert gc.maybe_flush() > 0
    assert not cache.dirty_entries()


def test_gc_folds_dirty_cache_pages_during_relocation():
    flash, ftl, cache, gc = make_stack(blocks=8, pages=4)
    # Block 0: lpn 0 live, lpns 1-3 invalidated by rewrites.
    for lpn in range(4):
        ftl.write(lpn, b"\x00" * 64)
    for lpn in range(1, 4):
        ftl.write(lpn, b"\x11" * 64)
    cache.insert(0, b"\xee" * 64, dirty=True)
    gc.collect()
    # The relocated flash copy carries the cache's newer bytes and the
    # cache entry is now clean.
    _ppn, data, _ = ftl.read(0)
    assert data == b"\xee" * 64
    assert not cache.peek(0).dirty
    assert gc.stats.counters()["gc.cache_pages_folded"] == 1


def test_background_time_accumulates():
    flash, ftl, cache, gc = make_stack()
    ftl.write(0, None)
    cache.insert(0, None, dirty=True)
    gc.flush_dirty()
    assert gc.background_ns > 0


def test_invalid_dirty_ratio_limit_rejected():
    flash, ftl, cache, _gc = make_stack()
    with pytest.raises(ValueError):
        GarbageCollector(flash, ftl, cache, dirty_ratio_limit=0.0)
