"""Tests for the FlatFlash unified hierarchy: promotion, eviction, PLB, remap."""


from repro import FlatFlash, small_config
from repro.host.page_table import Domain


def make_system(**overrides):
    return FlatFlash(small_config(**overrides))


def hammer_page(system, region, page=0, touches=16):
    """Touch distinct cache lines of one page until promotion triggers."""
    for line in range(touches):
        system.load(region.page_addr(page, (line % 64) * 64), 64)


class TestDirectAccess:
    def test_ssd_pages_are_present_no_faults(self):
        system = make_system()
        region = system.mmap(8)
        result = system.load(region.addr(0), 64)
        assert not result.fault
        assert result.source == "ssd"

    def test_store_then_load_round_trips_via_ssd(self):
        system = make_system()
        region = system.mmap(8)
        system.store(region.addr(100), 8, b"12345678")
        assert system.load(region.addr(100), 8).data == b"12345678"

    def test_unwritten_memory_reads_zero(self):
        system = make_system()
        region = system.mmap(8)
        assert system.load(region.addr(500), 4).data == b"\x00" * 4

    def test_cacheable_mmio_serves_repeats_from_cpu_cache(self):
        system = make_system()
        region = system.mmap(8)
        system.load(region.addr(0), 64)
        repeat = system.load(region.addr(0), 64)
        assert repeat.source == "cpu_cache"
        assert repeat.latency_ns == system.config.latency.cpu_cache_hit_ns

    def test_uncacheable_mmio_pays_pcie_every_time(self):
        system = make_system(cacheable_mmio=False)
        region = system.mmap(8)
        system.load(region.addr(0), 64)
        repeat = system.load(region.addr(0), 64)
        assert repeat.source == "ssd"
        assert repeat.latency_ns >= system.config.latency.mmio_read_cacheline_ns


class TestPromotionLifecycle:
    def test_hot_page_promotes_to_dram(self):
        system = make_system()
        region = system.mmap(8)
        hammer_page(system, region, page=0)
        system.quiesce()
        pte = system.page_table.lookup(region.base_vpn)
        assert pte.domain is Domain.DRAM
        assert system.promotions == 1

    def test_promoted_page_serves_at_dram_latency(self):
        system = make_system()
        region = system.mmap(8)
        hammer_page(system, region)
        system.quiesce()
        result = system.load(region.addr(0), 64)
        assert result.source == "dram"

    def test_promotion_preserves_data(self):
        system = make_system()
        region = system.mmap(8)
        system.store(region.addr(40), 8, b"precious")
        hammer_page(system, region)
        system.quiesce()
        assert system.load(region.addr(40), 8).data == b"precious"

    def test_promotion_cost_not_on_access_path(self):
        system = make_system()
        region = system.mmap(8)
        hammer_page(system, region)
        assert system.background_ns > 0

    def test_dirty_cache_source_marks_frame_dirty(self):
        system = make_system()
        region = system.mmap(8)
        system.store(region.addr(0), 8, b"dirtyyes")  # dirty in SSD-Cache
        hammer_page(system, region)
        system.quiesce()
        pte = system.page_table.lookup(region.base_vpn)
        assert system.dram.frames[pte.frame_index].dirty

    def test_persist_pages_never_promote(self):
        system = make_system()
        region = system.mmap(4, persist=True)
        for line in range(32):
            system.load(region.addr((line % 64) * 64), 64)
        system.quiesce()
        pte = system.page_table.lookup(region.base_vpn)
        assert pte.domain is Domain.SSD
        assert system.promotions == 0

    def test_promotion_counts_as_page_movement(self):
        system = make_system()
        region = system.mmap(8)
        hammer_page(system, region)
        system.quiesce()
        assert system.page_movements >= 1


class TestPLBWindow:
    def test_access_during_flight_is_plb_mediated(self):
        system = make_system()
        region = system.mmap(8)
        hammer_page(system, region, touches=7)  # reaches threshold
        # Promotion (12.1us) is now in flight; next access goes via PLB.
        result = system.load(region.addr(0), 64)
        assert result.source == "plb"

    def test_store_during_flight_survives(self):
        system = make_system()
        region = system.mmap(8)
        hammer_page(system, region, touches=7)
        system.store(region.addr(64 * 60), 8, b"inflight")  # late line
        system.quiesce()
        assert system.load(region.addr(64 * 60), 8).data == b"inflight"

    def test_store_during_flight_is_dram_speed(self):
        system = make_system()
        region = system.mmap(8)
        hammer_page(system, region, touches=7)
        result = system.store(region.addr(64 * 50), 8)
        assert result.latency_ns == system.config.latency.dram_store_ns

    def test_partial_store_during_flight_merges_with_snapshot(self):
        """Regression: a sub-line store to a not-yet-copied line must not
        wipe the rest of that cache line (read-for-ownership merge)."""
        system = make_system()
        region = system.mmap(8)
        # Pre-existing data in the back half of the page (line 60).
        system.store(region.addr(64 * 60), 64, bytes(range(64)))
        hammer_page(system, region, touches=7)  # promotion now in flight
        # Partial 8-byte store into the middle of line 60 before the
        # inbound copy reaches it.
        system.store(region.addr(64 * 60 + 16), 8, b"PARTIAL!")
        system.quiesce()
        page = system.load(region.addr(64 * 60), 64).data
        expected = bytearray(range(64))
        expected[16:24] = b"PARTIAL!"
        assert page == bytes(expected)

    def test_load_spanning_copied_and_uncopied_lines(self):
        """Regression: a load over copied + uncopied lines must merge the
        frame's redirected stores with the SSD's snapshot, per line."""
        system = make_system()
        region = system.mmap(8)
        hammer_page(system, region, touches=7)  # promotion in flight
        system.store(region.addr(0), 1, b"\x01")  # line 0 redirected
        # Read the first two lines in one access: line 0 from the frame,
        # line 1 still from the SSD side.
        data = system.load(region.addr(0), 128).data
        assert data[0] == 1
        assert data[1:] == b"\x00" * 127

    def test_plb_entry_retires_after_completion(self):
        system = make_system()
        region = system.mmap(8)
        hammer_page(system, region, touches=7)
        assert system.bridge.plb.in_flight == 1
        system.clock.advance(system.config.latency.page_promotion_ns + 1)
        system.load(region.page_addr(1, 0), 64)  # any access settles flights
        assert system.bridge.plb.in_flight == 0


class TestEviction:
    def test_dram_pressure_evicts_lru(self):
        system = make_system()
        region = system.mmap(64)
        frames = system.dram.num_frames
        # Promote more pages than DRAM holds.
        for page in range(frames + 4):
            hammer_page(system, region, page=page, touches=10)
            system.quiesce()
        assert system.evictions > 0
        assert system.dram.allocated_frames <= frames

    def test_evicted_dirty_page_written_back_and_readable(self):
        system = make_system()
        region = system.mmap(64)
        system.store(region.addr(8), 8, b"keepsafe")
        hammer_page(system, region, page=0)
        system.quiesce()
        # Evict page 0 by promoting everything else.
        for page in range(1, system.dram.num_frames + 4):
            hammer_page(system, region, page=page)
            system.quiesce()
        pte = system.page_table.lookup(region.base_vpn)
        if pte.domain is Domain.SSD:  # page 0 was evicted
            assert system.load(region.addr(8), 8).data == b"keepsafe"

    def test_eviction_repoints_pte_to_ssd_present(self):
        system = make_system()
        region = system.mmap(64)
        for page in range(system.dram.num_frames + 4):
            hammer_page(system, region, page=page)
            system.quiesce()
        ssd_resident = [
            vpn
            for vpn, pte in system.page_table.mapped_vpns().items()
            if pte.domain is Domain.SSD
        ]
        assert ssd_resident
        for vpn in ssd_resident:
            assert system.page_table.lookup(vpn).present  # never faults


class TestRemapPropagation:
    def test_gc_remaps_lazily_propagate(self):
        system = make_system()
        region = system.mmap(8)
        pte = system.page_table.lookup(region.base_vpn)
        original = pte.ssd_page
        # Force a rewrite of the backing page (eviction write-back path).
        system.store(region.addr(0), 8, b"version1")
        system.ssd.write_page(region.base_vpn, b"\x01" * 4_096)
        system.load(region.addr(8), 8)  # drains remaps
        refreshed = system.page_table.lookup(region.base_vpn)
        assert refreshed.ssd_page != original
        # And the device agrees the new address resolves.
        assert system.ssd.resolve_lpn(refreshed.ssd_page) == region.base_vpn

    def test_access_before_drain_still_correct(self):
        system = make_system()
        region = system.mmap(8)
        system.store(region.addr(0), 8, b"original")
        system.ssd.write_page(region.base_vpn, b"\x05" * 4_096)
        # Old ssd_page in the PTE resolves through the device remap table.
        assert system.load(region.addr(0), 8).data == b"\x05" * 8


class TestQuiesce:
    def test_quiesce_completes_all_flights(self):
        system = make_system()
        region = system.mmap(16)
        for page in range(4):
            hammer_page(system, region, page=page, touches=7)
        system.quiesce()
        assert system.bridge.plb.in_flight == 0

    def test_quiesce_idempotent(self):
        system = make_system()
        system.mmap(4)
        system.quiesce()
        system.quiesce()
