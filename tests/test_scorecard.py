"""Tests for the reproduction scorecard (verdict logic mocked-fast)."""


from repro.experiments import scorecard


def test_claims_cover_the_abstract():
    texts = " ".join(claim.text for claim in scorecard.CLAIMS)
    for keyword in ("memory-intensive", "tail latency", "database", "metadata", "cost"):
        assert keyword in texts


def test_claim_ranges_are_sane():
    for claim in scorecard.CLAIMS:
        assert 1.0 <= claim.paper_low <= claim.paper_high


def _with_fake_measures(monkeypatch, values):
    fakes = [
        scorecard.Claim(
            claim.key, claim.text, claim.paper_low, claim.paper_high, lambda v=v: v
        )
        for claim, v in zip(scorecard.CLAIMS, values)
    ]
    monkeypatch.setattr(scorecard, "CLAIMS", fakes)


def test_verdict_tiers(monkeypatch):
    # One value per tier.  Claim 2 (database, 1.1-3.0x) has its range
    # bottom below half its best, so a bottom-of-range value demonstrates
    # plain REPRODUCES; narrow ranges (tail latency) jump straight to
    # STRONG at their bottom, which is fine.
    lows = [claim.paper_low for claim in scorecard.CLAIMS]
    highs = [claim.paper_high for claim in scorecard.CLAIMS]
    values = [
        highs[0],            # STRONG: at the paper's best
        highs[1],            # STRONG
        lows[2],             # REPRODUCES: bottom of a wide range
        1.01,                # PARTIAL: direction only (low is 2.6)
        0.9,                 # FAILS
    ]
    assert lows[2] < highs[2] / 2  # precondition for the REPRODUCES tier
    _with_fake_measures(monkeypatch, values)
    result = scorecard.run()
    verdicts = [row["verdict"] for row in result.rows]
    assert verdicts[0] == "STRONG"
    assert verdicts[1] == "STRONG"
    assert verdicts[2] == "REPRODUCES"
    assert verdicts[3] == "PARTIAL"
    assert verdicts[4] == "FAILS"


def test_render_includes_ranges(monkeypatch):
    _with_fake_measures(monkeypatch, [2.0] * len(scorecard.CLAIMS))
    table = scorecard.render(scorecard.run())
    rendered = table.render()
    assert "Paper range" in rendered
    assert "2.0x" in rendered


def test_strong_requires_half_of_best(monkeypatch):
    claim = scorecard.CLAIMS[0]
    just_below = claim.paper_high / 2 - 0.01
    _with_fake_measures(
        monkeypatch,
        [just_below] + [c.paper_low for c in scorecard.CLAIMS[1:]],
    )
    result = scorecard.run()
    assert result.rows[0]["verdict"] == "REPRODUCES"  # not STRONG
