"""Atomic document writes and the ``python -m repro sweep`` CLI surface."""

import json

import pytest

from repro.__main__ import main
from repro.experiments import run_all
from repro.sweep.document import write_document


class TestAtomicWrites:
    def test_write_document_replaces(self, tmp_path):
        target = tmp_path / "out.md"
        write_document(target, "first\n")
        write_document(target, "second\n")
        assert target.read_text() == "second\n"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_failed_write_preserves_old_content(self, tmp_path, monkeypatch):
        target = tmp_path / "out.md"
        target.write_text("original\n")

        def explode(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.sweep.document.os.replace", explode)
        with pytest.raises(OSError, match="disk full"):
            write_document(target, "replacement\n")
        assert target.read_text() == "original\n"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_run_all_main_is_atomic(self, tmp_path, monkeypatch, capsys):
        """An interrupted regeneration can't truncate EXPERIMENTS.md."""
        target = tmp_path / "EXPERIMENTS.md"
        target.write_text("previous good content\n")
        def exploding():
            raise RuntimeError("experiment blew up")

        monkeypatch.setattr(run_all, "generate", exploding)
        monkeypatch.setattr("sys.argv", ["run_all", str(target)])
        with pytest.raises(RuntimeError):
            run_all.main()
        assert target.read_text() == "previous good content\n"

    def test_run_all_main_writes_output(self, tmp_path, monkeypatch, capsys):
        target = tmp_path / "EXPERIMENTS.md"
        monkeypatch.setattr(run_all, "generate", lambda: "# stub\n")
        monkeypatch.setattr("sys.argv", ["run_all", str(target)])
        run_all.main()
        assert target.read_text() == "# stub\n"
        assert "wrote" in capsys.readouterr().out

    def test_cli_all_is_atomic(self, tmp_path, monkeypatch):
        target = tmp_path / "out.md"
        target.write_text("old\n")
        monkeypatch.setattr(run_all, "generate", lambda: "new\n")
        monkeypatch.setattr(
            "repro.sweep.document.os.replace",
            lambda src, dst: (_ for _ in ()).throw(OSError("boom")),
        )
        with pytest.raises(OSError):
            main(["all", str(target)])
        assert target.read_text() == "old\n"


class TestSweepCLI:
    def test_filtered_sweep_with_bench_artifact(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        bench = tmp_path / "BENCH_sweep.json"
        code = main(
            [
                "sweep",
                "--filter",
                "table2",
                "--jobs",
                "1",
                "--json",
                str(bench),
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "table2" in out
        # A filtered sweep must not write a partial document.
        assert not (tmp_path / "EXPERIMENTS.md").exists()
        assert "not written" in out
        payload = json.loads(bench.read_text())
        assert payload["schema"] == "flatflash-sweep-bench/1"
        assert payload["jobs"] == 1
        assert [cell["name"] for cell in payload["cells"]] == ["table2"]
        assert payload["cells"][0]["rows"] > 0
        assert payload["headline"]["scorecard_verdicts"] is None

    def test_filtered_sweep_uses_cache_on_rerun(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        args = ["sweep", "--filter", "table2", "--jobs", "1", "--cache-dir", "cache"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "1 cache hit(s)" in capsys.readouterr().out

    def test_no_cache_writes_nothing_to_disk(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        code = main(
            ["sweep", "--filter", "table2", "--jobs", "1", "--no-cache", "--quiet"]
        )
        assert code == 0
        assert not (tmp_path / ".sweep-cache").exists()
        assert "0 cache hit(s)" in capsys.readouterr().out

    def test_bad_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--jobs", "0"])

    def test_unknown_filter_errors(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(ValueError, match="no cells match"):
            main(["sweep", "--filter", "nonexistent-*", "--no-cache"])
