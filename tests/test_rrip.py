"""Tests for RRIP replacement state."""

import pytest

from repro.ssd.rrip import RRIPSet


def test_empty_ways_chosen_first():
    rrip = RRIPSet(4)
    assert rrip.select_victim([False, False, False, False]) == 0
    assert rrip.select_victim([True, False, True, False]) == 1


def test_insert_sets_long_interval():
    rrip = RRIPSet(4)
    rrip.on_insert(0)
    assert rrip.rrpv_of(0) == rrip.max_rrpv - 1


def test_hit_sets_near_immediate():
    rrip = RRIPSet(4)
    rrip.on_insert(2)
    rrip.on_hit(2)
    assert rrip.rrpv_of(2) == 0


def test_victim_is_max_rrpv_way():
    rrip = RRIPSet(3)
    for way in range(3):
        rrip.on_insert(way)
    rrip.on_hit(0)
    rrip.on_hit(2)
    # way 1 still at max-1; aging pushes it to max first.
    assert rrip.select_victim([True, True, True]) == 1


def test_aging_preserves_relative_order():
    rrip = RRIPSet(2)
    rrip.on_insert(0)
    rrip.on_hit(0)  # rrpv 0
    rrip.on_insert(1)  # rrpv max-1
    assert rrip.select_victim([True, True]) == 1


def test_recently_hit_way_survives_scan():
    rrip = RRIPSet(4)
    for way in range(4):
        rrip.on_insert(way)
    rrip.on_hit(3)
    victims = []
    occupied = [True] * 4
    for _ in range(3):
        victim = rrip.select_victim(occupied)
        victims.append(victim)
        rrip.on_insert(victim)  # replacement fills the way
    assert 3 not in victims


def test_leftmost_max_breaks_ties():
    rrip = RRIPSet(3)
    for way in range(3):
        rrip.on_insert(way)
    assert rrip.select_victim([True, True, True]) == 0


def test_reset_way_becomes_preferred_victim():
    rrip = RRIPSet(2)
    rrip.on_insert(0)
    rrip.on_insert(1)
    rrip.on_hit(0)
    rrip.reset_way(0)
    assert rrip.rrpv_of(0) == rrip.max_rrpv


def test_occupied_length_checked():
    rrip = RRIPSet(2)
    with pytest.raises(ValueError):
        rrip.select_victim([True])


def test_way_bounds_checked():
    rrip = RRIPSet(2)
    with pytest.raises(ValueError):
        rrip.on_hit(2)
    with pytest.raises(ValueError):
        rrip.on_insert(-1)


def test_invalid_shape_rejected():
    with pytest.raises(ValueError):
        RRIPSet(0)
    with pytest.raises(ValueError):
        RRIPSet(4, rrpv_bits=0)


def test_custom_rrpv_bits():
    rrip = RRIPSet(2, rrpv_bits=3)
    assert rrip.max_rrpv == 7
    rrip.on_insert(0)
    assert rrip.rrpv_of(0) == 6
