"""Cross-oracle consistency gate for the replay engine's kernel registry.

The fused interpreter (:mod:`repro.engine.replay`) inlines exactly the
scalar functions listed in :data:`repro.engine.kernels.KERNELS`.  Each
must stay tied to the three committed static-analysis oracles:

* **EFFECTS.json** — the kernel is certified kernel-eligible (pure or
  commutative-stats only), so batching its stat updates is exact;
* **COSTS.json** — the entry point's counter set and returned-latency
  contract match what the fused code applies;
* **BATCH.json** — the kernel is covered by a certified
  VECTORIZABLE/REDUCTION region, proving the loop around it batches,
  and *never* sits inside an ORDER_DEPENDENT loop the interpreter
  would be bypassing.

If a future refactor makes one of these functions impure (EFFECTS drops
it), changes its counters (COSTS diverges), or gives it a loop-carried
dependence (BATCH reclassifies), regenerating the oracles via
``make reports`` turns this suite red before the engine can go wrong.
"""

import dataclasses

import pytest

from repro.engine import guards, kernels
from repro.engine.kernels import DELEGATED_ORDER_DEPENDENT, KERNELS, KernelSpec


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_kernel_certified_against_all_oracles(name):
    """Every inlined kernel passes the full EFFECTS/COSTS/BATCH contract."""
    kernels.check_kernel_certified(KERNELS[name])


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_kernel_not_order_dependent(name):
    """No inlined kernel contains an ORDER_DEPENDENT loop (bypass gate)."""
    spec = KERNELS[name]
    classifications = guards.loop_classifications(spec.qualname)
    assert "ORDER_DEPENDENT" not in classifications, (
        f"{spec.qualname} has an ORDER_DEPENDENT loop; the fused path "
        f"must delegate it, not inline it"
    )
    assert spec.qualname not in guards.order_dependent_functions()


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_kernel_counters_match_costs_exactly(name):
    """COSTS.json is the source of truth for each kernel's counter set."""
    spec = KERNELS[name]
    entry = guards.cost_entry(spec.qualname)
    assert tuple(sorted(entry.get("counters", ()))) == tuple(sorted(spec.counters))
    assert bool(entry.get("returns_time")) == spec.returns_time


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_kernel_region_is_certified_batchable(name):
    """Each kernel's covering region is certified and really names it."""
    spec = KERNELS[name]
    if spec.region is None:
        # region-less kernels must be provably pure (COSTS witnesses it)
        entry = guards.cost_entry(spec.qualname)
        assert not entry.get("counters")
        assert not entry.get("charges")
        assert not entry.get("charges_clock")
        return
    region = guards.batch_region(spec.region)
    assert region["certified"] is True
    covered = [region["function"], *region.get("kernel_calls", ())]
    assert spec.qualname in covered


def test_delegated_boundaries_are_order_dependent():
    """Everything the interpreter delegates really is ORDER_DEPENDENT.

    If BATCH.json stops classifying one of these as order-dependent the
    boundary may be shrinkable — a deliberate decision, not a silent
    default — so the gate flags it either way.
    """
    order_dependent = set(guards.order_dependent_functions())
    for qualname in DELEGATED_ORDER_DEPENDENT:
        assert qualname in order_dependent, (
            f"{qualname} is listed as a delegation boundary but BATCH.json "
            f"no longer classifies it ORDER_DEPENDENT; revisit the fused "
            f"dispatch rule in repro.engine.replay"
        )


def test_delegated_boundaries_never_certified_kernels():
    """Delegated functions must not also be certified kernel-eligible."""
    certified = set(guards.certified_functions())
    overlap = certified.intersection(DELEGATED_ORDER_DEPENDENT)
    assert not overlap


def test_kernel_qualnames_disjoint_from_delegation_set():
    """A kernel spec naming a delegated boundary is a contradiction."""
    for name, spec in KERNELS.items():
        assert spec.qualname not in DELEGATED_ORDER_DEPENDENT, name


# --------------------------------------------------------------------- #
# The gate has teeth: deliberately broken specs must raise
# --------------------------------------------------------------------- #


def test_uncertified_kernel_rejected():
    spec = KernelSpec(qualname="core.memory_system.MemorySystem._access")
    with pytest.raises(AssertionError, match="not certified in EFFECTS.json"):
        kernels.check_kernel_certified(spec)


def test_counter_mismatch_rejected():
    spec = dataclasses.replace(KERNELS["tlb_probe"], counters=("tlb.hits:hit",))
    with pytest.raises(AssertionError, match="counters"):
        kernels.check_kernel_certified(spec)


def test_returns_time_mismatch_rejected():
    spec = dataclasses.replace(KERNELS["pt_walk"], returns_time=False)
    with pytest.raises(AssertionError, match="returns_time"):
        kernels.check_kernel_certified(spec)


def test_effectful_kernel_requires_region():
    """Dropping the region from a counter-bumping kernel must fail."""
    spec = dataclasses.replace(KERNELS["tlb_probe"], region=None)
    with pytest.raises(AssertionError, match="needs a BATCH.json region"):
        kernels.check_kernel_certified(spec)


def test_kernel_outside_its_region_rejected():
    """A region that does not actually cover the kernel must fail."""
    spec = dataclasses.replace(
        KERNELS["tlb_probe"], region="host.plb.PLB.batch_retire"
    )
    with pytest.raises(AssertionError, match="not covered by BATCH.json region"):
        kernels.check_kernel_certified(spec)


def test_order_dependent_bypass_rejected():
    """Promoting a delegated ORDER_DEPENDENT function to a kernel fails.

    This is the headline gate: the fused path may never grow across a
    delegation boundary without the oracles (and so this suite) agreeing.
    """
    for qualname in DELEGATED_ORDER_DEPENDENT:
        spec = KernelSpec(qualname=qualname)
        with pytest.raises(AssertionError):
            kernels.check_kernel_certified(spec)
