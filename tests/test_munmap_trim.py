"""Tests for munmap and the FTL TRIM path."""

import pytest

from repro import DRAMOnly, FlatFlash, TraditionalStack, UnifiedMMap, small_config
from repro.config import LatencyConfig
from repro.ssd.flash import FlashArray
from repro.ssd.ftl import PageFTL


class TestFTLTrim:
    def make_ftl(self):
        flash = FlashArray(8, 4, 64, LatencyConfig(), track_data=True)
        return flash, PageFTL(flash, overprovision=0.25)

    def test_trim_drops_mapping_and_invalidates(self):
        flash, ftl = self.make_ftl()
        ppn, _ = ftl.write(3, b"\xaa" * 64)
        ftl.trim(3)
        assert not ftl.is_mapped(3)
        assert flash.state_of(ppn).value == "invalid"

    def test_trim_unmapped_is_noop(self):
        _flash, ftl = self.make_ftl()
        ftl.trim(5)
        assert ftl.stats.counters()["ftl.trims"] == 0

    def test_trim_counted(self):
        _flash, ftl = self.make_ftl()
        ftl.write(0, None)
        ftl.trim(0)
        assert ftl.stats.counters()["ftl.trims"] == 1

    def test_trim_out_of_range_rejected(self):
        _flash, ftl = self.make_ftl()
        with pytest.raises(ValueError):
            ftl.trim(ftl.exported_pages)

    def test_trimmed_page_rewritable(self):
        _flash, ftl = self.make_ftl()
        ftl.write(2, b"\x01" * 64)
        ftl.trim(2)
        ftl.write(2, b"\x02" * 64)
        _ppn, data, _ = ftl.read(2)
        assert data == b"\x02" * 64

    def test_trim_gives_gc_free_space(self):
        """Trimmed pages reclaim without relocation: lower amplification."""
        flash, ftl = self.make_ftl()
        for lpn in range(8):
            ftl.write(lpn, None)
        for lpn in range(8):
            ftl.trim(lpn)
        before_gc_writes = ftl.stats.counters()["ftl.gc_writes"]
        ftl.collect_garbage()
        assert ftl.stats.counters()["ftl.gc_writes"] == before_gc_writes


class TestMunmap:
    @pytest.mark.parametrize("cls", [FlatFlash, UnifiedMMap, TraditionalStack])
    def test_munmap_releases_ssd_backing(self, cls):
        system = cls(small_config())
        region = system.mmap(8)
        system.store(region.addr(0), 8, b"tempdata")
        mapped_before = len(system.ssd.ftl.mapping)
        system.munmap(region)
        assert len(system.ssd.ftl.mapping) < mapped_before
        assert region not in system.regions

    def test_munmap_frees_dram_frames(self):
        system = DRAMOnly(small_config())
        region = system.mmap(8)
        used = system.dram.allocated_frames
        system.munmap(region)
        assert system.dram.allocated_frames == used - 8

    def test_access_after_munmap_faults_loudly(self):
        system = FlatFlash(small_config())
        region = system.mmap(4)
        system.munmap(region)
        with pytest.raises(KeyError):
            system.load(region.addr(0), 8)

    def test_munmap_unknown_region_rejected(self):
        system = FlatFlash(small_config())
        other = UnifiedMMap(small_config()).mmap(2)
        with pytest.raises(ValueError):
            system.munmap(other)

    def test_munmap_promoted_pages_returns_frames(self):
        system = FlatFlash(small_config())
        region = system.mmap(8)
        for line in range(16):  # promote page 0
            system.load(region.addr(line * 64), 64)
        system.quiesce()
        frames_used = system.dram.allocated_frames
        assert frames_used > 0
        system.munmap(region)
        assert system.dram.allocated_frames < frames_used

    def test_munmap_mid_promotion_settles_first(self):
        system = FlatFlash(small_config())
        region = system.mmap(8)
        for line in range(7):  # promotion now in flight
            system.load(region.addr(line * 64), 64)
        system.munmap(region)  # must not corrupt PLB state
        assert system.bridge.plb.in_flight == 0

    def test_other_regions_survive_munmap(self):
        system = FlatFlash(small_config())
        keep = system.mmap(4)
        drop = system.mmap(4)
        system.store(keep.addr(0), 8, b"keep me!")
        system.munmap(drop)
        assert system.load(keep.addr(0), 8).data == b"keep me!"

    def test_addresses_are_not_recycled(self):
        system = FlatFlash(small_config())
        first = system.mmap(4)
        system.munmap(first)
        second = system.mmap(4)
        assert second.base_vpn > first.base_vpn
