"""Tests for the unified page table."""

import pytest

from repro.host.page_table import Domain, PageTable, PageTableEntry


def test_entry_created_on_demand():
    table = PageTable(walk_cost_ns=700)
    pte = table.entry(5)
    assert pte.vpn == 5
    assert not pte.present
    assert table.entry(5) is pte


def test_lookup_does_not_create():
    table = PageTable(700)
    assert table.lookup(3) is None
    table.entry(3)
    assert table.lookup(3) is not None


def test_walk_charges_cost():
    table = PageTable(700)
    table.entry(1)
    pte, cost = table.walk(1)
    assert cost == 700
    assert pte.vpn == 1


def test_walk_unmapped_raises():
    table = PageTable(700)
    with pytest.raises(KeyError):
        table.walk(9)


def test_walk_counts():
    table = PageTable(700)
    table.entry(0)
    table.walk(0)
    table.walk(0)
    assert table.stats.counters()["page_table.walks"] == 2


def test_point_to_dram():
    pte = PageTableEntry(0)
    pte.point_to_dram(3)
    assert pte.present
    assert pte.domain is Domain.DRAM
    assert pte.frame_index == 3


def test_point_to_ssd_present():
    pte = PageTableEntry(0)
    pte.point_to_ssd(42, present=True)
    assert pte.present
    assert pte.domain is Domain.SSD
    assert pte.ssd_page == 42
    assert pte.frame_index is None


def test_point_to_ssd_non_present_faults_model():
    pte = PageTableEntry(0)
    pte.point_to_ssd(42, present=False)
    assert not pte.present


def test_domain_transitions_round_trip():
    pte = PageTableEntry(0)
    pte.point_to_ssd(10, present=True)
    pte.point_to_dram(1)
    assert pte.domain is Domain.DRAM
    pte.point_to_ssd(11, present=True)
    assert pte.domain is Domain.SSD
    assert pte.ssd_page == 11


def test_persist_bit_independent_of_location():
    pte = PageTableEntry(0)
    pte.persist = True
    pte.point_to_ssd(1, present=True)
    assert pte.persist


def test_mapped_vpns_snapshot():
    table = PageTable(700)
    table.entry(1)
    table.entry(2)
    assert set(table.mapped_vpns()) == {1, 2}
    assert len(table) == 2


def test_negative_walk_cost_rejected():
    with pytest.raises(ValueError):
        PageTable(-1)
