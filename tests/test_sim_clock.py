"""Tests for the simulated clock."""

import pytest

from repro.sim.clock import NS_PER_SEC, NS_PER_US, SimClock


def test_starts_at_zero():
    assert SimClock().now == 0


def test_starts_at_given_time():
    assert SimClock(500).now == 500


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        SimClock(-1)


def test_advance_moves_forward():
    clock = SimClock()
    assert clock.advance(100) == 100
    assert clock.now == 100


def test_advance_accumulates():
    clock = SimClock()
    clock.advance(100)
    clock.advance(250)
    assert clock.now == 350


def test_advance_zero_is_allowed():
    clock = SimClock(10)
    assert clock.advance(0) == 10


def test_advance_negative_rejected():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.advance(-5)


def test_advance_truncates_float():
    clock = SimClock()
    clock.advance(10.9)
    assert clock.now == 10


def test_advance_to_future():
    clock = SimClock()
    clock.advance_to(1_000)
    assert clock.now == 1_000


def test_advance_to_past_is_noop():
    clock = SimClock(500)
    clock.advance_to(100)
    assert clock.now == 500


def test_unit_conversions():
    clock = SimClock()
    clock.advance(NS_PER_SEC)
    assert clock.now_sec == pytest.approx(1.0)
    assert clock.now_us == pytest.approx(NS_PER_SEC / NS_PER_US)


def test_reset():
    clock = SimClock(77)
    clock.advance(100)
    clock.reset()
    assert clock.now == 0


def test_reset_to_value():
    clock = SimClock()
    clock.reset(42)
    assert clock.now == 42


def test_reset_negative_rejected():
    with pytest.raises(ValueError):
        SimClock().reset(-3)


def test_repr_mentions_time():
    assert "123" in repr(SimClock(123))
