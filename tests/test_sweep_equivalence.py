"""Serial/parallel equivalence: the tentpole guarantee of the sweep.

One full sweep runs inline (``jobs=1``) and one across a spawn-based
process pool (``jobs=2``); every cell must produce identical rows,
sections, and metrics, and the assembled EXPERIMENTS.md must be
byte-identical.  The pool deliberately uses the *spawn* start method, so
workers re-import the simulator under fresh hash seeds — any
hash-order-dependent rendering shows up here as a byte diff.

The two sweeps dominate the suite's runtime, so they are module-scoped
fixtures computed once, with the (orthogonal, separately tested)
sanitizer and domain-tag instrumentation switched off.
"""

import pytest

from repro.experiments import run_all
from repro.sim import domain_tags, sanitizers
from repro.sweep.document import HEADER, assemble, document_cells
from repro.sweep.engine import run_sweep
from repro.sweep.model import result_hash
from repro.sweep.registry import default_registry

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def _plain_simulators():
    """Run the sweeps without shadow instrumentation (it is orthogonal to
    scheduling and roughly doubles two already-full experiment runs)."""
    previous_sanitizers = sanitizers.set_default_enabled(False)
    previous_tags = domain_tags.set_enabled(False)
    yield
    sanitizers.set_default_enabled(previous_sanitizers)
    domain_tags.set_enabled(previous_tags)


@pytest.fixture(scope="module")
def serial_report(_plain_simulators):
    return run_sweep(jobs=1)


@pytest.fixture(scope="module")
def pool_report(_plain_simulators):
    return run_sweep(jobs=2)


def test_every_cell_ran(serial_report, pool_report):
    names = [run.name for run in serial_report.runs]
    assert names == [run.name for run in pool_report.runs]
    assert names == default_registry().names()  # registration order, complete


@pytest.mark.parametrize("field", ["rows", "sections", "metrics"])
def test_cells_identical_inline_vs_pool(serial_report, pool_report, field):
    for name in serial_report.results:
        serial = getattr(serial_report.results[name], field)
        pooled = getattr(pool_report.results[name], field)
        assert serial == pooled, f"cell {name!r} diverged on {field}"


def test_result_hashes_identical(serial_report, pool_report):
    for name, result in serial_report.results.items():
        assert result_hash(result) == result_hash(pool_report.results[name])


def test_document_byte_identical(serial_report, pool_report):
    serial_doc = assemble(serial_report.results)
    pool_doc = assemble(pool_report.results)
    assert serial_doc == pool_doc
    assert serial_doc.startswith(HEADER)


def test_pool_runs_report_real_timings(pool_report):
    for run in pool_report.runs:
        assert not run.cached
        assert run.seconds > 0.0


def test_generate_matches_assembled_document(serial_report, monkeypatch):
    """``run_all.generate`` is a thin client of the same sweep + assembly."""
    # generate() imports run_sweep lazily, so patch it at the engine.
    monkeypatch.setattr("repro.sweep.engine.run_sweep", lambda jobs, cache: serial_report)
    assert run_all.generate() == assemble(serial_report.results)


def test_document_needs_every_cell(serial_report):
    partial = dict(serial_report.results)
    del partial[document_cells()[0]]
    with pytest.raises(KeyError):
        assemble(partial)


@pytest.fixture(scope="module")
def scalar_report(_plain_simulators):
    """The same full sweep with the replay engine forced off everywhere."""
    from repro.config import set_engine_default

    previous = set_engine_default(False)
    try:
        return run_sweep(jobs=1)
    finally:
        set_engine_default(previous)


def test_sweeps_run_with_engine_enabled():
    """The serial/pool sweeps above exercise the engine-on configuration."""
    from repro.config import engine_default_enabled

    assert engine_default_enabled()


def test_engine_vs_scalar_cells_identical(serial_report, scalar_report):
    """Engine replay must not change a single cell result anywhere."""
    for name in serial_report.results:
        scalar = scalar_report.results[name]
        engine = serial_report.results[name]
        assert engine.rows == scalar.rows, f"cell {name!r} diverged with engine on"
        assert result_hash(engine) == result_hash(scalar)


def test_engine_document_byte_identical_to_scalar(serial_report, scalar_report):
    assert assemble(serial_report.results) == assemble(scalar_report.results)


def test_engine_document_matches_seed_baseline(serial_report):
    """Zero faults + engine on reproduces the committed EXPERIMENTS.md
    bit-for-bit (the seed baseline predates the engine entirely)."""
    import pathlib

    committed = (
        pathlib.Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
    ).read_text()
    assert assemble(serial_report.results) == committed
