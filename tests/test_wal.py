"""Tests for the write-ahead log on byte-granular persistence."""

import pytest

from repro import FlatFlash, small_config
from repro.apps.wal import LogFullError, WriteAheadLog


@pytest.fixture
def wal():
    return WriteAheadLog.create(FlatFlash(small_config()), num_pages=2)


def test_append_returns_increasing_lsns(wal):
    first = wal.append(b"alpha")
    second = wal.append(b"beta")
    assert second > first
    assert wal.appended_records == 2


def test_records_round_trip(wal):
    payloads = [b"one", b"two", b"three" * 10]
    for payload in payloads:
        wal.append(payload)
    assert wal.records() == payloads


def test_empty_log_has_no_records(wal):
    assert wal.records() == []


def test_empty_payload_rejected(wal):
    with pytest.raises(ValueError):
        wal.append(b"")


def test_oversized_payload_rejected(wal):
    with pytest.raises(ValueError):
        wal.append(b"x" * 70_000)


def test_log_full(wal):
    with pytest.raises(LogFullError):
        for _ in range(10_000):
            wal.append(b"fill" * 16)
    assert wal.used <= wal.capacity


def test_fenced_records_survive_crash(wal):
    wal.append(b"durable-1")
    wal.append(b"durable-2")
    wal.pmem.system.ssd.crash()
    assert wal.recover() == [b"durable-1", b"durable-2"]


def test_unfenced_tail_dropped_on_recovery(wal):
    wal.append(b"fenced", fence=True)
    wal.append(b"posted-only", fence=False)
    wal.pmem.system.ssd.crash()
    assert wal.recover() == [b"fenced"]


def test_group_commit(wal):
    wal.append(b"a", fence=False)
    wal.append(b"b", fence=False)
    wal.commit()
    wal.append(b"c", fence=False)  # never fenced
    wal.pmem.system.ssd.crash()
    assert wal.recover() == [b"a", b"b"]


def test_append_continues_after_recovery(wal):
    wal.append(b"before")
    wal.pmem.system.ssd.crash()
    wal.recover()
    wal.append(b"after")
    assert wal.records() == [b"before", b"after"]


def test_truncate_clears(wal):
    wal.append(b"gone")
    wal.truncate()
    assert wal.records() == []
    wal.append(b"fresh")
    assert wal.records() == [b"fresh"]


def test_records_span_page_boundary():
    wal = WriteAheadLog.create(FlatFlash(small_config()), num_pages=2)
    big = bytes(range(256)) * 12  # 3 KB record crosses into page 2 eventually
    wal.append(big)
    wal.append(big)
    assert wal.records() == [big, big]
    wal.pmem.system.ssd.crash()
    assert wal.recover() == [big, big]


def test_corrupted_record_stops_scan(wal):
    wal.append(b"good")
    lsn = wal.append(b"to-be-corrupted")
    wal.append(b"after-corruption")
    # Flip a payload byte behind the log's back (bit rot).
    wal.pmem.persist_store(lsn + 8, 1, b"\xff")
    wal.pmem.commit()
    assert wal.records() == [b"good"]  # scan stops at the bad checksum
