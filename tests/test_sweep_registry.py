"""Registry invariants: unique names, completeness, and an acyclic DAG.

The property-based half builds random registries (acyclic by
construction, or with a deliberately injected cycle) and checks the
structural guarantees every sweep run leans on: topological order always
places dependencies first, closures are dependency-closed, and cycles
are detected rather than spun on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sweep.document import document_cells
from repro.sweep.model import CellResult
from repro.sweep.registry import (
    EXEMPT_RUNNERS,
    Cell,
    Registry,
    call_cell,
    covered_runners,
    default_registry,
    experiment_runners,
)


def _noop() -> CellResult:
    return CellResult()


class TestDefaultRegistry:
    def test_validates(self):
        default_registry().validate()

    def test_names_unique_by_construction(self):
        registry = default_registry()
        names = registry.names()
        assert len(names) == len(set(names))

    def test_duplicate_registration_rejected(self):
        registry = Registry([Cell("a", _noop)])
        with pytest.raises(ValueError, match="duplicate"):
            registry.register(Cell("a", _noop))

    def test_non_callable_fn_rejected(self):
        with pytest.raises(TypeError):
            Registry([Cell("a", "not-a-function")])

    def test_completeness_every_runner_covered_or_exempt(self):
        """A new ``run*`` entry point in repro.experiments must either be
        wired into the sweep or explicitly exempted — no silent gaps."""
        runners = set(experiment_runners())
        covered = covered_runners(default_registry())
        uncovered = runners - covered - EXEMPT_RUNNERS
        assert not uncovered, f"experiment runners missing from the sweep: {sorted(uncovered)}"

    def test_covers_and_exemptions_reference_real_runners(self):
        runners = set(experiment_runners())
        covered = covered_runners(default_registry())
        assert covered <= runners, f"stale covers: {sorted(covered - runners)}"
        assert EXEMPT_RUNNERS <= runners, f"stale exemptions: {sorted(EXEMPT_RUNNERS - runners)}"

    def test_aggregates_wait_on_their_inputs(self):
        registry = default_registry()
        order = registry.topo_order()
        for aggregate in ("table1", "scorecard"):
            deps = registry[aggregate].deps
            assert deps, f"{aggregate} should depend on its input cells"
            for dep in deps:
                assert order.index(dep) < order.index(aggregate)

    def test_document_references_registered_cells(self):
        registry = default_registry()
        for name in document_cells():
            assert name in registry

    def test_select_expands_to_dep_closure(self):
        registry = default_registry()
        selected = registry.select(["table1"])
        assert "table1" in selected
        for dep in registry["table1"].deps:
            assert dep in selected

    def test_select_unknown_pattern_raises(self):
        with pytest.raises(ValueError, match="no cells match"):
            default_registry().select(["no-such-cell-*"])

    def test_call_cell_type_checks(self):
        bad = Cell("bad", lambda: "not a CellResult")
        with pytest.raises(TypeError, match="expected CellResult"):
            call_cell(bad)


# ------------------------------------------------------------ properties


@st.composite
def acyclic_registries(draw):
    """A registry whose cells only depend on earlier registrations."""
    count = draw(st.integers(min_value=1, max_value=8))
    cells = []
    for index in range(count):
        pool = [f"c{j}" for j in range(index)]
        deps = draw(st.lists(st.sampled_from(pool), unique=True, max_size=3)) if pool else []
        cells.append(Cell(f"c{index}", _noop, deps=tuple(deps)))
    return Registry(cells)


@settings(max_examples=50, deadline=None)
@given(acyclic_registries())
def test_topo_order_places_deps_first(registry):
    order = registry.topo_order()
    assert sorted(order) == sorted(registry.names())
    for cell in registry:
        for dep in cell.deps:
            assert order.index(dep) < order.index(cell.name)


@settings(max_examples=50, deadline=None)
@given(acyclic_registries(), st.data())
def test_closure_is_dependency_closed(registry, data):
    roots = data.draw(
        st.lists(st.sampled_from(registry.names()), min_size=1, unique=True)
    )
    closed = set(registry.closure(roots))
    assert set(roots) <= closed
    for name in closed:
        assert set(registry[name].deps) <= closed


@settings(max_examples=50, deadline=None)
@given(acyclic_registries(), st.data())
def test_subset_topo_consistent_with_full_order(registry, data):
    roots = data.draw(
        st.lists(st.sampled_from(registry.names()), min_size=1, unique=True)
    )
    subset = registry.closure(roots)
    order = registry.topo_order(subset)
    assert sorted(order) == sorted(subset)
    for name in order:
        for dep in registry[name].deps:
            if dep in subset:
                assert order.index(dep) < order.index(name)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=6))
def test_cycles_are_detected(length):
    cells = [
        Cell(f"c{i}", _noop, deps=(f"c{(i + 1) % length}",)) for i in range(length)
    ]
    registry = Registry(cells)
    with pytest.raises(ValueError, match="cycle"):
        registry.topo_order()
    with pytest.raises(ValueError, match="cycle"):
        registry.validate()


def test_unknown_dep_rejected_by_validate():
    registry = Registry([Cell("a", _noop, deps=("ghost",))])
    with pytest.raises(ValueError, match="unknown cell"):
        registry.validate()
