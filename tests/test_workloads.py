"""Tests for workload generators: synthetic, GUPS, Zipfian, YCSB."""

import numpy as np
import pytest

from repro import DRAMOnly, FlatFlash, small_config
from repro.workloads.gups import run_gups
from repro.workloads.synthetic import random_access, sequential_access, warm_up
from repro.workloads.ycsb import OpType, WORKLOADS, YCSB_B, YCSB_D, generate_ops
from repro.workloads.zipfian import LatestGenerator, ZipfianGenerator


@pytest.fixture
def system():
    return FlatFlash(small_config(track_data=False))


class TestSynthetic:
    def test_sequential_returns_one_sample_per_op(self, system):
        region = system.mmap(8)
        stats = sequential_access(system, region, 100)
        assert stats.count == 100

    def test_random_returns_one_sample_per_op(self, system):
        region = system.mmap(8)
        stats = random_access(system, region, 100)
        assert stats.count == 100

    def test_write_ratio_bounds_checked(self, system):
        region = system.mmap(4)
        with pytest.raises(ValueError):
            sequential_access(system, region, 10, write_ratio=1.5)
        with pytest.raises(ValueError):
            random_access(system, region, 10, write_ratio=-0.1)

    def test_warm_up_touches_pages(self, system):
        region = system.mmap(8)
        warm_up(system, region, 50)
        assert system.stats.counters()["mem.loads"] == 50

    def test_deterministic_with_seed(self):
        def run():
            system = FlatFlash(small_config(track_data=False))
            region = system.mmap(8)
            stats = random_access(
                system, region, 200, rng=np.random.default_rng(5)
            )
            return stats.mean

        assert run() == run()


class TestGUPS:
    def test_updates_counted(self, system):
        region = system.mmap(16)
        result = run_gups(system, region, 200)
        assert result.updates == 200
        assert result.elapsed_ns > 0

    def test_gups_metric(self, system):
        region = system.mmap(16)
        result = run_gups(system, region, 100)
        assert result.gups == pytest.approx(100 / result.elapsed_ns)
        assert result.mean_update_ns == pytest.approx(result.elapsed_ns / 100)

    def test_verify_mode_xors_real_data(self):
        system = DRAMOnly(small_config())
        region = system.mmap(16)
        rng = np.random.default_rng(777)
        run_gups(system, region, 100, rng=rng, verify=True)
        # Re-derive the updated indices and check the xors landed.
        replay = np.random.default_rng(777)
        indices = replay.integers(0, region.size // 8, size=100)
        values = [system.load_u64(region.addr(int(i) * 8))[0] for i in indices]
        assert any(values)

    def test_invalid_update_count(self, system):
        region = system.mmap(4)
        with pytest.raises(ValueError):
            run_gups(system, region, 0)


class TestZipfian:
    def test_samples_in_range(self):
        zipf = ZipfianGenerator(1_000)
        samples = zipf.sample(5_000)
        assert samples.min() >= 0
        assert samples.max() < 1_000

    def test_skew_prefers_low_ranks(self):
        zipf = ZipfianGenerator(1_000, theta=0.99)
        samples = zipf.sample(20_000)
        head = np.mean(samples < 10)
        assert head > 0.2  # top-10 of 1000 gets >20% of traffic

    def test_scattered_spreads_hot_keys(self):
        zipf = ZipfianGenerator(1_000)
        scattered = zipf.sample_scattered(5_000)
        assert scattered.min() >= 0
        assert scattered.max() < 1_000
        # Scattering must not concentrate everything at the low end.
        assert np.mean(scattered < 10) < 0.2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10).sample(0)

    def test_latest_prefers_recent(self):
        latest = LatestGenerator(1_000)
        samples = latest.sample(10_000)
        assert np.mean(samples > 900) > 0.4

    def test_latest_insert_extends_keyspace(self):
        latest = LatestGenerator(100)
        key = latest.record_insert()
        assert key == 100
        assert latest.count == 101


class TestYCSB:
    def test_op_mix_matches_workload(self):
        ops = list(generate_ops(YCSB_B, 10_000, 1_000, seed=3))
        reads = sum(1 for op, _ in ops if op is OpType.READ)
        updates = sum(1 for op, _ in ops if op is OpType.UPDATE)
        assert reads / len(ops) == pytest.approx(0.95, abs=0.02)
        assert updates / len(ops) == pytest.approx(0.05, abs=0.02)

    def test_workload_d_inserts_fresh_keys(self):
        ops = list(generate_ops(YCSB_D, 5_000, 1_000, seed=4))
        inserts = [key for op, key in ops if op is OpType.INSERT]
        assert inserts
        assert min(inserts) >= 1_000  # beyond the preloaded keyspace
        assert len(set(inserts)) == len(inserts)  # unique

    def test_keys_in_range_for_reads(self):
        ops = list(generate_ops(YCSB_B, 2_000, 500, seed=5))
        for op, key in ops:
            if op is not OpType.INSERT:
                assert 0 <= key < 500

    def test_ratio_validation(self):
        from repro.workloads.ycsb import YCSBWorkload

        bad = YCSBWorkload("bad", 0.5, 0.1, 0.1, "zipfian")
        with pytest.raises(ValueError):
            bad.validate()

    def test_all_named_workloads_valid(self):
        for workload in WORKLOADS.values():
            workload.validate()
