"""Tests for the paging baselines' swap readahead."""

import numpy as np
import pytest

from repro import UnifiedMMap, small_config
from repro.workloads.synthetic import sequential_access


def make_system(readahead=4, dram_pages=16):
    config = small_config()
    config.geometry.dram_pages = dram_pages
    config.readahead_pages = readahead
    return UnifiedMMap(config.validate())


def test_disabled_by_default():
    config = small_config()
    assert config.readahead_pages == 0


def test_negative_rejected():
    config = small_config()
    config.readahead_pages = -1
    with pytest.raises(ValueError):
        config.validate()


def test_fault_pulls_in_following_pages():
    system = make_system(readahead=4)
    region = system.mmap(8)
    system.load(region.addr(0), 8)  # fault on page 0
    assert system.page_faults == 1
    # Pages 1-4 came along for free: no further faults.
    for page in range(1, 5):
        result = system.load(region.page_addr(page, 0), 8)
        assert not result.fault
    # Page 5 still faults.
    assert system.load(region.page_addr(5, 0), 8).fault


def test_readahead_stops_at_dram_limit():
    system = make_system(readahead=8, dram_pages=4)
    region = system.mmap(16)
    system.load(region.addr(0), 8)
    assert system.dram.allocated_frames <= system.dram.num_frames


def test_readahead_stops_at_region_end():
    system = make_system(readahead=8)
    region = system.mmap(3)
    system.load(region.page_addr(2, 0), 8)  # last page: nothing beyond
    assert system.page_faults == 1


def test_readahead_preserves_data():
    system = make_system(readahead=4)
    region = system.mmap(8)
    # Write through the paging path, evict everything, then fault back in.
    for page in range(8):
        system.store(region.page_addr(page, 8), 8, bytes([page + 1]) * 8)
    for page in range(8):
        assert system.load(region.page_addr(page, 8), 8).data == bytes([page + 1]) * 8


def test_sequential_sweep_faster_with_readahead():
    means = {}
    for readahead in (0, 8):
        system = make_system(readahead=readahead, dram_pages=16)
        region = system.mmap(32)
        stats = sequential_access(
            system, region, 1_500, rng=np.random.default_rng(2)
        )
        means[readahead] = stats.mean
    assert means[8] < means[0]


def test_readahead_events_logged():
    system = make_system(readahead=2)
    system.enable_event_log()
    region = system.mmap(4)
    system.load(region.addr(0), 8)
    assert system.events("readahead")
