"""Tests for the B+-tree on unified memory."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import DRAMOnly, FlatFlash, UnifiedMMap, small_config
from repro.apps.btree import BPlusTree


def make_tree(max_keys=4, capacity_pages=128, system_cls=FlatFlash):
    config = small_config()
    config.geometry.dram_pages = 32
    config.geometry.ssd_pages = 4_096
    if system_cls is DRAMOnly:
        config.geometry.dram_pages = capacity_pages + 8
    return BPlusTree(
        system_cls(config.validate()), capacity_pages=capacity_pages, max_keys=max_keys
    )


def test_empty_tree():
    tree = make_tree()
    assert tree.get(5) is None
    assert len(tree) == 0
    assert tree.height == 1


def test_insert_and_get():
    tree = make_tree()
    tree.insert(10, 100)
    tree.insert(5, 50)
    assert tree.get(10) == 100
    assert tree.get(5) == 50
    assert tree.get(7) is None
    assert len(tree) == 2


def test_update_in_place():
    tree = make_tree()
    tree.insert(1, 10)
    tree.insert(1, 20)
    assert tree.get(1) == 20
    assert len(tree) == 1


def test_leaf_split_grows_tree():
    tree = make_tree(max_keys=4)
    for key in range(6):
        tree.insert(key, key * 2)
    assert tree.height == 2
    for key in range(6):
        assert tree.get(key) == key * 2


def test_many_inserts_multilevel():
    tree = make_tree(max_keys=4)
    keys = list(range(200))
    np.random.default_rng(1).shuffle(keys)
    for key in keys:
        tree.insert(key, key + 1_000)
    assert tree.height >= 3
    for key in range(200):
        assert tree.get(key) == key + 1_000
    assert len(tree) == 200


def test_items_are_sorted():
    tree = make_tree(max_keys=4)
    keys = [17, 3, 99, 4, 250, 42, 8]
    for key in keys:
        tree.insert(key, key)
    assert [k for k, _v in tree.items()] == sorted(keys)


def test_scan_range():
    tree = make_tree(max_keys=4)
    for key in range(0, 100, 5):
        tree.insert(key, key * 3)
    result = dict(tree.scan(20, 50))
    assert result == {key: key * 3 for key in range(20, 50, 5)}


def test_scan_empty_range():
    tree = make_tree()
    tree.insert(1, 1)
    assert list(tree.scan(5, 5)) == []
    assert list(tree.scan(9, 4)) == []


def test_key_bounds():
    tree = make_tree()
    with pytest.raises(ValueError):
        tree.insert(-1, 0)
    with pytest.raises(ValueError):
        tree.insert(2**64 - 1, 0)


def test_out_of_pages_raises():
    tree = make_tree(max_keys=2, capacity_pages=4)
    with pytest.raises(MemoryError):
        for key in range(100):
            tree.insert(key, key)


def test_invalid_shapes_rejected():
    system = FlatFlash(small_config())
    with pytest.raises(ValueError):
        BPlusTree(system, capacity_pages=1)
    with pytest.raises(ValueError):
        BPlusTree(system, max_keys=1)
    with pytest.raises(ValueError):
        BPlusTree(system, max_keys=10_000)


def test_natural_fanout_fits_page():
    tree = BPlusTree(FlatFlash(small_config()), capacity_pages=8)
    # Child slot max_keys+2 must stay inside the page.
    last_offset = tree._val_off(tree.max_keys + 2) + 8
    assert last_offset <= tree.page_size


def test_works_on_every_system():
    for system_cls in (FlatFlash, UnifiedMMap, DRAMOnly):
        tree = make_tree(max_keys=4, capacity_pages=64, system_cls=system_cls)
        for key in range(60):
            tree.insert(key * 7 % 61, key)
        assert len(tree) == 60
        assert tree.get(1) is not None


def test_traversals_charge_the_memory_system():
    tree = make_tree(max_keys=4)
    before = tree.system.stats.counters()["mem.loads"]
    for key in range(50):
        tree.insert(key, key)
    tree.get(25)
    assert tree.system.stats.counters()["mem.loads"] > before
    assert tree.system.clock.now > 0


@settings(deadline=None, max_examples=25)
@given(
    st.lists(
        st.tuples(st.integers(0, 500), st.integers(0, 2**32)),
        min_size=1,
        max_size=150,
    )
)
def test_btree_behaves_like_a_dict(pairs):
    tree = make_tree(max_keys=4, capacity_pages=256)
    model = {}
    for key, value in pairs:
        tree.insert(key, value)
        model[key] = value
    assert len(tree) == len(model)
    for key, value in model.items():
        assert tree.get(key) == value
    assert dict(tree.items()) == model
    assert [k for k, _ in tree.items()] == sorted(model)


class TestYCSBE:
    def test_runs_and_counts_ops(self):
        tree = make_tree(max_keys=8, capacity_pages=256)
        for key in range(500):
            tree.insert(key, key)
        stats = tree.run_ycsb_e(num_ops=120, num_records=500)
        assert stats.count == 120
        assert stats.mean > 0

    def test_inserts_extend_the_tree(self):
        tree = make_tree(max_keys=8, capacity_pages=256)
        for key in range(200):
            tree.insert(key, key)
        before = len(tree)
        tree.run_ycsb_e(num_ops=300, num_records=200, seed=7)
        assert len(tree) > before

    def test_validation(self):
        tree = make_tree()
        with pytest.raises(ValueError):
            tree.run_ycsb_e(num_ops=0, num_records=10)
        with pytest.raises(ValueError):
            tree.run_ycsb_e(num_ops=5, num_records=10, max_scan_length=0)

    def test_scan_heavy_latency_dominated_by_ranges(self):
        """Scans touch many leaves: mean op latency far exceeds one load."""
        tree = make_tree(max_keys=8, capacity_pages=256)
        for key in range(400):
            tree.insert(key, key)
        stats = tree.run_ycsb_e(num_ops=100, num_records=400, max_scan_length=60)
        assert stats.mean > tree.system.config.latency.dram_load_ns * 5
