"""Suite-wide test configuration.

Runtime invariant sanitizers (repro.sim.sanitizers) are opt-in for library
users but enabled for the whole test suite: every Simulator, FlashArray,
SimClock and SSDDevice built by a test carries its shadow-state checkers,
so an invariant break anywhere in a test run fails loudly at the breaking
operation instead of corrupting results silently.

Shadow domain tags (repro.sim.domain_tags, the dynamic counterpart of
the simflow static analysis) are enabled the same way: every vpn / lpn /
ppn that flows out of a translation cast carries its address domain, and
mixing domains raises at the mixing operation in any test.
"""

import pytest

from repro.sim import domain_tags, sanitizers


@pytest.fixture(scope="session", autouse=True)
def _enable_sanitizers():
    previous = sanitizers.set_default_enabled(True)
    yield
    sanitizers.set_default_enabled(previous)


@pytest.fixture(scope="session", autouse=True)
def _enable_domain_tags():
    previous = domain_tags.set_enabled(True)
    yield
    domain_tags.set_enabled(previous)
