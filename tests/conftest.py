"""Suite-wide test configuration.

Runtime invariant sanitizers (repro.sim.sanitizers) are opt-in for library
users but enabled for the whole test suite: every Simulator, FlashArray,
SimClock and SSDDevice built by a test carries its shadow-state checkers,
so an invariant break anywhere in a test run fails loudly at the breaking
operation instead of corrupting results silently.
"""

import pytest

from repro.sim import sanitizers


@pytest.fixture(scope="session", autouse=True)
def _enable_sanitizers():
    previous = sanitizers.set_default_enabled(True)
    yield
    sanitizers.set_default_enabled(previous)
