"""Tests for host DRAM frame management."""

import pytest

from repro.host.dram import HostDRAM


def make_dram(frames=4, page_size=64, policy="lru", track_data=True):
    return HostDRAM(frames, page_size, track_data=track_data, policy=policy)


def test_allocate_assigns_frames():
    dram = make_dram()
    frame = dram.allocate(vpn=7)
    assert frame is not None
    assert frame.vpn == 7
    assert dram.allocated_frames == 1
    assert dram.free_frames == 3


def test_allocate_with_data():
    dram = make_dram()
    frame = dram.allocate(0, b"\x42" * 64)
    assert bytes(frame.data) == b"\x42" * 64


def test_allocate_wrong_size_rejected():
    dram = make_dram()
    with pytest.raises(ValueError):
        dram.allocate(0, b"short")


def test_allocate_when_full_returns_none():
    dram = make_dram(frames=1)
    assert dram.allocate(0) is not None
    assert dram.allocate(1) is None
    assert dram.is_full


def test_free_recycles():
    dram = make_dram(frames=1)
    frame = dram.allocate(0)
    dram.free(frame)
    assert dram.allocate(1) is not None


def test_free_unallocated_raises():
    dram = make_dram()
    frame = dram.frames[0]
    with pytest.raises(ValueError):
        dram.free(frame)


def test_free_clears_state():
    dram = make_dram()
    frame = dram.allocate(3)
    frame.dirty = True
    dram.free(frame)
    assert frame.vpn is None
    assert not frame.dirty
    assert frame.data is None


def test_lru_victim_is_least_recent():
    dram = make_dram(frames=3)
    a = dram.allocate(0)
    b = dram.allocate(1)
    dram.allocate(2)
    dram.touch(a)  # order now: b, c, a
    assert dram.lru_victim() is b


def test_lru_victim_without_allocations_raises():
    with pytest.raises(RuntimeError):
        make_dram().lru_victim()


def test_iter_lru_order():
    dram = make_dram(frames=3)
    a = dram.allocate(0)
    b = dram.allocate(1)
    c = dram.allocate(2)
    dram.touch(a)
    assert [frame.vpn for frame in dram.iter_lru()] == [1, 2, 0]
    assert b is dram.frames[b.index] and c is dram.frames[c.index]


def test_clock_victim_skips_referenced():
    dram = make_dram(frames=3, policy="clock")
    a = dram.allocate(0)
    b = dram.allocate(1)
    c = dram.allocate(2)
    # allocate() touches, so all referenced; first sweep clears a, b, c and
    # wraps; re-touch b so only b survives the second sweep.
    victim1 = dram.clock_victim()
    assert victim1 in (a, b, c)
    dram.touch(b)
    victim2 = dram.clock_victim()
    assert victim2 is not b


def test_victim_dispatches_on_policy():
    lru = make_dram(policy="lru")
    lru.allocate(0)
    assert lru.victim().vpn == 0
    clock = make_dram(policy="clock")
    clock.allocate(0)
    assert clock.victim().vpn == 0


def test_invalid_policy_rejected():
    with pytest.raises(ValueError):
        make_dram(policy="random")


def test_read_write_bytes():
    dram = make_dram()
    frame = dram.allocate(0)
    dram.write_bytes(frame, 10, b"xyz")
    assert dram.read_bytes(frame, 10, 3) == b"xyz"
    assert frame.dirty


def test_write_bounds_checked():
    dram = make_dram()
    frame = dram.allocate(0)
    with pytest.raises(ValueError):
        dram.write_bytes(frame, 62, b"xyz")
    with pytest.raises(ValueError):
        dram.read_bytes(frame, 60, 8)


def test_no_data_mode_reads_none_but_tracks_dirty():
    dram = make_dram(track_data=False)
    frame = dram.allocate(0)
    dram.write_bytes(frame, 0, b"ab")
    assert frame.dirty
    assert dram.read_bytes(frame, 0, 2) is None


def test_invalid_shape_rejected():
    with pytest.raises(ValueError):
        HostDRAM(0, 64)
    with pytest.raises(ValueError):
        HostDRAM(4, 0)
