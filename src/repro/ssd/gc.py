"""Read-modify-write garbage collection with SSD-Cache destaging.

FlatFlash does not write dirty SSD-Cache pages back on the access path;
instead the SSD's garbage collector collects them periodically (§3.2, §4):

* **read phase** — GC reads a victim flash block;
* **modify phase** — invalid/stale pages in the in-memory copy are
  overwritten with the dirty pages from the SSD-Cache;
* **write phase** — the merged copy is written to a free block, and the
  moved pages' PTE/TLB entries are updated lazily through the device's
  remap table.

The relocation mechanics live in :class:`repro.ssd.ftl.PageFTL`; this class
adds the cache-folding policy and a periodic ``flush_dirty`` destage used
when the cache pressure (dirty ratio) grows.
"""

from __future__ import annotations

from typing import Optional

from repro.costs import counters
from repro.sim.stats import StatRegistry
from repro.ssd.flash import FlashArray
from repro.ssd.ftl import PageFTL
from repro.ssd.ssd_cache import CacheEntry, SSDCache
from repro.units import LPN, TimeNs


@counters(
    owner="gc",
    conserve=(
        "flush_entry: gc.dirty_pages_flushed <= 1",
        "_fresh_copy: gc.cache_pages_folded <= 1",
    ),
)
class GarbageCollector:
    """Couples the FTL's relocation GC with SSD-Cache dirty-page folding."""

    def __init__(
        self,
        flash: FlashArray,
        ftl: PageFTL,
        cache: SSDCache,
        dirty_ratio_limit: float = 0.5,
        stats: Optional[StatRegistry] = None,
    ) -> None:
        if not 0.0 < dirty_ratio_limit <= 1.0:
            raise ValueError(
                f"dirty_ratio_limit must be in (0, 1], got {dirty_ratio_limit}"
            )
        self.flash = flash
        self.ftl = ftl
        self.cache = cache
        self.dirty_ratio_limit = dirty_ratio_limit
        self.stats = stats if stats is not None else StatRegistry()
        self._folded = self.stats.counter("gc.cache_pages_folded")
        self._flushed = self.stats.counter("gc.dirty_pages_flushed")
        self._background_ns = self.stats.counter("gc.background_ns")
        # Fold dirty cache contents into relocated pages during FTL GC.
        ftl.page_source = self._fresh_copy

    def _fresh_copy(self, lpn: LPN) -> Optional[bytes]:
        """FTL GC callback: newest data for ``lpn`` if the cache holds it dirty."""
        entry = self.cache.peek(lpn)
        if entry is None or not entry.dirty:
            return None
        self._folded.add()
        entry.dirty = False  # the relocated flash copy is now current
        if entry.data is None:
            return None
        return bytes(entry.data)

    # ------------------------------------------------------------------ #
    # Dirty-page destaging
    # ------------------------------------------------------------------ #

    @property
    def dirty_ratio(self) -> float:
        """Dirty pages as a fraction of cache capacity."""
        dirty = len(self.cache.dirty_entries())
        return dirty / self.cache.capacity_pages

    def flush_entry(self, entry: CacheEntry) -> TimeNs:
        """Write one dirty cache entry back to flash; returns cost in ns."""
        if not entry.dirty:
            return 0
        data = bytes(entry.data) if entry.data is not None else None
        _new_ppn, cost = self.ftl.write(entry.lpn, data)
        entry.dirty = False
        self._flushed.add()
        self._background_ns.add(cost)
        return cost

    def flush_dirty(self, limit: Optional[int] = None) -> TimeNs:
        """Destage dirty pages (all, or at most ``limit``); returns ns spent.

        This models the periodic background write-back; its cost is charged
        to ``gc.background_ns`` rather than to any foreground access.
        """
        cost = 0
        for count, entry in enumerate(self.cache.dirty_entries()):
            if limit is not None and count >= limit:
                break
            cost += self.flush_entry(entry)
        if self.flash.sanitizer is not None:
            self.flash.sanitizer.check_accounting(
                len(self.ftl.mapping), context="dirty-page destage"
            )
        return cost

    def maybe_flush(self) -> TimeNs:
        """Destage when the dirty ratio exceeds the configured limit."""
        if self.dirty_ratio >= self.dirty_ratio_limit:
            return self.flush_dirty()
        return 0

    def collect(self) -> TimeNs:
        """Run one foreground-independent GC pass; returns ns spent."""
        cost = self.ftl.collect_garbage()
        self._background_ns.add(cost)
        if self.flash.sanitizer is not None:
            # A GC cycle must neither leak valid pages (relocated but not
            # invalidated) nor leave dangling mappings.
            self.flash.sanitizer.check_accounting(
                len(self.ftl.mapping), context="GC collect"
            )
        return cost

    @property
    def background_ns(self) -> int:
        return self._background_ns.value

    @property
    def retired_blocks(self) -> int:
        """Blocks retired as bad — erase failures plus wear-limit hits
        (repro.faults).  Spare capacity GC can no longer use."""
        return sum(1 for block in self.flash.blocks if block.bad)
