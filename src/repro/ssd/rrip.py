"""Re-Reference Interval Prediction (RRIP) replacement.

The SSD-Cache uses RRIP (Jaleel et al., ISCA'10) as its replacement policy
because it tolerates the scan/thrash mixes of random page accesses far
better than LRU (§3.4).  This is SRRIP with 2-bit re-reference prediction
values (RRPV):

* insertion predicts a *long* re-reference interval (RRPV = max-1),
* a hit predicts a *near-immediate* interval (RRPV = 0),
* the victim is any way with RRPV = max; if none exists all RRPVs age by
  one and the search repeats.

The class manages one set; the SSD-Cache owns one instance per set.
"""

from __future__ import annotations

from typing import List


class RRIPSet:
    """RRPV state for the ways of one cache set."""

    def __init__(self, num_ways: int, rrpv_bits: int = 2) -> None:
        if num_ways <= 0:
            raise ValueError(f"num_ways must be > 0, got {num_ways}")
        if rrpv_bits <= 0:
            raise ValueError(f"rrpv_bits must be > 0, got {rrpv_bits}")
        self.num_ways = num_ways
        self.max_rrpv = (1 << rrpv_bits) - 1
        # Empty ways start at max so they are chosen before any occupant.
        self._rrpv: List[int] = [self.max_rrpv] * num_ways

    def rrpv_of(self, way: int) -> int:
        return self._rrpv[way]

    def on_hit(self, way: int) -> None:
        """Hit promotion: predict near-immediate re-reference."""
        self._check_way(way)
        self._rrpv[way] = 0

    def on_insert(self, way: int) -> None:
        """Insertion: predict a long (but not distant) re-reference."""
        self._check_way(way)
        self._rrpv[way] = self.max_rrpv - 1

    def select_victim(self, occupied: List[bool]) -> int:
        """Pick a victim way.

        Free ways win immediately.  Otherwise the leftmost way at max RRPV
        is evicted, aging every way until one reaches max.  ``occupied``
        flags which ways currently hold valid entries.
        """
        if len(occupied) != self.num_ways:
            raise ValueError(
                f"occupied has {len(occupied)} flags for {self.num_ways} ways"
            )
        for way, used in enumerate(occupied):
            if not used:
                return way
        while True:
            for way in range(self.num_ways):
                if self._rrpv[way] >= self.max_rrpv:
                    return way
            for way in range(self.num_ways):
                self._rrpv[way] += 1

    def reset_way(self, way: int) -> None:
        """Mark a way empty (its entry was invalidated)."""
        self._check_way(way)
        self._rrpv[way] = self.max_rrpv

    def _check_way(self, way: int) -> None:
        if not 0 <= way < self.num_ways:
            raise ValueError(f"way {way} out of range [0, {self.num_ways})")
