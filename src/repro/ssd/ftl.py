"""Page-level flash translation layer (FTL).

The FTL maps *logical* page numbers (lpn — stable handles the host addresses
data by) to *physical* flash pages (ppn).  NAND pages cannot be overwritten
in place, so every write programs a fresh page from a write frontier and
invalidates the old one; a garbage collector later reclaims blocks that are
mostly invalid.

Two deployment modes matter to the paper:

* **Device FTL** (TraditionalStack): the mapping is private to the SSD and
  every host access pays an FTL lookup.
* **Host-merged FTL** (UnifiedMMap / FlatFlash, §3.2 and §4): the mapping is
  folded into the host page table, PTEs point straight at flash physical
  pages, and when GC relocates a page the device records an old→new entry in
  a *remap table* that is lazily propagated to PTEs/TLBs in batches.

This class implements the mapping and allocation machinery; the mode choice
lives in :class:`repro.ssd.device.ByteAddressableSSD`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.costs import counters
from repro.effects import effects, kernel
from repro.sim import domain_tags
from repro.sim.stats import StatRegistry
from repro.ssd.flash import FlashArray, FlashBlock, FlashOp, FlashPageState
from repro.units import LPN, PPN, BlockIndex, TimeNs

RelocateHook = Callable[[int, int, int], None]  # (lpn, old_ppn, new_ppn)


class OutOfSpaceError(RuntimeError):
    """Raised when the flash array has no reclaimable space left."""


@counters(
    owner="ftl",
    conserve=(
        "trim: ftl.trims <= 1",
        "collect_garbage: ftl.gc_runs == 1",
        "_program_new: ftl.host_writes + ftl.gc_writes == 1",
        "_read_with_ecc: ftl.ecc_hard_errors <= 1",
    ),
)
class PageFTL:
    """Out-of-place page mapping with greedy victim selection for GC."""

    def __init__(
        self,
        flash: FlashArray,
        overprovision: float = 0.07,
        wear_level_threshold: int = 0,
        stats: Optional[StatRegistry] = None,
    ) -> None:
        """``wear_level_threshold``: when > 0, static wear leveling kicks in
        once the erase-count spread across blocks exceeds it — cold (fully
        valid, rarely erased) blocks are relocated so their low-wear cells
        rejoin the rotation."""
        if not 0.0 <= overprovision < 1.0:
            raise ValueError(f"overprovision must be in [0, 1), got {overprovision}")
        if wear_level_threshold < 0:
            raise ValueError(
                f"wear_level_threshold must be >= 0, got {wear_level_threshold}"
            )
        self.flash = flash
        self.stats = stats if stats is not None else StatRegistry()
        # Exported (host-visible) capacity excludes the over-provisioned area
        # that gives GC room to operate, and is block-aligned.
        usable_blocks = max(1, int(flash.num_blocks * (1.0 - overprovision)))
        # Keep at least two spare blocks: one write frontier plus one reserve
        # so GC always has room to relocate a full victim block.
        if usable_blocks > flash.num_blocks - 2:
            usable_blocks = flash.num_blocks - 2
        if usable_blocks < 1:
            raise ValueError("flash array too small to over-provision")
        self.exported_pages = usable_blocks * flash.pages_per_block
        self.mapping: Dict[LPN, PPN] = {}
        self.reverse: Dict[PPN, LPN] = {}
        self._free_blocks: List[BlockIndex] = list(range(flash.num_blocks - 1, -1, -1))
        self._frontier_block: Optional[BlockIndex] = None
        self._frontier_offset = 0
        self._relocate_hooks: List[RelocateHook] = []
        # Optional freshness source consulted during GC relocation: the
        # read-modify-write GC folds dirty SSD-Cache pages into the block it
        # rewrites (§4).  Returns newer page data for an lpn, or None.
        self.page_source: Optional[Callable[[int], Optional[bytes]]] = None
        self.wear_level_threshold = wear_level_threshold
        self._host_writes = self.stats.counter("ftl.host_writes")
        self._gc_writes = self.stats.counter("ftl.gc_writes")
        self._gc_runs = self.stats.counter("ftl.gc_runs")
        self._wear_levelings = self.stats.counter("ftl.wear_levelings")
        self._trims = self.stats.counter("ftl.trims")
        # Fault-handling work (repro.faults): ECC read retries, reads that
        # exhausted retries and needed soft-decode rescue, and programs
        # re-issued after a program failure burned a frontier page.
        self._ecc_retries = self.stats.counter("ftl.ecc_retries")
        self._ecc_hard_errors = self.stats.counter("ftl.ecc_hard_errors")
        self._program_retries = self.stats.counter("ftl.program_retries")

    # ------------------------------------------------------------------ #
    # Mapping queries
    # ------------------------------------------------------------------ #

    def _check_lpn(self, lpn: LPN) -> None:
        domain_tags.check(lpn, "LPN", "PageFTL")
        if not 0 <= lpn < self.exported_pages:
            raise ValueError(f"lpn {lpn} out of range [0, {self.exported_pages})")

    @kernel(may_raise=("ValueError", "DomainTagError"))
    def is_mapped(self, lpn: LPN) -> bool:
        self._check_lpn(lpn)
        return lpn in self.mapping

    @kernel(may_raise=("KeyError", "ValueError", "DomainTagError"))
    def lookup(self, lpn: LPN) -> PPN:
        """Current ppn for a mapped lpn."""
        self._check_lpn(lpn)
        try:
            return PPN(self.mapping[lpn])
        except KeyError:
            raise KeyError(f"lpn {lpn} is not mapped") from None

    @kernel(may_raise=("DomainTagError",))
    def lpn_of(self, ppn: PPN) -> Optional[LPN]:
        """Reverse lookup: which lpn currently lives at this ppn."""
        domain_tags.check(ppn, "PPN", "PageFTL.lpn_of")
        lpn = self.reverse.get(ppn)
        return None if lpn is None else LPN(lpn)

    def add_relocate_hook(self, hook: RelocateHook) -> None:
        """Register a callback fired whenever a live page changes ppn.

        That covers GC relocation *and* out-of-place rewrites (dirty-page
        destaging): in the host-merged mode both invalidate a physical
        address the host may still hold, so both feed the remap table.
        """
        self._relocate_hooks.append(hook)

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #

    @property
    def free_blocks(self) -> int:
        return len(self._free_blocks) + (1 if self._frontier_block is not None else 0)

    def gc_needed(self) -> bool:
        """GC should run when only the reserve block remains on the free list."""
        return len(self._free_blocks) < 2

    def _next_free_ppn(self) -> PPN:
        """Next erased page on the write frontier, opening a block if needed."""
        if self._frontier_block is None:
            if not self._free_blocks:
                raise OutOfSpaceError("no free flash blocks; GC must run first")
            self._frontier_block = self._free_blocks.pop()
            self._frontier_offset = 0
        ppn = (
            self._frontier_block * self.flash.pages_per_block + self._frontier_offset
        )
        self._frontier_offset += 1
        if self._frontier_offset == self.flash.pages_per_block:
            self._frontier_block = None
        return PPN(ppn)

    # ------------------------------------------------------------------ #
    # Host operations
    # ------------------------------------------------------------------ #

    def map_page(self, lpn: LPN) -> Tuple[PPN, TimeNs]:
        """Ensure ``lpn`` is backed by a flash page; returns (ppn, cost_ns).

        First touch programs a zero page so the mapping always points at a
        real programmed page (reads need stable physical addresses in the
        host-merged mode).
        """
        self._check_lpn(lpn)
        existing = self.mapping.get(lpn)
        if existing is not None:
            return existing, 0
        return self._program_new(lpn, None, gc_write=False)

    def read(self, lpn: LPN) -> Tuple[PPN, Optional[bytes], TimeNs]:
        """Read a logical page: returns (ppn, data, cost_ns)."""
        ppn = self.lookup(lpn)
        op = self._read_with_ecc(ppn)
        return ppn, op.data, op.latency_ns

    def _read_with_ecc(self, ppn: PPN) -> FlashOp:
        """Read a page, retrying injected ECC errors.

        A failed read is re-issued up to ``ecc_max_retries`` times (each
        charged a full page read).  If every retry fails, the FTL escalates
        to soft-decode recovery — modeled as always correcting at the cost
        of two extra page-read latencies — so data is never lost, only
        delayed; ``ftl.ecc_hard_errors`` counts the escalations.
        """
        op = self.flash.read(ppn)
        if not op.failed:
            return op
        latency = op.latency_ns
        faults = self.flash.faults
        max_retries = faults.config.ecc_max_retries if faults is not None else 0
        for _ in range(max_retries):
            self._ecc_retries.add()
            op = self.flash.read(ppn)
            latency += op.latency_ns
            if not op.failed:
                return FlashOp(latency, op.data)
        self._ecc_hard_errors.add()
        latency += self.flash.latency.flash_read_page_ns * 2
        return FlashOp(latency, op.data)

    @effects("MUTATES_STATE", "MUTATES_STATS", "PERSISTS", "FAULT_HOOK")
    def write(self, lpn: LPN, data: Optional[bytes] = None) -> Tuple[PPN, TimeNs]:
        """Out-of-place write of a logical page: returns (new_ppn, cost_ns)."""
        self._check_lpn(lpn)
        return self._program_new(lpn, data, gc_write=False)

    def _program_new(
        self, lpn: LPN, data: Optional[bytes], gc_write: bool
    ) -> Tuple[PPN, TimeNs]:
        cost = 0
        if self.gc_needed():
            cost += self.collect_garbage()
        new_ppn, program_cost = self._program_retrying(data)
        cost += program_cost
        old_ppn = self.mapping.get(lpn)
        if old_ppn is not None:
            self.flash.invalidate(old_ppn)
            del self.reverse[old_ppn]
        self.mapping[lpn] = new_ppn
        self.reverse[new_ppn] = lpn
        if gc_write:
            self._gc_writes.add()
        else:
            self._host_writes.add()
        if old_ppn is not None:
            for hook in self._relocate_hooks:
                hook(lpn, old_ppn, new_ppn)
        return new_ppn, cost

    def _program_retrying(self, data: Optional[bytes]) -> Tuple[PPN, TimeNs]:
        """Program ``data`` on the frontier, skipping pages whose program
        operation fails (the array burns them to INVALID); returns the
        first successfully programmed (ppn, cost_ns)."""
        cost = 0
        while True:
            ppn = self._next_free_ppn()
            op = self.flash.program(ppn, data)
            cost += op.latency_ns
            if not op.failed:
                return ppn, cost
            self._program_retries.add()

    def trim(self, lpn: LPN) -> None:
        """TRIM/discard: the host no longer needs this logical page.

        The mapping is dropped and the flash copy invalidated, giving GC a
        free page to reclaim without relocation — the mechanism that keeps
        write amplification down after deletions.
        """
        self._check_lpn(lpn)
        ppn = self.mapping.pop(lpn, None)
        if ppn is None:
            return
        del self.reverse[ppn]
        self.flash.invalidate(ppn)
        self._trims.add()

    # ------------------------------------------------------------------ #
    # Garbage collection (relocation part; the read-modify-write policy
    # that folds SSD-Cache dirty pages lives in repro.ssd.gc)
    # ------------------------------------------------------------------ #

    def select_victim(self) -> Optional[BlockIndex]:
        """Greedy policy: the fully-written block with the most invalid
        pages; ties go to the least-worn block (wear-aware tie-break)."""
        best_block: Optional[BlockIndex] = None
        best_key: Optional[Tuple[int, int]] = None
        for block in self.flash.blocks:
            if block.bad:
                continue
            if block.index == self._frontier_block:
                continue
            if block.index in self._free_blocks:
                continue
            if block.erased_pages:  # not fully written yet
                continue
            key = (block.invalid_pages, -block.erase_count)
            if best_key is None or key > best_key:
                best_key = key
                best_block = block.index
        return best_block

    @effects("MUTATES_STATE", "MUTATES_STATS", "PERSISTS", "FAULT_HOOK")
    def collect_garbage(self) -> TimeNs:
        """Reclaim one victim block; returns the time spent in ns.

        Valid pages are relocated to the frontier (firing relocate hooks so
        the device can maintain its remap table), then the block is erased
        and returned to the free pool.
        """
        victim = self.select_victim()
        if victim is None:
            raise OutOfSpaceError("GC found no victim block to reclaim")
        if self.flash.blocks[victim].invalid_pages == 0:
            raise OutOfSpaceError(
                "GC cannot make progress: best victim has no invalid pages "
                "(logical capacity exhausted)"
            )
        self._gc_runs.add()
        cost = 0
        block = self.flash.blocks[victim]
        first_ppn = victim * self.flash.pages_per_block
        for offset in range(self.flash.pages_per_block):
            if block.states[offset] is not FlashPageState.PROGRAMMED:
                continue
            old_ppn = first_ppn + offset
            lpn = self.reverse.get(old_ppn)
            if lpn is None:
                raise RuntimeError(f"valid page ppn={old_ppn} has no reverse mapping")
            op = self._read_with_ecc(old_ppn)
            cost += op.latency_ns
            data = op.data
            if self.page_source is not None:
                fresher = self.page_source(lpn)
                if fresher is not None:
                    data = fresher
            new_ppn, program_cost = self._program_retrying(data)
            cost += program_cost
            self.flash.invalidate(old_ppn)
            del self.reverse[old_ppn]
            self.mapping[lpn] = new_ppn
            self.reverse[new_ppn] = lpn
            self._gc_writes.add()
            for hook in self._relocate_hooks:
                hook(lpn, old_ppn, new_ppn)
        erase = self.flash.erase(victim)
        cost += erase.latency_ns
        if not erase.failed and not block.bad:
            # A failed erase (or wear retirement during it) leaves the block
            # bad: it never rejoins the free pool, shrinking spare capacity.
            self._free_blocks.insert(0, victim)
        cost += self.maybe_level_wear()
        return cost

    # ------------------------------------------------------------------ #
    # Static wear leveling
    # ------------------------------------------------------------------ #

    def wear_stats(self) -> dict:
        """Erase-count spread across blocks: min/max/mean and imbalance.

        Retired (bad) blocks are excluded — their wear is frozen and must
        not pin the spread the leveler acts on."""
        counts = [
            block.erase_count for block in self.flash.blocks if not block.bad
        ] or [0]
        mean = sum(counts) / len(counts)
        return {
            "min": min(counts),
            "max": max(counts),
            "mean": mean,
            "spread": max(counts) - min(counts),
        }

    @effects("MUTATES_STATE", "MUTATES_STATS", "PERSISTS", "FAULT_HOOK")
    def maybe_level_wear(self) -> TimeNs:
        """Relocate the coldest block when wear imbalance is too large.

        Static wear leveling: long-lived cold data pins its block at a low
        erase count while hot blocks churn.  Moving the cold data out puts
        the under-used cells back into rotation.  Returns time spent (ns).
        """
        if self.wear_level_threshold <= 0:
            return 0
        stats = self.wear_stats()
        if stats["spread"] < self.wear_level_threshold:
            return 0
        coldest: Optional[FlashBlock] = None
        for block in self.flash.blocks:
            if block.bad:
                continue
            if block.index == self._frontier_block:
                continue
            if block.index in self._free_blocks:
                continue
            if block.erased_pages or block.invalid_pages:
                continue  # only fully valid (cold) blocks qualify
            if coldest is None or block.erase_count < coldest.erase_count:
                coldest = block
        if coldest is None or coldest.erase_count > stats["min"]:
            return 0
        self._wear_levelings.add()
        cost = 0
        first_ppn = coldest.index * self.flash.pages_per_block
        for offset in range(self.flash.pages_per_block):
            old_ppn = first_ppn + offset
            lpn = self.reverse.get(old_ppn)
            if lpn is None:
                continue
            op = self._read_with_ecc(old_ppn)
            cost += op.latency_ns
            new_ppn, program_cost = self._program_retrying(op.data)
            cost += program_cost
            self.flash.invalidate(old_ppn)
            del self.reverse[old_ppn]
            self.mapping[lpn] = new_ppn
            self.reverse[new_ppn] = lpn
            self._gc_writes.add()
            for hook in self._relocate_hooks:
                hook(lpn, old_ppn, new_ppn)
        erase = self.flash.erase(coldest.index)
        cost += erase.latency_ns
        if not erase.failed and not coldest.bad:
            self._free_blocks.insert(0, coldest.index)
        return cost

    # ------------------------------------------------------------------ #
    # Image snapshot/restore (repro.faults.power)
    # ------------------------------------------------------------------ #

    def snapshot_state(self) -> dict:
        """Mapping/allocator snapshot.  A real device journals its mapping
        into flash OOB areas; the model snapshots it directly alongside the
        NAND image so a post-power-loss restart can rebuild the FTL."""
        return {
            "mapping": dict(self.mapping),
            "reverse": dict(self.reverse),
            "free_blocks": list(self._free_blocks),
            "frontier_block": self._frontier_block,
            "frontier_offset": self._frontier_offset,
        }

    def restore_state(self, state: dict) -> None:
        """Load a :meth:`snapshot_state` image (flash must match)."""
        self.mapping = dict(state["mapping"])
        self.reverse = dict(state["reverse"])
        self._free_blocks = list(state["free_blocks"])
        self._frontier_block = state["frontier_block"]
        self._frontier_offset = state["frontier_offset"]

    @property
    def write_amplification(self) -> float:
        """(host + GC writes) / host writes; 1.0 when GC never ran."""
        host = self._host_writes.value
        if host == 0:
            return 1.0
        return (host + self._gc_writes.value) / host
