"""SSD-Cache: the in-SSD DRAM page cache behind the byte interface.

NAND flash is page-granular, so the byte-addressable interface is bridged by
a cache held in the SSD controller's DRAM (the memory freed by merging the
FTL into the host page table, §3.1).  The cache is set-associative over
flash pages, uses RRIP replacement (§3.4), and each entry carries the
``pageCnt`` access counter that feeds the adaptive promotion algorithm.

Entries are keyed by *logical* page number: lpn↔ppn is one-to-one, so this
is equivalent to physical-address indexing but stays stable across GC
relocation.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.batch import batchable, reduction
from repro.costs import counters
from repro.effects import effects, kernel
from repro.sim import domain_tags
from repro.sim.stats import StatRegistry
from repro.ssd.rrip import RRIPSet
from repro.units import LPN, OffsetBytes


class LRUSet:
    """LRU replacement with the same per-set interface as :class:`RRIPSet`.

    Exists for the replacement-policy ablation; RRIP is the paper's choice.
    """

    def __init__(self, num_ways: int) -> None:
        if num_ways <= 0:
            raise ValueError(f"num_ways must be > 0, got {num_ways}")
        self.num_ways = num_ways
        self._stamp = 0
        self._last_use: List[int] = [-1] * num_ways

    def _touch(self, way: int) -> None:
        self._stamp += 1
        self._last_use[way] = self._stamp

    def on_hit(self, way: int) -> None:
        self._touch(way)

    def on_insert(self, way: int) -> None:
        self._touch(way)

    def select_victim(self, occupied: List[bool]) -> int:
        for way, used in enumerate(occupied):
            if not used:
                return way
        return min(range(self.num_ways), key=lambda w: self._last_use[w])

    def reset_way(self, way: int) -> None:
        self._last_use[way] = -1


class CacheEntry:
    """One cached flash page."""

    __slots__ = ("lpn", "dirty", "page_cnt", "data")

    def __init__(self, lpn: LPN, data: Optional[bytearray], dirty: bool) -> None:
        self.lpn = lpn
        self.dirty = dirty
        self.page_cnt = 0  # promotion access counter (Algorithm 1)
        self.data = data


EvictHook = Callable[[CacheEntry], None]


@counters(
    owner="ssd_cache",
    conserve=(
        "lookup: ssd_cache.hits:total <= 1",
        "ssd_cache.hits:hit + ssd_cache.hits:miss == ssd_cache.hits:total",
        "ssd_cache.dirty_evictions <= ssd_cache.evictions",
    ),
)
class SSDCache:
    """Set-associative page cache with RRIP (or LRU) replacement."""

    def __init__(
        self,
        num_pages: int,
        ways: int,
        page_size: int,
        track_data: bool = True,
        policy: str = "rrip",
        stats: Optional[StatRegistry] = None,
    ) -> None:
        if num_pages <= 0:
            raise ValueError(f"num_pages must be > 0, got {num_pages}")
        if ways <= 0 or num_pages < ways:
            raise ValueError(f"invalid ways={ways} for {num_pages} pages")
        if policy not in ("rrip", "lru"):
            raise ValueError(f"unknown replacement policy {policy!r}")
        self.ways = ways
        self.num_sets = max(1, num_pages // ways)
        self.page_size = page_size
        self.track_data = track_data
        self.policy_name = policy
        self._entries: List[List[Optional[CacheEntry]]] = [
            [None] * ways for _ in range(self.num_sets)
        ]
        if policy == "rrip":
            self._policies = [RRIPSet(ways) for _ in range(self.num_sets)]
        else:
            self._policies = [LRUSet(ways) for _ in range(self.num_sets)]
        self._where: Dict[LPN, int] = {}  # lpn -> set*ways + way
        self._evict_hooks: List[EvictHook] = []
        self.stats = stats if stats is not None else StatRegistry()
        self._hit_ratio = self.stats.ratio("ssd_cache.hits")
        self._evictions = self.stats.counter("ssd_cache.evictions")
        self._dirty_evictions = self.stats.counter("ssd_cache.dirty_evictions")

    @property
    def capacity_pages(self) -> int:
        return self.num_sets * self.ways

    @property
    def occupancy(self) -> int:
        return len(self._where)

    def add_evict_hook(self, hook: EvictHook) -> None:
        """Called with the entry about to be evicted (ADJUST_CNT, Alg. 1)."""
        self._evict_hooks.append(hook)

    def _set_of(self, lpn: LPN) -> int:
        return lpn % self.num_sets

    @kernel
    def contains(self, lpn: LPN) -> bool:
        return lpn in self._where

    @kernel(may_raise=("DomainTagError", "ValueError"))
    def lookup(self, lpn: LPN, record: bool = True) -> Optional[CacheEntry]:
        """Find a cached page; a hit refreshes the replacement state."""
        domain_tags.check(lpn, "LPN", "SSDCache.lookup")
        slot = self._where.get(lpn)
        if slot is None:
            if record:
                self._hit_ratio.record(False)
            return None
        set_index, way = divmod(slot, self.ways)
        if record:
            self._hit_ratio.record(True)
            self._policies[set_index].on_hit(way)
        return self._entries[set_index][way]

    @kernel(may_raise=("DomainTagError", "ValueError"))
    def peek(self, lpn: LPN) -> Optional[CacheEntry]:
        """Find a cached page without touching replacement or hit stats."""
        return self.lookup(lpn, record=False)

    @batchable
    @reduction(var="hits", op="+")
    def batch_lookup(
        self, lpns: Iterable[LPN]
    ) -> Tuple[int, List[Optional[CacheEntry]]]:
        """Probe a batch of logical pages; returns (hits, entries).

        The cache-lookup loop the vectorized engine batches: a positional
        gather over the certified :meth:`lookup` kernel plus a declared
        commutative hit count — probes may run in any order.
        """
        entries = []
        hits = 0
        for lpn in lpns:
            entry = self.lookup(lpn)
            entries.append(entry)
            if entry is not None:
                hits += 1
        return hits, entries

    @effects("MUTATES_STATE", "MUTATES_STATS")
    def insert(
        self, lpn: LPN, data: Optional[bytes] = None, dirty: bool = False
    ) -> Optional[CacheEntry]:
        """Install a page; returns the entry evicted to make room, if any.

        The evicted entry is handed to eviction hooks first (so the
        promotion manager can retire its counters) and, when dirty, must be
        written back by the caller (the device charges the flash program).
        """
        if self.contains(lpn):
            raise ValueError(f"lpn {lpn} is already cached; use lookup/write")
        set_index = self._set_of(lpn)
        policy = self._policies[set_index]
        row = self._entries[set_index]
        occupied = [entry is not None for entry in row]
        way = policy.select_victim(occupied)
        victim = row[way]
        if victim is not None:
            for hook in self._evict_hooks:
                hook(victim)
            self._evictions.add()
            if victim.dirty:
                self._dirty_evictions.add()
            del self._where[victim.lpn]
        payload: Optional[bytearray] = None
        if self.track_data:
            if data is not None and len(data) != self.page_size:
                raise ValueError(
                    f"page data must be {self.page_size} bytes, got {len(data)}"
                )
            payload = bytearray(data) if data is not None else bytearray(self.page_size)
        entry = CacheEntry(lpn, payload, dirty)
        row[way] = entry
        self._where[lpn] = set_index * self.ways + way
        policy.on_insert(way)
        return victim

    def invalidate(self, lpn: LPN) -> Optional[CacheEntry]:
        """Drop a page (e.g. it was promoted to host DRAM); returns it."""
        slot = self._where.pop(lpn, None)
        if slot is None:
            return None
        set_index, way = divmod(slot, self.ways)
        entry = self._entries[set_index][way]
        self._entries[set_index][way] = None
        self._policies[set_index].reset_way(way)
        return entry

    def write_bytes(self, lpn: LPN, offset: OffsetBytes, data: bytes) -> None:
        """Update part of a cached page in place and mark it dirty."""
        entry = self.peek(lpn)
        if entry is None:
            raise KeyError(f"lpn {lpn} is not cached")
        entry.dirty = True
        if entry.data is not None:
            if offset < 0 or offset + len(data) > self.page_size:
                raise ValueError(
                    f"write [{offset}, {offset + len(data)}) outside page "
                    f"of {self.page_size} bytes"
                )
            entry.data[offset : offset + len(data)] = data

    def read_bytes(self, lpn: LPN, offset: OffsetBytes, size: int) -> Optional[bytes]:
        """Read part of a cached page (None when payloads are not tracked)."""
        entry = self.peek(lpn)
        if entry is None:
            raise KeyError(f"lpn {lpn} is not cached")
        if entry.data is None:
            return None
        if offset < 0 or offset + size > self.page_size:
            raise ValueError(
                f"read [{offset}, {offset + size}) outside page "
                f"of {self.page_size} bytes"
            )
        return bytes(entry.data[offset : offset + size])

    def clear(self) -> None:
        """Drop every entry without firing eviction hooks (power loss)."""
        for set_index, row in enumerate(self._entries):
            policy = self._policies[set_index]
            for way in range(self.ways):
                if row[way] is not None:
                    row[way] = None
                    policy.reset_way(way)
        self._where.clear()

    def dirty_entries(self) -> List[CacheEntry]:
        """All dirty entries, for the GC's periodic write-back (§4)."""
        dirty = []
        for row in self._entries:
            for entry in row:
                if entry is not None and entry.dirty:
                    dirty.append(entry)
        return dirty

    @property
    def hit_ratio(self) -> float:
        return self._hit_ratio.ratio
