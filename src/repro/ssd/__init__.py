"""Byte-addressable SSD substrate: flash, FTL, SSD-Cache, GC, device."""

from repro.ssd.device import ByteAddressableSSD
from repro.ssd.flash import FlashArray, FlashPageState
from repro.ssd.ftl import PageFTL
from repro.ssd.gc import GarbageCollector
from repro.ssd.rrip import RRIPSet
from repro.ssd.ssd_cache import SSDCache

__all__ = [
    "FlashArray",
    "FlashPageState",
    "PageFTL",
    "RRIPSet",
    "SSDCache",
    "GarbageCollector",
    "ByteAddressableSSD",
]
