"""NAND flash array model.

NAND flash is organized as blocks of pages.  Pages are read and programmed
individually, but can only be programmed after their whole block has been
erased — the asymmetry that forces out-of-place writes, an FTL, and garbage
collection.  The model enforces those rules and tracks wear (program/erase
counts), which the lifetime analysis (Table 1) consumes.

Addresses here are *physical page numbers* (ppn), laid out block-major:
``ppn = block_index * pages_per_block + page_offset``.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.config import LatencyConfig
from repro.sim import domain_tags
from repro.sim.sanitizers import FlashSanitizer
from repro.sim.stats import StatRegistry
from repro.units import PPN, BlockIndex

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.faults.plan import FaultInjector


class FlashPageState(enum.Enum):
    ERASED = "erased"
    PROGRAMMED = "programmed"
    INVALID = "invalid"


#: Page-state encoding shared with the FlashSanitizer shadow (resync after
#: a power-loss image restore).
_SHADOW_CODE = {
    FlashPageState.ERASED: 0,
    FlashPageState.PROGRAMMED: 1,
    FlashPageState.INVALID: 2,
}


class FlashBlock:
    """One erase block: page states, an erase counter and a bad-block flag.

    Per-state page counts are cached and maintained incrementally — GC
    victim selection scans every block's counts per run, so recomputing
    them from ``states`` would be quadratic in device size.  All state
    transitions must go through :meth:`set_state` (or the whole-block
    resets below) to keep the counts in sync.
    """

    __slots__ = (
        "index",
        "pages_per_block",
        "states",
        "erase_count",
        "bad",
        "_erased",
        "_invalid",
        "_valid",
    )

    def __init__(self, index: int, pages_per_block: int) -> None:
        self.index = index
        self.pages_per_block = pages_per_block
        self.states: List[FlashPageState] = [FlashPageState.ERASED] * pages_per_block
        self.erase_count = 0
        # Retired: an erase failed here, or the wear limit was reached.  Bad
        # blocks never rejoin the free rotation and are skipped by GC.
        self.bad = False
        self._erased = pages_per_block
        self._invalid = 0
        self._valid = 0

    def set_state(self, offset: int, state: FlashPageState) -> None:
        """Transition one page's state, keeping the cached counts exact."""
        old = self.states[offset]
        if old is state:
            return
        self.states[offset] = state
        if old is FlashPageState.ERASED:
            self._erased -= 1
        elif old is FlashPageState.PROGRAMMED:
            self._valid -= 1
        else:
            self._invalid -= 1
        if state is FlashPageState.ERASED:
            self._erased += 1
        elif state is FlashPageState.PROGRAMMED:
            self._valid += 1
        else:
            self._invalid += 1

    def reset_erased(self) -> None:
        """Whole-block erase: every page is ERASED again."""
        self._erased = self.pages_per_block
        self._invalid = 0
        self._valid = 0

    def recount(self) -> None:
        """Rebuild the cached counts from ``states`` (image restore)."""
        self._erased = sum(1 for s in self.states if s is FlashPageState.ERASED)
        self._invalid = sum(1 for s in self.states if s is FlashPageState.INVALID)
        self._valid = len(self.states) - self._erased - self._invalid

    @property
    def erased_pages(self) -> int:
        return self._erased

    @property
    def invalid_pages(self) -> int:
        return self._invalid

    @property
    def valid_pages(self) -> int:
        return self._valid


class FlashArray:
    """A NAND array with program/read/erase semantics and wear tracking."""

    def __init__(
        self,
        num_blocks: int,
        pages_per_block: int,
        page_size: int,
        latency: LatencyConfig,
        track_data: bool = True,
        num_channels: int = 8,
        stats: Optional[StatRegistry] = None,
        sanitizer: Optional[FlashSanitizer] = None,
        faults: Optional["FaultInjector"] = None,
    ) -> None:
        if num_blocks <= 0 or pages_per_block <= 0 or page_size <= 0:
            raise ValueError(
                f"invalid flash geometry: blocks={num_blocks} "
                f"pages/block={pages_per_block} page_size={page_size}"
            )
        if num_channels <= 0:
            raise ValueError(f"num_channels must be > 0, got {num_channels}")
        self.num_channels = num_channels
        self.num_blocks = num_blocks
        self.pages_per_block = pages_per_block
        self.page_size = page_size
        self.latency = latency
        self.track_data = track_data
        self.blocks = [FlashBlock(i, pages_per_block) for i in range(num_blocks)]
        self.sanitizer = sanitizer
        if sanitizer is not None:
            sanitizer.attach(num_blocks, pages_per_block)
        self._data: Dict[PPN, bytes] = {}
        self.faults = faults
        self.wear_limit = (
            faults.config.nand_wear_limit if faults is not None else 0
        )
        self.stats = stats if stats is not None else StatRegistry()
        self._reads = self.stats.counter("flash.page_reads")
        self._programs = self.stats.counter("flash.page_programs")
        self._erases = self.stats.counter("flash.block_erases")
        self._read_faults = self.stats.counter("flash.read_faults")
        self._program_fails = self.stats.counter("flash.program_fails")
        self._erase_fails = self.stats.counter("flash.erase_fails")
        self._wear_retired = self.stats.counter("flash.wear_retired_blocks")

    @property
    def total_pages(self) -> int:
        return self.num_blocks * self.pages_per_block

    def _check_ppn(self, ppn: PPN) -> None:
        domain_tags.check(ppn, "PPN", "FlashArray")
        if not 0 <= ppn < self.total_pages:
            raise ValueError(f"ppn {ppn} out of range [0, {self.total_pages})")

    def block_of(self, ppn: PPN) -> FlashBlock:
        self._check_ppn(ppn)
        return self.blocks[ppn // self.pages_per_block]

    def channel_of(self, ppn: PPN) -> int:
        """The channel a page's operations occupy (blocks stripe across
        channels, the common SSD layout)."""
        self._check_ppn(ppn)
        return (ppn // self.pages_per_block) % self.num_channels

    def state_of(self, ppn: PPN) -> FlashPageState:
        block = self.block_of(ppn)
        return block.states[ppn % self.pages_per_block]

    def read(self, ppn: PPN) -> "FlashOp":
        """Read one page.  Reading erased/invalid pages is allowed (the FTL
        never does it, but raw tools may) and returns zeros.

        Under fault injection a read may come back ``failed`` — an
        uncorrectable-first-try ECC error.  The data is still carried (the
        FTL's retry path decides whether to charge another read or escalate
        to soft-decode recovery); callers that ignore ``failed`` see the
        correct bytes, modelling ECC that eventually always corrects.
        """
        self._check_ppn(ppn)
        self._reads.add()
        data = None
        if self.track_data:
            data = self._data.get(ppn, b"\x00" * self.page_size)
        failed = self.faults is not None and self.faults.fires("nand.read")
        if failed:
            self._read_faults.add()
        return FlashOp(self.latency.flash_read_page_ns, data, failed=failed)

    def program(self, ppn: PPN, data: Optional[bytes] = None) -> "FlashOp":
        """Program one erased page.  Programming a non-erased page is a bug
        in the FTL and raises."""
        block = self.block_of(ppn)
        offset = ppn % self.pages_per_block
        if self.sanitizer is not None:
            self.sanitizer.on_program(ppn)
        state = block.states[offset]
        if state is not FlashPageState.ERASED:
            raise RuntimeError(f"program to non-erased page ppn={ppn} ({state.value})")
        if data is not None and len(data) != self.page_size:
            raise ValueError(
                f"program data must be exactly {self.page_size} bytes, got {len(data)}"
            )
        if self.faults is not None and self.faults.fires("nand.program"):
            # Program failure burns the page: it goes straight to INVALID
            # (unusable until its block is erased) and holds no data.  The
            # FTL retries on the next frontier page.
            block.set_state(offset, FlashPageState.INVALID)
            self._program_fails.add()
            if self.sanitizer is not None:
                self.sanitizer.on_program_fail(ppn)
            return FlashOp(self.latency.flash_program_page_ns, None, failed=True)
        block.set_state(offset, FlashPageState.PROGRAMMED)
        self._programs.add()
        if self.track_data:
            self._data[ppn] = bytes(data) if data is not None else b"\x00" * self.page_size
        return FlashOp(self.latency.flash_program_page_ns, None)

    def invalidate(self, ppn: PPN) -> None:
        """Mark a programmed page invalid (out-of-place overwrite)."""
        block = self.block_of(ppn)
        offset = ppn % self.pages_per_block
        if self.sanitizer is not None:
            self.sanitizer.on_invalidate(ppn)
        if block.states[offset] is not FlashPageState.PROGRAMMED:
            raise RuntimeError(f"invalidate of non-programmed page ppn={ppn}")
        block.set_state(offset, FlashPageState.INVALID)
        if self.track_data:
            self._data.pop(ppn, None)

    def erase(self, block_index: BlockIndex) -> "FlashOp":
        """Erase a whole block.  Erasing a block with valid pages raises —
        the GC must relocate them first."""
        domain_tags.check(block_index, "BLOCK", "FlashArray.erase")
        if not 0 <= block_index < self.num_blocks:
            raise ValueError(f"block {block_index} out of range [0, {self.num_blocks})")
        block = self.blocks[block_index]
        if block.bad:
            raise RuntimeError(f"erase of retired bad block {block_index}")
        if self.sanitizer is not None:
            self.sanitizer.on_erase(block_index)
        if block.valid_pages:
            raise RuntimeError(
                f"erase of block {block_index} with {block.valid_pages} valid pages"
            )
        if self.faults is not None and self.faults.fires("nand.erase"):
            # Erase failure retires the whole block; its pages keep their
            # (invalid/erased) states and never rejoin the rotation.
            block.bad = True
            self._erase_fails.add()
            if self.sanitizer is not None:
                self.sanitizer.on_erase_fail(block_index)
            return FlashOp(self.latency.flash_erase_block_ns, None, failed=True)
        first = block_index * self.pages_per_block
        for offset in range(self.pages_per_block):
            block.states[offset] = FlashPageState.ERASED
            if self.track_data:
                self._data.pop(first + offset, None)
        block.reset_erased()
        block.erase_count += 1
        self._erases.add()
        if self.wear_limit > 0 and block.erase_count >= self.wear_limit:
            # Wear-triggered retirement: the erase itself succeeded (the
            # block is clean), but its cells are end-of-life.
            block.bad = True
            self._wear_retired.add()
        return FlashOp(self.latency.flash_erase_block_ns, None)

    @property
    def total_programs(self) -> int:
        return self._programs.value

    @property
    def total_erases(self) -> int:
        return self._erases.value

    @property
    def max_erase_count(self) -> int:
        return max(block.erase_count for block in self.blocks)

    # ------------------------------------------------------------------ #
    # Image snapshot/restore (repro.faults.power)
    # ------------------------------------------------------------------ #

    def snapshot_state(self) -> dict:
        """Deep snapshot of the NAND image: page states, wear, bad-block
        flags and page payloads.  Flash is non-volatile, so this is exactly
        what survives a power cut."""
        return {
            "num_blocks": self.num_blocks,
            "pages_per_block": self.pages_per_block,
            "states": [list(block.states) for block in self.blocks],
            "erase_counts": [block.erase_count for block in self.blocks],
            "bad": [block.bad for block in self.blocks],
            "data": dict(self._data),
        }

    def restore_state(self, image: dict) -> None:
        """Load a :meth:`snapshot_state` image into this (same-geometry)
        array and resync the flash sanitizer's shadow to match."""
        if (
            image["num_blocks"] != self.num_blocks
            or image["pages_per_block"] != self.pages_per_block
        ):
            raise ValueError(
                f"flash image geometry {image['num_blocks']}x"
                f"{image['pages_per_block']} does not match array "
                f"{self.num_blocks}x{self.pages_per_block}"
            )
        for block, states, erases, bad in zip(
            self.blocks, image["states"], image["erase_counts"], image["bad"]
        ):
            block.states = list(states)
            block.recount()
            block.erase_count = int(erases)
            block.bad = bool(bad)
        self._data = dict(image["data"])
        if self.sanitizer is not None:
            codes: List[int] = []
            for block in self.blocks:
                codes.extend(_SHADOW_CODE[s] for s in block.states)
            self.sanitizer.resync(codes)


class FlashOp:
    """Result of a flash operation: its cost, (for reads) the data, and
    whether an injected fault made the operation fail."""

    __slots__ = ("latency_ns", "data", "failed")

    def __init__(
        self, latency_ns: int, data: Optional[bytes], failed: bool = False
    ) -> None:
        self.latency_ns = latency_ns
        self.data = data
        self.failed = failed

    def __repr__(self) -> str:
        return (
            f"FlashOp(latency={self.latency_ns}ns, "
            f"data={'yes' if self.data else 'no'}"
            f"{', FAILED' if self.failed else ''})"
        )
