"""The byte-addressable SSD: dual byte/block interface over flash.

This is the device FlatFlash's host stack talks to.  It combines:

* a :class:`~repro.ssd.flash.FlashArray` (NAND timing/wear),
* a :class:`~repro.ssd.ftl.PageFTL` (out-of-place mapping),
* an :class:`~repro.ssd.ssd_cache.SSDCache` (controller DRAM bridging the
  byte interface to page-granular flash, §3.1),
* a :class:`~repro.ssd.gc.GarbageCollector` (read-modify-write GC that
  periodically destages dirty cache pages, §4),
* a :class:`~repro.interconnect.pcie.PCIeLink` (MMIO/DMA costs, BAR).

Two FTL placements are supported:

* ``host_merged_ftl=True`` (FlatFlash / UnifiedMMap): host PTEs hold flash
  physical page numbers; GC relocation is absorbed by a *remap table* that
  the host drains lazily in batches (§4).
* ``host_merged_ftl=False`` (TraditionalStack): the host addresses logical
  pages and every access pays a device-side FTL lookup.

The device never advances a clock itself — every operation returns its cost
in nanoseconds, and callers (the memory systems) charge it appropriately.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Tuple

from repro.config import FlatFlashConfig
from repro.faults.plan import FaultInjector
from repro.interconnect.pcie import BarWindow, PCIeLink
from repro.sim import domain_tags
from repro.sim.sanitizers import FlashSanitizer, PersistenceSanitizer
from repro.sim.stats import StatRegistry
from repro.ssd.flash import FlashArray
from repro.ssd.ftl import PageFTL
from repro.ssd.gc import GarbageCollector
from repro.ssd.ssd_cache import CacheEntry, SSDCache
from repro.units import LPN, PPN, HostPage, OffsetBytes, TimeNs

#: Host physical base address of the SSD BAR window (1 TiB mark, far above DRAM).
DEFAULT_BAR_BASE = 1 << 40


class PromotionSink(Protocol):
    """What the device needs from a promotion manager (Algorithm 1 hooks)."""

    def update(self, entry: CacheEntry) -> None:
        """Called on every memory access served by the SSD."""

    def adjust_cnt(self, entry: CacheEntry) -> None:
        """Called when a page is evicted from the SSD-Cache."""


class MMIOResult:
    """Outcome of one MMIO access."""

    __slots__ = ("latency_ns", "data", "cache_hit")

    def __init__(self, latency_ns: int, data: Optional[bytes], cache_hit: bool) -> None:
        self.latency_ns = latency_ns
        self.data = data
        self.cache_hit = cache_hit

    def __repr__(self) -> str:
        return (
            f"MMIOResult(latency={self.latency_ns}ns, hit={self.cache_hit}, "
            f"data={'yes' if self.data is not None else 'no'})"
        )


class ByteAddressableSSD:
    """A PCIe SSD exposing both byte (MMIO) and block (DMA) interfaces."""

    def __init__(
        self,
        config: FlatFlashConfig,
        host_merged_ftl: bool = True,
        bar_base: int = DEFAULT_BAR_BASE,
        cache_policy: str = "rrip",
        stats: Optional[StatRegistry] = None,
        device_id: Optional[int] = None,
    ) -> None:
        config.validate()
        self.config = config
        self.host_merged_ftl = host_merged_ftl
        #: Fleet position (None = standalone device).  Only used to
        #: namespace the fault injector's RNG streams per device.
        self.device_id = device_id
        self.stats = stats if stats is not None else StatRegistry()
        geometry = config.geometry
        latency = config.latency

        # Flash sized so the exported capacity fits under over-provisioning
        # with the FTL's two spare blocks.
        # Runtime invariant sanitizers (opt-in via config.sanitizers).
        self.flash_sanitizer = FlashSanitizer() if config.sanitizers.flash else None
        self.persistence_sanitizer = (
            PersistenceSanitizer() if config.sanitizers.persistence else None
        )

        # Fault injection (repro.faults): constructed only when the config
        # can ever fire a fault, so zero-rate runs take the exact baseline
        # code paths.  Fleet members get a per-device namespace so one
        # device's traffic never perturbs another's fault schedule.
        namespace = "" if device_id is None else f"dev{device_id}"
        self.faults = (
            FaultInjector(config.faults, namespace=namespace)
            if config.faults.active
            else None
        )

        ppb = geometry.flash_pages_per_block
        exported_blocks = -(-geometry.ssd_pages // ppb)
        spare = max(2, int(exported_blocks * geometry.flash_overprovision) + 1)
        num_blocks = exported_blocks + spare
        self.flash = FlashArray(
            num_blocks=num_blocks,
            pages_per_block=ppb,
            page_size=geometry.page_size,
            latency=latency,
            track_data=config.track_data,
            num_channels=geometry.flash_channels,
            stats=self.stats,
            sanitizer=self.flash_sanitizer,
            faults=self.faults,
        )
        self.ftl = PageFTL(self.flash, overprovision=0.0, stats=self.stats)
        # Trim the export to exactly the configured capacity.
        self.ftl.exported_pages = min(self.ftl.exported_pages, geometry.ssd_pages)
        self.cache = SSDCache(
            num_pages=geometry.resolved_ssd_cache_pages(),
            ways=geometry.ssd_cache_ways,
            page_size=geometry.page_size,
            track_data=config.track_data,
            policy=cache_policy,
            stats=self.stats,
        )
        self.gc = GarbageCollector(self.flash, self.ftl, self.cache, stats=self.stats)
        self.pcie = PCIeLink(
            latency,
            geometry.cacheline_size,
            stats=self.stats,
            persistence_sanitizer=self.persistence_sanitizer,
            faults=self.faults,
        )

        # BAR spans the raw flash in host-merged mode (PTEs hold ppns) or
        # the logical export when the FTL stays in the device.
        span_pages = self.flash.total_pages if host_merged_ftl else self.ftl.exported_pages
        self.bar = BarWindow(bar_base, span_pages * geometry.page_size)

        # GC remap table: old ppn -> new ppn, drained lazily by the host.
        # The reverse index (target ppn -> sources pointing at it) keeps
        # chain collapsing O(chain length) instead of O(table size).
        self._remap: Dict[int, int] = {}
        self._remap_sources: Dict[int, List[int]] = {}
        if host_merged_ftl:
            self.ftl.add_relocate_hook(self._on_relocate)

        self.promotion_manager: Optional[PromotionSink] = None
        self.cache.add_evict_hook(self._on_cache_evict)
        self._pending_writeback_ns = 0

        self._mmio_reads = self.stats.counter("ssd.mmio_reads")
        self._mmio_writes = self.stats.counter("ssd.mmio_writes")
        self._fills = self.stats.counter("ssd.cache_fills")
        self._durable_writes = self.stats.counter("ssd.durable_writes")
        # Cacheable-MMIO fast-path misses: a peek/poke that could not be
        # served coherently and fell back to a full MMIO transaction.
        self._peek_misses = self.stats.counter("ssd.peek_misses")
        self._poke_misses = self.stats.counter("ssd.poke_misses")
        # Posted persist-writes not yet fenced by a write-verify read: these
        # are the writes a power failure can lose (undo data kept so crash()
        # can revert them).  Cleared by verify_read().
        self._posted_log: List[Tuple[int, int, Optional[bytes]]] = []

    def register_shared(self, recorder) -> None:
        """Name the device's shared objects for the dynamic access
        recorder (:class:`repro.sim.race.AccessRecorder`): every DES
        process of one memory system funnels into this device, so its
        FTL, SSD-Cache and GC state are the prime race candidates."""
        recorder.register(self, "ssd")
        recorder.register(self.ftl, "ssd.ftl")
        recorder.register(self.cache, "ssd.cache")
        recorder.register(self.gc, "ssd.gc")
        recorder.register(self.flash, "ssd.flash")
        recorder.register(self._mmio_reads, "ssd.mmio_reads")
        recorder.register(self._mmio_writes, "ssd.mmio_writes")
        recorder.register(self._fills, "ssd.cache_fills")
        recorder.register(self._durable_writes, "ssd.durable_writes")

    # ------------------------------------------------------------------ #
    # Address handling
    # ------------------------------------------------------------------ #

    @property
    def exported_pages(self) -> int:
        return self.ftl.exported_pages

    def _on_relocate(self, lpn: int, old_ppn: int, new_ppn: int) -> None:
        # Collapse chains so lookups stay O(1): anything that pointed at
        # old_ppn now points at new_ppn directly.
        remap = self._remap
        index = self._remap_sources
        sources = index.pop(old_ppn, None)
        if sources:
            for source in sources:
                remap[source] = new_ppn
            index.setdefault(new_ppn, []).extend(sources)
        prev = remap.get(old_ppn)
        if prev is not None:
            if prev == new_ppn:
                return
            bucket = index.get(prev)
            if bucket is not None:
                bucket.remove(old_ppn)
        remap[old_ppn] = new_ppn
        index.setdefault(new_ppn, []).append(old_ppn)

    def _rebuild_remap_index(self) -> None:
        index: Dict[int, List[int]] = {}
        for source, target in self._remap.items():
            index.setdefault(target, []).append(source)
        self._remap_sources = index

    def _on_cache_evict(self, entry: CacheEntry) -> None:
        if self.promotion_manager is not None:
            self.promotion_manager.adjust_cnt(entry)
        if entry.dirty:
            # Dirty victim: destage through the FTL.  Charged to background
            # time (the paper's GC handles write-back off the access path).
            self._pending_writeback_ns += self.gc.flush_entry(entry)

    def resolve_lpn(self, host_page: HostPage) -> LPN:
        """Translate a host-visible device page number to its lpn.

        This is one of the two sanctioned address puns (with
        :meth:`host_page_of`): in host-merged mode the BAR page number *is*
        a flash ppn, in device-FTL mode it *is* the lpn.  The explicit
        domain casts are the permission slip for that reinterpretation.
        """
        domain_tags.check(host_page, "HOST_PAGE", "ByteAddressableSSD.resolve_lpn")
        if self.host_merged_ftl:
            # The pun proper: reinterpret the BAR page number as a flash
            # ppn first, then chase any pending GC relocations (the remap
            # table lives entirely in ppn space).
            ppn = PPN(host_page)
            ppn = self._remap.get(ppn, ppn)
            lpn = self.ftl.lpn_of(ppn)
            if lpn is None:
                raise KeyError(f"host page {host_page} maps to no live flash page")
            return lpn
        if not 0 <= host_page < self.ftl.exported_pages:
            raise ValueError(f"logical page {host_page} out of range")
        return LPN(host_page)

    def host_page_of(self, lpn: LPN) -> HostPage:
        """Current host-visible page number for an lpn (inverse pun)."""
        domain_tags.check(lpn, "LPN", "ByteAddressableSSD.host_page_of")
        if self.host_merged_ftl:
            return HostPage(self.ftl.lookup(lpn))
        return HostPage(lpn)

    def map_page(self, lpn: LPN) -> Tuple[HostPage, TimeNs]:
        """Back ``lpn`` with flash; returns (host-visible page number, cost)."""
        ppn, cost = self.ftl.map_page(lpn)
        return (HostPage(ppn) if self.host_merged_ftl else HostPage(lpn)), cost

    def drain_remaps(self) -> Tuple[Dict[HostPage, HostPage], TimeNs]:
        """Hand the host the pending GC remaps (lazy batch update, §4).

        Returns (old page -> new page in host-visible numbering, cost of
        the single batched interrupt).
        """
        if not self._remap:
            return {}, 0
        updates = {HostPage(old): HostPage(new) for old, new in self._remap.items()}
        self._remap.clear()
        self._remap_sources.clear()
        return updates, self.config.latency.pte_tlb_update_ns

    def take_background_ns(self) -> int:
        """Collect write-back time accrued since the last call."""
        spent = self._pending_writeback_ns
        self._pending_writeback_ns = 0
        return spent

    # ------------------------------------------------------------------ #
    # Byte interface (PCIe MMIO)
    # ------------------------------------------------------------------ #

    def _ensure_cached(self, lpn: LPN) -> Tuple[CacheEntry, TimeNs, bool]:
        """Find or fill the cache entry for ``lpn``: (entry, cost, was_hit)."""
        entry = self.cache.lookup(lpn)
        if entry is not None:
            return entry, 0, True
        _ppn, data, cost = self.ftl.read(lpn)
        self.cache.insert(lpn, data, dirty=False)
        entry = self.cache.peek(lpn)
        assert entry is not None
        self._fills.add()
        return entry, cost, False

    def _check_span(self, offset: OffsetBytes, size: int) -> None:
        if offset < 0 or size <= 0 or offset + size > self.config.geometry.page_size:
            raise ValueError(
                f"MMIO span [{offset}, {offset + size}) outside one "
                f"{self.config.geometry.page_size}-byte page"
            )

    def mmio_read(
        self, host_page: HostPage, offset: OffsetBytes, size: int, persist: bool = False
    ) -> MMIOResult:
        """Serve a memory read of ``size`` bytes via PCIe MMIO (§3.2)."""
        self._check_span(offset, size)
        lpn = self.resolve_lpn(host_page)
        self._mmio_reads.add()
        entry, fill_cost, hit = self._ensure_cached(lpn)
        cost = fill_cost + self.pcie.mmio_read_cost(size)
        data = None
        if entry.data is not None:
            data = bytes(entry.data[offset : offset + size])
        if not persist and self.promotion_manager is not None:
            self.promotion_manager.update(entry)
        return MMIOResult(cost, data, hit)

    def mmio_write(
        self,
        host_page: HostPage,
        offset: OffsetBytes,
        size: int,
        data: Optional[bytes] = None,
        persist: bool = False,
    ) -> MMIOResult:
        """Serve a memory write via posted PCIe MMIO (§3.2).

        With ``persist`` set (the PTE's P bit travelled in the TLP attribute
        field, §3.5) the page is excluded from promotion accounting, and the
        write is durable once in the battery-backed SSD-Cache.
        """
        self._check_span(offset, size)
        if data is not None and len(data) != size:
            raise ValueError(f"data length {len(data)} != size {size}")
        lpn = self.resolve_lpn(host_page)
        self._mmio_writes.add()
        entry, fill_cost, hit = self._ensure_cached(lpn)
        # Charge the link before touching device state: an injected PCIe
        # fault (PCIeFaultError) means the posted write never landed, so
        # nothing below may have happened yet.
        cost = fill_cost + self.pcie.mmio_write_cost(size)
        if persist:
            old = None
            if entry.data is not None:
                old = bytes(entry.data[offset : offset + size])
            self._posted_log.append((lpn, offset, old))
            if self.persistence_sanitizer is not None:
                self.persistence_sanitizer.on_persist_posted(lpn, offset)
        entry.dirty = True
        if entry.data is not None and data is not None:
            entry.data[offset : offset + size] = data
        if persist:
            self._durable_writes.add()
        elif self.promotion_manager is not None:
            self.promotion_manager.update(entry)
        return MMIOResult(cost, None, hit)

    def peek_bytes(
        self, host_page: HostPage, offset: OffsetBytes, size: int
    ) -> Optional[bytes]:
        """Zero-cost data peek for coherently cached lines (cacheable MMIO).

        Returns None when the page is not resident in the SSD-Cache or when
        payloads are not tracked.
        """
        lpn = self.resolve_lpn(host_page)
        entry = self.cache.peek(lpn)
        if entry is None or entry.data is None:
            self._peek_misses.add()
            return None
        return bytes(entry.data[offset : offset + size])

    def poke_bytes(self, host_page: HostPage, offset: OffsetBytes, data: bytes) -> bool:
        """Zero-cost data write for coherently cached lines (cacheable MMIO).

        Returns False when the page is not resident in the SSD-Cache — the
        caller must fall back to a full MMIO write.
        """
        lpn = self.resolve_lpn(host_page)
        entry = self.cache.peek(lpn)
        if entry is None:
            self._poke_misses.add()
            return False
        entry.dirty = True
        if entry.data is not None:
            entry.data[offset : offset + len(data)] = data
        return True

    def mmio_atomic(self, host_page: HostPage, offset: OffsetBytes, size: int) -> MMIOResult:
        """A PCIe atomic (read-modify-write round trip) against the page."""
        lpn = self.resolve_lpn(host_page)
        entry, fill_cost, hit = self._ensure_cached(lpn)
        # Link cost first: a faulted atomic aborts before mutating the entry.
        cost = fill_cost + self.pcie.mmio_atomic_cost(size)
        entry.dirty = True
        self._durable_writes.add()
        return MMIOResult(cost, None, hit)

    def verify_read(self) -> TimeNs:
        """Write-verify read that flushes posted writes to the device (§3.5).

        Everything posted before this fence is now inside the battery-backed
        domain and will survive a crash.
        """
        self._posted_log.clear()
        cost = self.pcie.verify_read_cost()
        if self.persistence_sanitizer is not None:
            self.persistence_sanitizer.on_fence()
        return cost

    # ------------------------------------------------------------------ #
    # Block / page interface (DMA)
    # ------------------------------------------------------------------ #

    def read_page_for_promotion(
        self, host_page: HostPage
    ) -> Tuple[Optional[bytes], bool, TimeNs]:
        """Read a whole page for promotion to host DRAM.

        Returns (data, newest_copy_was_dirty, cost).  The SSD-Cache copy is
        the freshest version and is invalidated — after promotion the page
        lives in host DRAM.  When that copy was dirty the caller must mark
        the DRAM frame dirty, otherwise eviction could lose the updates.
        """
        lpn = self.resolve_lpn(host_page)
        entry = self.cache.invalidate(lpn)
        if entry is not None:
            if self.promotion_manager is not None:
                # The page leaves the SSD-Cache: retire its counter (Alg. 1).
                self.promotion_manager.adjust_cnt(entry)
            data = bytes(entry.data) if entry.data is not None else None
            cost = self.pcie.dma_to_host_cost(self.config.geometry.page_size)
            return data, entry.dirty, cost
        _ppn, data, flash_cost = self.ftl.read(lpn)
        cost = flash_cost + self.pcie.dma_to_host_cost(self.config.geometry.page_size)
        return data, False, cost

    def write_page(self, lpn: LPN, data: Optional[bytes]) -> Tuple[HostPage, TimeNs]:
        """Page write-back (DRAM eviction / block write).

        Returns (new host-visible page number, cost).  Any cached copy is
        dropped — it is stale relative to the incoming data.
        """
        self.cache.invalidate(lpn)
        dma = self.pcie.dma_from_host_cost(self.config.geometry.page_size)
        _new_ppn, cost = self.ftl.write(lpn, data)
        return self.host_page_of(lpn), dma + cost

    def read_page_block(self, lpn: LPN) -> Tuple[Optional[bytes], TimeNs]:
        """Block-interface page read (paging baselines).

        Device-FTL mode charges the FTL lookup; the freshest copy may be in
        the SSD-Cache (write-back cache semantics).
        """
        cost = 0
        if not self.host_merged_ftl:
            cost += self.config.latency.ftl_lookup_ns
        entry = self.cache.peek(lpn)
        if entry is not None:
            data = bytes(entry.data) if entry.data is not None else None
            cost += self.config.latency.ssd_cache_page_copy_ns
            cost += self.pcie.dma_to_host_cost(self.config.geometry.page_size)
            return data, cost
        _ppn, data, flash_cost = self.ftl.read(lpn)
        cost += flash_cost + self.pcie.dma_to_host_cost(self.config.geometry.page_size)
        return data, cost

    def write_page_block(self, lpn: LPN, data: Optional[bytes]) -> TimeNs:
        """Block-interface page write (paging baselines)."""
        cost = 0
        if not self.host_merged_ftl:
            cost += self.config.latency.ftl_lookup_ns
        self.cache.invalidate(lpn)
        dma = self.pcie.dma_from_host_cost(self.config.geometry.page_size)
        _new_ppn, write_cost = self.ftl.write(lpn, data)
        return cost + dma + write_cost

    def trim(self, lpn: LPN) -> None:
        """Discard a logical page: drop any cached copy and TRIM the FTL."""
        self.cache.invalidate(lpn)
        self.ftl.trim(lpn)

    # ------------------------------------------------------------------ #
    # Crash / recovery (persistence experiments)
    # ------------------------------------------------------------------ #

    def fail_stop(self) -> None:
        """Administratively kill the device's PCIe link (device loss).

        Used by fleet campaigns to fail a device at an exact simulated
        instant; every later transaction raises ``DeviceLostError``."""
        self.pcie.kill_link()

    @property
    def is_failed(self) -> bool:
        """True once the device has fail-stopped (link down)."""
        return self.pcie.is_down

    def crash(self) -> None:
        """Power failure.  Battery-backed controllers destage dirty cache
        pages to flash; without the battery the cache contents are lost."""
        # Posted writes still in the host bridge's write buffer never made
        # it into the battery domain: revert them (newest first).
        for lpn, offset, old in reversed(self._posted_log):
            if old is None:
                continue
            entry = self.cache.peek(lpn)
            if entry is not None and entry.data is not None:
                entry.data[offset : offset + len(old)] = old
            elif self.config.track_data and self.ftl.is_mapped(lpn):
                # The page was destaged carrying the unfenced write: patch
                # the flash copy back (no timing — this is the crash path).
                _ppn, data, _cost = self.ftl.read(lpn)
                page = bytearray(data if data is not None else b"")
                if page:
                    page[offset : offset + len(old)] = old
                    self.ftl.write(lpn, bytes(page))  # simcost: disable=SC001 (crash path is untimed)
        self._posted_log.clear()
        if self.persistence_sanitizer is not None:
            self.persistence_sanitizer.on_crash()
        if self.config.battery_backed:
            self.gc.flush_dirty()
        self.cache.clear()

    def recover_read(self, lpn: LPN) -> Optional[bytes]:
        """Post-recovery read straight from flash (no cache, no timing)."""
        _ppn, data, _cost = self.ftl.read(lpn)
        return data

    def flash_image(self) -> dict:
        """Snapshot everything on the device that survives power loss:
        the NAND array plus the FTL mapping/allocator state.  Taken after
        :meth:`crash` it is the image a restarted system boots from."""
        return {
            "exported_pages": self.ftl.exported_pages,
            "flash": self.flash.snapshot_state(),
            "ftl": self.ftl.snapshot_state(),
            "remap": dict(self._remap),
        }

    def load_flash_image(self, image: dict) -> None:
        """Restore a :meth:`flash_image` snapshot into this device.

        The device must have identical geometry (it is a fresh construction
        from the same config).  The SSD-Cache is left empty — volatile
        controller DRAM does not survive — and the flash sanitizer's shadow
        is resynced to the restored page states.
        """
        if image["exported_pages"] != self.ftl.exported_pages:
            raise ValueError(
                f"flash image exports {image['exported_pages']} pages, "
                f"device exports {self.ftl.exported_pages}"
            )
        self.flash.restore_state(image["flash"])
        self.ftl.restore_state(image["ftl"])
        self._remap = dict(image["remap"])
        self._rebuild_remap_index()
        self._posted_log.clear()
