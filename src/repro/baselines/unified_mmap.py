"""UnifiedMMap: the FlashMap-style unified-translation baseline (§5).

Following Huang et al. [ISCA'15], the three indirection layers (page table,
storage index, FTL) are combined into the host page table: PTEs can point
at flash physical pages and the storage software stack is bypassed on
faults.  Unlike FlatFlash, an SSD-resident page still cannot be *accessed*
in place — the PTE stays non-present, and every access to it pays a page
fault that migrates the whole page to DRAM (Fig. 3a).

The unified layer also shrinks translation metadata, so slightly more DRAM
is left for application pages than under TraditionalStack — the paper notes
this is why UnifiedMMap sees somewhat fewer page movements (§5.2).
"""

from __future__ import annotations

from repro.baselines.paging import PagingMemorySystem


class UnifiedMMap(PagingMemorySystem):
    """Unified address translation, page-granular access (FlashMap)."""

    name = "UnifiedMMap"
    fault_software_ns_attr = "unified_fault_software_ns"
    host_merged_ftl = True  # FTL folded into the page table
    metadata_overhead = 0.01
