"""DRAM-only system for the cost-effectiveness analysis (§5.7, Table 3).

Every mapped page gets a DRAM frame up front — the working set is fully
resident, so each access costs one DRAM reference.  It is the performance
upper bound; Table 3 weighs that speed against the price of provisioning
the whole dataset in DRAM (the paper's $30/GB DRAM vs $2/GB flash).
"""

from __future__ import annotations

from typing import Optional

from repro.config import FlatFlashConfig
from repro.core.memory_system import AccessResult, MemorySystem
from repro.host.dram import HostDRAM


class DRAMOnly(MemorySystem):
    """All data resident in DRAM."""

    name = "DRAM-only"

    def __init__(self, config: Optional[FlatFlashConfig] = None) -> None:
        if config is None:
            config = FlatFlashConfig()
        super().__init__(config)
        self.dram = HostDRAM(
            config.geometry.dram_pages,
            config.geometry.page_size,
            track_data=config.track_data,
            stats=self.stats,
        )

    def _map_page(self, vpn: int, lpn: int, persist: bool) -> None:
        frame = self.dram.allocate(vpn)
        if frame is None:
            raise MemoryError(
                f"DRAM-only system out of frames at vpn {vpn}: configure "
                f"dram_pages >= total mapped pages"
            )
        pte = self.page_table.entry(vpn)
        pte.point_to_dram(frame.index)
        pte.persist = persist

    def _unmap_page(self, vpn: int) -> None:
        pte = self.page_table.lookup(vpn)
        if pte is not None and pte.frame_index is not None:
            self.dram.free(self.dram.frames[pte.frame_index])

    def _access_page(
        self, vpn: int, offset: int, size: int, is_write: bool, data: Optional[bytes]
    ) -> AccessResult:
        pte = self.page_table.lookup(vpn)
        if pte is None:
            raise KeyError(f"vpn {vpn} is not mapped")
        frame = self.dram.frames[pte.frame_index]
        self.dram.touch(frame)
        latency = self.config.latency
        if is_write:
            self.dram.write_bytes(frame, offset, data if data is not None else b"\x00" * size)
            return AccessResult(latency.dram_store_ns, "dram")
        payload = self.dram.read_bytes(frame, offset, size)
        return AccessResult(latency.dram_load_ns, "dram", data=payload)
