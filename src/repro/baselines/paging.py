"""Shared machinery for the paging baselines (§2.1, Fig. 1a).

Both TraditionalStack and UnifiedMMap treat the SSD as a block device
behind ``mmap``: PTEs for SSD-resident pages are *non-present*, so touching
one raises a page fault whose handler migrates the whole 4 KB page into a
DRAM frame (evicting, and possibly writing back, an LRU page when DRAM is
full) before the access can retry.  The entire fault — software overhead,
flash read, DMA, eviction write-back, PTE/TLB update — stalls the
application, which is exactly the cost FlatFlash's direct MMIO access and
off-critical-path promotion remove.

Subclasses choose the per-fault software overhead, the FTL placement and
how much DRAM is consumed by translation metadata.
"""

from __future__ import annotations

from typing import Optional

from repro.config import FlatFlashConfig
from repro.core.memory_system import AccessResult, MemorySystem
from repro.host.dram import HostDRAM
from repro.host.page_table import Domain, PageTableEntry
from repro.ssd.device import ByteAddressableSSD


class PagingMemorySystem(MemorySystem):
    """mmap + paging over an SSD block interface."""

    name = "paging"
    #: Software cost of one page fault (storage stack traversal), ns.
    fault_software_ns_attr = "unified_fault_software_ns"
    #: FTL merged into the host page table (UnifiedMMap) or kept in device.
    host_merged_ftl = True
    #: Fraction of host DRAM consumed by translation metadata (page index,
    #: and for TraditionalStack the host-resident FTL, like ioMemory).
    metadata_overhead = 0.0

    def __init__(self, config: Optional[FlatFlashConfig] = None) -> None:
        if config is None:
            config = FlatFlashConfig()
        super().__init__(config)
        self.ssd = ByteAddressableSSD(
            config, host_merged_ftl=self.host_merged_ftl, stats=self.stats
        )
        effective_frames = max(
            1, int(config.geometry.dram_pages * (1.0 - self.metadata_overhead))
        )
        self.dram = HostDRAM(
            effective_frames,
            config.geometry.page_size,
            track_data=config.track_data,
            policy="clock",  # kernel-style scan-resistant reclaim
            stats=self.stats,
        )
        self._pages_in = self.stats.counter("mem.pages_in")
        self._pages_out = self.stats.counter("mem.pages_out")
        self._faults = self.stats.counter("mem.page_faults")
        self._evictions = self.stats.counter("mem.evictions")

    @property
    def fault_software_ns(self) -> int:
        return getattr(self.config.latency, self.fault_software_ns_attr)

    # ------------------------------------------------------------------ #
    # Mapping
    # ------------------------------------------------------------------ #

    def _map_page(self, vpn: int, lpn: int, persist: bool) -> None:
        ssd_page, cost = self.ssd.map_page(lpn)
        self._background_ns.add(cost)
        pte = self.page_table.entry(vpn)
        pte.point_to_ssd(ssd_page, present=False)  # access will fault
        pte.persist = persist

    def _unmap_page(self, vpn: int) -> None:
        pte = self.page_table.lookup(vpn)
        if pte is None:
            return
        if pte.present and pte.domain is Domain.DRAM and pte.frame_index is not None:
            self.dram.free(self.dram.frames[pte.frame_index])
        lpn = self._vpn_to_lpn.get(vpn)
        if lpn is not None and self.ssd.ftl.is_mapped(lpn):
            self.ssd.trim(lpn)

    # ------------------------------------------------------------------ #
    # Access path
    # ------------------------------------------------------------------ #

    def _access_page(
        self, vpn: int, offset: int, size: int, is_write: bool, data: Optional[bytes]
    ) -> AccessResult:
        pte = self.page_table.lookup(vpn)
        if pte is None:
            raise KeyError(f"vpn {vpn} is not mapped")
        fault_cost = 0
        faulted = False
        if not (pte.present and pte.domain is Domain.DRAM):
            fault_cost = self._handle_fault(vpn, pte)
            faulted = True
        frame = self.dram.frames[pte.frame_index]
        self.dram.touch(frame)
        latency = self.config.latency
        if is_write:
            self.dram.write_bytes(frame, offset, data if data is not None else b"\x00" * size)
            return AccessResult(fault_cost + latency.dram_store_ns, "dram", fault=faulted)
        payload = self.dram.read_bytes(frame, offset, size)
        return AccessResult(
            fault_cost + latency.dram_load_ns, "dram", fault=faulted, data=payload
        )

    def _handle_fault(self, vpn: int, pte: PageTableEntry) -> int:
        """Migrate the page from SSD to a DRAM frame; returns the stall in ns."""
        self._faults.add()
        cost = self.fault_software_ns
        frame = self.dram.allocate(vpn)
        if frame is None:
            cost += self._evict_one()
            frame = self.dram.allocate(vpn)
            assert frame is not None
        lpn = self.lpn_of_vpn(vpn)
        page_data, read_cost = self.ssd.read_page_block(lpn)
        cost += read_cost
        if frame.data is not None and page_data is not None:
            frame.data[:] = page_data
        frame.dirty = False
        pte.point_to_dram(frame.index)
        cost += self.config.latency.pte_tlb_update_ns
        self._pages_in.add()
        self._emit("fault", vpn=vpn, frame=frame.index)
        cost += self._readahead(vpn)
        return cost

    def _readahead(self, faulted_vpn: int) -> int:
        """Kernel swap clustering: pull the next pages in with the fault.

        The cluster shares the fault's software path, so each extra page
        costs only its device read; installation stops when DRAM has no
        free frames (readahead never evicts).
        """
        cost = 0
        for step in range(1, self.config.readahead_pages + 1):
            vpn = faulted_vpn + step
            pte = self.page_table.lookup(vpn)
            if pte is None or (pte.present and pte.domain is Domain.DRAM):
                break
            frame = self.dram.allocate(vpn)
            if frame is None:
                break
            page_data, read_cost = self.ssd.read_page_block(self.lpn_of_vpn(vpn))
            cost += read_cost
            if frame.data is not None and page_data is not None:
                frame.data[:] = page_data
            frame.dirty = False
            pte.point_to_dram(frame.index)
            self._pages_in.add()
            self._emit("readahead", vpn=vpn, frame=frame.index)
        if cost:
            cost += self.config.latency.pte_tlb_update_ns  # one batched update
        return cost

    def _evict_one(self) -> int:
        """Swap out a victim page; returns the cost (on the fault path)."""
        frame = self.dram.victim()
        vpn = frame.vpn
        assert vpn is not None
        was_dirty = frame.dirty
        cost = 0
        if was_dirty:
            lpn = self.lpn_of_vpn(vpn)
            data = bytes(frame.data) if frame.data is not None else None
            cost += self.ssd.write_page_block(lpn, data)
            self._pages_out.add()
        pte = self.page_table.entry(vpn)
        ssd_page = self.ssd.host_page_of(self.lpn_of_vpn(vpn))
        pte.point_to_ssd(ssd_page, present=False)
        cost += self.tlb.invalidate(vpn)
        self.dram.free(frame)
        self._evictions.add()
        self._emit("eviction", vpn=vpn, dirty=int(was_dirty))
        return cost

    @property
    def page_faults(self) -> int:
        return self._faults.value
