"""TraditionalStack: the separated memory/storage stack baseline (§5).

DRAM is byte-addressable, the SSD sits behind a block I/O interface, and
``mmap`` + the paging mechanism swap 4 KB pages between them.  Each page
fault traverses the full storage software stack (VFS, block layer) before
reaching the device.  Following the paper's setup, the FTL is hosted in
host DRAM for performance (like Fusion ioMemory), which keeps all three
translation layers — page table, storage index, FTL — separate and eats
into the DRAM available to the application.
"""

from __future__ import annotations

from repro.baselines.paging import PagingMemorySystem


class TraditionalStack(PagingMemorySystem):
    """Separated memory-storage hierarchy (mmap + full storage stack)."""

    name = "TraditionalStack"
    fault_software_ns_attr = "traditional_fault_software_ns"
    host_merged_ftl = False  # device-side logical addressing, FTL lookups
    # Host-resident FTL + page index + storage metadata claim DRAM frames.
    metadata_overhead = 0.05
