"""Baseline memory systems the paper compares against (§5)."""

from repro.baselines.dram_only import DRAMOnly
from repro.baselines.paging import PagingMemorySystem
from repro.baselines.traditional import TraditionalStack
from repro.baselines.unified_mmap import UnifiedMMap

__all__ = ["PagingMemorySystem", "TraditionalStack", "UnifiedMMap", "DRAMOnly"]
