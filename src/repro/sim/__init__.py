"""Simulation primitives: nanosecond clock, statistics, discrete-event engine."""

from repro.sim.clock import SimClock
from repro.sim.des import (
    Acquire,
    AcquireSlot,
    Delay,
    Lock,
    Release,
    ReleaseSlot,
    Semaphore,
    Simulator,
    Timeout,
)
from repro.sim.stats import Counter, LatencyStats, RatioStat, StatRegistry

__all__ = [
    "SimClock",
    "Simulator",
    "Lock",
    "Semaphore",
    "Delay",
    "Acquire",
    "Release",
    "AcquireSlot",
    "ReleaseSlot",
    "Timeout",
    "LatencyStats",
    "Counter",
    "RatioStat",
    "StatRegistry",
]
