"""A minimal discrete-event simulator for multi-threaded sections.

The database-logging experiment (Fig. 14) needs genuine thread contention:
with a centralized log buffer every transaction serializes on one lock, while
FlatFlash's per-transaction logging lets log writes proceed concurrently.
This module provides just enough machinery for that — generator-based
processes that yield simulation commands:

* ``Delay(ns)`` — advance this process's local time by a service cost.
* ``Acquire(lock)`` / ``Release(lock)`` — FIFO mutual exclusion.

Example::

    sim = Simulator()
    lock = Lock("log")

    def worker(think_ns, hold_ns):
        for _ in range(10):
            yield Delay(think_ns)
            yield Acquire(lock)
            yield Delay(hold_ns)
            yield Release(lock)

    for _ in range(4):
        sim.spawn(worker(1000, 200))
    end_time = sim.run()
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from typing import Deque, Dict, Generator, List, Optional, Tuple, Union

from repro.sim.race import AccessRecorder
from repro.sim.sanitizers import LockSanitizer, default_enabled


class Delay:
    """Yield command: advance the process's time by ``ns`` nanoseconds."""

    __slots__ = ("ns",)

    def __init__(self, ns: int) -> None:
        if ns < 0:
            raise ValueError(f"delay must be non-negative, got {ns}")
        self.ns = int(ns)


class Lock:
    """A FIFO lock; processes that fail to acquire are queued in order."""

    __slots__ = ("name", "holder", "waiters", "acquisitions", "contended_acquisitions")

    def __init__(self, name: str = "lock") -> None:
        self.name = name
        self.holder: Optional[int] = None
        self.waiters: Deque[int] = deque()
        self.acquisitions = 0
        self.contended_acquisitions = 0

    @property
    def contention_ratio(self) -> float:
        """Fraction of acquisitions that had to wait."""
        if self.acquisitions == 0:
            return 0.0
        return self.contended_acquisitions / self.acquisitions

    def __repr__(self) -> str:
        return f"Lock({self.name}, holder={self.holder}, waiting={len(self.waiters)})"


class Acquire:
    """Yield command: block until ``lock`` is held by this process."""

    __slots__ = ("lock",)

    def __init__(self, lock: Lock) -> None:
        self.lock = lock


class Release:
    """Yield command: release ``lock`` (must be the current holder)."""

    __slots__ = ("lock",)

    def __init__(self, lock: Lock) -> None:
        self.lock = lock


class Semaphore:
    """A counting resource (e.g. a pool of flash channels): up to
    ``capacity`` holders at once, FIFO queueing beyond that."""

    __slots__ = ("name", "capacity", "holders", "waiters", "acquisitions", "contended_acquisitions")

    def __init__(self, capacity: int, name: str = "semaphore") -> None:
        if capacity <= 0:
            raise ValueError(f"semaphore capacity must be > 0, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.holders: set = set()
        self.waiters: Deque[int] = deque()
        self.acquisitions = 0
        self.contended_acquisitions = 0

    @property
    def contention_ratio(self) -> float:
        if self.acquisitions == 0:
            return 0.0
        return self.contended_acquisitions / self.acquisitions

    def __repr__(self) -> str:
        return (
            f"Semaphore({self.name}, {len(self.holders)}/{self.capacity} held, "
            f"waiting={len(self.waiters)})"
        )


class AcquireSlot:
    """Yield command: take one slot of ``semaphore`` (may block)."""

    __slots__ = ("semaphore",)

    def __init__(self, semaphore: Semaphore) -> None:
        self.semaphore = semaphore


class ReleaseSlot:
    """Yield command: return a slot of ``semaphore`` (must hold one)."""

    __slots__ = ("semaphore",)

    def __init__(self, semaphore: Semaphore) -> None:
        self.semaphore = semaphore


Command = Union[Delay, Acquire, Release, AcquireSlot, ReleaseSlot]
Process = Generator[Command, None, None]


class Timeout(Exception):
    """Raised by :meth:`Simulator.run` when ``until_ns`` passes with work left."""


class _ProcState:
    __slots__ = ("pid", "generator", "finished_at", "held_locks", "held_slots")

    def __init__(self, pid: int, generator: Process) -> None:
        self.pid = pid
        self.generator = generator
        self.finished_at: Optional[int] = None
        # Acquisition-ordered, so error cleanup can release in reverse.
        self.held_locks: List[Lock] = []
        self.held_slots: List[Semaphore] = []


class Simulator:
    """Event-heap scheduler for generator processes.

    Determinism: events at equal timestamps run in (time, sequence) order,
    and lock hand-off is FIFO, so a given set of processes always produces
    the same schedule.

    ``sanitizer`` enables shadow lock-discipline checks (bad releases,
    locks held at process exit, deadlock detection at block time).  When
    left ``None`` it follows the process-wide sanitizer default, which
    the test suite switches on.

    ``seed`` opts into a perturbed schedule: events at equal timestamps
    are ordered by a seeded random tie-break key instead of FIFO.  Any
    stat that changes under a different seed depends on the interleaving
    of same-timestamp events (see :func:`repro.sim.race.run_perturbed`).
    Lock hand-off stays FIFO either way.

    ``recorder`` installs a :class:`repro.sim.race.AccessRecorder` for
    the duration of :meth:`run`: the scheduler keeps the recorder's
    (pid, lockset) context current so instrumented shared-state accesses
    are attributed to the running process.
    """

    def __init__(
        self,
        sanitizer: Optional[LockSanitizer] = None,
        seed: Optional[int] = None,
        recorder: Optional[AccessRecorder] = None,
    ) -> None:
        self._heap: List[Tuple[int, int, int, int]] = []  # (time, tie, seq, pid)
        self._seq = 0
        self._procs: Dict[int, _ProcState] = {}
        self._blocked: Dict[int, Union[Lock, Semaphore]] = {}
        if sanitizer is None and default_enabled():
            sanitizer = LockSanitizer()
        self._sanitizer = sanitizer
        self._rng = None if seed is None else random.Random(seed)
        self._recorder = recorder
        self.now = 0

    def spawn(self, process: Process, start_ns: int = 0) -> int:
        """Register a process; it first runs at ``start_ns``. Returns its pid."""
        pid = len(self._procs)
        self._procs[pid] = _ProcState(pid, process)
        self._schedule(start_ns, pid)
        return pid

    def _schedule(self, time_ns: int, pid: int) -> None:
        tie = 0 if self._rng is None else self._rng.getrandbits(32)
        heapq.heappush(self._heap, (time_ns, tie, self._seq, pid))
        self._seq += 1

    def _sync_recorder(self, state: _ProcState) -> None:
        """Refresh the recorder's (pid, lockset) context for ``state``."""
        recorder = self._recorder
        if recorder is None:
            return
        names = frozenset(
            [lock.name for lock in state.held_locks]
            + [sem.name for sem in state.held_slots]
        )
        recorder.set_context(state.pid, names)

    def _release_lock(self, pid: int, lock: Lock) -> None:
        """Release ``lock`` held by ``pid``, handing off to the next waiter."""
        sanitizer = self._sanitizer
        if sanitizer is not None:
            sanitizer.on_released(pid, lock)
        if lock.holder != pid:
            raise RuntimeError(
                f"process {pid} released {lock.name!r} held by {lock.holder}"
            )
        self._procs[pid].held_locks.remove(lock)
        if lock.waiters:
            next_pid = lock.waiters.popleft()
            lock.holder = next_pid
            self._procs[next_pid].held_locks.append(lock)
            del self._blocked[next_pid]
            self._schedule(self.now, next_pid)
            if sanitizer is not None:
                sanitizer.on_acquired(next_pid, lock)
        else:
            lock.holder = None

    def _release_slot(self, pid: int, semaphore: Semaphore) -> None:
        """Return ``pid``'s slot of ``semaphore``, handing off to a waiter."""
        sanitizer = self._sanitizer
        if sanitizer is not None:
            sanitizer.on_slot_released(pid, semaphore)
        if pid not in semaphore.holders:
            raise RuntimeError(
                f"process {pid} released {semaphore.name!r} without a slot"
            )
        semaphore.holders.discard(pid)
        self._procs[pid].held_slots.remove(semaphore)
        if semaphore.waiters:
            next_pid = semaphore.waiters.popleft()
            semaphore.holders.add(next_pid)
            self._procs[next_pid].held_slots.append(semaphore)
            del self._blocked[next_pid]
            self._schedule(self.now, next_pid)
            if sanitizer is not None:
                sanitizer.on_slot_acquired(next_pid, semaphore)

    def _cleanup_after_error(self, pid: int) -> None:
        """A process generator raised: release everything it still holds
        (in reverse acquisition order) so waiters are not deadlocked, and
        retire the process."""
        state = self._procs[pid]
        for lock in list(reversed(state.held_locks)):
            self._release_lock(pid, lock)
        for semaphore in list(reversed(state.held_slots)):
            self._release_slot(pid, semaphore)
        state.finished_at = self.now
        if self._sanitizer is not None:
            self._sanitizer.on_finished(pid)

    def _step_process(self, pid: int) -> None:
        """Advance one process until it blocks, delays, or finishes."""
        state = self._procs[pid]
        self._sync_recorder(state)
        try:
            self._run_slice(state)
        finally:
            if self._recorder is not None:
                self._recorder.set_context(None, frozenset())

    def _run_slice(self, state: _ProcState) -> None:
        pid = state.pid
        sanitizer = self._sanitizer
        while True:
            try:
                command = next(state.generator)
            except StopIteration:
                state.finished_at = self.now
                if sanitizer is not None:
                    sanitizer.on_finished(pid)
                return
            except Exception:
                self._cleanup_after_error(pid)
                raise
            if isinstance(command, Delay):
                self._schedule(self.now + command.ns, pid)
                return
            if isinstance(command, Acquire):
                lock = command.lock
                lock.acquisitions += 1
                if lock.holder is None:
                    lock.holder = pid
                    state.held_locks.append(lock)
                    if sanitizer is not None:
                        sanitizer.on_acquired(pid, lock)
                    self._sync_recorder(state)
                    continue  # acquired immediately; keep running
                lock.contended_acquisitions += 1
                lock.waiters.append(pid)
                self._blocked[pid] = lock
                if sanitizer is not None:
                    sanitizer.on_blocked(pid, lock)
                return
            if isinstance(command, Release):
                self._release_lock(pid, command.lock)
                self._sync_recorder(state)
                continue  # keep running after a release
            if isinstance(command, AcquireSlot):
                semaphore = command.semaphore
                semaphore.acquisitions += 1
                if len(semaphore.holders) < semaphore.capacity:
                    semaphore.holders.add(pid)
                    state.held_slots.append(semaphore)
                    if sanitizer is not None:
                        sanitizer.on_slot_acquired(pid, semaphore)
                    self._sync_recorder(state)
                    continue
                semaphore.contended_acquisitions += 1
                semaphore.waiters.append(pid)
                self._blocked[pid] = semaphore
                if sanitizer is not None:
                    sanitizer.on_blocked(pid, semaphore)
                return
            if isinstance(command, ReleaseSlot):
                self._release_slot(pid, command.semaphore)
                self._sync_recorder(state)
                continue
            raise TypeError(f"process {pid} yielded unknown command: {command!r}")

    def run(self, until_ns: Optional[int] = None) -> int:
        """Run until all processes finish. Returns the final simulated time.

        Raises :class:`Timeout` if ``until_ns`` is reached first, and
        :class:`RuntimeError` on deadlock (blocked processes, empty heap).
        """
        from repro.sim import race

        previous = race.install(self._recorder) if self._recorder is not None else None
        try:
            while self._heap:
                time_ns, _tie, _seq, pid = heapq.heappop(self._heap)
                if until_ns is not None and time_ns > until_ns:
                    raise Timeout(f"simulation exceeded {until_ns}ns at t={time_ns}ns")
                if time_ns < self.now:
                    raise RuntimeError("event scheduled in the past")
                self.now = time_ns
                self._step_process(pid)
        finally:
            if self._recorder is not None:
                race.install(previous)
        if self._blocked:
            blocked = sorted(self._blocked)
            raise RuntimeError(f"deadlock: processes {blocked} blocked forever")
        return self.now

    def finish_time(self, pid: int) -> int:
        """Completion time of a finished process."""
        state = self._procs.get(pid)
        if state is None:
            raise KeyError(f"unknown pid {pid}")
        if state.finished_at is None:
            raise ValueError(f"process {pid} has not finished")
        return state.finished_at
