"""Dynamic concurrency checking for the DES: access recording and
schedule perturbation.

This is the runtime half of the simrace pass (the static half lives in
:mod:`repro.analysis.simrace`).  Two independent mechanisms:

* **Access recorder** (:class:`AccessRecorder`) — while a recorder is
  installed, every instrumented shared-state mutation (the stats
  primitives hook themselves in; components may call :func:`note_read` /
  :func:`note_write` directly) is logged as
  ``(pid, lockset, object, attr, op)`` using the lockset the scheduler
  reports for the running process.  :meth:`AccessRecorder.conflicts`
  then applies the Eraser lockset algorithm: for each ``(object, attr)``
  the candidate lockset is the intersection of the locksets of all
  accesses; a location touched by two or more processes, with at least
  one write, whose candidate lockset is empty, is a potential race.
* **Schedule perturbation** (:func:`run_perturbed`) — replays a scenario
  under N seeded tie-break schedules (see ``Simulator(seed=...)``) and
  diffs the final stats snapshots.  A schedule-*independent* result is
  byte-identical across seeds; any diff pinpoints a stat whose value
  depends on the interleaving of same-timestamp events.

The module deliberately imports nothing from the rest of the simulator,
so both :mod:`repro.sim.des` and :mod:`repro.sim.stats` can import it
without cycles.  When no recorder is installed the per-access overhead
is one module-attribute load and a ``None`` check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Tuple

#: The installed recorder, or None.  Kept as a module global so the
#: hot-path check in the stats primitives is as cheap as possible.
_ACTIVE: Optional["AccessRecorder"] = None


def install(recorder: Optional["AccessRecorder"]) -> Optional["AccessRecorder"]:
    """Install (or, with None, remove) the active recorder; returns the
    previously installed one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder
    return previous


def active() -> Optional["AccessRecorder"]:
    """The currently installed recorder, if any."""
    return _ACTIVE


def note_read(obj: object, attr: str) -> None:
    """Record a read of ``obj.attr`` by the currently running process."""
    recorder = _ACTIVE
    if recorder is not None:
        recorder.note(obj, attr, "r")


def note_write(obj: object, attr: str) -> None:
    """Record a write of ``obj.attr`` by the currently running process."""
    recorder = _ACTIVE
    if recorder is not None:
        recorder.note(obj, attr, "w")


@dataclass(frozen=True)
class AccessRecord:
    """One logged shared-state access."""

    pid: int
    lockset: FrozenSet[str]
    obj: str
    attr: str
    op: str  # "r" | "w"


@dataclass(frozen=True)
class RaceReport:
    """One Eraser-style lockset violation: conflicting accesses with an
    empty candidate lockset."""

    obj: str
    attr: str
    pids: Tuple[int, ...]
    writes: int
    reads: int

    def describe(self) -> str:
        return (
            f"{self.obj}.{self.attr}: {self.writes} write(s) / "
            f"{self.reads} read(s) from processes {list(self.pids)} with an "
            f"empty candidate lockset"
        )


class AccessRecorder:
    """Logs (pid, lockset, object, attr, op) tuples between yields.

    The scheduler (``Simulator``) sets the running process and its held
    locks through :meth:`set_context`; instrumented code calls
    :meth:`note`.  Objects are named by explicit :meth:`register` calls,
    falling back to the object's own ``name`` attribute (the stats
    primitives all have one), so reports are deterministic across runs.
    """

    def __init__(self) -> None:
        self.records: List[AccessRecord] = []
        self._names: Dict[int, str] = {}
        # Keep registered objects alive so id() keys cannot be reused.
        self._registered: List[object] = []
        self._pid: Optional[int] = None
        self._locks: FrozenSet[str] = frozenset()

    # -- wiring --------------------------------------------------------- #

    def register(self, obj: object, name: str) -> None:
        """Give ``obj`` a stable name in reports."""
        self._names[id(obj)] = name
        self._registered.append(obj)

    def set_context(self, pid: Optional[int], locks: FrozenSet[str]) -> None:
        """Called by the scheduler when a process slice starts/ends and
        whenever the running process's lockset changes."""
        self._pid = pid
        self._locks = locks

    # -- recording ------------------------------------------------------ #

    def name_of(self, obj: object) -> str:
        name = self._names.get(id(obj))
        if name is not None:
            return name
        own = getattr(obj, "name", None)
        if isinstance(own, str):
            return own
        return f"<{type(obj).__name__}>"

    def note(self, obj: object, attr: str, op: str) -> None:
        if self._pid is None:
            return  # access from outside any process slice
        self.records.append(
            AccessRecord(self._pid, self._locks, self.name_of(obj), attr, op)
        )

    # -- analysis ------------------------------------------------------- #

    def conflicts(self) -> List[RaceReport]:
        """Eraser lockset pass over the recorded accesses."""
        candidate: Dict[Tuple[str, str], FrozenSet[str]] = {}
        pids: Dict[Tuple[str, str], set] = {}
        writes: Dict[Tuple[str, str], int] = {}
        reads: Dict[Tuple[str, str], int] = {}
        for record in self.records:
            key = (record.obj, record.attr)
            if key in candidate:
                candidate[key] &= record.lockset
            else:
                candidate[key] = record.lockset
            pids.setdefault(key, set()).add(record.pid)
            if record.op == "w":
                writes[key] = writes.get(key, 0) + 1
            else:
                reads[key] = reads.get(key, 0) + 1
        reports = []
        for key, lockset in sorted(candidate.items()):
            if lockset or len(pids[key]) < 2 or not writes.get(key):
                continue
            reports.append(
                RaceReport(
                    obj=key[0],
                    attr=key[1],
                    pids=tuple(sorted(pids[key])),
                    writes=writes.get(key, 0),
                    reads=reads.get(key, 0),
                )
            )
        return reports


# --------------------------------------------------------------------- #
# Schedule perturbation
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class SnapshotDiff:
    """One stat that differed from the baseline under a perturbed schedule."""

    seed: int
    key: str
    baseline: object
    perturbed: object


@dataclass
class PerturbationReport:
    """Outcome of :func:`run_perturbed`."""

    seeds: List[int]
    baseline: Dict[str, object]
    diffs: List[SnapshotDiff] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        """True when every perturbed snapshot matched the baseline."""
        return not self.diffs

    def format(self) -> str:
        if self.identical:
            return (
                f"schedule-independent: {len(self.baseline)} stat(s) "
                f"byte-identical across {len(self.seeds)} perturbed schedule(s)"
            )
        lines = [
            f"schedule-DEPENDENT: {len(self.diffs)} diff(s) across "
            f"{len(self.seeds)} perturbed schedule(s):"
        ]
        for diff in self.diffs:
            lines.append(
                f"  seed={diff.seed} {diff.key}: "
                f"baseline={diff.baseline!r} perturbed={diff.perturbed!r}"
            )
        return "\n".join(lines)


#: A scenario takes a schedule seed (None = default FIFO order) and
#: returns a flat stats snapshot to compare.
Scenario = Callable[[Optional[int]], Mapping[str, object]]

_MISSING = "<missing>"


def run_perturbed(scenario: Scenario, seeds: int = 5) -> PerturbationReport:
    """Replay ``scenario`` under ``seeds`` perturbed schedules and diff
    the snapshots against the unperturbed (FIFO) baseline."""
    if seeds <= 0:
        raise ValueError(f"seeds must be > 0, got {seeds}")
    baseline = dict(scenario(None))
    report = PerturbationReport(seeds=list(range(1, seeds + 1)), baseline=baseline)
    for seed in report.seeds:
        perturbed = dict(scenario(seed))
        for key in sorted(set(baseline) | set(perturbed)):
            base_value = baseline.get(key, _MISSING)
            new_value = perturbed.get(key, _MISSING)
            if base_value != new_value:
                report.diffs.append(SnapshotDiff(seed, key, base_value, new_value))
    return report
