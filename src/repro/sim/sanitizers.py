"""Runtime invariant sanitizers for the FlatFlash simulator.

The simulator's credibility rests on invariants the Python runtime never
checks on its own: simulated time is integer nanoseconds and never runs
backwards, NAND pages are erased before they are reprogrammed, DES locks
are released by their holder, and the byte-granular persistence path
(§3.5) orders posted MMIO writes behind a write-verify read before
anything is acknowledged as durable.  Each sanitizer here mirrors one of
those rule families at runtime, keeping an independent *shadow* copy of
the relevant state so that bugs which corrupt the primary state (or
bypass the public API) are still caught at the next operation:

* :class:`ClockSanitizer` — monotonic integer-ns time, no negative or
  float deltas, no tampering with the clock's internal state.
* :class:`FlashSanitizer` — program-before-erase, double-erase,
  erase-of-valid-data, and valid-page leaks across GC cycles.
* :class:`LockSanitizer` — release-by-non-holder, locks/slots still held
  at process exit, and deadlock detection via a wait-for-graph walk at
  block time (earlier than the scheduler's end-of-run check).
* :class:`PersistenceSanitizer` — a durable-write acknowledgement while
  posted persist writes are still unfenced, and persist-tagged requests
  routed to volatile DRAM.

Sanitizers are opt-in via :class:`SanitizerConfig` (a field of
``FlatFlashConfig``); the test suite enables them globally through
``tests/conftest.py`` so every tier-1 test doubles as an invariant test.
All sanitizer failures raise :class:`SanitizerError`, a ``RuntimeError``
subclass, so code that already guards against simulator-level
``RuntimeError`` keeps working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

#: Process-wide default for newly built :class:`SanitizerConfig` objects.
#: The conftest fixture flips this on for the whole test suite.
_DEFAULT_ENABLED = False


def set_default_enabled(enabled: bool) -> bool:
    """Set the process-wide sanitizer default; returns the previous value."""
    global _DEFAULT_ENABLED
    previous = _DEFAULT_ENABLED
    _DEFAULT_ENABLED = bool(enabled)
    return previous


def default_enabled() -> bool:
    """Current process-wide sanitizer default."""
    return _DEFAULT_ENABLED


class SanitizerError(RuntimeError):
    """An invariant violation detected by a runtime sanitizer."""


class ClockSanitizerError(SanitizerError):
    """Simulated time went backwards, drifted to float, or was tampered with."""


class FlashSanitizerError(SanitizerError):
    """NAND state-machine violation (program/erase/invalidate ordering)."""


class LockSanitizerError(SanitizerError):
    """DES lock discipline violation (bad release, leak, or deadlock)."""


class PersistenceSanitizerError(SanitizerError):
    """Durability protocol violation on the byte-granular persistence path."""


@dataclass
class SanitizerConfig:
    """Which runtime sanitizers a simulator instance should run.

    The zero-argument constructor leaves everything off; use
    :meth:`from_default` (what ``FlatFlashConfig`` does) to inherit the
    process-wide default set by the test suite's conftest.
    """

    flash: bool = False
    clock: bool = False
    lock: bool = False
    persistence: bool = False

    @classmethod
    def from_default(cls) -> "SanitizerConfig":
        enabled = default_enabled()
        return cls(flash=enabled, clock=enabled, lock=enabled, persistence=enabled)

    @classmethod
    def all(cls) -> "SanitizerConfig":
        return cls(flash=True, clock=True, lock=True, persistence=True)

    def any_enabled(self) -> bool:
        return self.flash or self.clock or self.lock or self.persistence

    def validate(self) -> None:
        for name in ("flash", "clock", "lock", "persistence"):
            if not isinstance(getattr(self, name), bool):
                raise ValueError(f"sanitizer flag {name!r} must be a bool")


# --------------------------------------------------------------------- #
# Clock
# --------------------------------------------------------------------- #


class ClockSanitizer:
    """Shadow-checks a :class:`~repro.sim.clock.SimClock`.

    Beyond the clock's own negative-delta guard, the sanitizer rejects
    non-integer deltas (float drift silently truncates under ``int()``)
    and detects external tampering by comparing the clock's claimed
    current time against an independently accumulated shadow.
    """

    __slots__ = ("_shadow_now",)

    def __init__(self) -> None:
        self._shadow_now: Optional[int] = None

    def on_reset(self, start_ns: int) -> None:
        self._check_integral("start time", start_ns)
        self._shadow_now = int(start_ns)

    def _check_integral(self, what: str, value: object) -> None:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ClockSanitizerError(
                f"clock {what} must be an integer nanosecond count, got "
                f"{value!r} ({type(value).__name__}); float latencies drift "
                f"and silently truncate"
            )

    def _check_shadow(self, claimed_now: int) -> None:
        if self._shadow_now is None:
            self._shadow_now = int(claimed_now)
        elif claimed_now != self._shadow_now:
            raise ClockSanitizerError(
                f"clock state tampered with: clock reports t={claimed_now}ns "
                f"but the sanitizer shadow expected t={self._shadow_now}ns"
            )

    def on_advance(self, claimed_now: int, delta_ns: object) -> None:
        self._check_integral("advance delta", delta_ns)
        assert isinstance(delta_ns, int)
        if delta_ns < 0:
            raise ClockSanitizerError(
                f"clock advanced by negative delta {delta_ns}ns: simulated "
                f"time never runs backwards"
            )
        self._check_shadow(claimed_now)
        assert self._shadow_now is not None
        self._shadow_now += delta_ns

    def on_advance_to(self, claimed_now: int, timestamp_ns: object) -> None:
        self._check_integral("target timestamp", timestamp_ns)
        assert isinstance(timestamp_ns, int)
        self._check_shadow(claimed_now)
        assert self._shadow_now is not None
        if timestamp_ns > self._shadow_now:
            self._shadow_now = timestamp_ns


# --------------------------------------------------------------------- #
# Flash
# --------------------------------------------------------------------- #

_SHADOW_ERASED = 0
_SHADOW_PROGRAMMED = 1
_SHADOW_INVALID = 2

_SHADOW_NAMES = {
    _SHADOW_ERASED: "erased",
    _SHADOW_PROGRAMMED: "programmed",
    _SHADOW_INVALID: "invalid",
}


class FlashSanitizer:
    """Shadow NAND state machine for a :class:`~repro.ssd.flash.FlashArray`.

    Tracks every page's state independently of the array, so state
    corruption (e.g. code flipping ``block.states`` directly) is caught
    on the next program/erase/invalidate, and GC accounting leaks are
    caught by :meth:`check_accounting`.
    """

    __slots__ = ("_states", "_pages_per_block", "_num_blocks", "_valid_pages", "_erased_clean")

    def __init__(self) -> None:
        self._states = bytearray()
        self._pages_per_block = 0
        self._num_blocks = 0
        self._valid_pages = 0
        # Blocks erased by an erase() op and not programmed since: a second
        # erase of such a block burns a program/erase cycle for nothing.
        self._erased_clean: Set[int] = set()

    def attach(self, num_blocks: int, pages_per_block: int) -> None:
        self._num_blocks = num_blocks
        self._pages_per_block = pages_per_block
        self._states = bytearray(num_blocks * pages_per_block)
        self._valid_pages = 0
        self._erased_clean.clear()

    @property
    def valid_pages(self) -> int:
        return self._valid_pages

    def _state_name(self, ppn: int) -> str:
        return _SHADOW_NAMES[self._states[ppn]]

    def on_program(self, ppn: int) -> None:
        if self._states[ppn] != _SHADOW_ERASED:
            raise FlashSanitizerError(
                f"program to non-erased page ppn={ppn} "
                f"(block {ppn // self._pages_per_block}, shadow state "
                f"{self._state_name(ppn)}): NAND pages must be erased before "
                f"reprogramming"
            )
        self._states[ppn] = _SHADOW_PROGRAMMED
        self._valid_pages += 1
        self._erased_clean.discard(ppn // self._pages_per_block)

    def on_invalidate(self, ppn: int) -> None:
        if self._states[ppn] != _SHADOW_PROGRAMMED:
            raise FlashSanitizerError(
                f"invalidate of non-programmed page ppn={ppn} (shadow state "
                f"{self._state_name(ppn)})"
            )
        self._states[ppn] = _SHADOW_INVALID
        self._valid_pages -= 1

    def on_erase(self, block_index: int) -> None:
        first = block_index * self._pages_per_block
        block_states = self._states[first : first + self._pages_per_block]
        valid = sum(1 for s in block_states if s == _SHADOW_PROGRAMMED)
        if valid:
            raise FlashSanitizerError(
                f"erase of block {block_index} would destroy {valid} valid "
                f"(programmed) pages: GC must relocate them first"
            )
        if block_index in self._erased_clean:
            raise FlashSanitizerError(
                f"double erase of block {block_index}: the block was already "
                f"erased and nothing was programmed since — this burns a "
                f"program/erase cycle for nothing"
            )
        for offset in range(self._pages_per_block):
            self._states[first + offset] = _SHADOW_ERASED
        self._erased_clean.add(block_index)

    def on_program_fail(self, ppn: int) -> None:
        """An injected program failure burned the page (it was announced via
        :meth:`on_program` first, so the shadow holds PROGRAMMED)."""
        if self._states[ppn] != _SHADOW_PROGRAMMED:
            raise FlashSanitizerError(
                f"program-fail on page ppn={ppn} whose shadow state is "
                f"{self._state_name(ppn)}, not programmed: fault hooks must "
                f"follow the announced program"
            )
        self._states[ppn] = _SHADOW_INVALID
        self._valid_pages -= 1

    def on_erase_fail(self, block_index: int) -> None:
        """An injected erase failure retired the block as bad.  Its shadow
        pages become INVALID — safe because a bad block is never programmed
        or erased again, and accounting only counts PROGRAMMED pages."""
        first = block_index * self._pages_per_block
        for offset in range(self._pages_per_block):
            self._states[first + offset] = _SHADOW_INVALID
        self._erased_clean.discard(block_index)

    def resync(self, states: "list[int]") -> None:
        """Rebuild the shadow from authoritative page states (shadow codes
        0/1/2) after a power-loss image restore."""
        if len(states) != self._num_blocks * self._pages_per_block:
            raise FlashSanitizerError(
                f"resync with {len(states)} page states, expected "
                f"{self._num_blocks * self._pages_per_block}"
            )
        self._states = bytearray(states)
        self._valid_pages = sum(1 for s in states if s == _SHADOW_PROGRAMMED)
        self._erased_clean.clear()

    def check_accounting(self, mapped_pages: int, context: str = "") -> None:
        """Valid (programmed) pages must equal live FTL mappings.

        Every programmed page should be referenced by exactly one logical
        mapping; a mismatch after GC means pages leaked (relocated but not
        invalidated) or mappings dangle (invalidated but still mapped).
        """
        if self._valid_pages != mapped_pages:
            where = f" after {context}" if context else ""
            raise FlashSanitizerError(
                f"valid-page leak{where}: flash holds {self._valid_pages} "
                f"programmed pages but the FTL maps {mapped_pages} logical "
                f"pages"
            )


# --------------------------------------------------------------------- #
# Locks
# --------------------------------------------------------------------- #


class LockSanitizer:
    """Shadow lock-discipline checks for :class:`~repro.sim.des.Simulator`.

    Tracks which process holds which lock/semaphore slot, which process
    waits on what, and walks the wait-for graph at block time so lock
    deadlocks surface at the blocking acquire instead of at the end of
    the run.
    """

    __slots__ = ("_held", "_slots", "_waiting")

    def __init__(self) -> None:
        # pid -> set of Lock objects held (by identity).
        self._held: Dict[int, Set[object]] = {}
        # pid -> count of semaphore slots held, per semaphore.
        self._slots: Dict[int, Dict[object, int]] = {}
        # pid -> the Lock/Semaphore it is currently blocked on.
        self._waiting: Dict[int, object] = {}

    def on_acquired(self, pid: int, lock: object) -> None:
        """A process was granted a lock (immediately or by hand-off)."""
        self._waiting.pop(pid, None)
        held = self._held.setdefault(pid, set())
        if lock in held:
            name = getattr(lock, "name", repr(lock))
            raise LockSanitizerError(
                f"process {pid} re-acquired lock {name!r} it already holds"
            )
        held.add(lock)

    def on_released(self, pid: int, lock: object) -> None:
        held = self._held.get(pid, set())
        if lock not in held:
            name = getattr(lock, "name", repr(lock))
            holder = next(
                (p for p, locks in self._held.items() if lock in locks), None
            )
            raise LockSanitizerError(
                f"process {pid} released lock {name!r} it does not hold "
                f"(held by {holder})"
            )
        held.discard(lock)

    def on_slot_acquired(self, pid: int, semaphore: object) -> None:
        self._waiting.pop(pid, None)
        slots = self._slots.setdefault(pid, {})
        slots[semaphore] = slots.get(semaphore, 0) + 1

    def on_slot_released(self, pid: int, semaphore: object) -> None:
        slots = self._slots.get(pid, {})
        if slots.get(semaphore, 0) <= 0:
            name = getattr(semaphore, "name", repr(semaphore))
            raise LockSanitizerError(
                f"process {pid} released a slot of {name!r} without holding one"
            )
        slots[semaphore] -= 1

    def on_blocked(self, pid: int, primitive: object) -> None:
        """A process blocked; walk the wait-for graph for a lock cycle."""
        self._waiting[pid] = primitive
        chain: List[int] = [pid]
        current = primitive
        while True:
            holder = getattr(current, "holder", None)
            if holder is None:
                return  # semaphore or free lock: no single-holder edge
            if holder == pid:
                names = [
                    getattr(self._waiting[p], "name", "?")
                    for p in chain
                    if p in self._waiting
                ]
                raise LockSanitizerError(
                    f"deadlock: processes {chain} wait in a cycle on locks "
                    f"{names}"
                )
            if holder in chain:
                return  # cycle not through pid; the scheduler will report it
            chain.append(holder)
            current = self._waiting.get(holder)
            if current is None:
                return  # holder is runnable; it can still release

    def on_finished(self, pid: int) -> None:
        """Process exit: everything it held must have been released."""
        held = self._held.pop(pid, set())
        if held:
            names = sorted(getattr(lock, "name", repr(lock)) for lock in held)
            raise LockSanitizerError(
                f"process {pid} finished while still holding locks {names}: "
                f"a leaked lock leaves every waiter deadlocked"
            )
        slots = self._slots.pop(pid, {})
        leaked = {
            getattr(sem, "name", repr(sem)): count
            for sem, count in slots.items()
            if count > 0
        }
        if leaked:
            raise LockSanitizerError(
                f"process {pid} finished while still holding semaphore slots "
                f"{leaked}: leaked slots leave waiters deadlocked"
            )
        self._waiting.pop(pid, None)


# --------------------------------------------------------------------- #
# Persistence
# --------------------------------------------------------------------- #


class PersistenceSanitizer:
    """Durability-protocol checks for the byte-granular persistence path.

    The protocol (§3.5) is: posted persist writes reach the device only
    once an *ordering verify read* completes; only then may the store be
    acknowledged as durable.  The sanitizer counts posted persist writes
    since the last fence and rejects a durable acknowledgement while any
    are outstanding.  It also tracks link-level posted transactions
    (cleared by any non-posted read, the PCIe ordering rule) and flags
    persist-tagged requests that the host bridge routes to volatile DRAM.
    """

    __slots__ = ("_pending", "_pending_count", "_link_posted_lines", "_fences")

    #: How many outstanding persist writes to remember for diagnostics.
    MAX_PENDING_DETAIL = 16

    def __init__(self) -> None:
        self._pending: List[Tuple[int, int]] = []  # (lpn, offset), newest last
        self._pending_count = 0
        self._link_posted_lines = 0
        self._fences = 0

    @property
    def pending_persist_writes(self) -> int:
        return self._pending_count

    @property
    def link_posted_lines(self) -> int:
        return self._link_posted_lines

    @property
    def fences(self) -> int:
        return self._fences

    # Device-level protocol events ------------------------------------- #

    def on_persist_posted(self, lpn: int, offset: int) -> None:
        """A posted MMIO write with the P bit set entered the write path."""
        self._pending_count += 1
        self._pending.append((lpn, offset))
        if len(self._pending) > self.MAX_PENDING_DETAIL:
            del self._pending[0]

    def on_fence(self) -> None:
        """The write-verify read completed: earlier posted writes are durable."""
        self._fences += 1
        if self._link_posted_lines:
            raise PersistenceSanitizerError(
                f"write-verify fence completed with {self._link_posted_lines} "
                f"posted cache lines still unordered on the link: the fence "
                f"must be a non-posted read that flushes the posted queue"
            )
        self._pending.clear()
        self._pending_count = 0

    def on_crash(self) -> None:
        """Power failure: unfenced posted writes are legitimately lost."""
        self._pending.clear()
        self._pending_count = 0
        self._link_posted_lines = 0

    def ack_durable(self, what: str = "durable store") -> None:
        """A path is about to report data as durable; nothing may be unfenced."""
        if self._pending_count:
            lpn, offset = self._pending[-1]
            raise PersistenceSanitizerError(
                f"{what} acknowledged with {self._pending_count} posted "
                f"persist write(s) not yet ordered by a write-verify read "
                f"(most recent: lpn={lpn} offset={offset}); a crash here "
                f"would lose acknowledged data"
            )

    # Link-level events ------------------------------------------------- #

    def on_posted_tlp(self, lines: int) -> None:
        self._link_posted_lines += lines

    def on_ordering_read(self) -> None:
        # PCIe ordering: non-posted reads do not pass posted writes, so a
        # completed read implies every earlier posted write was delivered.
        self._link_posted_lines = 0

    # Host-bridge events ------------------------------------------------ #

    def on_persist_routed(self, target: str, page: int) -> None:
        """A persist-tagged request was routed; DRAM is not a durable domain."""
        if target == "dram":
            raise PersistenceSanitizerError(
                f"persist-tagged request routed to volatile DRAM frame "
                f"{page}: persist pages are pinned to the SSD (§3.5), host "
                f"DRAM is outside the durability domain"
            )
