"""Shadow domain tags: the dynamic counterpart of ``repro.analysis.simflow``.

FlatFlash moves page numbers between four address domains — virtual
pages (vpn), host DRAM frames (pfn), device logical pages (lpn) and
NAND physical pages (ppn) — and every one of them is a plain ``int``.
The static pass (simflow) catches most cross-domain leaks at analysis
time; this module catches the rest at run time, the same way the
Eraser recorder in :mod:`repro.sim.race` backs up the simrace rules.

When shadow tagging is enabled, the domain cast points in
:mod:`repro.units` (``LPN(x)``, ``PPN(x)`` …) return :class:`TaggedInt`
instances instead of bare ints.  A :class:`TaggedInt` behaves exactly
like the int it wraps — hashing, dict keys, ``struct.pack``, JSON all
see a plain integer — except that combining two tags from *different*
domains in arithmetic or an ordering/equality comparison raises
:class:`DomainTagError` at the mixing operation.  Consumers that
require a specific domain guard their entry with :func:`check`.

Tagging is process-wide and opt-in (mirroring
``sanitizers.set_default_enabled``); the test suite switches it on in
``tests/conftest.py`` so every experiment and unit test runs tagged.

Tag algebra (chosen so legitimate address arithmetic stays quiet):

* tagged ± plain int  -> keeps the tag (page + 1 is still a page)
* tagged ± same tag   -> plain int (a *distance*, not an address)
* tagged ± other tag  -> raises
* ``*``, ``//``, ``%`` -> plain int (scaling leaves the domain), but
  still raise when both operands are tagged with different domains
* comparisons          -> plain bool; cross-domain raises
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = [
    "DomainTagError",
    "TaggedInt",
    "tag",
    "check",
    "domain_of",
    "enabled",
    "set_enabled",
]


class DomainTagError(RuntimeError):
    """Two different address domains met without a sanctioned translation."""


_ENABLED = False


def enabled() -> bool:
    """Is shadow tagging currently on for this process?"""
    return _ENABLED


def set_enabled(value: bool) -> bool:
    """Turn shadow tagging on/off process-wide; returns the previous state."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(value)
    return previous


class TaggedInt(int):
    """An int carrying the address domain it belongs to.

    Same-domain arithmetic yields plain ints (differences and sums of
    two addresses are offsets, not addresses); tagged-with-plain keeps
    the tag for ``+``/``-`` so neighbouring-page arithmetic stays
    tagged through e.g. ``ppn + 1``.
    """

    def __new__(cls, value: int, domain: str) -> "TaggedInt":
        self = super().__new__(cls, value)
        self.domain = domain
        return self

    def __getnewargs__(self):  # keep pickle / copy.deepcopy working
        return (int(self), self.domain)

    def __repr__(self) -> str:
        return f"{self.domain}({int(self)})"

    def _reject_cross(self, other: Any, op: str) -> None:
        if isinstance(other, TaggedInt) and other.domain != self.domain:
            raise DomainTagError(
                f"{op} mixes address domains {self.domain} and {other.domain}: "
                f"{self!r} vs {other!r}; route the value through a registered "
                f"translation (repro.units) instead"
            )

    # -- additive: plain operand keeps the tag, same-domain collapses --
    def _add_like(self, other: Any, op: str, result: Any) -> Any:
        self._reject_cross(other, op)
        if result is NotImplemented:
            return NotImplemented
        if isinstance(other, TaggedInt):  # same domain: address - address
            return int(result)
        return TaggedInt(result, self.domain)

    def __add__(self, other: Any) -> Any:
        return self._add_like(other, "addition", int.__add__(self, other))

    def __radd__(self, other: Any) -> Any:
        return self._add_like(other, "addition", int.__radd__(self, other))

    def __sub__(self, other: Any) -> Any:
        return self._add_like(other, "subtraction", int.__sub__(self, other))

    def __rsub__(self, other: Any) -> Any:
        return self._add_like(other, "subtraction", int.__rsub__(self, other))

    # -- scaling: result leaves the domain entirely --
    def _scale_like(self, other: Any, op: str, result: Any) -> Any:
        self._reject_cross(other, op)
        return result

    def __mul__(self, other: Any) -> Any:
        return self._scale_like(other, "multiplication", int.__mul__(self, other))

    def __rmul__(self, other: Any) -> Any:
        return self._scale_like(other, "multiplication", int.__rmul__(self, other))

    def __floordiv__(self, other: Any) -> Any:
        return self._scale_like(other, "division", int.__floordiv__(self, other))

    def __rfloordiv__(self, other: Any) -> Any:
        return self._scale_like(other, "division", int.__rfloordiv__(self, other))

    def __truediv__(self, other: Any) -> Any:
        return self._scale_like(other, "division", int.__truediv__(self, other))

    def __rtruediv__(self, other: Any) -> Any:
        return self._scale_like(other, "division", int.__rtruediv__(self, other))

    def __mod__(self, other: Any) -> Any:
        return self._scale_like(other, "modulo", int.__mod__(self, other))

    def __rmod__(self, other: Any) -> Any:
        return self._scale_like(other, "modulo", int.__rmod__(self, other))

    def __divmod__(self, other: Any) -> Any:
        return self._scale_like(other, "divmod", int.__divmod__(self, other))

    def __rdivmod__(self, other: Any) -> Any:
        return self._scale_like(other, "divmod", int.__rdivmod__(self, other))

    def __lshift__(self, other: Any) -> Any:
        return self._scale_like(other, "shift", int.__lshift__(self, other))

    def __rshift__(self, other: Any) -> Any:
        return self._scale_like(other, "shift", int.__rshift__(self, other))

    # -- comparisons: cross-domain ordering/equality is meaningless --
    def __eq__(self, other: Any) -> bool:
        self._reject_cross(other, "equality")
        return int.__eq__(self, other)

    def __ne__(self, other: Any) -> bool:
        self._reject_cross(other, "equality")
        return int.__ne__(self, other)

    def __lt__(self, other: Any) -> bool:
        self._reject_cross(other, "comparison")
        return int.__lt__(self, other)

    def __le__(self, other: Any) -> bool:
        self._reject_cross(other, "comparison")
        return int.__le__(self, other)

    def __gt__(self, other: Any) -> bool:
        self._reject_cross(other, "comparison")
        return int.__gt__(self, other)

    def __ge__(self, other: Any) -> bool:
        self._reject_cross(other, "comparison")
        return int.__ge__(self, other)

    __hash__ = int.__hash__  # __eq__ override would otherwise drop it


def tag(value: int, domain: str) -> int:
    """Tag ``value`` with ``domain`` when tagging is enabled (else identity).

    Re-tagging a value already tagged with another domain is *allowed*:
    the cast points in :mod:`repro.units` are exactly the sanctioned
    translation sites (e.g. the host/ssd page pun in merged-BAR mode),
    so the cast is the permission slip.
    """
    if not _ENABLED:
        return value
    return TaggedInt(int(value), domain)


def check(value: Any, domain: str, context: str = "") -> None:
    """Raise if ``value`` carries a shadow tag from a different domain.

    Untagged values always pass — tags only ever flow out of the
    translation cast points, so a plain int carries no claim.
    """
    if not _ENABLED:
        return
    if isinstance(value, TaggedInt) and value.domain != domain:
        where = f" in {context}" if context else ""
        raise DomainTagError(
            f"expected a {domain} value{where} but received {value!r}"
        )


def domain_of(value: Any) -> Optional[str]:
    """The shadow domain of ``value``, or ``None`` for untagged values."""
    if isinstance(value, TaggedInt):
        return value.domain
    return None
