"""Statistics collection for the simulator.

Three small primitives cover everything the evaluation needs:

* :class:`Counter` — monotone event counts (page faults, promotions, bytes).
* :class:`LatencyStats` — per-operation latency samples with mean and
  percentile queries (Figures 8, 11 and 12 report means and p99s).
* :class:`RatioStat` — hit/miss style ratios (SSD-Cache hit ratio in Fig. 12).

A :class:`StatRegistry` groups them so a memory system can expose one
``stats`` object that experiments snapshot and diff.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

from repro.sim import race


class Counter:
    """A named monotone counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {amount}")
        if race._ACTIVE is not None:
            race._ACTIVE.note(self, "value", "w")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class RatioStat:
    """Tracks hits out of total trials (e.g. cache hit ratio)."""

    __slots__ = ("name", "hits", "total")

    def __init__(self, name: str) -> None:
        self.name = name
        self.hits = 0
        self.total = 0

    def record(self, hit: bool) -> None:
        if race._ACTIVE is not None:
            race._ACTIVE.note(self, "total", "w")
        self.total += 1
        if hit:
            self.hits += 1

    def record_batch(self, hits: int, total: int) -> None:
        """Record ``hits`` hits out of ``total`` trials in one update.

        Equivalent to ``total`` calls to :meth:`record` — both fields
        are commutative sums.  Used by the replay engine's stat flush.
        """
        if hits < 0 or total < hits:
            raise ValueError(
                f"need 0 <= hits <= total on {self.name!r}, got {hits}/{total}"
            )
        if total == 0:
            return
        if race._ACTIVE is not None:
            race._ACTIVE.note(self, "total", "w")
        self.total += total
        self.hits += hits

    @property
    def misses(self) -> int:
        return self.total - self.hits

    @property
    def ratio(self) -> float:
        """Hit ratio in [0, 1]; 0.0 when nothing was recorded."""
        if self.total == 0:
            return 0.0
        return self.hits / self.total

    def reset(self) -> None:
        self.hits = 0
        self.total = 0

    def __repr__(self) -> str:
        return f"RatioStat({self.name}: {self.hits}/{self.total})"


class LatencyStats:
    """Latency samples in nanoseconds with summary queries.

    Samples are kept raw (a Python list of ints).  The evaluation workloads
    issue at most a few million operations, so raw retention is affordable
    and keeps percentile math exact.  ``keep_samples=False`` switches to a
    streaming mean/min/max mode for very long sweeps.
    """

    def __init__(self, name: str, keep_samples: bool = True) -> None:
        self.name = name
        self.keep_samples = keep_samples
        self._samples: List[int] = []
        self._count = 0
        self._sum = 0
        self._min: Optional[int] = None
        self._max: Optional[int] = None

    def record(self, latency_ns: int) -> None:
        latency = int(latency_ns)
        if latency < 0:
            raise ValueError(f"negative latency recorded on {self.name!r}: {latency}")
        if race._ACTIVE is not None:
            race._ACTIVE.note(self, "_count", "w")
        self._count += 1
        self._sum += latency
        if self._min is None or latency < self._min:
            self._min = latency
        if self._max is None or latency > self._max:
            self._max = latency
        if self.keep_samples:
            self._samples.append(latency)

    def extend(self, latencies: Iterable[int]) -> None:
        for latency in latencies:
            self.record(latency)

    def record_batch(self, latency_ns: int, count: int) -> None:
        """Record ``count`` identical samples in one update.

        Equivalent to ``count`` calls to :meth:`record` — the summary
        fields are commutative, so batched recording is exact.  Used by
        the replay engine (repro.engine) to flush per-value tallies.
        """
        if count < 0:
            raise ValueError(f"negative batch count on {self.name!r}: {count}")
        if count == 0:
            return
        latency = int(latency_ns)
        if latency < 0:
            raise ValueError(f"negative latency recorded on {self.name!r}: {latency}")
        if race._ACTIVE is not None:
            race._ACTIVE.note(self, "_count", "w")
        self._count += count
        self._sum += latency * count
        if self._min is None or latency < self._min:
            self._min = latency
        if self._max is None or latency > self._max:
            self._max = latency
        if self.keep_samples:
            self._samples.extend([latency] * count)

    @property
    def samples(self) -> List[int]:
        """Raw retained samples (copy); empty in streaming mode."""
        return list(self._samples)

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> int:
        return self._sum

    @property
    def mean(self) -> float:
        if self._count == 0:
            return 0.0
        return self._sum / self._count

    @property
    def minimum(self) -> int:
        if self._min is None:
            raise ValueError(f"no samples recorded on {self.name!r}")
        return self._min

    @property
    def maximum(self) -> int:
        if self._max is None:
            raise ValueError(f"no samples recorded on {self.name!r}")
        return self._max

    def percentile(self, pct: float) -> int:
        """Exact percentile (nearest-rank) over retained samples."""
        if not self.keep_samples:
            raise ValueError(f"{self.name!r} does not retain samples")
        if not self._samples:
            raise ValueError(f"no samples recorded on {self.name!r}")
        if not 0.0 < pct <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {pct}")
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
        return ordered[rank - 1]

    @property
    def p50(self) -> int:
        return self.percentile(50.0)

    @property
    def p99(self) -> int:
        return self.percentile(99.0)

    def reset(self) -> None:
        self._samples.clear()
        self._count = 0
        self._sum = 0
        self._min = None
        self._max = None

    def __repr__(self) -> str:
        return f"LatencyStats({self.name}: n={self._count}, mean={self.mean:.1f}ns)"


class Histogram:
    """A log2-bucketed latency histogram for CDF-style reporting.

    Buckets double in width (0-1 us, 1-2 us, 2-4 us, ...), which matches
    how the evaluation's latency plots read: most mass near DRAM/cache
    latencies, a tail at flash latencies.
    """

    def __init__(self, name: str, base_ns: int = 1_000, num_buckets: int = 20) -> None:
        if base_ns <= 0:
            raise ValueError(f"base_ns must be > 0, got {base_ns}")
        if num_buckets <= 1:
            raise ValueError(f"num_buckets must be > 1, got {num_buckets}")
        self.name = name
        self.base_ns = base_ns
        self.buckets = [0] * num_buckets
        self.count = 0

    def bucket_of(self, latency_ns: int) -> int:
        if latency_ns < 0:
            raise ValueError(f"negative latency: {latency_ns}")
        bucket = 0
        bound = self.base_ns
        while latency_ns >= bound and bucket < len(self.buckets) - 1:
            bound *= 2
            bucket += 1
        return bucket

    def bucket_bound_ns(self, bucket: int) -> int:
        """Upper bound of a bucket (inclusive of everything below it)."""
        return self.base_ns * (2**bucket)

    def record(self, latency_ns: int) -> None:
        if race._ACTIVE is not None:
            race._ACTIVE.note(self, "buckets", "w")
        self.buckets[self.bucket_of(latency_ns)] += 1
        self.count += 1

    def extend(self, latencies: Iterable[int]) -> None:
        for latency in latencies:
            self.record(latency)

    def cdf(self) -> List[float]:
        """Cumulative fraction at each bucket's upper bound."""
        if self.count == 0:
            return [0.0] * len(self.buckets)
        total = 0
        out = []
        for value in self.buckets:
            total += value
            out.append(total / self.count)
        return out

    def quantile_bound_ns(self, fraction: float) -> int:
        """Upper bound of the first bucket whose CDF reaches ``fraction``."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        for bucket, cumulative in enumerate(self.cdf()):
            if cumulative >= fraction:
                return self.bucket_bound_ns(bucket)
        return self.bucket_bound_ns(len(self.buckets) - 1)

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count})"


class StatRegistry:
    """A named collection of counters, ratios and latency stats.

    Components create their stats through the registry so experiments can
    snapshot everything at once (``as_dict``) and reset between phases.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._ratios: Dict[str, RatioStat] = {}
        self._latencies: Dict[str, LatencyStats] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def ratio(self, name: str) -> RatioStat:
        if name not in self._ratios:
            self._ratios[name] = RatioStat(name)
        return self._ratios[name]

    def latency(self, name: str, keep_samples: bool = True) -> LatencyStats:
        if name not in self._latencies:
            self._latencies[name] = LatencyStats(name, keep_samples=keep_samples)
        return self._latencies[name]

    def counters(self) -> Dict[str, int]:
        return {name: c.value for name, c in self._counters.items()}

    def as_dict(self) -> Dict[str, float]:
        """Flat snapshot of every stat, for experiment reporting."""
        snapshot: Dict[str, float] = {}
        for name, counter in self._counters.items():
            snapshot[name] = counter.value
        for name, ratio in self._ratios.items():
            snapshot[f"{name}.ratio"] = ratio.ratio
            snapshot[f"{name}.total"] = ratio.total
        for name, lat in self._latencies.items():
            snapshot[f"{name}.count"] = lat.count
            snapshot[f"{name}.mean_ns"] = lat.mean
        return snapshot

    def snapshot(self) -> Dict[str, float]:
        """Key-sorted :meth:`as_dict`, for byte-identical schedule diffs."""
        flat = self.as_dict()
        return {key: flat[key] for key in sorted(flat)}

    def register_shared(self, recorder: "race.AccessRecorder", prefix: str = "") -> None:
        """Name every stat primitive for the dynamic access recorder."""
        for name, counter in self._counters.items():
            recorder.register(counter, f"{prefix}{name}")
        for name, ratio in self._ratios.items():
            recorder.register(ratio, f"{prefix}{name}")
        for name, lat in self._latencies.items():
            recorder.register(lat, f"{prefix}{name}")

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        for ratio in self._ratios.values():
            ratio.reset()
        for lat in self._latencies.values():
            lat.reset()
