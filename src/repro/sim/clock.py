"""A simulated nanosecond clock.

Every component of the FlatFlash simulator charges time to a :class:`SimClock`
instead of sleeping or measuring wall time.  A single-threaded workload owns
one clock and advances it on every memory access; the discrete-event simulator
(:mod:`repro.sim.des`) drives many logical threads against one clock.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.sanitizers import ClockSanitizer

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_SEC = 1_000_000_000


class SimClock:
    """Monotonically non-decreasing simulated time in nanoseconds."""

    __slots__ = ("_now", "_sanitizer")

    def __init__(
        self, start_ns: int = 0, sanitizer: Optional[ClockSanitizer] = None
    ) -> None:
        if start_ns < 0:
            raise ValueError(f"clock cannot start at negative time: {start_ns}")
        self._sanitizer = sanitizer
        if sanitizer is not None:
            sanitizer.on_reset(start_ns)
        self._now = int(start_ns)

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def now_us(self) -> float:  # simlint: disable=SL004
        """Current simulated time in microseconds (reporting only)."""
        return self._now / NS_PER_US

    @property
    def now_sec(self) -> float:  # simlint: disable=SL004
        """Current simulated time in seconds (reporting only)."""
        return self._now / NS_PER_SEC

    def advance(self, delta_ns: int) -> int:
        """Move time forward by ``delta_ns`` and return the new time.

        Negative deltas are rejected: simulated time never runs backwards.
        """
        if self._sanitizer is not None:
            self._sanitizer.on_advance(self._now, delta_ns)
        delta = int(delta_ns)
        if delta < 0:
            raise ValueError(f"cannot advance clock by negative delta: {delta}")
        self._now += delta
        return self._now

    def advance_to(self, timestamp_ns: int) -> int:
        """Move time forward to an absolute timestamp (no-op if in the past)."""
        if self._sanitizer is not None:
            self._sanitizer.on_advance_to(self._now, timestamp_ns)
        timestamp = int(timestamp_ns)
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def snapshot(self) -> dict:
        """Flat snapshot for schedule-perturbation diffs (see
        :func:`repro.sim.race.run_perturbed`)."""
        return {"clock.now_ns": self._now}

    def reset(self, start_ns: int = 0) -> None:
        """Reset the clock, typically between experiment repetitions."""
        if start_ns < 0:
            raise ValueError(f"clock cannot reset to negative time: {start_ns}")
        if self._sanitizer is not None:
            self._sanitizer.on_reset(start_ns)
        self._now = int(start_ns)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now}ns)"
