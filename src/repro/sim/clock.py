"""A simulated nanosecond clock.

Every component of the FlatFlash simulator charges time to a :class:`SimClock`
instead of sleeping or measuring wall time.  A single-threaded workload owns
one clock and advances it on every memory access; the discrete-event simulator
(:mod:`repro.sim.des`) drives many logical threads against one clock.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.sanitizers import ClockSanitizer

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_SEC = 1_000_000_000


class PowerLossTriggered(Exception):
    """Raised by the clock when simulated time reaches an armed power-loss
    deadline (see :mod:`repro.faults.power`).  The access that crossed the
    deadline never completes — the exception unwinds to the injection
    harness, which applies crash semantics and restarts the system."""

    def __init__(self, at_ns: int) -> None:
        super().__init__(f"power loss at t={at_ns}ns")
        self.at_ns = at_ns


class SimClock:
    """Monotonically non-decreasing simulated time in nanoseconds."""

    __slots__ = ("_now", "_sanitizer", "_power_deadline")

    def __init__(
        self, start_ns: int = 0, sanitizer: Optional[ClockSanitizer] = None
    ) -> None:
        if start_ns < 0:
            raise ValueError(f"clock cannot start at negative time: {start_ns}")
        self._sanitizer = sanitizer
        if sanitizer is not None:
            sanitizer.on_reset(start_ns)
        self._now = int(start_ns)
        self._power_deadline: Optional[int] = None

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def now_us(self) -> float:  # simlint: disable=SL004
        """Current simulated time in microseconds (reporting only)."""
        return self._now / NS_PER_US

    @property
    def now_sec(self) -> float:  # simlint: disable=SL004
        """Current simulated time in seconds (reporting only)."""
        return self._now / NS_PER_SEC

    def advance(self, delta_ns: int) -> int:
        """Move time forward by ``delta_ns`` and return the new time.

        Negative deltas are rejected: simulated time never runs backwards.
        """
        if self._sanitizer is not None:
            self._sanitizer.on_advance(self._now, delta_ns)
        delta = int(delta_ns)
        if delta < 0:
            raise ValueError(f"cannot advance clock by negative delta: {delta}")
        self._now += delta
        self._check_power_deadline()
        return self._now

    def advance_to(self, timestamp_ns: int) -> int:
        """Move time forward to an absolute timestamp (no-op if in the past)."""
        if self._sanitizer is not None:
            self._sanitizer.on_advance_to(self._now, timestamp_ns)
        timestamp = int(timestamp_ns)
        if timestamp > self._now:
            self._now = timestamp
        self._check_power_deadline()
        return self._now

    # ------------------------------------------------------------------ #
    # Power-loss deadline (repro.faults.power)
    # ------------------------------------------------------------------ #

    def arm_power_loss(self, at_ns: int) -> None:
        """Raise :class:`PowerLossTriggered` once time reaches ``at_ns``.

        The operation whose time charge crosses the deadline is the one
        interrupted; an already-passed deadline fires on the next advance.
        """
        if at_ns < 0:
            raise ValueError(f"power-loss deadline must be >= 0, got {at_ns}")
        self._power_deadline = int(at_ns)

    def disarm_power_loss(self) -> None:
        self._power_deadline = None

    @property
    def power_deadline(self) -> Optional[int]:
        return self._power_deadline

    def _check_power_deadline(self) -> None:
        deadline = self._power_deadline
        if deadline is not None and self._now >= deadline:
            # Disarm first: crash handling on the dying system may still
            # touch the clock and must not re-trigger.
            self._power_deadline = None
            raise PowerLossTriggered(deadline)

    def snapshot(self) -> dict:
        """Flat snapshot for schedule-perturbation diffs (see
        :func:`repro.sim.race.run_perturbed`)."""
        return {"clock.now_ns": self._now}

    def reset(self, start_ns: int = 0) -> None:
        """Reset the clock, typically between experiment repetitions."""
        if start_ns < 0:
            raise ValueError(f"clock cannot reset to negative time: {start_ns}")
        if self._sanitizer is not None:
            self._sanitizer.on_reset(start_ns)
        self._now = int(start_ns)
        self._power_deadline = None

    def __repr__(self) -> str:
        return f"SimClock(now={self._now}ns)"
