"""Adaptive page promotion — Algorithm 1 of the paper, verbatim.

Every memory access served by the SSD calls :meth:`PromotionManager.update`
for the touched SSD-Cache entry; every SSD-Cache eviction calls
:meth:`PromotionManager.adjust_cnt`.  The algorithm promotes a page when
its access counter reaches an *adaptive* threshold:

* ``currRatio = AggPromotedCnt / AccessCnt`` measures page re-use;
* high re-use (ratio >= HiRatio) lowers the threshold so hot pages promote
  quickly; low re-use (ratio <= LwRatio) raises it toward MaxThreshold so
  thrashing pages stay in the SSD and are accessed byte-granularly;
* every ResetEpoch accesses the counters reset, with ``AccessCnt`` seeded
  from ``NetAggCnt`` (the live sum of cached pages' counters) to preserve
  the current pages' access pattern without rescanning the counter array.

Variable names follow the paper so the implementation can be audited
against Algorithm 1 line by line.
"""

from __future__ import annotations

from typing import Deque, List, Optional
from collections import deque

from repro.config import PromotionConfig
from repro.costs import counters
from repro.effects import effects
from repro.sim.stats import StatRegistry
from repro.ssd.ssd_cache import CacheEntry
from repro.units import LPN


class AdaptivePromotionPolicy:
    """State machine of Algorithm 1 (UPDATE and ADJUST_CNT procedures)."""

    def __init__(self, config: PromotionConfig) -> None:
        config.validate()
        self.config = config
        self.net_agg_cnt = 0
        self.access_cnt = 0
        self.agg_promoted_cnt = 0
        self.curr_threshold = config.max_threshold

    def adjust_cnt(self, entry: CacheEntry) -> None:
        """ADJUST_CNT: retire an evicted page's counter from NetAggCnt."""
        self.net_agg_cnt -= entry.page_cnt
        entry.page_cnt = 0

    def update(self, entry: CacheEntry) -> bool:
        """UPDATE: account one access; returns True when the page should be
        promoted (its counter just reached CurrThreshold)."""
        config = self.config
        self.net_agg_cnt += 1
        self.access_cnt += 1
        entry.page_cnt += 1
        promote_flag = entry.page_cnt == self.curr_threshold
        if promote_flag:
            self.agg_promoted_cnt += entry.page_cnt
        curr_ratio = self.agg_promoted_cnt / self.access_cnt
        if curr_ratio <= config.lw_ratio:
            if self.curr_threshold < config.max_threshold:
                self.curr_threshold += 1
        elif curr_ratio >= config.hi_ratio:
            if self.curr_threshold > 1 and promote_flag:
                self.curr_threshold -= 1
        if self.access_cnt >= config.reset_epoch:
            self.access_cnt = self.net_agg_cnt
            self.agg_promoted_cnt = 0
            self.curr_threshold = config.max_threshold
        return promote_flag


class FixedPromotionPolicy:
    """Ablation: promote at a fixed threshold (the naive scheme of §3.4)."""

    def __init__(self, threshold: int = 1) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.curr_threshold = threshold  # mirrors the adaptive interface

    def adjust_cnt(self, entry: CacheEntry) -> None:
        entry.page_cnt = 0

    def update(self, entry: CacheEntry) -> bool:
        entry.page_cnt += 1
        return entry.page_cnt == self.threshold


@counters(
    owner="promotion",
    conserve=("update: promotion.signals <= 1",),
)
class PromotionManager:
    """The SSD's Promotion Manager: wires the policy to the device.

    The device calls :meth:`update`/:meth:`adjust_cnt` (the
    :class:`~repro.ssd.device.PromotionSink` protocol) from inside its MMIO
    paths; promotion *candidates* are queued and drained by the hierarchy
    after the access completes, mirroring the off-critical-path promotion
    of §3.3.
    """

    def __init__(
        self,
        config: Optional[PromotionConfig] = None,
        policy: Optional[object] = None,
        stats: Optional[StatRegistry] = None,
    ) -> None:
        if policy is None:
            policy = AdaptivePromotionPolicy(config if config is not None else PromotionConfig())
        self.policy = policy
        self._candidates: Deque[LPN] = deque()
        self._queued: set = set()
        self.stats = stats if stats is not None else StatRegistry()
        self._promote_signals = self.stats.counter("promotion.signals")

    @effects("MUTATES_STATE", "MUTATES_STATS")
    def update(self, entry: CacheEntry) -> None:
        if self.policy.update(entry) and entry.lpn not in self._queued:
            self._candidates.append(entry.lpn)
            self._queued.add(entry.lpn)
            self._promote_signals.add()

    @effects("MUTATES_STATE")
    def adjust_cnt(self, entry: CacheEntry) -> None:
        self.policy.adjust_cnt(entry)

    @effects("MUTATES_STATE")
    def take_candidates(self) -> List[LPN]:
        """Drain queued promotion candidates (lpns), oldest first."""
        drained = list(self._candidates)
        self._candidates.clear()
        self._queued.clear()
        return drained

    @property
    def curr_threshold(self) -> int:
        return self.policy.curr_threshold
