"""FlatFlash: the unified memory-storage hierarchy (§3).

The flat address space spans host DRAM and the SSD BAR.  A virtual page's
PTE points either at a DRAM frame or directly at a flash page — both
*present* — so SSD-resident pages are accessed with ordinary loads/stores
over PCIe MMIO instead of page faults.  Hot pages are promoted to DRAM by
the adaptive scheme of Algorithm 1, off the critical path, with in-flight
promotions kept consistent by the PLB (Fig. 4).

Timeline model for off-critical-path promotion: a promotion started at
time T completes at ``T + page_promotion_ns`` (12.1 us, Table 2).  Until
the simulated clock passes that point, accesses to the page are mediated
by the PLB — stores land in the destination frame and own their cache
line; loads of not-yet-copied lines are forwarded to the SSD.  Inbound
copy progress advances linearly with simulated time.

Background costs (promotion DMA, LRU eviction write-back, GC, lazy remap
propagation) are charged to ``background_ns`` rather than to the access
that happened to trigger them, which is exactly the paper's claim that
these activities do not stall the application.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.batch import batchable
from repro.config import FlatFlashConfig
from repro.core.memory_system import AccessResult, MemorySystem
from repro.costs import counters
from repro.effects import effects
from repro.core.promotion import PromotionManager
from repro.host.bridge import HostBridge, MMIORetryPolicy
from repro.host.cpu_cache import CPUCache
from repro.host.dram import Frame, HostDRAM
from repro.host.page_table import Domain, PageTableEntry
from repro.host.plb import PLBEntry
from repro.interconnect.pcie import PCIeFaultError
from repro.ssd.device import ByteAddressableSSD
from repro.units import LPN, VPN, HostPage, OffsetBytes, TimeNs


class _InFlightPromotion:
    """Book-keeping for one promotion between start and completion."""

    __slots__ = ("vpn", "lpn", "ssd_tag", "frame", "plb_entry", "snapshot", "was_dirty", "started_ns")

    def __init__(
        self,
        vpn: VPN,
        lpn: LPN,
        ssd_tag: HostPage,
        frame: Frame,
        plb_entry: PLBEntry,
        snapshot: Optional[bytes],
        was_dirty: bool,
        started_ns: TimeNs,
    ) -> None:
        self.vpn = vpn
        self.lpn = lpn
        self.ssd_tag = ssd_tag
        self.frame = frame
        self.plb_entry = plb_entry
        self.snapshot = snapshot
        self.was_dirty = was_dirty
        self.started_ns = started_ns


@counters(
    owner="mem",
    conserve=(
        "_complete_promotion: mem.pages_in == 1",
        "_evict_frame: mem.evictions == 1",
        "mem.pages_out <= mem.evictions",
    ),
)
class FlatFlash(MemorySystem):
    """The paper's system: byte-addressable SSD + DRAM, one flat space."""

    name = "FlatFlash"
    #: Capability marker: byte-granular persistence (persist-mapped pages,
    #: posted MMIO writes + write-verify fence).  Apps gate on this rather
    #: than the concrete class so fleets compose transparently.
    supports_byte_persistence = True

    def __init__(
        self,
        config: Optional[FlatFlashConfig] = None,
        cache_policy: str = "rrip",
        promotion_manager: Optional[PromotionManager] = None,
        device_id: Optional[int] = None,
    ) -> None:
        if config is None:
            config = FlatFlashConfig()
        super().__init__(config)
        geometry = config.geometry
        self.ssd = ByteAddressableSSD(
            config,
            host_merged_ftl=True,
            cache_policy=cache_policy,
            stats=self.stats,
            device_id=device_id,
        )
        self.dram = HostDRAM(
            geometry.dram_pages,
            geometry.page_size,
            track_data=config.track_data,
            stats=self.stats,
        )
        self.bridge = HostBridge(
            dram_bytes=geometry.dram_pages * geometry.page_size,
            ssd_bar=self.ssd.bar,
            page_size=geometry.page_size,
            plb_entries=geometry.plb_entries,
            stats=self.stats,
            persistence_sanitizer=self.ssd.persistence_sanitizer,
        )
        if self.ssd.faults is not None:
            # Fault injection active: install the MMIO retry/backoff policy
            # (repro.faults).  Left as None otherwise so the fault-free
            # access path is byte-identical to the baseline.
            faults = config.faults
            self.bridge.mmio_retry = MMIORetryPolicy(
                max_retries=faults.mmio_max_retries,
                backoff_base_ns=faults.mmio_backoff_base_ns,
                backoff_multiplier=faults.mmio_backoff_multiplier,
                degraded_threshold=faults.mmio_degraded_threshold,
                stats=self.stats,
            )
        self.cpu_cache = CPUCache(line_size=geometry.cacheline_size, stats=self.stats)
        if promotion_manager is None:
            promotion_manager = PromotionManager(config.promotion, stats=self.stats)
        self.promotion = promotion_manager
        if config.promotion.enabled:
            self.ssd.promotion_manager = promotion_manager

        # In-flight promotions, keyed by the page's host-visible SSD tag.
        self._in_flight: Dict[HostPage, _InFlightPromotion] = {}
        # Frames pinned as promotion destinations (not evictable).
        self._pinned_frames: set = set()
        # Reverse map for lazy GC remap propagation.
        self._ssd_page_to_vpn: Dict[HostPage, VPN] = {}

        self._pages_in = self.stats.counter("mem.pages_in")
        self._pages_out = self.stats.counter("mem.pages_out")
        self._promotions = self.stats.counter("mem.promotions")
        self._evictions = self.stats.counter("mem.evictions")
        self._plb_hits = self.stats.counter("mem.plb_mediated_accesses")
        self._prefetches = self.stats.counter("mem.prefetch_promotions")
        # Cacheable-MMIO hits the SSD-Cache could not serve (peek/poke
        # missed): the access falls back to the full PCIe path.
        self._cacheable_fallbacks = self.stats.counter("mem.cacheable_fallbacks")
        # Sequential-stream detector for the optional prefetch extension.
        self._last_vpn = -2
        self._stream_run = 0

    # ------------------------------------------------------------------ #
    # Mapping
    # ------------------------------------------------------------------ #

    def _map_page(self, vpn: VPN, lpn: LPN, persist: bool) -> None:
        ssd_page, cost = self.ssd.map_page(lpn)
        self._background_ns.add(cost)  # first-touch backing, not on access path
        pte = self.page_table.entry(vpn)
        pte.point_to_ssd(ssd_page, present=True)
        pte.persist = persist
        self._ssd_page_to_vpn[ssd_page] = vpn

    def _unmap_page(self, vpn: VPN) -> None:
        self.quiesce()  # settle in-flight promotions before tearing down
        pte = self.page_table.lookup(vpn)
        if pte is None:
            return
        if pte.domain is Domain.DRAM and pte.frame_index is not None:
            self.dram.free(self.dram.frames[pte.frame_index])
        elif pte.ssd_page is not None:
            self._ssd_page_to_vpn.pop(pte.ssd_page, None)
        lpn = self._vpn_to_lpn.get(vpn)
        if lpn is not None and self.ssd.ftl.is_mapped(lpn):
            self.ssd.trim(lpn)

    # ------------------------------------------------------------------ #
    # Access path
    # ------------------------------------------------------------------ #

    @effects(
        "READS_CLOCK", "MUTATES_STATE", "MUTATES_STATS", "PERSISTS", "FAULT_HOOK"
    )
    def _access_page(
        self, vpn: VPN, offset: OffsetBytes, size: int, is_write: bool, data: Optional[bytes]
    ) -> AccessResult:
        self._settle_promotions()
        self._drain_remaps()
        if self.config.promotion.sequential_prefetch:
            self._detect_stream(vpn)
        pte = self.page_table.lookup(vpn)
        if pte is None:
            raise KeyError(f"vpn {vpn} is not mapped")
        if pte.domain is Domain.DRAM:
            return self._dram_access(pte, offset, size, is_write, data)
        return self._ssd_access(pte, offset, size, is_write, data)

    def _dram_access(
        self,
        pte: PageTableEntry,
        offset: OffsetBytes,
        size: int,
        is_write: bool,
        data: Optional[bytes],
    ) -> AccessResult:
        frame = self.dram.frames[pte.frame_index]
        self.dram.touch(frame)
        latency = self.config.latency
        if is_write:
            self.dram.write_bytes(frame, offset, data if data is not None else b"\x00" * size)
            return AccessResult(latency.dram_store_ns, "dram")
        payload = self.dram.read_bytes(frame, offset, size)
        return AccessResult(latency.dram_load_ns, "dram", data=payload)

    @effects(
        "READS_CLOCK", "MUTATES_STATE", "MUTATES_STATS", "PERSISTS", "FAULT_HOOK"
    )
    def _ssd_access(
        self,
        pte: PageTableEntry,
        offset: OffsetBytes,
        size: int,
        is_write: bool,
        data: Optional[bytes],
    ) -> AccessResult:
        ssd_page = pte.ssd_page
        assert ssd_page is not None
        flight = self._in_flight.get(ssd_page)
        if flight is not None:
            return self._plb_access(flight, offset, size, is_write, data)
        # Coherent (CAPI-style) interconnect, §3.1: lines backed by the SSD
        # BAR may live in the processor cache, so re-references hit at cache
        # latency instead of paying a PCIe round trip.  Writes are
        # write-through for data fidelity but are charged the cache hit when
        # the line is present; a dirty victim's write-back is posted off the
        # critical path.  Persistent pages may cache *loads* only — stores
        # must reach the device's battery domain (the clflush/fence protocol
        # of §3.5), so they always take the MMIO path.
        cacheable = self.config.cacheable_mmio and not (pte.persist and is_write)
        if cacheable:
            phys = self.bridge.ssd_addr(ssd_page, offset)
            hit, evicted = self.cpu_cache.access(phys, is_write=is_write)
            if evicted is not None:
                self._charge_victim_writeback()
            if hit:
                served = self._cacheable_hit(ssd_page, offset, size, is_write, data)
                if served is not None:
                    return served
        if self.bridge.mmio_retry is not None:
            return self._guarded_mmio(pte, ssd_page, offset, size, is_write, data)
        if is_write:
            mmio = self.ssd.mmio_write(
                ssd_page, offset, size, data=data, persist=pte.persist
            )
        else:
            mmio = self.ssd.mmio_read(ssd_page, offset, size, persist=pte.persist)
        self._background_ns.add(self.ssd.take_background_ns())
        stall_ns = self._start_pending_promotions()
        return AccessResult(mmio.latency_ns + stall_ns, "ssd", data=mmio.data)

    def _charge_victim_writeback(self) -> None:
        """Charge the posted write-back of a dirty CPU-cache victim line.

        Under fault injection the link may drop it; the line's data is not
        lost (payloads flow through the SSD-Cache), so the model just
        charges the lost time and lets a later write-back retry.
        """
        try:
            cost = self.ssd.pcie.mmio_write_cost(self.config.geometry.cacheline_size)
        except PCIeFaultError as fault:
            cost = fault.latency_ns
        self._background_ns.add(cost)

    def _guarded_mmio(
        self,
        pte: PageTableEntry,
        ssd_page: HostPage,
        offset: OffsetBytes,
        size: int,
        is_write: bool,
        data: Optional[bytes],
    ) -> AccessResult:
        """MMIO access under fault injection (repro.faults).

        Bounded retry with exponential backoff on injected PCIe faults.
        A page that crosses the consecutive-failure threshold degrades
        permanently to the block/DMA path (promotion suppressed); an access
        that merely exhausts its retries falls back to the block path once
        but keeps MMIO enabled for the page.
        """
        retry = self.bridge.mmio_retry
        assert retry is not None
        lpn = self.ssd.resolve_lpn(ssd_page)
        if retry.is_degraded(lpn):
            return self._degraded_access(pte, lpn, offset, size, is_write, data, 0)
        extra_ns = 0
        for attempt in range(retry.max_retries + 1):
            try:
                if is_write:
                    mmio = self.ssd.mmio_write(
                        ssd_page, offset, size, data=data, persist=pte.persist
                    )
                else:
                    mmio = self.ssd.mmio_read(
                        ssd_page, offset, size, persist=pte.persist
                    )
            except PCIeFaultError as fault:
                extra_ns += fault.latency_ns
                if retry.note_failure(lpn):
                    self._emit("mmio_degraded", lpn=lpn)
                    return self._degraded_access(
                        pte, lpn, offset, size, is_write, data, extra_ns
                    )
                if attempt < retry.max_retries:
                    extra_ns += retry.backoff_ns(attempt)
                continue
            retry.note_success(lpn)
            self._background_ns.add(self.ssd.take_background_ns())
            stall_ns = self._start_pending_promotions()
            return AccessResult(
                mmio.latency_ns + extra_ns + stall_ns, "ssd", data=mmio.data
            )
        retry.note_giveup()
        return self._degraded_access(pte, lpn, offset, size, is_write, data, extra_ns)

    def _degraded_access(
        self,
        pte: PageTableEntry,
        lpn: LPN,
        offset: OffsetBytes,
        size: int,
        is_write: bool,
        data: Optional[bytes],
        extra_ns: TimeNs,
    ) -> AccessResult:
        """Serve one access over the block/DMA interface.

        Graceful degradation: the page stays reachable at block-I/O latency
        (software overhead + page DMA) instead of erroring.  Writes are a
        read-modify-write of the whole page through the FTL — durable in
        flash, so persist semantics are preserved.  PTE repointing after
        the out-of-place write rides the existing remap-drain machinery.
        """
        retry = self.bridge.mmio_retry
        assert retry is not None
        retry.note_degraded_access()
        cost = extra_ns + self.config.latency.block_io_software_ns
        if is_write:
            page, read_cost = self.ssd.read_page_block(lpn)
            cost += read_cost
            merged = None
            if page is not None:
                buffer = bytearray(page)
                buffer[offset : offset + size] = (
                    data if data is not None else b"\x00" * size
                )
                merged = bytes(buffer)
            cost += self.ssd.write_page_block(lpn, merged)
            self._background_ns.add(self.ssd.take_background_ns())
            return AccessResult(cost, "ssd_block")
        page, read_cost = self.ssd.read_page_block(lpn)
        cost += read_cost
        payload = None
        if page is not None:
            payload = bytes(page[offset : offset + size])
        self._background_ns.add(self.ssd.take_background_ns())
        return AccessResult(cost, "ssd_block", data=payload)

    def _cacheable_hit(
        self,
        ssd_page: HostPage,
        offset: OffsetBytes,
        size: int,
        is_write: bool,
        data: Optional[bytes],
    ) -> Optional[AccessResult]:
        """Serve a CPU-cache hit on an MMIO line; None to fall back to PCIe.

        Data correctness: payloads are pushed/pulled through the SSD-Cache
        entry at zero charge.  If payload tracking is on and the SSD-Cache
        no longer holds the page, fall back to the full MMIO path so no
        update can be lost.
        """
        hit_ns = self.config.latency.cpu_cache_hit_ns
        if not self.config.track_data:
            return AccessResult(hit_ns, "cpu_cache")
        if is_write:
            if data is not None and not self.ssd.poke_bytes(ssd_page, offset, data):
                self._cacheable_fallbacks.add()
                return None
            return AccessResult(hit_ns, "cpu_cache")
        payload = self.ssd.peek_bytes(ssd_page, offset, size)
        if payload is None:
            self._cacheable_fallbacks.add()
            return None
        return AccessResult(hit_ns, "cpu_cache", data=payload)

    # ------------------------------------------------------------------ #
    # PLB-mediated accesses during an in-flight promotion (Fig. 4)
    # ------------------------------------------------------------------ #

    def _line_range(self, offset: OffsetBytes, size: int) -> range:
        line_size = self.config.geometry.cacheline_size
        first = offset // line_size
        last = (offset + size - 1) // line_size
        return range(first, last + 1)

    def _advance_inbound(self, flight: _InFlightPromotion) -> None:
        """Copy inbound lines that have arrived by the current sim time."""
        entry = flight.plb_entry
        total = len(entry.copied)
        promotion_ns = self.config.latency.page_promotion_ns
        elapsed = self.clock.now - flight.started_ns
        if promotion_ns <= 0:
            progress = total
        else:
            progress = min(total, (elapsed * total) // promotion_ns)
        line_size = self.config.geometry.cacheline_size
        while entry.inbound_pos < progress:
            line = entry.inbound_pos
            if self.bridge.plb.inbound_line(entry, line) and flight.snapshot is not None:
                start = line * line_size
                self.dram.write_bytes(
                    flight.frame, start, flight.snapshot[start : start + line_size]
                )
            entry.inbound_pos += 1

    @effects("READS_CLOCK", "MUTATES_STATE", "MUTATES_STATS", "FAULT_HOOK")
    def _plb_access(
        self,
        flight: _InFlightPromotion,
        offset: OffsetBytes,
        size: int,
        is_write: bool,
        data: Optional[bytes],
    ) -> AccessResult:
        self._plb_hits.add()
        self._advance_inbound(flight)
        entry = flight.plb_entry
        latency = self.config.latency
        lines = self._line_range(offset, size)
        if is_write:
            # Stores are redirected to the destination frame and own their
            # lines; later inbound copies of those lines are dropped.  A
            # sub-line store must merge with the line's current contents
            # first (the CPU's read-for-ownership), otherwise taking the
            # Copied bit would discard the snapshot's other bytes.
            line_size = self.config.geometry.cacheline_size
            for line in lines:
                if not entry.copied[line] and flight.snapshot is not None:
                    start = line * line_size
                    self.dram.write_bytes(
                        flight.frame,
                        start,
                        flight.snapshot[start : start + line_size],
                    )
                self.bridge.plb.cpu_store(entry, line)
            self.dram.write_bytes(
                flight.frame, offset, data if data is not None else b"\x00" * size
            )
            return AccessResult(latency.dram_store_ns, "plb")
        if all(self.bridge.plb.cpu_load_from_dram(entry, line) for line in lines):
            payload = self.dram.read_bytes(flight.frame, offset, size)
            return AccessResult(latency.dram_load_ns, "plb", data=payload)
        # At least one line is still on its way: the PLB splits the request,
        # serving copied lines from the destination frame (they may carry
        # redirected stores) and forwarding the rest to the SSD.
        cost = self._plb_forward_read_cost(size)
        payload = None
        if self.config.track_data:
            payload = self._assemble_plb_lines(flight, entry, lines, offset, size)
        return AccessResult(cost, "plb", data=payload)

    @batchable
    def _assemble_plb_lines(
        self,
        flight: _InFlightPromotion,
        entry: PLBEntry,
        lines: List[int],
        offset: int,
        size: int,
    ) -> bytes:
        """Gather the payload of a split PLB read, line by line.

        Copied lines come from the destination DRAM frame (they may carry
        redirected stores), the rest from the promotion snapshot.  Each
        line lands in its own slice of the result (a keyed scatter), so
        the assembly loop is reorder-safe under batching.
        """
        line_size = self.config.geometry.cacheline_size
        assembled = bytearray(size)
        for line in lines:
            line_start = line * line_size
            line_end = line_start + line_size
            lo = max(offset, line_start)
            hi = min(offset + size, line_end)
            if self.bridge.plb.cpu_load_from_dram(entry, line):
                chunk = self.dram.read_bytes(flight.frame, lo, hi - lo)
            elif flight.snapshot is not None:
                chunk = flight.snapshot[lo:hi]
            else:
                chunk = b"\x00" * (hi - lo)
            if chunk is not None:
                assembled[lo - offset : hi - offset] = chunk
        return bytes(assembled)

    # ------------------------------------------------------------------ #
    # Promotion lifecycle
    # ------------------------------------------------------------------ #

    def _start_pending_promotions(self) -> TimeNs:
        """Launch queued promotions; returns stall time (PLB-disabled mode)."""
        stall_ns = 0
        for lpn in self.promotion.take_candidates():
            stall_ns += self._start_promotion(lpn)
        return stall_ns

    def _plb_forward_read_cost(self, size: int) -> TimeNs:
        """Link cost of a PLB-forwarded read, absorbing injected faults.

        Bounded retries without degradation tracking: the page is mid-
        promotion and about to leave the SSD anyway, and the payload is
        assembled from the snapshot/destination frame regardless.
        """
        retry = self.bridge.mmio_retry
        if retry is None:
            return self.ssd.pcie.mmio_read_cost(size)
        cost = 0
        for attempt in range(retry.max_retries + 1):
            try:
                return cost + self.ssd.pcie.mmio_read_cost(size)
            except PCIeFaultError as fault:
                cost += fault.latency_ns
                if attempt < retry.max_retries:
                    cost += retry.backoff_ns(attempt)
        retry.note_giveup()
        return cost

    @effects(
        "READS_CLOCK", "MUTATES_STATE", "MUTATES_STATS", "PERSISTS", "FAULT_HOOK"
    )
    def _start_promotion(self, lpn: LPN) -> TimeNs:
        """Kick off one promotion; returns the stall charged to the access
        (nonzero only in the PLB-disabled ablation)."""
        retry = self.bridge.mmio_retry
        if retry is not None and retry.is_degraded(lpn):
            # Degraded pages live on the block path; promoting one would
            # re-enable the MMIO path that keeps failing for it.
            return 0
        ssd_page = self.ssd.host_page_of(lpn)
        vpn = self._ssd_page_to_vpn.get(ssd_page)
        if vpn is None:
            return 0
        pte = self.page_table.lookup(vpn)
        if pte is None or pte.domain is not Domain.SSD or pte.persist:
            return 0
        if not self.config.plb_enabled:
            return self._promote_stalling(vpn, ssd_page)
        if ssd_page in self._in_flight or not self.bridge.plb.has_free_entry:
            return 0
        frame = self._obtain_frame(vpn)
        if frame is None:
            return 0
        snapshot, was_dirty, dma_cost = self.ssd.read_page_for_promotion(ssd_page)
        self._background_ns.add(dma_cost)
        num_lines = self.config.geometry.cachelines_per_page
        complete_at = self.clock.now + self.config.latency.page_promotion_ns
        plb_entry = self.bridge.plb.start(ssd_page, frame.index, num_lines, complete_at)
        assert plb_entry is not None  # has_free_entry checked above
        self._in_flight[ssd_page] = _InFlightPromotion(
            vpn, lpn, ssd_page, frame, plb_entry, snapshot, was_dirty, self.clock.now
        )
        self._pinned_frames.add(frame.index)
        self._promotions.add()
        self._emit("promotion_start", vpn=vpn, ssd_page=ssd_page, frame=frame.index)
        return 0

    def _detect_stream(self, vpn: VPN) -> None:
        """Sequential-prefetch extension: after N pages in ascending order,
        promote the page ahead of the stream before it is touched."""
        if vpn == self._last_vpn:
            return  # staying within a page keeps the run alive
        if vpn == self._last_vpn + 1:
            self._stream_run += 1
        else:
            self._stream_run = 0
        self._last_vpn = vpn
        if self._stream_run < self.config.promotion.sequential_prefetch:
            return
        next_vpn = vpn + 1
        pte = self.page_table.lookup(next_vpn)
        if (
            pte is None
            or pte.domain is not Domain.SSD
            or pte.persist
            or pte.ssd_page in self._in_flight
        ):
            return
        lpn = self._vpn_to_lpn.get(next_vpn)
        if lpn is None:
            return
        before = self._promotions.value
        stall = self._start_promotion(lpn)
        if stall:  # PLB-disabled mode: prefetch copies run in background
            self._background_ns.add(stall)
        if self._promotions.value > before:
            self._prefetches.add()

    def _promote_stalling(self, vpn: VPN, ssd_page: HostPage) -> TimeNs:
        """PLB-disabled ablation: promote synchronously.  Returns the stall
        (page copy + PTE/TLB update) charged to the triggering access."""
        frame = self._obtain_frame(vpn)
        if frame is None:
            return 0
        snapshot, was_dirty, dma_cost = self.ssd.read_page_for_promotion(ssd_page)
        if frame.data is not None and snapshot is not None:
            frame.data[:] = snapshot
        frame.dirty = was_dirty
        pte = self.page_table.entry(vpn)
        pte.point_to_dram(frame.index)
        self._ssd_page_to_vpn.pop(ssd_page, None)
        latency = self.config.latency
        stall = dma_cost + latency.page_promotion_ns + latency.pte_tlb_update_ns
        stall += self.tlb.invalidate(vpn)
        self._promotions.add()
        self._pages_in.add()
        return stall

    def _settle_promotions(self) -> None:
        """Retire in-flight promotions whose copy has completed."""
        if not self._in_flight:
            return
        now = self.clock.now
        finished = [
            flight
            for flight in self._in_flight.values()
            if flight.plb_entry.complete_at_ns <= now
        ]
        for flight in finished:
            self._complete_promotion(flight)

    def _complete_promotion(self, flight: _InFlightPromotion) -> None:
        entry = flight.plb_entry
        total = len(entry.copied)
        line_size = self.config.geometry.cacheline_size
        # Deliver any trailing inbound lines.
        while entry.inbound_pos < total:
            line = entry.inbound_pos
            if self.bridge.plb.inbound_line(entry, line) and flight.snapshot is not None:
                start = line * line_size
                self.dram.write_bytes(
                    flight.frame, start, flight.snapshot[start : start + line_size]
                )
            entry.inbound_pos += 1
        self.bridge.plb.retire(entry)
        del self._in_flight[flight.ssd_tag]
        self._pinned_frames.discard(flight.frame.index)
        # Stores during the flight marked the frame dirty; a dirty SSD-Cache
        # source also forces dirty so eviction cannot lose the newest copy.
        flight.frame.dirty = flight.frame.dirty or flight.was_dirty
        pte = self.page_table.entry(flight.vpn)
        pte.point_to_dram(flight.frame.index)
        self._ssd_page_to_vpn.pop(flight.ssd_tag, None)
        self._background_ns.add(self.config.latency.pte_tlb_update_ns)
        self._background_ns.add(self.tlb.invalidate(flight.vpn))
        self._pages_in.add()
        self._emit("promotion_complete", vpn=flight.vpn, frame=flight.frame.index)

    # ------------------------------------------------------------------ #
    # Eviction (LRU page back to the SSD)
    # ------------------------------------------------------------------ #

    def _obtain_frame(self, vpn: VPN) -> Optional[Frame]:
        frame = self.dram.allocate(vpn)
        if frame is not None:
            return frame
        victim = self._pick_victim()
        if victim is None:
            return None
        self._evict_frame(victim)
        return self.dram.allocate(vpn)

    def _pick_victim(self) -> Optional[Frame]:
        for frame in self.dram.iter_lru():
            if frame.index not in self._pinned_frames:
                return frame
        return None

    def _evict_frame(self, frame: Frame) -> None:
        """Write an LRU page back to the SSD and repoint its PTE (§3.3)."""
        vpn = frame.vpn
        assert vpn is not None
        was_dirty = frame.dirty
        lpn = self.lpn_of_vpn(vpn)
        data = bytes(frame.data) if frame.data is not None else None
        if was_dirty:
            new_ssd_page, cost = self.ssd.write_page(lpn, data)
        else:
            # Clean page: the flash copy is current; just drop the frame.
            new_ssd_page, cost = self.ssd.host_page_of(lpn), 0
        self._background_ns.add(cost)
        pte = self.page_table.entry(vpn)
        pte.point_to_ssd(new_ssd_page, present=True)
        self._ssd_page_to_vpn[new_ssd_page] = vpn
        self._background_ns.add(self.tlb.invalidate(vpn))
        self._background_ns.add(self.config.latency.pte_tlb_update_ns)
        self.dram.free(frame)
        self._evictions.add()
        self._emit("eviction", vpn=vpn, dirty=int(was_dirty), ssd_page=new_ssd_page)
        if was_dirty:
            self._pages_out.add()

    # ------------------------------------------------------------------ #
    # Lazy GC remap propagation (§4)
    # ------------------------------------------------------------------ #

    def _drain_remaps(self) -> None:
        updates, cost = self.ssd.drain_remaps()
        if not updates:
            return
        moved_vpns: List[int] = []
        for old_page, new_page in updates.items():
            vpn = self._ssd_page_to_vpn.pop(old_page, None)
            if vpn is None:
                continue  # page was promoted or unmapped meanwhile
            pte = self.page_table.entry(vpn)
            if pte.domain is Domain.SSD and pte.ssd_page == old_page:
                pte.ssd_page = new_page
                self._ssd_page_to_vpn[new_page] = vpn
                moved_vpns.append(vpn)
        self._background_ns.add(cost)
        self._background_ns.add(self.tlb.batch_invalidate(moved_vpns))
        self._emit("remap_drain", moved=len(moved_vpns))

    # ------------------------------------------------------------------ #
    # Maintenance / introspection
    # ------------------------------------------------------------------ #

    @effects("READS_CLOCK", "MUTATES_STATE", "MUTATES_STATS")
    def quiesce(self) -> None:
        """Finish all in-flight promotions (end-of-experiment settling)."""
        for flight in list(self._in_flight.values()):
            self._complete_promotion(flight)
        self._drain_remaps()

    @property
    def promotions(self) -> int:
        return self._promotions.value

    @property
    def evictions(self) -> int:
        return self._evictions.value
