"""Byte-granular data persistence (§3.5).

A persistent memory region maps its pages with the PTE Persist (P) bit set:
those pages are pinned to the SSD (never promoted — the battery-backed
SSD-Cache is the durability domain, host DRAM is not), and the P bit rides
with every request to the host bridge, which moves it into the PCIe TLP's
attribute field.

The durability protocol for a store is the paper's:

1. store to the region (a posted MMIO write after cache-line flushes),
2. ``clwb``/``clflush`` the written lines,
3. a *write-verify read* that acts like ``mfence`` — once it returns,
   every earlier posted write sits in the battery-backed SSD-Cache and
   survives power failure.

:meth:`PersistentRegion.persist_store` performs 1-2; :meth:`commit` is the
fence.  The convenience :meth:`durable_store` does all three, which is what
a single small metadata update costs end to end.

The region duck-types its system: anything with ``store``/``mmap``, a
clock, and an ``ssd`` port exposing ``verify_read``/``recover_read``/
``persistence_sanitizer`` works.  On a :class:`~repro.fleet.FlatFlashFleet`
that makes durable writes *replica-aware* for free — a persist store fans
out to every copy, the fence fans out to every active member (costing the
slowest one), and ``recover_bytes`` routes through the shard router to the
page's current primary.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.memory_system import MappedRegion
from repro.interconnect.pcie import PCIeFaultError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.hierarchy import FlatFlash


class PersistentRegion:
    """A byte-granular persistent memory region on a FlatFlash system.

    Create through :func:`create_pmem_region` (the paper's API name).
    """

    def __init__(self, system: "FlatFlash", region: MappedRegion) -> None:
        if not region.persist:
            raise ValueError("PersistentRegion requires a persist-mapped region")
        self.system = system
        self.region = region
        stats = system.stats
        self._persist_stores = stats.counter("pmem.persist_stores")
        self._commits = stats.counter("pmem.commits")
        # Post-crash reads that found no surviving flash copy: callers get
        # None and must treat the bytes as lost, never as zeroes.
        self._recover_failures = stats.counter("pmem.recover_failures")

    @property
    def size(self) -> int:
        return self.region.size

    def addr(self, offset: int) -> int:
        return self.region.addr(offset)

    # ------------------------------------------------------------------ #
    # Durability protocol
    # ------------------------------------------------------------------ #

    def persist_store(self, offset: int, size: int, data: Optional[bytes] = None) -> int:
        """Posted durable write: store + cache-line flush; returns cost in ns.

        Not durable until :meth:`commit` — a crash may lose it (the posted
        write can still be sitting in the host bridge's write buffer).
        """
        system = self.system
        vaddr = self.region.addr(offset)
        result = system.store(vaddr, size, data)
        # Flush the written lines out of the processor cache (clwb).
        line = system.config.geometry.cacheline_size
        lines = (offset + size - 1) // line - offset // line + 1
        flush_cost = lines * system.config.latency.clflush_ns
        system.clock.advance(flush_cost)
        self._persist_stores.add()
        return result.latency_ns + flush_cost

    def commit(self) -> int:
        """Write-verify read fence: all prior posted writes become durable."""
        cost = self.system.ssd.verify_read()
        self.system.clock.advance(cost)
        self._commits.add()
        return cost

    def durable_store(self, offset: int, size: int, data: Optional[bytes] = None) -> int:
        """Store + flush + fence: one fully durable byte-granular update."""
        cost = self.persist_store(offset, size, data)
        cost += self.commit()
        sanitizer = self.system.ssd.persistence_sanitizer
        if sanitizer is not None:
            # The store is acknowledged durable here: no posted persist
            # write may remain unfenced, or a crash would lose it.
            sanitizer.ack_durable(f"durable_store(offset={offset}, size={size})")
        return cost

    def atomic_store(self, offset: int, size: int) -> int:
        """A PCIe atomic against the region: durable on completion (non-posted)."""
        system = self.system
        vpn = (self.region.base_addr + offset) // system.page_size
        pte = system.page_table.lookup(vpn)
        if pte is None or pte.ssd_page is None:
            raise KeyError(f"persistent page vpn={vpn} is not SSD-resident")
        retry = system.bridge.mmio_retry
        page_offset = offset % system.page_size
        extra_ns = 0
        attempts = 1 if retry is None else retry.max_retries + 1
        for attempt in range(attempts):
            try:
                result = system.ssd.mmio_atomic(pte.ssd_page, page_offset, size)
            except PCIeFaultError as fault:
                extra_ns += fault.latency_ns
                assert retry is not None  # faults only fire with a policy
                if attempt < retry.max_retries:
                    extra_ns += retry.backoff_ns(attempt)
                continue
            cost = result.latency_ns + extra_ns
            system.clock.advance(cost)
            return cost
        # Retries exhausted: complete the update through the block path —
        # a whole-page read-modify-write through the FTL, durable in flash.
        assert retry is not None
        retry.note_giveup()
        lpn = system.ssd.resolve_lpn(pte.ssd_page)
        page, read_cost = system.ssd.read_page_block(lpn)
        write_cost = system.ssd.write_page_block(lpn, page)
        cost = (
            extra_ns
            + system.config.latency.block_io_software_ns
            + read_cost
            + write_cost
        )
        system.clock.advance(cost)
        return cost

    def load(self, offset: int, size: int) -> Optional[bytes]:
        """Read back region contents (normal load path)."""
        return self.system.load(self.region.addr(offset), size).data

    # ------------------------------------------------------------------ #
    # Crash testing helpers
    # ------------------------------------------------------------------ #

    def recover_bytes(self, offset: int, size: int) -> Optional[bytes]:
        """Contents after a crash: read straight from the flash copy."""
        system = self.system
        page, page_offset = divmod(offset, system.page_size)
        if page != (offset + size - 1) // system.page_size:
            raise ValueError("recover_bytes must not cross a page boundary")
        lpn = system.lpn_of_vpn(self.region.base_vpn + page)
        data = system.ssd.recover_read(lpn)
        if data is None:
            self._recover_failures.add()
            return None
        return data[page_offset : page_offset + size]


def create_pmem_region(system: "FlatFlash", num_pages: int, name: str = "pmem") -> PersistentRegion:
    """The paper's ``create_pmem_region(void* vaddr, size_t size)``.

    Maps ``num_pages`` with the Persist bit set and wraps them in a
    :class:`PersistentRegion`.
    """
    region = system.mmap(num_pages, persist=True, name=name)
    return PersistentRegion(system, region)
