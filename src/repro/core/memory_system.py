"""The common memory-system interface shared by FlatFlash and the baselines.

Every system under evaluation — FlatFlash, UnifiedMMap, TraditionalStack,
DRAM-only — exposes the same programming model: ``mmap`` a region, then
``load``/``store`` arbitrary byte ranges of virtual addresses.  Each access
returns an :class:`AccessResult` carrying its simulated cost, and the
system's clock advances by that cost, so workloads are written once and run
unchanged against every system.

Subclasses implement one method, ``_access_page``: a load/store confined to
a single page.  The base class handles region bookkeeping, the page split
for ranges that cross page boundaries, TLB accounting, and value-typed
helpers used by the example applications.
"""

from __future__ import annotations

import abc
import struct
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.batch import batchable, reduction
from repro.config import FlatFlashConfig
from repro.costs import counters
from repro.effects import effects
from repro.host.page_table import PageTable
from repro.host.tlb import TLB
from repro.sim.clock import SimClock
from repro.sim.sanitizers import ClockSanitizer
from repro.sim.stats import LatencyStats, StatRegistry
from repro.units import LPN, VPN, OffsetBytes, TimeNs


class AccessResult:
    """Outcome of one load/store."""

    __slots__ = ("latency_ns", "source", "fault", "data")

    def __init__(
        self,
        latency_ns: int,
        source: str,
        fault: bool = False,
        data: Optional[bytes] = None,
    ) -> None:
        self.latency_ns = latency_ns
        self.source = source  # "dram", "ssd", "plb", "cpu_cache"
        self.fault = fault
        self.data = data

    def __repr__(self) -> str:
        return (
            f"AccessResult({self.latency_ns}ns from {self.source}"
            f"{', fault' if self.fault else ''})"
        )


class MappedRegion:
    """A contiguous virtual mapping backed by the SSD (an mmap-ed file)."""

    __slots__ = ("base_vpn", "num_pages", "page_size", "persist", "name")

    def __init__(
        self, base_vpn: VPN, num_pages: int, page_size: int, persist: bool, name: str
    ) -> None:
        self.base_vpn = base_vpn
        self.num_pages = num_pages
        self.page_size = page_size
        self.persist = persist
        self.name = name

    @property
    def base_addr(self) -> int:
        return self.base_vpn * self.page_size

    @property
    def size(self) -> int:
        return self.num_pages * self.page_size

    def addr(self, offset: int) -> int:
        """Virtual address ``offset`` bytes into the region."""
        if not 0 <= offset < self.size:
            raise ValueError(f"offset {offset} outside region of {self.size} bytes")
        return self.base_addr + offset

    def page_addr(self, page: int, offset: int = 0) -> int:
        """Virtual address of byte ``offset`` within the region's ``page``-th page."""
        if not 0 <= page < self.num_pages:
            raise ValueError(f"page {page} outside region of {self.num_pages} pages")
        return self.addr(page * self.page_size + offset)

    def __repr__(self) -> str:
        return f"MappedRegion({self.name!r}, pages={self.num_pages}, persist={self.persist})"


@counters(
    owner="mem",
    conserve=(
        "_access: mem.loads + mem.stores == 1",
        "_access: mem.access:samples == 1",
    ),
)
class MemorySystem(abc.ABC):
    """Base class: virtual address space, TLB accounting, access splitting."""

    #: Human-readable system name, used in experiment tables.
    name = "abstract"

    def __init__(self, config: FlatFlashConfig) -> None:
        config.validate()
        self.config = config
        self.clock = SimClock(
            sanitizer=ClockSanitizer() if config.sanitizers.clock else None
        )
        self.stats = StatRegistry()
        self.page_size = config.geometry.page_size
        self.page_table = PageTable(config.latency.page_table_walk_ns, stats=self.stats)
        self.tlb = TLB(
            config.geometry.tlb_entries,
            config.latency.tlb_shootdown_ns,
            stats=self.stats,
        )
        self.regions: List[MappedRegion] = []
        self._next_vpn = 0
        self._vpn_to_lpn: Dict[VPN, LPN] = {}
        self._loads = self.stats.counter("mem.loads")
        self._stores = self.stats.counter("mem.stores")
        self._access_latency = self.stats.latency("mem.access", keep_samples=False)
        # Per-source latency stats, cached by source name: the f-string
        # format + registry lookup is measurable on the per-access path.
        self._by_source_latency: Dict[str, LatencyStats] = {}
        # Time spent off the critical path (background promotion, eviction,
        # GC write-back); experiments report it separately.
        self._background_ns = self.stats.counter("mem.background_ns")
        # Optional debug event ring (promotions, evictions, faults, ...).
        self._events: Optional[Deque[Tuple[int, str, Dict[str, int]]]] = None

    # ------------------------------------------------------------------ #
    # Mapping
    # ------------------------------------------------------------------ #

    def mmap(
        self, num_pages: int, persist: bool = False, name: str = "region"
    ) -> MappedRegion:
        """Map ``num_pages`` of SSD-backed memory into the address space."""
        if num_pages <= 0:
            raise ValueError(f"num_pages must be > 0, got {num_pages}")
        region = MappedRegion(self._next_vpn, num_pages, self.page_size, persist, name)
        for page in range(num_pages):
            vpn = region.base_vpn + page
            # Regions tile the SSD's logical space linearly: the lpn is
            # numerically the vpn, but it lives in the SSD's address domain
            # — the cast is the sanctioned host→ssd translation.
            lpn = LPN(vpn)
            self._vpn_to_lpn[vpn] = lpn
            self._map_page(vpn, lpn, persist)
        self._next_vpn += num_pages
        self.regions.append(region)
        return region

    @abc.abstractmethod
    def _map_page(self, vpn: VPN, lpn: LPN, persist: bool) -> None:
        """Create the initial PTE for one page of a new region."""

    def munmap(self, region: MappedRegion) -> None:
        """Unmap a region: release frames, TRIM the SSD backing, drop PTEs.

        Virtual addresses are not recycled (each mmap gets fresh vpns), so
        a dangling pointer into an unmapped region faults loudly instead of
        aliasing new data.
        """
        if region not in self.regions:
            raise ValueError(f"{region!r} is not mapped on this system")
        vpns = [region.base_vpn + page for page in range(region.num_pages)]
        for vpn in vpns:
            self._unmap_page(vpn)
            self._vpn_to_lpn.pop(vpn, None)
            self.page_table.remove(vpn)
        self._background_ns.add(self.tlb.batch_invalidate(vpns))
        self.regions.remove(region)

    def _unmap_page(self, vpn: VPN) -> None:
        """Release one page's backing resources (subclass hook)."""

    def lpn_of_vpn(self, vpn: VPN) -> LPN:
        try:
            return self._vpn_to_lpn[vpn]
        except KeyError:
            raise KeyError(f"vpn {vpn} is not mapped") from None

    @batchable
    @reduction(var="misses", op="+")
    @reduction(var="walk_ns", op="+")
    def warm_translations(self, vpns: Iterable[VPN]) -> Tuple[int, TimeNs]:
        """Pre-install translations for a batch of pages, off the clock.

        The page-table-walk loop the vectorized engine batches: each vpn
        is probed through the TLB and, on a miss, walked and filled.
        Iterations are independent up to the two declared commutative
        sums, so the engine may replay them in any order.  Returns
        (misses, total walk cost in ns); nothing is charged to the clock.
        """
        misses = 0
        walk_ns = 0
        for vpn in vpns:
            if self.tlb.lookup(vpn):
                continue
            _pte, cost = self.page_table.walk(vpn)
            self.tlb.fill(vpn)
            misses += 1
            walk_ns += cost
        return misses, walk_ns

    # ------------------------------------------------------------------ #
    # Access path
    # ------------------------------------------------------------------ #

    @effects(
        "READS_CLOCK",
        "ADVANCES_CLOCK",
        "MUTATES_STATE",
        "MUTATES_STATS",
        "PERSISTS",
        "FAULT_HOOK",
    )
    def load(self, vaddr: int, size: int) -> AccessResult:
        """Read ``size`` bytes at ``vaddr``; advances the clock by the cost."""
        return self._access(vaddr, size, is_write=False, data=None)

    @effects(
        "READS_CLOCK",
        "ADVANCES_CLOCK",
        "MUTATES_STATE",
        "MUTATES_STATS",
        "PERSISTS",
        "FAULT_HOOK",
    )
    def store(self, vaddr: int, size: int, data: Optional[bytes] = None) -> AccessResult:
        """Write ``size`` bytes at ``vaddr``; ``data`` optional (accounting-only)."""
        if data is not None and len(data) != size:
            raise ValueError(f"data length {len(data)} != size {size}")
        return self._access(vaddr, size, is_write=True, data=data)

    @effects(
        "READS_CLOCK",
        "ADVANCES_CLOCK",
        "MUTATES_STATE",
        "MUTATES_STATS",
        "PERSISTS",
        "FAULT_HOOK",
    )
    def _access(
        self, vaddr: int, size: int, is_write: bool, data: Optional[bytes]
    ) -> AccessResult:
        if size <= 0:
            raise ValueError(f"access size must be > 0, got {size}")
        if vaddr < 0:
            raise ValueError(f"negative virtual address {vaddr:#x}")
        if is_write:
            self._stores.add()
        else:
            self._loads.add()
        total_latency = 0
        fault = False
        source = "dram"
        chunks: List[bytes] = []
        offset_in_access = 0
        remaining = size
        addr = vaddr
        while remaining > 0:
            vpn, page_offset = divmod(addr, self.page_size)
            chunk = min(remaining, self.page_size - page_offset)
            payload = None
            if data is not None:
                payload = data[offset_in_access : offset_in_access + chunk]
            tlb_hit = self.tlb.lookup(vpn)
            walk_cost = 0
            if not tlb_hit:
                _pte, walk_cost = self.page_table.walk(vpn)
                self.tlb.fill(vpn)
            result = self._access_page(vpn, page_offset, chunk, is_write, payload)
            total_latency += walk_cost + result.latency_ns
            fault = fault or result.fault
            source = result.source
            if result.data is not None:
                chunks.append(result.data)
            addr += chunk
            offset_in_access += chunk
            remaining -= chunk
        self.clock.advance(total_latency)
        self._access_latency.record(total_latency)
        by_source = self._by_source_latency.get(source)
        if by_source is None:
            by_source = self.stats.latency(f"mem.by_source.{source}", keep_samples=False)
            self._by_source_latency[source] = by_source
        by_source.record(total_latency)
        merged = b"".join(chunks) if chunks else None
        return AccessResult(total_latency, source, fault, merged)

    @abc.abstractmethod
    def _access_page(
        self, vpn: VPN, offset: OffsetBytes, size: int, is_write: bool, data: Optional[bytes]
    ) -> AccessResult:
        """One load/store confined to page ``vpn``."""

    # ------------------------------------------------------------------ #
    # Value helpers for example applications
    # ------------------------------------------------------------------ #

    def store_u64(self, vaddr: int, value: int) -> AccessResult:
        return self.store(vaddr, 8, struct.pack("<Q", value & (2**64 - 1)))

    def load_u64(self, vaddr: int) -> Tuple[int, AccessResult]:
        result = self.load(vaddr, 8)
        value = struct.unpack("<Q", result.data)[0] if result.data else 0
        return value, result

    def store_f64(self, vaddr: int, value: float) -> AccessResult:
        return self.store(vaddr, 8, struct.pack("<d", value))

    def load_f64(self, vaddr: int) -> Tuple[float, AccessResult]:
        result = self.load(vaddr, 8)
        value = struct.unpack("<d", result.data)[0] if result.data else 0.0
        return value, result

    # ------------------------------------------------------------------ #
    # Debug event tracing
    # ------------------------------------------------------------------ #

    def enable_event_log(self, capacity: int = 1_024) -> None:
        """Keep the last ``capacity`` hierarchy events for debugging.

        Events are (timestamp_ns, kind, fields) tuples — promotions,
        evictions, faults, remap drains — readable via :meth:`events`.
        """
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self._events = deque(maxlen=capacity)

    def disable_event_log(self) -> None:
        self._events = None

    def _emit(self, kind: str, **fields: int) -> None:
        if self._events is not None:
            self._events.append((self.clock.now, kind, fields))

    def events(self, kind: Optional[str] = None) -> List[Tuple[int, str, Dict[str, int]]]:
        """Recorded events, optionally filtered by kind."""
        if self._events is None:
            return []
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event[1] == kind]

    # ------------------------------------------------------------------ #
    # Explicit time charging (used by apps for non-memory work)
    # ------------------------------------------------------------------ #

    @effects("ADVANCES_CLOCK")
    def charge_foreground(self, ns: TimeNs) -> None:
        """Advance the clock for work on the critical path (I/O, compute)."""
        self.clock.advance(ns)

    def charge_background(self, ns: TimeNs) -> None:
        """Account work that does not stall the application."""
        self._background_ns.add(ns)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    @property
    def elapsed_ns(self) -> int:
        return self.clock.now

    @property
    def background_ns(self) -> int:
        return self._background_ns.value

    @property
    def page_movements(self) -> int:
        """Pages moved between SSD and host DRAM, both directions."""
        counters = self.stats.counters()
        return counters.get("mem.pages_in", 0) + counters.get("mem.pages_out", 0)

    def snapshot(self) -> Dict[str, float]:
        return self.stats.as_dict()
