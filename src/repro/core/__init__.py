"""FlatFlash core: the unified memory-storage hierarchy (the paper's contribution)."""

from repro.core.hierarchy import FlatFlash
from repro.core.memory_system import AccessResult, MappedRegion, MemorySystem
from repro.core.persistence import PersistentRegion, create_pmem_region
from repro.core.promotion import AdaptivePromotionPolicy, PromotionManager

__all__ = [
    "FlatFlash",
    "MemorySystem",
    "MappedRegion",
    "AccessResult",
    "PromotionManager",
    "AdaptivePromotionPolicy",
    "PersistentRegion",
    "create_pmem_region",
]
