"""Counter-conservation contracts for the cost analysis (`simcost`).

The paper's headline numbers are sums of the Table-2 cost constants in
:class:`repro.config.LatencyConfig`, charged along hot paths, plus the
`sim/stats.py` counters the evaluation reports.  ROADMAP item 1 will
rewrite those paths into batched kernels; the contract that the rewrite
must preserve is *which constants each path charges and which counters
it bumps*.  This module is the declaration side of that contract:

* :func:`counters` — a runtime-no-op class decorator declaring which
  stat-name prefix a component owns and which conservation invariants
  its counters obey.  `simcost` (``src/repro/analysis/simcost``)
  verifies the invariants per control-flow path (rule SC004) and
  enforces prefix ownership (rule SC005).
* :func:`parse_invariant` — the invariant grammar, shared by the
  decorator (eager validation at import time) and the analyzer.

Invariant grammar
-----------------

::

    invariant := [method ":"] sum cmp sum
    sum       := term ("+" term)*
    term      := integer | leg
    leg       := stat-name [":" ("total" | "hit" | "miss" | "samples")]
    cmp       := "==" | "<=" | ">="

A *leg* names a stat primitive: a :class:`~repro.sim.stats.Counter` by
its registry name (``plb.promotions_started``), or one leg of a
:class:`~repro.sim.stats.RatioStat` (``plb.hits:total`` /
``plb.hits:hit`` / ``plb.hits:miss``) or
:class:`~repro.sim.stats.LatencyStats` (``name:samples``).  Stat names
always contain a dot, which is how a leading ``method:`` scope prefix
is told apart from a leg.

A *scoped* invariant (``"lookup: plb.hits:total == 1"``) must hold on
every non-raising control-flow path through that method of the
decorated class.  An *unscoped* invariant (``"ssd_cache.dirty_evictions
<= ssd_cache.evictions"``) must hold on every path of every method.

Example::

    @counters(
        owner="plb",
        conserve=(
            "lookup: plb.hits:total == 1",
            "plb.hits:hit + plb.hits:miss == plb.hits:total",
        ),
    )
    class PLB:
        ...

Like ``@kernel`` / ``@effects`` (:mod:`repro.effects`), the decorator
attaches metadata (``__sim_counters__``) and returns the class
unchanged — zero runtime cost on hot paths.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Type, TypeVar

#: Legs a ratio/latency stat exposes to invariants, beyond plain counters.
RATIO_LEGS = ("total", "hit", "miss")
LATENCY_LEGS = ("samples",)
_ALL_LEGS = RATIO_LEGS + LATENCY_LEGS

#: Comparison operators the grammar accepts, longest first.
OPERATORS = ("==", "<=", ">=")

_OWNER_RE = re.compile(r"^[a-z][a-z0-9_]*$")
_SCOPE_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\s*:\s+(.*)$")
_LEG_RE = re.compile(
    r"^[a-z_][a-z0-9_]*(?:\.[a-z0-9_]+)+(?::(" + "|".join(_ALL_LEGS) + r"))?$"
)
_INT_RE = re.compile(r"^\d+$")

#: One side's term: ``("const", int)`` or ``("leg", stat-leg-name)``.
Term = Tuple[str, object]


@dataclass(frozen=True)
class Invariant:
    """One parsed conservation invariant."""

    scope: Optional[str]  # method name, or None for class-wide
    lhs: Tuple[Term, ...]
    op: str  # "==", "<=" or ">="
    rhs: Tuple[Term, ...]
    raw: str

    def legs(self) -> Tuple[str, ...]:
        """Every stat leg the invariant mentions, in appearance order."""
        out = []
        for kind, value in self.lhs + self.rhs:
            if kind == "leg" and value not in out:
                out.append(value)
        return tuple(out)


def _parse_sum(text: str, raw: str) -> Tuple[Term, ...]:
    terms = []
    for piece in text.split("+"):
        piece = piece.strip()
        if not piece:
            raise ValueError(f"empty term in invariant {raw!r}")
        if _INT_RE.match(piece):
            terms.append(("const", int(piece)))
        elif _LEG_RE.match(piece):
            terms.append(("leg", piece))
        else:
            raise ValueError(
                f"bad term {piece!r} in invariant {raw!r} (expected an "
                f"integer or a dotted stat leg like 'plb.hits:total')"
            )
    return tuple(terms)


def parse_invariant(text: str) -> Invariant:
    """Parse one conservation invariant; raises ``ValueError`` on errors."""
    raw = text.strip()
    scope: Optional[str] = None
    body = raw
    match = _SCOPE_RE.match(raw)
    # a leading "name: " with no dot in the name is a method scope; stat
    # legs always contain a dot so the grammar stays unambiguous
    if match and "." not in match.group(1):
        scope, body = match.group(1), match.group(2)
    found = [op for op in OPERATORS if op in body]
    if len(found) != 1:
        raise ValueError(
            f"invariant {raw!r} must contain exactly one of "
            f"{', '.join(OPERATORS)}"
        )
    op = found[0]
    lhs_text, rhs_text = body.split(op, 1)
    lhs = _parse_sum(lhs_text, raw)
    rhs = _parse_sum(rhs_text, raw)
    if not any(kind == "leg" for kind, _ in lhs + rhs):
        raise ValueError(f"invariant {raw!r} names no stat leg")
    return Invariant(scope=scope, lhs=lhs, op=op, rhs=rhs, raw=raw)


_C = TypeVar("_C")


def counters(
    *, owner: str, conserve: Sequence[str] = ()
) -> "Type[_C]":
    """Class decorator declaring stat ownership + conservation invariants.

    ``owner`` is the stat-name prefix this component owns (the text
    before the first dot of its registry names, e.g. ``"plb"`` for
    ``plb.hits``).  ``conserve`` is a sequence of invariant strings in
    the grammar above.  Both are validated eagerly so a typo fails at
    import time, not analysis time.
    """
    if not isinstance(owner, str) or not _OWNER_RE.match(owner):
        raise ValueError(
            f"@counters owner must be a lowercase identifier prefix, "
            f"got {owner!r}"
        )
    invariants = tuple(parse_invariant(text) for text in conserve)

    def wrap(cls):
        cls.__sim_counters__ = {
            "owner": owner,
            "conserve": tuple(str(text).strip() for text in conserve),
        }
        return cls

    _ = invariants  # parsed for validation; the analyzer re-reads the AST
    return wrap
