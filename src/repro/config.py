"""Configuration for the FlatFlash simulator.

All timing defaults come from the paper:

* Table 2 — measured component latencies of the authors' emulator
  (MMIO cache-line read 4.8 us, posted MMIO write 0.6 us, page promotion
  12.1 us, PTE+TLB update 1.4 us, page-table walk 0.7 us).
* Section 3.3 — ultra-low-latency flash (Z-SSD) page write of 16 us.
* Figure 14d — device read latency sweep anchored at 20 us.

Capacities default to scaled-down values that preserve the paper's ratios
(SSD:DRAM = 512, SSD-Cache = 0.125 % of SSD capacity) so experiments run in
seconds.  Experiments override the geometry per figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.faults.plan import FaultConfig
from repro.sim.sanitizers import SanitizerConfig

#: Process-wide default for newly built :class:`EngineConfig` objects.
#: Tests flip this to compare scalar and engine-backed runs.
_ENGINE_DEFAULT_ENABLED = True


def set_engine_default(enabled: bool) -> bool:
    """Set the process-wide engine default; returns the previous value."""
    global _ENGINE_DEFAULT_ENABLED
    previous = _ENGINE_DEFAULT_ENABLED
    _ENGINE_DEFAULT_ENABLED = bool(enabled)
    return previous


def engine_default_enabled() -> bool:
    """Current process-wide engine default."""
    return _ENGINE_DEFAULT_ENABLED


@dataclass
class EngineConfig:
    """Trace-compiled replay engine (repro.engine).

    When enabled, workloads that can compile their access stream to a flat
    trace replay it through :func:`repro.engine.replay`, which interprets
    the trace with a fused fast path for DRAM-resident accesses and
    delegates every other access to the unmodified scalar hierarchy.  The
    engine is an execution strategy, not a model change: adopting cells
    must produce byte-identical results (tests/test_engine_equivalence.py
    and the sweep byte-identity gate enforce this).
    """

    enabled: bool = True
    # Accesses replayed per numpy precompute chunk.  Chunking bounds the
    # working set of the address/op arrays derived from the trace; results
    # are chunk-size-invariant (the equivalence suite sweeps this).
    chunk_ops: int = 65_536

    @classmethod
    def from_default(cls) -> "EngineConfig":
        return cls(enabled=engine_default_enabled())

    def validate(self) -> None:
        if not isinstance(self.enabled, bool):
            raise ValueError("engine flag 'enabled' must be a bool")
        if self.chunk_ops <= 0:
            raise ValueError(f"chunk_ops must be > 0, got {self.chunk_ops}")


@dataclass
class LatencyConfig:
    """Component latencies in nanoseconds."""

    # Host memory.
    dram_load_ns: int = 100
    dram_store_ns: int = 100

    # PCIe MMIO, per cache line (Table 2).  Reads are non-posted (a full
    # round trip); writes are posted and complete at the host write buffer.
    mmio_read_cacheline_ns: int = 4_800
    mmio_write_cacheline_ns: int = 600
    # Write-verify read used by the persistence path to order posted writes.
    mmio_verify_read_ns: int = 4_800
    # Completion-timeout charged when an injected PCIe fault drops an MMIO
    # transaction (repro.faults); the host bridge then retries with backoff.
    mmio_timeout_ns: int = 50_000

    # NAND flash array timings.  ``flash_read_page_ns`` is the device read
    # latency Fig. 14d sweeps; the default models the paper's low-latency
    # flash.  Program latency follows the Z-SSD figure quoted in Section 3.3.
    flash_read_page_ns: int = 20_000
    flash_program_page_ns: int = 16_000
    flash_erase_block_ns: int = 2_000_000

    # SSD-internal DRAM (SSD-Cache) page copy.  The per-line cache access
    # time is folded into the PCIe MMIO cacheline cost (an MMIO hit is
    # dominated by the link round trip, and the tests pin hit latency to
    # exactly mmio_read_cacheline_ns), so there is no separate
    # ssd_cache_access_ns knob.
    ssd_cache_page_copy_ns: int = 1_000

    # Promotion machinery (Table 2).
    page_promotion_ns: int = 12_100
    pte_tlb_update_ns: int = 1_400
    page_table_walk_ns: int = 700
    tlb_shootdown_ns: int = 2_700

    # PCIe DMA of one 4 KB page (used by paging baselines and promotion).
    dma_page_transfer_ns: int = 3_000

    # Software overheads of the paging path.  TraditionalStack pays the full
    # storage software stack (block layer, file system, separate FTL) on
    # every fault; UnifiedMMap's unified translation removes most of it.
    traditional_fault_software_ns: int = 15_000
    unified_fault_software_ns: int = 4_000
    ftl_lookup_ns: int = 500
    # Per-request software cost of a synchronous block I/O submitted through
    # the storage stack (bio assembly, queueing, completion) — paid by the
    # journaling/COW persistence paths of block-based file systems.
    block_io_software_ns: int = 5_000

    # CPU cache interactions for the persistence path.
    cpu_cache_hit_ns: int = 10
    clflush_ns: int = 250

    def validate(self) -> None:
        for name, value in vars(self).items():
            if value < 0:
                raise ValueError(f"latency {name} must be >= 0, got {value}")


@dataclass
class GeometryConfig:
    """Capacities and shapes of the memory/storage devices (in pages)."""

    page_size: int = 4_096
    cacheline_size: int = 64

    dram_pages: int = 512
    ssd_pages: int = 262_144  # SSD:DRAM = 512, the paper's default ratio

    # SSD-Cache defaults to 0.125 % of SSD capacity (Section 5), rounded to
    # a set-aligned size at construction.  ``None`` means "derive from ratio".
    ssd_cache_pages: Optional[int] = None
    ssd_cache_ratio: float = 0.00125
    ssd_cache_ways: int = 8

    flash_pages_per_block: int = 64
    flash_overprovision: float = 0.07
    # Independent flash channels: program/read operations to different
    # channels pipeline (consumed by the DES-driven workloads).
    flash_channels: int = 8

    plb_entries: int = 64
    tlb_entries: int = 256

    def resolved_ssd_cache_pages(self) -> int:
        """SSD-Cache size in pages, derived from the ratio when unset."""
        if self.ssd_cache_pages is not None:
            pages = self.ssd_cache_pages
        else:
            pages = int(self.ssd_pages * self.ssd_cache_ratio)
        return max(self.ssd_cache_ways, pages)

    @property
    def cachelines_per_page(self) -> int:
        return self.page_size // self.cacheline_size

    def validate(self) -> None:
        if self.page_size <= 0 or self.page_size % self.cacheline_size != 0:
            raise ValueError(
                f"page_size {self.page_size} must be a positive multiple of "
                f"cacheline_size {self.cacheline_size}"
            )
        if self.dram_pages <= 0:
            raise ValueError(f"dram_pages must be > 0, got {self.dram_pages}")
        if self.ssd_pages <= 0:
            raise ValueError(f"ssd_pages must be > 0, got {self.ssd_pages}")
        if self.ssd_cache_ways <= 0:
            raise ValueError(f"ssd_cache_ways must be > 0, got {self.ssd_cache_ways}")
        if not 0.0 < self.ssd_cache_ratio <= 1.0:
            raise ValueError(
                f"ssd_cache_ratio must be in (0, 1], got {self.ssd_cache_ratio}"
            )
        if self.flash_pages_per_block <= 0:
            raise ValueError(
                f"flash_pages_per_block must be > 0, got {self.flash_pages_per_block}"
            )
        if self.flash_channels <= 0:
            raise ValueError(f"flash_channels must be > 0, got {self.flash_channels}")
        if not 0.0 <= self.flash_overprovision < 1.0:
            raise ValueError(
                f"flash_overprovision must be in [0, 1), got {self.flash_overprovision}"
            )
        if self.plb_entries <= 0:
            raise ValueError(f"plb_entries must be > 0, got {self.plb_entries}")
        if self.tlb_entries <= 0:
            raise ValueError(f"tlb_entries must be > 0, got {self.tlb_entries}")


@dataclass
class PromotionConfig:
    """Parameters of the adaptive promotion scheme (Algorithm 1)."""

    lw_ratio: float = 0.25
    hi_ratio: float = 0.75
    max_threshold: int = 7
    reset_epoch: int = 10_000
    enabled: bool = True
    # Extension (not in the paper): after ``sequential_prefetch`` SSD pages
    # are touched in ascending order, promote the next page ahead of the
    # stream.  0 disables prefetching (the paper's behaviour).
    sequential_prefetch: int = 0

    def validate(self) -> None:
        if not 0.0 <= self.lw_ratio < self.hi_ratio:
            raise ValueError(
                f"need 0 <= lw_ratio < hi_ratio, got {self.lw_ratio}/{self.hi_ratio}"
            )
        if self.max_threshold < 1:
            raise ValueError(f"max_threshold must be >= 1, got {self.max_threshold}")
        if self.reset_epoch < 1:
            raise ValueError(f"reset_epoch must be >= 1, got {self.reset_epoch}")
        if self.sequential_prefetch < 0:
            raise ValueError(
                f"sequential_prefetch must be >= 0, got {self.sequential_prefetch}"
            )


@dataclass
class FlatFlashConfig:
    """Top-level simulator configuration."""

    latency: LatencyConfig = field(default_factory=LatencyConfig)
    geometry: GeometryConfig = field(default_factory=GeometryConfig)
    promotion: PromotionConfig = field(default_factory=PromotionConfig)

    # Runtime invariant sanitizers (repro.sim.sanitizers).  Defaults follow
    # the process-wide switch so the test suite can enable them globally.
    sanitizers: SanitizerConfig = field(default_factory=SanitizerConfig.from_default)

    # Trace-compiled replay engine (repro.engine).  Defaults follow the
    # process-wide switch so equivalence tests can force scalar execution.
    engine: EngineConfig = field(default_factory=EngineConfig.from_default)

    # Deterministic fault injection (repro.faults).  Inert by default: with
    # all rates at zero no injector is constructed and every metric is
    # bit-identical to a fault-free build.
    faults: FaultConfig = field(default_factory=FaultConfig)

    # Carry real page payloads through the hierarchy (tests/examples) or
    # run accounting-only (large performance sweeps).
    track_data: bool = True

    # Cache MMIO lines in the processor cache.  The paper enables this via
    # the CAPI coherence protocol (§3.1); disable it for the uncacheable-
    # MMIO ablation.
    cacheable_mmio: bool = True

    # Battery-backed SSD DRAM: MMIO writes reaching the SSD-Cache are durable.
    battery_backed: bool = True

    # Promotion Look-aside Buffer (§3.3).  Disabling it is the ablation the
    # paper argues against: promotions then stall the triggering access for
    # the full page copy instead of proceeding off the critical path.
    plb_enabled: bool = True

    # Swap readahead for the *paging baselines*: on a fault, also fault in
    # up to this many following pages (kernel swap clustering).  0 disables.
    readahead_pages: int = 0

    def validate(self) -> "FlatFlashConfig":
        self.latency.validate()
        self.geometry.validate()
        self.promotion.validate()
        self.sanitizers.validate()
        self.engine.validate()
        self.faults.validate()
        if self.readahead_pages < 0:
            raise ValueError(
                f"readahead_pages must be >= 0, got {self.readahead_pages}"
            )
        return self

    def scaled(self, **geometry_overrides: object) -> "FlatFlashConfig":
        """A copy with geometry fields replaced (convenience for sweeps)."""
        return replace(self, geometry=replace(self.geometry, **geometry_overrides))


def small_config(**overrides: object) -> FlatFlashConfig:
    """A tiny configuration for unit tests: 16 DRAM pages over a 1K-page SSD."""
    geometry = GeometryConfig(
        dram_pages=16,
        ssd_pages=1_024,
        ssd_cache_pages=64,
        ssd_cache_ways=4,
        flash_pages_per_block=16,
        plb_entries=8,
        tlb_entries=32,
    )
    config = FlatFlashConfig(geometry=geometry)
    for name, value in overrides.items():
        if not hasattr(config, name):
            raise TypeError(f"unknown FlatFlashConfig field {name!r}")
        setattr(config, name, value)
    return config.validate()
