"""A crash-safe write-ahead log on byte-granular persistence (§3.5).

This is the reusable version of what the paper's database case study does
per transaction: append a small log record durably without a block-sized
I/O.  Records are checksummed and length-prefixed, so recovery is a simple
scan that stops at the first record that fails validation — exactly the
property the posted-write/fence semantics need (an un-fenced torn tail
must be ignored, never replayed).

Record layout (little endian)::

    u16 magic | u16 payload length | u32 crc32(payload) | payload bytes

Appends are 8-byte aligned so a torn record cannot masquerade as a valid
next header.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Optional, TYPE_CHECKING

from repro.core.persistence import PersistentRegion, create_pmem_region

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.hierarchy import FlatFlash

_HEADER = struct.Struct("<HHI")
_MAGIC = 0x57A1  # "WAL"


class LogFullError(RuntimeError):
    """Raised when an append does not fit in the remaining log space."""


def _aligned(size: int) -> int:
    return (size + 7) & ~7


class WriteAheadLog:
    """Append-only durable log over a persistent memory region."""

    def __init__(self, pmem: PersistentRegion) -> None:
        self.pmem = pmem
        self._tail = 0  # next append offset
        self._appended = 0

    @classmethod
    def create(cls, system: "FlatFlash", num_pages: int = 4, name: str = "wal") -> "WriteAheadLog":
        """Allocate a fresh log on a new persistent region."""
        return cls(create_pmem_region(system, num_pages, name=name))

    @property
    def capacity(self) -> int:
        return self.pmem.size

    @property
    def used(self) -> int:
        return self._tail

    @property
    def appended_records(self) -> int:
        return self._appended

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #

    def append(self, payload: bytes, fence: bool = True) -> int:
        """Append one record; returns its log offset (LSN).

        With ``fence`` the record is durable on return (write-verify read).
        Without it the append is posted — faster, but a crash may lose it
        (group several posted appends under one :meth:`commit`).
        """
        if not payload:
            raise ValueError("payload must not be empty")
        if len(payload) > 0xFFFF:
            raise ValueError(f"payload of {len(payload)} bytes exceeds u16 length")
        record = _HEADER.pack(_MAGIC, len(payload), zlib.crc32(payload)) + payload
        size = _aligned(len(record))
        if self._tail + size > self.capacity:
            raise LogFullError(
                f"record of {size} bytes does not fit "
                f"({self.capacity - self._tail} bytes left)"
            )
        lsn = self._tail
        self.pmem.persist_store(lsn, len(record), record.ljust(size, b"\x00")[: len(record)])
        self._tail += size
        self._appended += 1
        if fence:
            self.pmem.commit()
        return lsn

    def commit(self) -> int:
        """Fence all posted appends; returns the fence cost in ns."""
        return self.pmem.commit()

    # ------------------------------------------------------------------ #
    # Reading / recovery
    # ------------------------------------------------------------------ #

    def _parse_from(self, read) -> List[bytes]:
        """Scan records with ``read(offset, size) -> bytes`` until the first
        invalid header or checksum."""
        records: List[bytes] = []
        offset = 0
        while offset + _HEADER.size <= self.capacity:
            header = read(offset, _HEADER.size)
            if header is None:
                break
            magic, length, crc = _HEADER.unpack(header)
            if magic != _MAGIC or length == 0:
                break
            if offset + _HEADER.size + length > self.capacity:
                break
            payload = read(offset + _HEADER.size, length)
            if payload is None or zlib.crc32(payload) != crc:
                break  # torn/unfenced tail: stop, never replay past it
            records.append(payload)
            offset += _aligned(_HEADER.size + length)
        return records

    def records(self) -> List[bytes]:
        """All records visible through normal (possibly cached) reads."""
        return self._parse_from(
            lambda offset, size: self.pmem.load(offset, size)
        )

    def _recover_read(self, offset: int, size: int) -> Optional[bytes]:
        page_size = self.pmem.system.page_size
        chunks: List[bytes] = []
        while size > 0:
            page_offset = offset % page_size
            chunk = min(size, page_size - page_offset)
            data = self.pmem.recover_bytes(offset, chunk)
            if data is None:
                return None
            chunks.append(data)
            offset += chunk
            size -= chunk
        return b"".join(chunks)

    def recover(self) -> List[bytes]:
        """Post-crash recovery: scan the flash image for valid records.

        Returns every record that was durable at the crash; the torn or
        un-fenced tail is cut at the first checksum failure.  Also resets
        the append tail so the log can continue after the recovered prefix.
        """
        records = self._parse_from(self._recover_read)
        offset = 0
        for payload in records:
            offset += _aligned(_HEADER.size + len(payload))
        self._tail = offset
        self._appended = len(records)
        return records

    def truncate(self) -> None:
        """Logically clear the log (durably poisons the first header)."""
        self.pmem.persist_store(0, _HEADER.size, b"\x00" * _HEADER.size)
        self.pmem.commit()
        self._tail = 0
        self._appended = 0
