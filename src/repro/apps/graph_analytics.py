"""GraphChi-style graph analytics over a memory system (§5.3, Fig. 10).

The engine places the CSR arrays (indptr, edge indices) and the per-vertex
state (ranks / labels) in mapped regions and charges every array touch to
the memory system: edge lists are streamed at cache-line granularity
(sequential), per-vertex state is accessed randomly (skewed toward
high-in-degree vertices on power-law graphs).  That is exactly the access
mix of the paper's modified GraphChi with "the entire graphs in FlatFlash".

Numeric results are computed on shadow numpy arrays while the memory
system accounts the accesses — the values are exact, the timing comes from
the simulator.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.memory_system import MemorySystem
from repro.engine import AccessTrace, replay, replay_enabled
from repro.workloads.graphs import CSRGraph


class GraphEngine:
    """PageRank and Connected-Component Labeling over mapped graph data."""

    #: Bytes per element for the mapped arrays (64-bit ids and floats).
    ELEMENT_SIZE = 8

    def __init__(self, system: MemorySystem, graph: CSRGraph, name: str = "graph") -> None:
        graph.validate()
        self.system = system
        self.graph = graph
        page = system.page_size
        vertex_bytes = (graph.num_vertices + 1) * self.ELEMENT_SIZE
        edge_bytes = max(1, graph.num_edges) * self.ELEMENT_SIZE
        self.indptr_region = system.mmap(
            -(-vertex_bytes // page), name=f"{name}.indptr"
        )
        self.edges_region = system.mmap(-(-edge_bytes // page), name=f"{name}.edges")
        self.state_region = system.mmap(
            -(-vertex_bytes // page), name=f"{name}.state"
        )
        self._line = system.config.geometry.cacheline_size
        self._per_line = self._line // self.ELEMENT_SIZE

    # ------------------------------------------------------------------ #
    # Access charging helpers
    # ------------------------------------------------------------------ #

    def _touch_state(self, vertex: int, is_write: bool) -> None:
        addr = self.state_region.addr(vertex * self.ELEMENT_SIZE)
        if is_write:
            self.system.store(addr, self.ELEMENT_SIZE)
        else:
            self.system.load(addr, self.ELEMENT_SIZE)

    def _stream_edges(self, first_edge: int, count: int) -> None:
        """Charge a sequential cache-line stream over an edge range."""
        if count <= 0:
            return
        start = first_edge * self.ELEMENT_SIZE
        end = (first_edge + count) * self.ELEMENT_SIZE
        line = self._line
        addr = (start // line) * line
        while addr < end:
            self.system.load(self.edges_region.addr(addr), line)
            addr += line

    def _touch_indptr(self, vertex: int) -> None:
        self.system.load(
            self.indptr_region.addr(vertex * self.ELEMENT_SIZE), self.ELEMENT_SIZE
        )

    # ------------------------------------------------------------------ #
    # Trace compilation (engine phase 1)
    # ------------------------------------------------------------------ #

    def _iteration_trace(self, target_writes: bool) -> AccessTrace:
        """One iteration's access stream as a flat trace.

        Per vertex, in the scalar charging order: indptr load, own-state
        load, sequential edge-line stream, and — with ``target_writes``
        (PageRank's push phase) — one state store per out-edge target.
        The stream depends only on the graph structure and geometry, so
        it is compiled once and cached on the graph object (the cache is
        keyed by the region base addresses, which repeat across sweep
        cells that map the same graph the same way).
        """
        esize = self.ELEMENT_SIZE
        line = self._line
        indptr_base = self.indptr_region.addr(0)
        edges_base = self.edges_region.addr(0)
        state_base = self.state_region.addr(0)
        key = (
            "pagerank-iteration" if target_writes else "vertex-scan",
            line,
            indptr_base,
            edges_base,
            state_base,
        )
        cache = self.graph.__dict__.setdefault("_engine_traces", {})
        trace = cache.get(key)
        if trace is not None:
            return trace
        graph = self.graph
        indptr = graph.indptr.tolist()
        indices = graph.indices.tolist()
        addrs: list = []
        sizes: list = []
        ops: list = []
        for vertex in range(graph.num_vertices):
            first = indptr[vertex]
            last = indptr[vertex + 1]
            addrs.append(indptr_base + vertex * esize)
            sizes.append(esize)
            ops.append(0)
            addrs.append(state_base + vertex * esize)
            sizes.append(esize)
            ops.append(0)
            if last > first:
                edge_addr = (first * esize // line) * line
                end = last * esize
                while edge_addr < end:
                    addrs.append(edges_base + edge_addr)
                    sizes.append(line)
                    ops.append(0)
                    edge_addr += line
                if target_writes:
                    for target in indices[first:last]:
                        addrs.append(state_base + target * esize)
                        sizes.append(esize)
                        ops.append(1)
        trace = AccessTrace.from_columns(addrs, sizes, ops)
        cache[key] = trace
        return trace

    # ------------------------------------------------------------------ #
    # Algorithms
    # ------------------------------------------------------------------ #

    def pagerank(
        self,
        iterations: int = 5,
        damping: float = 0.85,
        charge_accesses: bool = True,
    ) -> np.ndarray:
        """Push-style PageRank; returns the rank vector.

        ``charge_accesses=False`` computes without touching the memory
        system (for verification against a reference implementation).
        """
        if iterations <= 0:
            raise ValueError(f"iterations must be > 0, got {iterations}")
        graph = self.graph
        n = graph.num_vertices
        ranks = np.full(n, 1.0 / n, dtype=np.float64)
        out_degree = np.maximum(1, np.diff(graph.indptr)).astype(np.float64)
        use_engine = charge_accesses and replay_enabled(self.system)
        if use_engine:
            # Replay the compiled iteration stream and do the push-phase
            # math with one edge-ordered scatter-add: np.add.at applies
            # updates in edge order, the same float accumulation sequence
            # as the per-vertex loop, so the ranks are bit-identical.
            trace = self._iteration_trace(target_writes=True)
            degrees = np.diff(graph.indptr)
            for _ in range(iterations):
                replay(self.system, trace)
                next_ranks = np.zeros(n, dtype=np.float64)
                np.add.at(
                    next_ranks, graph.indices, np.repeat(ranks / out_degree, degrees)
                )
                dangling = ranks[degrees == 0].sum()
                ranks = (1.0 - damping) / n + damping * (next_ranks + dangling / n)
            return ranks
        for _ in range(iterations):
            next_ranks = np.zeros(n, dtype=np.float64)
            for vertex in range(n):
                first = int(graph.indptr[vertex])
                last = int(graph.indptr[vertex + 1])
                degree = last - first
                if charge_accesses:
                    self._touch_indptr(vertex)
                    self._touch_state(vertex, is_write=False)  # read own rank
                    self._stream_edges(first, degree)
                if degree == 0:
                    continue
                share = ranks[vertex] / out_degree[vertex]
                targets = graph.indices[first:last]
                np.add.at(next_ranks, targets, share)
                if charge_accesses:
                    for target in targets:
                        self._touch_state(int(target), is_write=True)
            dangling = ranks[np.diff(graph.indptr) == 0].sum()
            ranks = (1.0 - damping) / n + damping * (next_ranks + dangling / n)
        return ranks

    # ------------------------------------------------------------------ #
    # GraphChi-style sharded execution (parallel sliding windows)
    # ------------------------------------------------------------------ #

    def _ensure_csc(self) -> None:
        """Build the target-sorted (CSC) edge layout GraphChi shards use.

        Each shard's edges are stored together with their source values, so
        a shard pass is one sequential stream plus updates confined to the
        shard's vertex interval — that is what lets GraphChi keep the
        active state DRAM-resident for any graph size.
        """
        if hasattr(self, "_csc_sources"):
            return
        graph = self.graph
        order = np.argsort(graph.indices, kind="stable")
        self._csc_sources = np.repeat(
            np.arange(graph.num_vertices, dtype=np.int64), np.diff(graph.indptr)
        )[order]
        targets_sorted = graph.indices[order]
        counts = np.bincount(targets_sorted, minlength=graph.num_vertices)
        self._csc_indptr = np.zeros(graph.num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=self._csc_indptr[1:])
        # Shard storage: each edge record carries (source id, source value).
        shard_bytes = max(1, graph.num_edges) * 2 * self.ELEMENT_SIZE
        self.shard_region = self.system.mmap(
            -(-shard_bytes // self.system.page_size), name="graph.shards"
        )

    def _stream_shard(self, first_edge: int, count: int) -> None:
        """Sequential stream over a shard's (source, value) edge records."""
        if count <= 0:
            return
        start = first_edge * 2 * self.ELEMENT_SIZE
        end = (first_edge + count) * 2 * self.ELEMENT_SIZE
        addr = (start // self._line) * self._line
        while addr < end:
            self.system.load(self.shard_region.addr(addr), self._line)
            addr += self._line

    def pagerank_sharded(
        self,
        iterations: int = 5,
        damping: float = 0.85,
        num_shards: Optional[int] = None,
        charge_accesses: bool = True,
    ) -> np.ndarray:
        """PageRank with GraphChi's sharded access pattern.

        Results are identical to :meth:`pagerank`; only the *memory access
        pattern* differs — per shard: one sequential edge stream (records
        carry the source values), writes confined to the shard's vertex
        interval, and a sequential rewrite of the shard's source values at
        the end of the iteration.
        """
        if iterations <= 0:
            raise ValueError(f"iterations must be > 0, got {iterations}")
        self._ensure_csc()
        graph = self.graph
        n = graph.num_vertices
        if num_shards is None:
            num_shards = max(1, n * self.ELEMENT_SIZE // (16 * self.system.page_size))
        if num_shards < 1 or num_shards > n:
            raise ValueError(f"num_shards must be in [1, {n}], got {num_shards}")
        bounds = np.linspace(0, n, num_shards + 1, dtype=np.int64)
        ranks = np.full(n, 1.0 / n, dtype=np.float64)
        out_degree = np.maximum(1, np.diff(graph.indptr)).astype(np.float64)
        for _ in range(iterations):
            next_ranks = np.zeros(n, dtype=np.float64)
            for shard in range(num_shards):
                lo, hi = int(bounds[shard]), int(bounds[shard + 1])
                first = int(self._csc_indptr[lo])
                last = int(self._csc_indptr[hi])
                if charge_accesses:
                    self._stream_shard(first, last - first)
                sources = self._csc_sources[first:last]
                shares = ranks[sources] / out_degree[sources]
                targets_in_shard = np.repeat(
                    np.arange(lo, hi, dtype=np.int64),
                    np.diff(self._csc_indptr[lo : hi + 1]),
                )
                np.add.at(next_ranks, targets_in_shard, shares)
                if charge_accesses:
                    # Window-local updates: one store per touched vertex.
                    for vertex in np.unique(targets_in_shard):
                        self._touch_state(int(vertex), is_write=True)
            if charge_accesses:
                # End of iteration: rewrite the shards' attached source
                # values (sequential, like GraphChi's shard rewrite).
                self._stream_shard(0, graph.num_edges)
            dangling = ranks[np.diff(graph.indptr) == 0].sum()
            ranks = (1.0 - damping) / n + damping * (next_ranks + dangling / n)
        return ranks

    def connected_components(
        self, max_iterations: int = 100, charge_accesses: bool = True
    ) -> np.ndarray:
        """Label propagation over the undirected closure; returns labels.

        Two vertices share a label iff they are weakly connected.
        """
        graph = self.graph
        n = graph.num_vertices
        labels = np.arange(n, dtype=np.int64)
        # Propagate over both edge directions (weak connectivity).
        sources = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
        targets = graph.indices
        use_engine = charge_accesses and replay_enabled(self.system)
        scan_trace = self._iteration_trace(target_writes=False) if use_engine else None
        state_base = self.state_region.addr(0)
        for _iteration in range(max_iterations):
            changed = False
            if use_engine:
                replay(self.system, scan_trace)
            else:
                for vertex in range(n):
                    first = int(graph.indptr[vertex])
                    last = int(graph.indptr[vertex + 1])
                    if charge_accesses:
                        self._touch_indptr(vertex)
                        self._touch_state(vertex, is_write=False)
                        self._stream_edges(first, last - first)
            # Vectorized min-label exchange along every edge (both ways).
            new_labels = labels.copy()
            np.minimum.at(new_labels, targets, labels[sources])
            np.minimum.at(new_labels, sources, labels[targets])
            if charge_accesses:
                updated = np.nonzero(new_labels != labels)[0]
                if use_engine:
                    if updated.shape[0]:
                        replay(
                            self.system,
                            AccessTrace.stores(
                                state_base + updated * self.ELEMENT_SIZE,
                                self.ELEMENT_SIZE,
                            ),
                        )
                else:
                    for vertex in updated:
                        self._touch_state(int(vertex), is_write=True)
            if not np.array_equal(new_labels, labels):
                changed = True
            labels = new_labels
            if not changed:
                break
        return labels
