"""File-system metadata persistence engines (§3.5, §5.5, Fig. 13).

Three journaling disciplines are modelled, matching the file systems the
paper instruments:

* **EXT4** — physical block journaling: every metadata structure an
  operation dirties is logged as a full page in the journal, plus a commit
  block; checkpointing (in-place write-back) happens in the background.
* **XFS** — logical journaling: compact log records, but the log write is
  still a block-interface I/O (one page per synchronous transaction).
* **BtrFS** — copy-on-write: no journal, but persisting an update rewrites
  the B-tree path (leaf + internal nodes + superblock tail).

Each engine runs on either persistence backend:

* **block** (TraditionalStack / UnifiedMMap): journal/COW writes go
  through the SSD's block interface, page-granular — the write
  amplification of Fig. 6.
* **byte** (FlatFlash): the same logical updates are persisted with
  byte-granular durable writes into a pmem region, one write-verify fence
  per operation (§3.5).

File *data* writes are page I/O on every backend; only metadata moves to
the byte path, exactly as the paper proposes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.core.hierarchy import FlatFlash
from repro.core.memory_system import MemorySystem
from repro.core.persistence import PersistentRegion, create_pmem_region
from repro.workloads.filebench import MetadataOp, OpStream


class FileSystemKind(enum.Enum):
    EXT4 = "ext4"
    XFS = "xfs"
    BTRFS = "btrfs"


@dataclass
class FSRunResult:
    """Timing and traffic of one op-stream run."""

    name: str
    operations: int
    elapsed_ns: int
    flash_page_writes: int

    @property
    def mean_op_ns(self) -> float:
        """Mean per-op latency (reporting only; never fed back into timing)."""
        if self.operations == 0:
            return 0.0
        return self.elapsed_ns / self.operations  # simlint: disable=SL003

    @property
    def ops_per_sec(self) -> float:
        if self.elapsed_ns == 0:
            return 0.0
        return self.operations * 1e9 / self.elapsed_ns


def _journal_pages(kind: FileSystemKind, op: MetadataOp) -> int:
    """Synchronous page writes one operation costs on the block backend."""
    updates = len(op.updates)
    if updates == 0:
        return 0
    if kind is FileSystemKind.EXT4:
        # One journal page per dirtied metadata block, plus a commit block.
        return updates + 1
    if kind is FileSystemKind.XFS:
        # Logical log records are compact but the synchronous log write and
        # its tail update still cost two block I/Os per transaction.
        return 2
    # BtrFS copy-on-write: every dirtied structure rewrites its B-tree path
    # (leaf + internals) plus the log-tree/superblock tail.
    return 3 + updates


class _FileSystemBase:
    """Shared metadata-read and data-write paths."""

    def __init__(
        self,
        kind: FileSystemKind,
        system: MemorySystem,
        metadata_pages: int = 16,
        seed: int = 31,
    ) -> None:
        self.kind = kind
        self.system = system
        self.metadata_region = system.mmap(metadata_pages, name=f"{kind.value}.meta")
        self._rng = np.random.default_rng(seed)
        self._ops = system.stats.counter("fs.operations")
        self._data_lpn_cursor = 0

    def _read_metadata(self, count: int) -> None:
        """Directory/inode lookups: random 64-byte reads of metadata."""
        for _ in range(count):
            offset = int(self._rng.integers(0, self.metadata_region.size - 64))
            self.system.load(self.metadata_region.addr(offset), 64)

    def _write_data(self, data_bytes: int) -> None:
        """File data goes through page-granular writes on every backend."""
        if data_bytes <= 0:
            return
        device = getattr(self.system, "ssd", None)
        if device is None:
            return  # DRAM-only systems have no storage data path
        pages = -(-data_bytes // self.system.page_size)
        region_pages = self.metadata_region.num_pages
        software = self.system.config.latency.block_io_software_ns
        for _ in range(pages):
            lpn = self.metadata_region.base_vpn + (self._data_lpn_cursor % region_pages)
            self._data_lpn_cursor += 1
            cost = software + device.write_page_block(lpn, None)
            self.system.charge_foreground(cost)

    def run(self, stream: OpStream) -> FSRunResult:
        """Apply an operation stream; returns timing and flash traffic."""
        device = getattr(self.system, "ssd", None)
        start_writes = device.flash.total_programs if device is not None else 0
        start_ns = self.system.clock.now
        for op in stream:
            self.apply(op)
        if device is not None:
            # Destage whatever still sits in the SSD-Cache so the flash
            # write counts compare like for like across backends.
            device.gc.flush_dirty()
        flash_writes = (
            device.flash.total_programs - start_writes if device is not None else 0
        )
        return FSRunResult(
            name=stream.name,
            operations=len(stream),
            elapsed_ns=self.system.clock.now - start_ns,
            flash_page_writes=flash_writes,
        )

    def apply(self, op: MetadataOp) -> None:
        raise NotImplementedError


class BlockJournalFS(_FileSystemBase):
    """Metadata persistence through the block interface (journal / COW)."""

    def __init__(
        self,
        kind: FileSystemKind,
        system: MemorySystem,
        metadata_pages: int = 64,
        journal_pages: int = 64,
        seed: int = 31,
    ) -> None:
        super().__init__(kind, system, metadata_pages, seed)
        self.journal_region = system.mmap(journal_pages, name=f"{kind.value}.journal")
        self._journal_cursor = 0
        self._journal_writes = system.stats.counter("fs.journal_page_writes")

    def _journal_write(self, pages: int) -> None:
        device = getattr(self.system, "ssd", None)
        if device is None:
            raise TypeError("block-backend file system needs an SSD-backed system")
        software = self.system.config.latency.block_io_software_ns
        for _ in range(pages):
            lpn = self.journal_region.base_vpn + (
                self._journal_cursor % self.journal_region.num_pages
            )
            self._journal_cursor += 1
            cost = software + device.write_page_block(lpn, None)
            self.system.charge_foreground(cost)
            self._journal_writes.add()

    def apply(self, op: MetadataOp) -> None:
        self._ops.add()
        self._read_metadata(op.metadata_reads)
        self._write_data(op.data_bytes)
        pages = _journal_pages(self.kind, op)
        if pages:
            self._journal_write(pages)
            if self.kind is not FileSystemKind.BTRFS:
                # Journal checkpoint: in-place metadata write-back, deferred.
                checkpoint = len(op.updates) * self.system.config.latency.flash_program_page_ns
                self.system.charge_background(checkpoint)


class ByteGranularFS(_FileSystemBase):
    """FlatFlash metadata persistence: byte-granular durable writes."""

    def __init__(
        self,
        kind: FileSystemKind,
        system: FlatFlash,
        metadata_pages: int = 64,
        pmem_pages: int = 16,
        seed: int = 31,
    ) -> None:
        if not getattr(system, "supports_byte_persistence", False):
            raise TypeError("byte-granular persistence requires a FlatFlash system")
        super().__init__(kind, system, metadata_pages, seed)
        self.pmem: PersistentRegion = create_pmem_region(
            system, pmem_pages, name=f"{kind.value}.pmem"
        )
        self._pmem_cursor = 0

    def _write_data(self, data_bytes: int) -> None:
        """Small synchronous appends ride the byte-granular path too; bulk
        data still goes through page writes (the paper only moves
        *metadata* and small log payloads off the block interface)."""
        if data_bytes <= 0:
            return
        if data_bytes <= self.system.page_size // 4:
            offset = self._pmem_cursor % (self.pmem.size - self.system.page_size)
            self._pmem_cursor += data_bytes
            self.pmem.persist_store(offset, data_bytes)
            return
        super()._write_data(data_bytes)

    def _persist_updates(self, op: MetadataOp) -> None:
        """Persist each metadata structure in place, one fence per op."""
        for size in op.updates:
            offset = self._pmem_cursor % (self.pmem.size - 256)
            self._pmem_cursor += size
            self.pmem.persist_store(offset, size)
        if op.updates:
            self.pmem.commit()

    def apply(self, op: MetadataOp) -> None:
        self._ops.add()
        self._read_metadata(op.metadata_reads)
        self._write_data(op.data_bytes)
        self._persist_updates(op)


def make_filesystem(
    kind: FileSystemKind,
    system: MemorySystem,
    byte_granular: Optional[bool] = None,
    metadata_pages: int = 64,
    seed: int = 31,
) -> Union[BlockJournalFS, ByteGranularFS]:
    """Build the right engine for a system: FlatFlash gets the byte path."""
    if byte_granular is None:
        byte_granular = getattr(system, "supports_byte_persistence", False)
    if byte_granular:
        if not getattr(system, "supports_byte_persistence", False):
            raise TypeError("byte-granular persistence requires FlatFlash")
        return ByteGranularFS(kind, system, metadata_pages=metadata_pages, seed=seed)
    return BlockJournalFS(kind, system, metadata_pages=metadata_pages, seed=seed)
