"""A Redis-style in-memory key-value store over a memory system (§5.4).

Fixed-size records (64-byte key-value pairs, the paper's setup) live in a
mapped region; key *k* occupies bytes ``[k * record_size, (k+1) *
record_size)``.  GET/PUT translate to one load/store each, so the store's
latency distribution directly reflects the memory hierarchy underneath —
which is what Figs. 11 and 12 measure.
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

from repro.core.memory_system import MemorySystem
from repro.sim.stats import LatencyStats
from repro.workloads.ycsb import OpType, YCSBWorkload, generate_ops


class KVStore:
    """Flat fixed-record key-value store."""

    def __init__(
        self,
        system: MemorySystem,
        capacity_records: int,
        record_size: int = 64,
        name: str = "kvstore",
    ) -> None:
        if capacity_records <= 0:
            raise ValueError(f"capacity_records must be > 0, got {capacity_records}")
        if record_size <= 0 or record_size > system.page_size:
            raise ValueError(f"record_size must be in (0, page], got {record_size}")
        self.system = system
        self.record_size = record_size
        self.capacity_records = capacity_records
        total_bytes = capacity_records * record_size
        pages = -(-total_bytes // system.page_size)
        self.region = system.mmap(pages, name=name)
        self._gets = system.stats.counter("kv.gets")
        self._puts = system.stats.counter("kv.puts")

    def _addr(self, key: int) -> int:
        if not 0 <= key < self.capacity_records:
            raise KeyError(f"key {key} outside capacity {self.capacity_records}")
        return self.region.addr(key * self.record_size)

    def get(self, key: int) -> Tuple[Optional[bytes], int]:
        """Read a record: returns (value, latency_ns)."""
        self._gets.add()
        result = self.system.load(self._addr(key), self.record_size)
        return result.data, result.latency_ns

    def put(self, key: int, value: Optional[bytes] = None) -> int:
        """Write a record; returns latency_ns."""
        if value is not None:
            if len(value) > self.record_size:
                raise ValueError(
                    f"value of {len(value)} bytes exceeds record size {self.record_size}"
                )
            value = value.ljust(self.record_size, b"\x00")
        self._puts.add()
        result = self.system.store(self._addr(key), self.record_size, value)
        return result.latency_ns

    def put_u64(self, key: int, number: int) -> int:
        """Store an integer value (convenience for tests/examples)."""
        return self.put(key, struct.pack("<Q", number & (2**64 - 1)))

    def get_u64(self, key: int) -> Tuple[int, int]:
        data, latency = self.get(key)
        value = struct.unpack("<Q", data[:8])[0] if data else 0
        return value, latency


def run_ycsb(
    store: KVStore,
    workload: YCSBWorkload,
    num_ops: int,
    num_records: Optional[int] = None,
    theta: float = 0.99,
    seed: int = 21,
) -> LatencyStats:
    """Drive a KV store with a YCSB mix; returns per-op latencies.

    ``num_records`` is the number of pre-loaded records the skewed key
    distribution draws from; inserts (workload D) go to fresh keys above
    it, so capacity must cover ``num_records + expected inserts``.
    """
    if num_records is None:
        num_records = store.capacity_records // 2
    stats = LatencyStats(workload.name)
    for op, key in generate_ops(workload, num_ops, num_records, theta=theta, seed=seed):
        if key >= store.capacity_records:
            key = key % store.capacity_records
        if op is OpType.READ:
            _value, latency = store.get(key)
        else:  # UPDATE and INSERT are both stores of one record
            latency = store.put(key)
        stats.record(latency)
    return stats
