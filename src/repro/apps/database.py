"""A miniature transactional engine for the logging study (§3.5, §5.6).

Transactions read and update records of a mapped table, then make their
commit log durable.  Two logging disciplines are modelled (Fig. 7):

* **CENTRALIZED** — one shared log buffer guarded by a lock; every commit
  serializes on it (the multi-core logging bottleneck the paper cites).
* **PER_TRANSACTION** — decentralized logs, one slice per worker, commits
  issued concurrently.

The durability cost per commit depends on the system underneath:

* block systems (TraditionalStack / UnifiedMMap) must write a whole log
  *page* per commit through the storage stack, and the flash program
  occupies one of the SSD's write channels;
* FlatFlash persists just the log record's bytes with posted MMIO writes
  plus one write-verify fence into the battery-backed SSD-Cache — no flash
  program on the commit path at all.

Thread interleaving and lock contention run on the discrete-event
simulator (:mod:`repro.sim.des`); memory-access service times come from
the shared memory system.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.core.memory_system import MemorySystem
from repro.core.persistence import create_pmem_region
from repro.sim.des import (
    Acquire,
    AcquireSlot,
    Delay,
    Lock,
    Release,
    ReleaseSlot,
    Semaphore,
    Simulator,
)
from repro.workloads.oltp import Transaction, TransactionSpec, generate_transactions


class LoggingScheme(enum.Enum):
    CENTRALIZED = "centralized"
    PER_TRANSACTION = "per-transaction"


@dataclass
class OLTPResult:
    """Outcome of one multi-threaded OLTP run."""

    workload: str
    system: str
    scheme: str
    threads: int
    transactions: int
    elapsed_ns: int
    log_lock_contention: float

    @property
    def throughput_tps(self) -> float:
        """Transactions per simulated second."""
        if self.elapsed_ns == 0:
            return 0.0
        return self.transactions * 1e9 / self.elapsed_ns


class MiniDB:
    """The engine: table + logging on top of any memory system."""

    def __init__(
        self,
        system: MemorySystem,
        scheme: LoggingScheme = LoggingScheme.PER_TRANSACTION,
        table_pages: int = 256,
        log_pages: int = 64,
    ) -> None:
        self.system = system
        self.scheme = scheme
        self.table = system.mmap(table_pages, name="db.table")
        self.is_flatflash = getattr(system, "supports_byte_persistence", False)
        flash = getattr(getattr(system, "ssd", None), "flash", None)
        self.flash_channels = flash.num_channels if flash is not None else 8
        if self.is_flatflash:
            self.log_pmem = create_pmem_region(system, log_pages, name="db.log")
        else:
            self.log_region = system.mmap(log_pages, name="db.log")
            self._log_cursor = 0
        self._commits = system.stats.counter("db.commits")

    # ------------------------------------------------------------------ #
    # Commit cost model
    # ------------------------------------------------------------------ #

    def _commit_costs(self, log_bytes: int) -> tuple:
        """(software_ns, channel_held_ns, post_ns) for one commit.

        ``channel_held_ns`` is spent holding a flash write channel;
        ``software_ns`` and ``post_ns`` run without holding it.
        """
        latency = self.system.config.latency
        if self.is_flatflash:
            # Byte-granular durable write: posted MMIO lines + verify fence.
            line = self.system.config.geometry.cacheline_size
            lines = -(-log_bytes // line)
            post = lines * latency.mmio_write_cacheline_ns + latency.mmio_verify_read_ns
            return 0, 0, post
        # Block interface: one log page through the storage software stack;
        # the flash program pipelines across the device's write channels.
        if self.system.name == "TraditionalStack":
            software = latency.traditional_fault_software_ns + latency.ftl_lookup_ns
        else:
            software = latency.unified_fault_software_ns
        # The sequential log's channel is held for the page program, but
        # concurrent small records share pages (group commit): the smaller
        # the record, the more commits one page write covers.
        page = self.system.config.geometry.page_size
        group = max(1, min(page // max(64, log_bytes), 16))
        held = latency.flash_program_page_ns // group
        post = latency.dma_page_transfer_ns
        return software, held, post

    def _record_log_write(self, log_bytes: int) -> None:
        """Apply the log write to the backing store (data/traffic effects)."""
        if self.is_flatflash:
            offset = (self._commits.value * 64) % max(64, self.log_pmem.size - 2_048)
            # Timing is charged by the DES; only record traffic/data here.
            self.log_pmem.persist_store(offset, min(log_bytes, 1_024))
            self.log_pmem.commit()
        else:
            device = getattr(self.system, "ssd", None)
            if device is not None:
                lpn = self.log_region.base_vpn + (
                    self._log_cursor % self.log_region.num_pages
                )
                self._log_cursor += 1
                device.write_page_block(lpn, None)
        self._commits.add()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(
        self,
        transactions: List[Transaction],
        num_threads: int,
        sim_seed: Optional[int] = None,
        recorder=None,
    ) -> OLTPResult:
        """Execute transactions on ``num_threads`` workers; returns timings.

        ``sim_seed`` opts into a perturbed same-timestamp schedule and
        ``recorder`` attaches a dynamic access recorder — both are wired
        straight into the :class:`Simulator` (see :mod:`repro.sim.race`).
        """
        if num_threads <= 0:
            raise ValueError(f"num_threads must be > 0, got {num_threads}")
        if not transactions:
            raise ValueError("no transactions to run")
        sim = Simulator(seed=sim_seed, recorder=recorder)
        if recorder is not None:
            self.system.stats.register_shared(recorder)
            device = getattr(self.system, "ssd", None)
            if device is not None:
                device.register_shared(recorder)
            bridge = getattr(self.system, "bridge", None)
            if bridge is not None:
                bridge.register_shared(recorder)
        log_lock = Lock("central-log")
        # The block systems' log is one sequential file: consecutive log
        # pages land in the same flash block, hence the same channel — so
        # concurrent commits contend on a single write channel regardless
        # of how many channels the device has.
        log_channel = Semaphore(1, "log-channel")
        system = self.system
        table = self.table

        def worker(mine: List[Transaction], worker_id: int):
            for tx in mine:
                yield Delay(tx.spec.compute_ns)
                for offset in tx.read_offsets:
                    result = system.load(table.addr(offset % table.size), 64)
                    yield Delay(result.latency_ns)
                for offset in tx.write_offsets:
                    result = system.store(table.addr(offset % table.size), 64)
                    yield Delay(result.latency_ns)
                software, held, post = self._commit_costs(tx.log_bytes)
                if software:
                    yield Delay(software)
                if self.scheme is LoggingScheme.CENTRALIZED:
                    yield Acquire(log_lock)
                if held:
                    yield AcquireSlot(log_channel)
                    yield Delay(held)
                    yield ReleaseSlot(log_channel)
                if post:
                    yield Delay(post)
                self._record_log_write(tx.log_bytes)
                if self.scheme is LoggingScheme.CENTRALIZED:
                    yield Release(log_lock)

        shards: List[List[Transaction]] = [[] for _ in range(num_threads)]
        for index, tx in enumerate(transactions):
            shards[index % num_threads].append(tx)
        for worker_id, shard in enumerate(shards):
            if shard:
                sim.spawn(worker(shard, worker_id))
        elapsed = sim.run()
        return OLTPResult(
            workload=transactions[0].spec.name,
            system=system.name,
            scheme=self.scheme.value,
            threads=num_threads,
            transactions=len(transactions),
            elapsed_ns=elapsed,
            log_lock_contention=log_lock.contention_ratio,
        )


def run_oltp(
    system: MemorySystem,
    spec: TransactionSpec,
    num_transactions: int,
    num_threads: int,
    scheme: LoggingScheme = LoggingScheme.PER_TRANSACTION,
    table_pages: int = 256,
    seed: int = 17,
    sim_seed: Optional[int] = None,
    recorder=None,
) -> OLTPResult:
    """Convenience: build a MiniDB, generate transactions, run them."""
    import numpy as np

    database = MiniDB(system, scheme=scheme, table_pages=table_pages)
    transactions = generate_transactions(
        spec,
        num_transactions,
        table_bytes=database.table.size,
        rng=np.random.default_rng(seed),
    )
    return database.run(
        transactions, num_threads, sim_seed=sim_seed, recorder=recorder
    )
