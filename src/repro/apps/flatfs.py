"""FlatFS: a small file system with byte-granular metadata persistence.

The Fig. 13 engines *model* file-system persistence costs; FlatFS is the
real thing at miniature scale — a working hierarchical file system whose
metadata lives in FlatFlash persistent memory and is made crash-consistent
the way §3.5 proposes:

* the **inode table** and **block bitmap** sit in a pmem region and are
  updated with posted byte-granular writes (tens of bytes per op, not
  journal pages);
* every namespace operation first appends one **logical redo record** to
  a write-ahead log (a single fenced byte-granular append) describing the
  op as *absolute state assignments* — replaying a record any number of
  times yields the same state, so recovery is a simple idempotent redo of
  the log over the on-flash metadata;
* **file data** goes through ordinary (page-granular) writes, like the
  paper's designs: only metadata moves to the byte interface.

Limitations (deliberate, documented): names up to 23 bytes, at most
``DIRECT_BLOCKS`` data blocks per file, directories hold one block of
entries, no permissions.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.hierarchy import FlatFlash
from repro.core.persistence import PersistentRegion, create_pmem_region
from repro.apps.wal import WriteAheadLog

INODE_SIZE = 64
DIRECT_BLOCKS = 10
NAME_LEN = 23
DIRENT_SIZE = 32
FREE, FILE, DIR = 0, 1, 2

_INODE = struct.Struct("<BxHI" + "I" * DIRECT_BLOCKS + "x" * 16)
assert _INODE.size == INODE_SIZE
_DIRENT = struct.Struct("<I4x23sB")
assert _DIRENT.size == DIRENT_SIZE

# Redo records (absolute state assignments).
_REC_SET_INODE = 1  # ino, type, nlink, size, blocks[10]
_REC_SET_DIRENT = 2  # dir_ino, slot, child_ino, name, used
_REC_SET_BITMAP = 3  # block, used
_HDR = struct.Struct("<B")
_R_INODE = struct.Struct("<IBxH I" + "I" * DIRECT_BLOCKS)
_R_DIRENT = struct.Struct("<III23sB")
_R_BITMAP = struct.Struct("<IB")


class FsError(Exception):
    """File-system operation error (missing path, exists, full, ...)."""


class FlatFS:
    """A hierarchical file system over a FlatFlash memory system."""

    def __init__(
        self,
        system: FlatFlash,
        num_inodes: int = 64,
        data_blocks: int = 64,
        name: str = "flatfs",
    ) -> None:
        if not getattr(system, "supports_byte_persistence", False):
            raise TypeError("FlatFS needs a FlatFlash system (byte persistence)")
        if not system.config.track_data:
            raise ValueError("FlatFS needs track_data=True")
        if num_inodes < 2 or data_blocks < 1:
            raise ValueError("need at least 2 inodes and 1 data block")
        self.system = system
        self.num_inodes = num_inodes
        self.data_blocks = data_blocks
        self.block_size = system.page_size
        itable_bytes = num_inodes * INODE_SIZE + data_blocks  # + bitmap bytes
        self.meta = create_pmem_region(
            system, -(-itable_bytes // system.page_size), name=f"{name}.meta"
        )
        self._bitmap_base = num_inodes * INODE_SIZE
        self.data_region = system.mmap(data_blocks, name=f"{name}.data")
        self.wal = WriteAheadLog.create(system, num_pages=4, name=f"{name}.wal")
        self._dirents_per_block = self.block_size // DIRENT_SIZE
        # Root directory (inode 0) with its directory block.
        if self._read_inode(0)[0] == FREE:
            block = self._alloc_block()
            self._set_inode(0, DIR, 1, self.block_size, [block] + [0] * 9)
            self.checkpoint()

    @classmethod
    def reattach(cls, system: FlatFlash, old: "FlatFS") -> "FlatFS":
        """Rebind a file system to a restarted FlatFlash (post power loss).

        The regions are the same address ranges on the same flash image —
        only the host objects are rebuilt.  No region is created and the
        root is not re-formatted: the metadata on flash is authoritative.
        The caller runs :meth:`recover` on the result to redo the journal.
        """
        fs = cls.__new__(cls)
        fs.system = system
        fs.num_inodes = old.num_inodes
        fs.data_blocks = old.data_blocks
        fs.block_size = old.block_size
        fs.meta = PersistentRegion(system, old.meta.region)
        fs._bitmap_base = old._bitmap_base
        fs.data_region = old.data_region
        fs.wal = WriteAheadLog(PersistentRegion(system, old.wal.pmem.region))
        fs._dirents_per_block = old._dirents_per_block
        return fs

    # ------------------------------------------------------------------ #
    # Raw metadata accessors (pmem region)
    # ------------------------------------------------------------------ #

    def _inode_off(self, ino: int) -> int:
        if not 0 <= ino < self.num_inodes:
            raise FsError(f"inode {ino} out of range")
        return ino * INODE_SIZE

    def _read_inode(self, ino: int) -> Tuple[int, int, int, List[int]]:
        raw = self.meta.load(self._inode_off(ino), INODE_SIZE)
        fields = _INODE.unpack(raw)
        return fields[0], fields[1], fields[2], list(fields[3 : 3 + DIRECT_BLOCKS])

    def _set_inode(
        self, ino: int, itype: int, nlink: int, size: int, blocks: List[int]
    ) -> None:
        packed = _INODE.pack(itype, nlink, size, *blocks)
        self.meta.persist_store(self._inode_off(ino), INODE_SIZE, packed)

    def _bitmap_get(self, block: int) -> bool:
        raw = self.meta.load(self._bitmap_base + block, 1)
        return raw[0] != 0

    def _bitmap_set(self, block: int, used: bool) -> None:
        self.meta.persist_store(
            self._bitmap_base + block, 1, b"\x01" if used else b"\x00"
        )

    def _alloc_inode(self) -> int:
        for ino in range(1, self.num_inodes):
            if self._read_inode(ino)[0] == FREE:
                return ino
        raise FsError("out of inodes")

    def _alloc_block(self) -> int:
        for block in range(self.data_blocks):
            if not self._bitmap_get(block):
                self._bitmap_set(block, True)
                return block
        raise FsError("out of data blocks")

    # ------------------------------------------------------------------ #
    # Directory entries (stored in the directory's first data block)
    # ------------------------------------------------------------------ #

    def _dirent_addr(self, dir_block: int, slot: int) -> int:
        return self.data_region.page_addr(dir_block, slot * DIRENT_SIZE)

    def _read_dirent(self, dir_block: int, slot: int) -> Tuple[int, str, bool]:
        raw = self.system.load(self._dirent_addr(dir_block, slot), DIRENT_SIZE).data
        child, name, used = _DIRENT.unpack(raw)
        return child, name.rstrip(b"\x00").decode(errors="replace"), bool(used)

    def _write_dirent(
        self, dir_block: int, slot: int, child: int, name: str, used: bool
    ) -> None:
        packed = _DIRENT.pack(child, name.encode()[:NAME_LEN], int(used))
        self.system.store(self._dirent_addr(dir_block, slot), DIRENT_SIZE, packed)

    def _dir_entries(self, dir_ino: int) -> Iterator[Tuple[int, int, str]]:
        itype, _n, _size, blocks = self._read_inode(dir_ino)
        if itype != DIR:
            raise FsError(f"inode {dir_ino} is not a directory")
        for slot in range(self._dirents_per_block):
            child, name, used = self._read_dirent(blocks[0], slot)
            if used:
                yield slot, child, name

    def _find(self, dir_ino: int, name: str) -> Optional[Tuple[int, int]]:
        for slot, child, entry_name in self._dir_entries(dir_ino):
            if entry_name == name:
                return slot, child
        return None

    def _free_slot(self, dir_ino: int) -> int:
        _t, _n, _s, blocks = self._read_inode(dir_ino)
        for slot in range(self._dirents_per_block):
            _child, _name, used = self._read_dirent(blocks[0], slot)
            if not used:
                return slot
        raise FsError("directory full")

    # ------------------------------------------------------------------ #
    # Path resolution
    # ------------------------------------------------------------------ #

    @staticmethod
    def _split(path: str) -> List[str]:
        parts = [part for part in path.split("/") if part]
        for part in parts:
            if len(part.encode()) > NAME_LEN:
                raise FsError(f"name {part!r} longer than {NAME_LEN} bytes")
        return parts

    def _resolve_dir(self, parts: List[str]) -> int:
        """Inode of the directory identified by ``parts``."""
        ino = 0
        for part in parts:
            hit = self._find(ino, part)
            if hit is None:
                raise FsError(f"no such directory: {part!r}")
            ino = hit[1]
            if self._read_inode(ino)[0] != DIR:
                raise FsError(f"{part!r} is not a directory")
        return ino

    def _resolve_parent(self, path: str) -> Tuple[int, str]:
        parts = self._split(path)
        if not parts:
            raise FsError("path names the root")
        return self._resolve_dir(parts[:-1]), parts[-1]

    # ------------------------------------------------------------------ #
    # Redo journaling
    # ------------------------------------------------------------------ #

    def _log_inode(self, ino: int, itype: int, nlink: int, size: int, blocks: List[int]) -> bytes:
        return _HDR.pack(_REC_SET_INODE) + _R_INODE.pack(ino, itype, nlink, size, *blocks)

    def _log_dirent(self, dir_ino: int, slot: int, child: int, name: str, used: bool) -> bytes:
        return _HDR.pack(_REC_SET_DIRENT) + _R_DIRENT.pack(
            dir_ino, slot, child, name.encode()[:NAME_LEN], int(used)
        )

    def _log_bitmap(self, block: int, used: bool) -> bytes:
        return _HDR.pack(_REC_SET_BITMAP) + _R_BITMAP.pack(block, int(used))

    def _journal(self, records: List[bytes]) -> None:
        """One fenced append covering an op's absolute state assignments."""
        self.wal.append(b"".join(records))

    def _apply_record(self, payload: bytes) -> None:
        kind = payload[0]
        body = payload[1:]
        if kind == _REC_SET_INODE:
            fields = _R_INODE.unpack(body)
            self._set_inode(fields[0], fields[1], fields[2], fields[3], list(fields[4:]))
        elif kind == _REC_SET_DIRENT:
            dir_ino, slot, child, name, used = _R_DIRENT.unpack(body)
            _t, _n, _s, blocks = self._read_inode(dir_ino)
            self._write_dirent(
                blocks[0], slot, child,
                name.rstrip(b"\x00").decode(errors="replace"), bool(used),
            )
        elif kind == _REC_SET_BITMAP:
            block, used = _R_BITMAP.unpack(body)
            self._bitmap_set(block, bool(used))
        else:
            raise FsError(f"unknown redo record kind {kind}")

    def _apply_op(self, op_payload: bytes) -> None:
        offset = 0
        sizes = {
            _REC_SET_INODE: 1 + _R_INODE.size,
            _REC_SET_DIRENT: 1 + _R_DIRENT.size,
            _REC_SET_BITMAP: 1 + _R_BITMAP.size,
        }
        while offset < len(op_payload):
            kind = op_payload[offset]
            size = sizes.get(kind)
            if size is None:
                raise FsError(f"corrupt redo op at offset {offset}")
            self._apply_record(op_payload[offset : offset + size])
            offset += size

    def checkpoint(self) -> None:
        """Fence all metadata and truncate the journal."""
        self.meta.commit()
        self.wal.truncate()

    def replay_journal(self) -> int:
        """Redo the journal from the *live* WAL; returns ops redone.

        The post-failover scrub for fleets: losing a device relocates its
        volatile directory blocks as zeroed pages, while the replicated
        WAL and inode table survive intact.  Replaying the journal through
        normal loads (no crash happened, so the flash image may lag the
        battery-backed SSD-Cache) rewrites exactly the dirent/bitmap slots
        each logged op touched.  The journal is left in place so repeated
        losses stay repairable; call :meth:`checkpoint` to truncate.
        """
        ops = self.wal.records()
        for op_payload in ops:
            self._apply_op(op_payload)
        return len(ops)

    def recover(self) -> int:
        """After a crash: idempotently redo the journal; returns ops redone.

        Directory blocks live in the data region, whose page contents are
        read back from flash by the normal access path after the device
        crash handling — the redo records rewrite exactly the slots each
        logged op touched.
        """
        ops = self.wal.recover()
        for op_payload in ops:
            self._apply_op(op_payload)
        self.checkpoint()
        return len(ops)

    # ------------------------------------------------------------------ #
    # Public operations
    # ------------------------------------------------------------------ #

    def create(self, path: str) -> int:
        """Create an empty file; returns its inode."""
        parent, name = self._resolve_parent(path)
        if self._find(parent, name) is not None:
            raise FsError(f"{path!r} exists")
        ino = self._alloc_inode()
        slot = self._free_slot(parent)
        self._journal([
            self._log_inode(ino, FILE, 1, 0, [0] * DIRECT_BLOCKS),
            self._log_dirent(parent, slot, ino, name, True),
        ])
        self._set_inode(ino, FILE, 1, 0, [0] * DIRECT_BLOCKS)
        _t, _n, _s, blocks = self._read_inode(parent)
        self._write_dirent(blocks[0], slot, ino, name, True)
        return ino

    def mkdir(self, path: str) -> int:
        parent, name = self._resolve_parent(path)
        if self._find(parent, name) is not None:
            raise FsError(f"{path!r} exists")
        ino = self._alloc_inode()
        block = self._alloc_block()
        # A recycled block may still hold old file bytes, which would parse
        # as garbage directory entries; scrub it before the dir goes live.
        self.system.store(
            self.data_region.page_addr(block, 0),
            self.block_size,
            b"\x00" * self.block_size,
        )
        slot = self._free_slot(parent)
        blocks = [block] + [0] * (DIRECT_BLOCKS - 1)
        self._journal([
            self._log_bitmap(block, True),
            self._log_inode(ino, DIR, 1, self.block_size, blocks),
            self._log_dirent(parent, slot, ino, name, True),
        ])
        self._set_inode(ino, DIR, 1, self.block_size, blocks)
        _t, _n, _s, pblocks = self._read_inode(parent)
        self._write_dirent(pblocks[0], slot, ino, name, True)
        return ino

    def write_file(self, path: str, data: bytes) -> None:
        """Replace a file's contents (data page-granular, metadata byte)."""
        parent, name = self._resolve_parent(path)
        hit = self._find(parent, name)
        if hit is None:
            raise FsError(f"no such file: {path!r}")
        ino = hit[1]
        itype, nlink, old_size, old_blocks = self._read_inode(ino)
        if itype != FILE:
            raise FsError(f"{path!r} is not a file")
        needed = -(-len(data) // self.block_size) if data else 0
        if needed > DIRECT_BLOCKS:
            raise FsError(f"file of {len(data)} bytes exceeds {DIRECT_BLOCKS} blocks")
        new_blocks = []
        old_live = [
            block
            for index, block in enumerate(old_blocks)
            if index * self.block_size < old_size
        ]
        for index in range(needed):
            if index < len(old_live):
                new_blocks.append(old_live[index])
            else:
                new_blocks.append(self._alloc_block())
        records = [
            self._log_bitmap(block, True) for block in new_blocks[len(old_live):]
        ]
        freed = old_live[needed:]
        records += [self._log_bitmap(block, False) for block in freed]
        padded = new_blocks + [0] * (DIRECT_BLOCKS - len(new_blocks))
        records.append(self._log_inode(ino, FILE, nlink, len(data), padded))
        self._journal(records)
        for block in freed:
            self._bitmap_set(block, False)
        for index, block in enumerate(new_blocks):
            chunk = data[index * self.block_size : (index + 1) * self.block_size]
            self.system.store(
                self.data_region.page_addr(block, 0),
                len(chunk),
                chunk,
            )
        self._set_inode(ino, FILE, nlink, len(data), padded)

    def read_file(self, path: str) -> bytes:
        parent, name = self._resolve_parent(path)
        hit = self._find(parent, name)
        if hit is None:
            raise FsError(f"no such file: {path!r}")
        itype, _n, size, blocks = self._read_inode(hit[1])
        if itype != FILE:
            raise FsError(f"{path!r} is not a file")
        out = bytearray()
        remaining = size
        for block in blocks:
            if remaining <= 0:
                break
            chunk = min(remaining, self.block_size)
            data = self.system.load(self.data_region.page_addr(block, 0), chunk).data
            out.extend(data)
            remaining -= chunk
        return bytes(out)

    def unlink(self, path: str) -> None:
        parent, name = self._resolve_parent(path)
        hit = self._find(parent, name)
        if hit is None:
            raise FsError(f"no such file: {path!r}")
        slot, ino = hit
        itype, nlink, size, blocks = self._read_inode(ino)
        if itype == DIR and any(True for _ in self._dir_entries(ino)):
            raise FsError(f"directory {path!r} not empty")
        if itype == FILE and nlink > 1:
            # Other hard links remain: just drop this name.
            self._journal([
                self._log_dirent(parent, slot, 0, "", False),
                self._log_inode(ino, FILE, nlink - 1, size, blocks),
            ])
            _t, _n2, _s, pblocks = self._read_inode(parent)
            self._write_dirent(pblocks[0], slot, 0, "", False)
            self._set_inode(ino, FILE, nlink - 1, size, blocks)
            return
        live = [b for i, b in enumerate(blocks) if i * self.block_size < size]
        if itype == DIR:
            live = [blocks[0]]
        records = [
            self._log_dirent(parent, slot, 0, "", False),
            self._log_inode(ino, FREE, 0, 0, [0] * DIRECT_BLOCKS),
        ]
        records += [self._log_bitmap(block, False) for block in live]
        self._journal(records)
        _t, _n2, _s, pblocks = self._read_inode(parent)
        self._write_dirent(pblocks[0], slot, 0, "", False)
        self._set_inode(ino, FREE, 0, 0, [0] * DIRECT_BLOCKS)
        for block in live:
            self._bitmap_set(block, False)

    def rename(self, old_path: str, new_path: str) -> None:
        old_parent, old_name = self._resolve_parent(old_path)
        hit = self._find(old_parent, old_name)
        if hit is None:
            raise FsError(f"no such file: {old_path!r}")
        old_slot, ino = hit
        new_parent, new_name = self._resolve_parent(new_path)
        if self._find(new_parent, new_name) is not None:
            raise FsError(f"{new_path!r} exists")
        new_slot = self._free_slot(new_parent)
        self._journal([
            self._log_dirent(new_parent, new_slot, ino, new_name, True),
            self._log_dirent(old_parent, old_slot, 0, "", False),
        ])
        _t, _n, _s, nblocks = self._read_inode(new_parent)
        self._write_dirent(nblocks[0], new_slot, ino, new_name, True)
        _t, _n, _s, oblocks = self._read_inode(old_parent)
        self._write_dirent(oblocks[0], old_slot, 0, "", False)

    def link(self, existing_path: str, new_path: str) -> None:
        """Create a hard link: two directory entries, one inode."""
        parent, name = self._resolve_parent(existing_path)
        hit = self._find(parent, name)
        if hit is None:
            raise FsError(f"no such file: {existing_path!r}")
        ino = hit[1]
        itype, nlink, size, blocks = self._read_inode(ino)
        if itype != FILE:
            raise FsError("hard links to directories are not allowed")
        new_parent, new_name = self._resolve_parent(new_path)
        if self._find(new_parent, new_name) is not None:
            raise FsError(f"{new_path!r} exists")
        slot = self._free_slot(new_parent)
        self._journal([
            self._log_inode(ino, FILE, nlink + 1, size, blocks),
            self._log_dirent(new_parent, slot, ino, new_name, True),
        ])
        self._set_inode(ino, FILE, nlink + 1, size, blocks)
        _t, _n, _s, pblocks = self._read_inode(new_parent)
        self._write_dirent(pblocks[0], slot, ino, new_name, True)

    def append_file(self, path: str, data: bytes) -> None:
        """Append to a file (read-modify-write of the tail block)."""
        if not data:
            return
        current = self.read_file(path)
        self.write_file(path, current + data)

    def listdir(self, path: str = "/") -> List[str]:
        parts = self._split(path)
        ino = self._resolve_dir(parts)
        return sorted(name for _slot, _child, name in self._dir_entries(ino))

    def exists(self, path: str) -> bool:
        try:
            parent, name = self._resolve_parent(path)
        except FsError:
            return len(self._split(path)) == 0  # the root always exists
        return self._find(parent, name) is not None

    def fsck(self) -> List[str]:
        """Consistency check; returns a list of problems (empty = clean).

        Invariants checked:

        * every directory entry points at an allocated inode;
        * every file inode's link count equals its directory references;
        * every live data block is marked used in the bitmap;
        * no two inodes share a data block;
        * no allocated inode is orphaned (unreachable from the root);
        * no bitmap bit is set without an owning inode.
        """
        problems: List[str] = []
        referenced: Dict[int, int] = {}
        reachable = {0}
        stack = [0]
        while stack:
            dir_ino = stack.pop()
            for _slot, child, name in self._dir_entries(dir_ino):
                itype = self._read_inode(child)[0]
                if itype == FREE:
                    problems.append(f"dirent {name!r} points at free inode {child}")
                    continue
                referenced[child] = referenced.get(child, 0) + 1
                if itype == DIR and child not in reachable:
                    reachable.add(child)
                    stack.append(child)
                else:
                    reachable.add(child)
        block_owner: Dict[int, int] = {}
        for ino in range(self.num_inodes):
            itype, nlink, size, blocks = self._read_inode(ino)
            if itype == FREE:
                continue
            if ino != 0 and ino not in reachable:
                problems.append(f"orphan inode {ino}")
            if itype == FILE and referenced.get(ino, 0) != nlink:
                problems.append(
                    f"inode {ino}: nlink={nlink} but {referenced.get(ino, 0)} dirents"
                )
            live = [
                block
                for index, block in enumerate(blocks)
                if index * self.block_size < max(size, 1 if itype == DIR else 0)
            ]
            if itype == DIR:
                live = [blocks[0]]
            for block in live:
                if not self._bitmap_get(block):
                    problems.append(f"inode {ino} uses unallocated block {block}")
                if block in block_owner:
                    problems.append(
                        f"block {block} shared by inodes {block_owner[block]} and {ino}"
                    )
                block_owner[block] = ino
        for block in range(self.data_blocks):
            if self._bitmap_get(block) and block not in block_owner:
                problems.append(f"leaked block {block} (bitmap set, no owner)")
        return problems

    def stat(self, path: str) -> Dict[str, int]:
        parent, name = self._resolve_parent(path)
        hit = self._find(parent, name)
        if hit is None:
            raise FsError(f"no such path: {path!r}")
        itype, nlink, size, _blocks = self._read_inode(hit[1])
        return {"ino": hit[1], "type": itype, "nlink": nlink, "size": size}
