"""A B+-tree index stored in unified memory.

A concrete "downstream user" of the FlatFlash programming model: every
node is one page of a mapped region, traversals issue real loads through
the memory hierarchy, and updates issue real stores — so index lookups on
SSD-resident nodes ride byte-granular MMIO while hot upper levels promote
to DRAM automatically.  The tree works unchanged (and is tested) on every
memory system in the package.

Node layout (one page per node, little endian)::

    u8  node type (1 = leaf, 2 = inner)
    u16 key count              (at offset 2)
    u64 next-leaf page         (at offset 8; leaves only, ~0 = none)
    keys   [max_keys x u64]    (at offset 16)
    values [max_keys x u64]    (leaves)  |  children [max_keys+1 x u64]

Keys are unsigned 64-bit; values are unsigned 64-bit payloads.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

from repro.core.memory_system import MemorySystem

_LEAF = 1
_INNER = 2
_NO_LEAF = (1 << 64) - 1
_HEADER_SIZE = 16
_U64 = struct.Struct("<Q")
_U16 = struct.Struct("<H")


class BPlusTree:
    """An order-configurable B+-tree over a mapped region."""

    def __init__(
        self,
        system: MemorySystem,
        capacity_pages: int = 64,
        max_keys: Optional[int] = None,
        name: str = "btree",
    ) -> None:
        if capacity_pages < 2:
            raise ValueError(f"need at least 2 pages, got {capacity_pages}")
        self.system = system
        self.page_size = system.page_size
        # Arrays carry two spare key slots (and three child slots) so a
        # node may hold max_keys+1 entries transiently while splitting.
        natural = (self.page_size - _HEADER_SIZE - 5 * 8) // 16
        self.max_keys = natural if max_keys is None else max_keys
        if not 2 <= self.max_keys <= natural:
            raise ValueError(f"max_keys must be in [2, {natural}], got {self.max_keys}")
        self.region = system.mmap(capacity_pages, name=name)
        self._next_free = 0
        self._size = 0
        self.root = self._alloc_node(_LEAF)

    # ------------------------------------------------------------------ #
    # Raw node field access (every call is a real memory access)
    # ------------------------------------------------------------------ #

    def _page_addr(self, page: int, offset: int) -> int:
        return self.region.page_addr(page, offset)

    def _alloc_node(self, node_type: int) -> int:
        if self._next_free >= self.region.num_pages:
            raise MemoryError(
                f"B+-tree out of pages ({self.region.num_pages}); "
                "grow capacity_pages"
            )
        page = self._next_free
        self._next_free += 1
        self.system.store(self._page_addr(page, 0), 1, bytes([node_type]))
        self._set_count(page, 0)
        if node_type == _LEAF:
            self._set_next_leaf(page, _NO_LEAF)
        return page

    def _node_type(self, page: int) -> int:
        data = self.system.load(self._page_addr(page, 0), 1).data
        return data[0] if data else _LEAF

    def _count(self, page: int) -> int:
        data = self.system.load(self._page_addr(page, 2), 2).data
        return _U16.unpack(data)[0] if data else 0

    def _set_count(self, page: int, count: int) -> None:
        self.system.store(self._page_addr(page, 2), 2, _U16.pack(count))

    def _next_leaf(self, page: int) -> int:
        value, _ = self.system.load_u64(self._page_addr(page, 8))
        return value

    def _set_next_leaf(self, page: int, target: int) -> None:
        self.system.store_u64(self._page_addr(page, 8), target)

    def _key_off(self, index: int) -> int:
        return _HEADER_SIZE + index * 8

    def _val_off(self, index: int) -> int:
        return _HEADER_SIZE + (self.max_keys + 2) * 8 + index * 8

    def _key(self, page: int, index: int) -> int:
        value, _ = self.system.load_u64(self._page_addr(page, self._key_off(index)))
        return value

    def _set_key(self, page: int, index: int, key: int) -> None:
        self.system.store_u64(self._page_addr(page, self._key_off(index)), key)

    def _value(self, page: int, index: int) -> int:
        value, _ = self.system.load_u64(self._page_addr(page, self._val_off(index)))
        return value

    def _set_value(self, page: int, index: int, value: int) -> None:
        self.system.store_u64(self._page_addr(page, self._val_off(index)), value)

    # children share the value slots, plus one extra at index max_keys
    _child = _value
    _set_child = _set_value

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #

    def _lower_bound(self, page: int, count: int, key: int) -> int:
        """First index whose key is >= key (binary search, real loads)."""
        low, high = 0, count
        while low < high:
            mid = (low + high) // 2
            if self._key(page, mid) < key:
                low = mid + 1
            else:
                high = mid
        return low

    def _descend(self, key: int) -> List[int]:
        """Root-to-leaf path for a key."""
        path = [self.root]
        while self._node_type(path[-1]) == _INNER:
            page = path[-1]
            count = self._count(page)
            index = self._lower_bound(page, count, key)
            if index < count and self._key(page, index) == key:
                index += 1  # equal separator: go right
            path.append(self._child(page, index))
        return path

    def get(self, key: int) -> Optional[int]:
        """Look up a key; None when absent."""
        leaf = self._descend(key)[-1]
        count = self._count(leaf)
        index = self._lower_bound(leaf, count, key)
        if index < count and self._key(leaf, index) == key:
            return self._value(leaf, index)
        return None

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------ #
    # Insertion
    # ------------------------------------------------------------------ #

    def insert(self, key: int, value: int) -> None:
        """Insert or update ``key``."""
        if not 0 <= key < _NO_LEAF:
            raise ValueError(f"key {key} out of u64 range")
        path = self._descend(key)
        leaf = path[-1]
        count = self._count(leaf)
        index = self._lower_bound(leaf, count, key)
        if index < count and self._key(leaf, index) == key:
            self._set_value(leaf, index, value)
            return
        self._shift_right(leaf, index, count, leaf_node=True)
        self._set_key(leaf, index, key)
        self._set_value(leaf, index, value)
        self._set_count(leaf, count + 1)
        self._size += 1
        if count + 1 > self.max_keys:
            self._split(path)

    def _shift_right(self, page: int, index: int, count: int, leaf_node: bool) -> None:
        """Open a slot at ``index`` by shifting entries right."""
        for slot in range(count, index, -1):
            self._set_key(page, slot, self._key(page, slot - 1))
            self._set_value(page, slot, self._value(page, slot - 1))
        if not leaf_node:
            self._set_child(page, count + 1, self._child(page, count))

    def _split(self, path: List[int]) -> None:
        """Split the overfull tail node of ``path``, propagating upward."""
        node = path[-1]
        is_leaf = self._node_type(node) == _LEAF
        count = self._count(node)
        half = count // 2
        sibling = self._alloc_node(_LEAF if is_leaf else _INNER)
        if is_leaf:
            moved = count - half
            for slot in range(moved):
                self._set_key(sibling, slot, self._key(node, half + slot))
                self._set_value(sibling, slot, self._value(node, half + slot))
            self._set_count(sibling, moved)
            self._set_count(node, half)
            self._set_next_leaf(sibling, self._next_leaf(node))
            self._set_next_leaf(node, sibling)
            separator = self._key(sibling, 0)
        else:
            # Middle key moves up; right half goes to the sibling.
            separator = self._key(node, half)
            moved = count - half - 1
            for slot in range(moved):
                self._set_key(sibling, slot, self._key(node, half + 1 + slot))
                self._set_child(sibling, slot, self._child(node, half + 1 + slot))
            self._set_child(sibling, moved, self._child(node, count))
            self._set_count(sibling, moved)
            self._set_count(node, half)
        self._insert_into_parent(path, node, separator, sibling)

    def _insert_into_parent(
        self, path: List[int], left: int, separator: int, right: int
    ) -> None:
        if len(path) == 1:  # splitting the root: grow the tree
            new_root = self._alloc_node(_INNER)
            self._set_key(new_root, 0, separator)
            self._set_child(new_root, 0, left)
            self._set_child(new_root, 1, right)
            self._set_count(new_root, 1)
            self.root = new_root
            return
        parent = path[-2]
        count = self._count(parent)
        index = self._lower_bound(parent, count, separator)
        # Shift keys and children right of the insertion point.
        self._set_child(parent, count + 1, self._child(parent, count))
        for slot in range(count, index, -1):
            self._set_key(parent, slot, self._key(parent, slot - 1))
            self._set_child(parent, slot + 1, self._child(parent, slot))
        self._set_key(parent, index, separator)
        self._set_child(parent, index + 1, right)
        self._set_count(parent, count + 1)
        if count + 1 > self.max_keys:
            self._split(path[:-1])

    # ------------------------------------------------------------------ #
    # Range scan
    # ------------------------------------------------------------------ #

    def scan(self, low: int, high: int) -> Iterator[Tuple[int, int]]:
        """Yield (key, value) for low <= key < high, leaf-chain order."""
        if low >= high:
            return
        leaf = self._descend(low)[-1]
        while leaf != _NO_LEAF:
            count = self._count(leaf)
            for index in range(count):
                key = self._key(leaf, index)
                if key >= high:
                    return
                if key >= low:
                    yield key, self._value(leaf, index)
            leaf = self._next_leaf(leaf)

    def items(self) -> Iterator[Tuple[int, int]]:
        """Every (key, value), in key order."""
        return self.scan(0, _NO_LEAF)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    # ------------------------------------------------------------------ #
    # YCSB-E driver (scan-heavy workload over the ordered index)
    # ------------------------------------------------------------------ #

    def run_ycsb_e(
        self,
        num_ops: int,
        num_records: int,
        max_scan_length: int = 50,
        theta: float = 0.99,
        seed: int = 41,
    ):
        """YCSB workload E: 95 % short range scans / 5 % inserts.

        The tree must be preloaded with keys ``[0, num_records)``.  Returns
        per-operation latency statistics (scan latency = the whole range
        traversal through the memory hierarchy).
        """
        import numpy as np

        from repro.sim.stats import LatencyStats
        from repro.workloads.zipfian import ZipfianGenerator

        if num_ops <= 0 or num_records <= 0:
            raise ValueError("num_ops and num_records must be > 0")
        if max_scan_length <= 0:
            raise ValueError(f"max_scan_length must be > 0, got {max_scan_length}")
        rng = np.random.default_rng(seed)
        zipf = ZipfianGenerator(num_records, theta=theta, seed=seed + 1)
        stats = LatencyStats("YCSB-E")
        next_insert = num_records
        for _ in range(num_ops):
            start_ns = self.system.clock.now
            if rng.random() < 0.05:
                self.insert(next_insert, next_insert)
                next_insert += 1
            else:
                start_key = int(zipf.sample_scattered(1)[0])
                length = int(rng.integers(1, max_scan_length + 1))
                for _pair in self.scan(start_key, start_key + length):
                    pass
            stats.record(self.system.clock.now - start_ns)
        return stats

    @property
    def height(self) -> int:
        """Levels from root to leaf (1 for a lone leaf)."""
        level, page = 1, self.root
        while self._node_type(page) == _INNER:
            page = self._child(page, 0)
            level += 1
        return level

    @property
    def allocated_nodes(self) -> int:
        return self._next_free
