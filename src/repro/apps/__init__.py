"""Applications on the unified memory interface.

Stand-ins for the paper's evaluation workloads (KV store, graph engine,
file systems, mini OLTP database) plus reusable components a downstream
user would build on FlatFlash: a crash-safe write-ahead log and a B+-tree
index.
"""

from repro.apps.btree import BPlusTree
from repro.apps.database import LoggingScheme, MiniDB, run_oltp
from repro.apps.filesystem import FileSystemKind, make_filesystem
from repro.apps.flatfs import FlatFS, FsError
from repro.apps.graph_analytics import GraphEngine
from repro.apps.kvstore import KVStore, run_ycsb
from repro.apps.slab_kvstore import SlabKVStore, StoreFullError
from repro.apps.wal import LogFullError, WriteAheadLog

__all__ = [
    "KVStore",
    "run_ycsb",
    "GraphEngine",
    "FileSystemKind",
    "make_filesystem",
    "MiniDB",
    "LoggingScheme",
    "run_oltp",
    "WriteAheadLog",
    "LogFullError",
    "BPlusTree",
    "SlabKVStore",
    "StoreFullError",
    "FlatFS",
    "FsError",
]
