"""A Redis-like hash-indexed KV store with slab-allocated values.

Where :class:`~repro.apps.kvstore.KVStore` is the fixed-record array the
latency experiments use, this is the structure a real in-memory store
keeps: an open-addressing hash index plus size-classed slabs, *all of it
living in unified memory* — every probe, allocation and free issues real
loads/stores through the hierarchy.

Layout:

* **index region** — open-addressing table of 16-byte slots
  ``(key u64, packed location u64)``; linear probing; key 0 reserved as
  the empty marker (user keys are offset by one internally).
* **slab regions** — one per size class; each slab slot holds
  ``u16 length | payload``.  Freed slots chain through an in-memory free
  list head (stored in the region's first slot) using the length field's
  high bit as a "free" tag and the payload's first 8 bytes as the next
  pointer.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from repro.core.memory_system import MemorySystem

_SLOT = struct.Struct("<QQ")  # key+1, packed location
_LEN = struct.Struct("<H")
_PTR = struct.Struct("<Q")
_FREE_TAG = 0x8000
_NIL = (1 << 64) - 1

#: Value size classes (bytes of payload capacity per slab slot).
SIZE_CLASSES = (64, 128, 256, 512)


class StoreFullError(RuntimeError):
    """Raised when the index or the needed slab class is exhausted."""


class _Slab:
    """One size class: fixed slots of ``2 + capacity`` bytes."""

    def __init__(self, system: MemorySystem, capacity: int, slots: int, name: str) -> None:
        self.system = system
        self.capacity = capacity
        self.slot_size = 2 + capacity
        self.slots = slots
        total = slots * self.slot_size
        self.region = system.mmap(
            -(-total // system.page_size), name=f"{name}.slab{capacity}"
        )
        self._bump = 0  # never-allocated frontier
        self._free_head = _NIL

    def _slot_addr(self, slot: int, offset: int = 0) -> int:
        return self.region.addr(slot * self.slot_size + offset)

    def allocate(self, payload: bytes) -> int:
        """Store a payload; returns the slot index."""
        if len(payload) > self.capacity:
            raise ValueError(
                f"payload of {len(payload)} bytes exceeds class {self.capacity}"
            )
        if self._free_head != _NIL:
            slot = self._free_head
            raw = self.system.load(self._slot_addr(slot, 2), 8).data
            self._free_head = _PTR.unpack(raw)[0] if raw else _NIL
        elif self._bump < self.slots:
            slot = self._bump
            self._bump += 1
        else:
            raise StoreFullError(f"slab class {self.capacity} exhausted")
        self.system.store(self._slot_addr(slot, 0), 2, _LEN.pack(len(payload)))
        if payload:
            self.system.store(self._slot_addr(slot, 2), len(payload), payload)
        return slot

    def read(self, slot: int) -> Optional[bytes]:
        raw = self.system.load(self._slot_addr(slot, 0), 2).data
        if raw is None:
            return None
        length = _LEN.unpack(raw)[0]
        if length & _FREE_TAG:
            raise KeyError(f"slab slot {slot} is free")
        if length == 0:
            return b""
        data = self.system.load(self._slot_addr(slot, 2), length).data
        return data

    def free(self, slot: int) -> None:
        self.system.store(self._slot_addr(slot, 0), 2, _LEN.pack(_FREE_TAG))
        self.system.store(self._slot_addr(slot, 2), 8, _PTR.pack(self._free_head))
        self._free_head = slot

    @property
    def live_slots(self) -> int:
        free = 0
        head = self._free_head
        while head != _NIL:
            free += 1
            raw = self.system.load(self._slot_addr(head, 2), 8).data
            head = _PTR.unpack(raw)[0] if raw else _NIL
        return self._bump - free


class SlabKVStore:
    """Hash index + slabs, entirely on a memory system."""

    def __init__(
        self,
        system: MemorySystem,
        capacity: int = 1_024,
        slots_per_class: Optional[int] = None,
        name: str = "slabkv",
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if system.config.track_data is False:
            raise ValueError("SlabKVStore needs track_data=True (it stores real bytes)")
        self.system = system
        # Index sized to <=50% load factor, power of two for cheap masking.
        buckets = 1
        while buckets < capacity * 2:
            buckets *= 2
        self.buckets = buckets
        index_bytes = buckets * _SLOT.size
        self.index_region = system.mmap(
            -(-index_bytes // system.page_size), name=f"{name}.index"
        )
        if slots_per_class is None:
            slots_per_class = capacity
        self.slabs: List[_Slab] = [
            _Slab(system, size, slots_per_class, name) for size in SIZE_CLASSES
        ]
        self._size = 0
        self._capacity = capacity

    # ------------------------------------------------------------------ #
    # Index slots
    # ------------------------------------------------------------------ #

    def _bucket_addr(self, bucket: int) -> int:
        return self.index_region.addr(bucket * _SLOT.size)

    def _read_bucket(self, bucket: int) -> Tuple[int, int]:
        raw = self.system.load(self._bucket_addr(bucket), _SLOT.size).data
        return _SLOT.unpack(raw)

    def _write_bucket(self, bucket: int, stored_key: int, packed: int) -> None:
        self.system.store(
            self._bucket_addr(bucket), _SLOT.size, _SLOT.pack(stored_key, packed)
        )

    @staticmethod
    def _hash(key: int) -> int:
        key = (key ^ (key >> 30)) * 0xBF58476D1CE4E5B9 % (1 << 64)
        key = (key ^ (key >> 27)) * 0x94D049BB133111EB % (1 << 64)
        return key ^ (key >> 31)

    def _probe(self, key: int) -> Tuple[int, Optional[int]]:
        """Find a key's bucket: (bucket with the key or first empty, packed
        location or None)."""
        stored = key + 1
        bucket = self._hash(key) & (self.buckets - 1)
        for _ in range(self.buckets):
            found, packed = self._read_bucket(bucket)
            if found == stored:
                return bucket, packed
            if found == 0:
                return bucket, None
            bucket = (bucket + 1) & (self.buckets - 1)
        raise StoreFullError("hash index full")

    @staticmethod
    def _pack(class_index: int, slot: int) -> int:
        return (class_index << 48) | (slot + 1)

    @staticmethod
    def _unpack(packed: int) -> Tuple[int, int]:
        return packed >> 48, (packed & ((1 << 48) - 1)) - 1

    def _class_for(self, size: int) -> int:
        for index, capacity in enumerate(SIZE_CLASSES):
            if size <= capacity:
                return index
        raise ValueError(f"value of {size} bytes exceeds the largest class")

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def set(self, key: int, value: bytes) -> None:
        """Insert or replace ``key``'s value."""
        if key < 0 or key >= (1 << 63):
            raise ValueError(f"key {key} out of range")
        bucket, existing = self._probe(key)
        if existing is None and self._size >= self._capacity:
            raise StoreFullError("store at capacity")
        class_index = self._class_for(len(value))
        slot = self.slabs[class_index].allocate(value)
        self._write_bucket(bucket, key + 1, self._pack(class_index, slot))
        if existing is not None:
            old_class, old_slot = self._unpack(existing)
            self.slabs[old_class].free(old_slot)
        else:
            self._size += 1

    def get(self, key: int) -> Optional[bytes]:
        _bucket, packed = self._probe(key)
        if packed is None:
            return None
        class_index, slot = self._unpack(packed)
        return self.slabs[class_index].read(slot)

    def delete(self, key: int) -> bool:
        """Remove a key; returns True if it existed.

        Open addressing with deletions: the vacated bucket's probe chain is
        re-inserted (robin-hood style back-shift is overkill here).
        """
        bucket, packed = self._probe(key)
        if packed is None:
            return False
        class_index, slot = self._unpack(packed)
        self.slabs[class_index].free(slot)
        self._write_bucket(bucket, 0, 0)
        self._size -= 1
        # Rehash the cluster that follows so probing stays correct.
        cursor = (bucket + 1) & (self.buckets - 1)
        while True:
            stored, moved_packed = self._read_bucket(cursor)
            if stored == 0:
                break
            self._write_bucket(cursor, 0, 0)
            self._size -= 1
            self._reinsert(stored - 1, moved_packed)
            cursor = (cursor + 1) & (self.buckets - 1)
        return True

    def _reinsert(self, key: int, packed: int) -> None:
        new_bucket, existing = self._probe(key)
        assert existing is None
        self._write_bucket(new_bucket, key + 1, packed)
        self._size += 1

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return self._size

    @property
    def memory_bytes(self) -> int:
        """Total mapped footprint (index + slabs)."""
        total = self.index_region.size
        for slab in self.slabs:
            total += slab.region.size
        return total
