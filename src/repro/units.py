"""Typed domain quantities for FlatFlash's flat address space.

The simulator moves five different kinds of page number around — virtual
pages, host DRAM frames, host-visible device pages (BAR offsets), device
logical pages and NAND physical pages — plus byte offsets, page counts
and nanosecond latencies, all spelled ``int``.  This module gives each
of them a name:

======================  ==========================  ===============
type                    measures                    layer
======================  ==========================  ===============
:data:`VPN`             virtual page number         host
:data:`PFN`             host DRAM frame index       host
:data:`HostPage`        device page as exposed       interconnect
                        through the PCIe BAR
:data:`LPN`             device logical page (LBA)   ssd
:data:`PPN`             NAND physical page          ssd
:data:`BlockIndex`      NAND erase-block index      ssd
:data:`OffsetBytes`     byte offset within a page   —
:data:`SizePages`       a count of pages            —
:data:`TimeNs`          nanoseconds                 —
:data:`TimeUs`          microseconds                —
:data:`TimeCycles`      CPU cycles                  —
======================  ==========================  ===============

Each name is a :class:`DomainType` — the runtime shape of
``typing.NewType`` (callable, ``__supertype__ = int``) so it can be
used in annotations exactly like a NewType::

    def lookup(self, lpn: LPN) -> PPN: ...

Under ``from __future__ import annotations`` (used throughout the
simulator) the annotations cost nothing at runtime; the static pass
:mod:`repro.analysis.simflow` reads them as ground truth and checks
every call site against them.

Calling a domain type is a **sanctioned cast**: ``LPN(vpn)`` says "this
int now means a logical page" (e.g. regions tile the SSD's logical
space linearly, so the vpn→lpn map is the identity — but the *claim*
must be written down).  simflow treats these calls as translation
points; with shadow tagging enabled (:mod:`repro.sim.domain_tags`) they
also attach a runtime tag so an lpn smuggled into a ppn slot raises at
the point of mixing instead of corrupting the FTL silently.
"""

from __future__ import annotations

from repro.sim import domain_tags

__all__ = [
    "DomainType",
    "VPN",
    "PFN",
    "HostPage",
    "LPN",
    "PPN",
    "BlockIndex",
    "OffsetBytes",
    "SizePages",
    "TimeNs",
    "TimeUs",
    "TimeCycles",
    "DOMAIN_TYPES",
]


class DomainType:
    """A NewType-shaped marker for one address/unit domain over ``int``.

    Mirrors ``typing.NewType("X", int)`` closely enough for annotation
    use (``__supertype__``, ``__name__``, identity call) while staying
    an ordinary object we can hook: when shadow tagging is enabled the
    call wraps its argument in a :class:`~repro.sim.domain_tags.TaggedInt`.
    """

    __slots__ = ("__name__", "kind")

    #: NewType-compatibility: the underlying representation type.
    __supertype__ = int

    def __init__(self, name: str, kind: str) -> None:
        self.__name__ = name
        #: The simflow kind this type denotes (e.g. ``"LPN"``).
        self.kind = kind

    def __call__(self, value: int) -> int:
        return domain_tags.tag(value, self.kind)

    def __repr__(self) -> str:
        return f"repro.units.{self.__name__}"


VPN = DomainType("VPN", "VPN")
PFN = DomainType("PFN", "PFN")
HostPage = DomainType("HostPage", "HOST_PAGE")
LPN = DomainType("LPN", "LPN")
PPN = DomainType("PPN", "PPN")
BlockIndex = DomainType("BlockIndex", "BLOCK")
OffsetBytes = DomainType("OffsetBytes", "OFFSET_BYTES")
SizePages = DomainType("SizePages", "SIZE_PAGES")
TimeNs = DomainType("TimeNs", "TIME_NS")
TimeUs = DomainType("TimeUs", "TIME_US")
TimeCycles = DomainType("TimeCycles", "TIME_CYCLES")

#: Annotation name -> simflow kind, consumed by the static analysis.
DOMAIN_TYPES = {
    t.__name__: t.kind
    for t in (
        VPN,
        PFN,
        HostPage,
        LPN,
        PPN,
        BlockIndex,
        OffsetBytes,
        SizePages,
        TimeNs,
        TimeUs,
        TimeCycles,
    )
}
