"""PCIe interconnect model: BAR windows and MMIO/DMA transaction costs.

FlatFlash reaches the SSD through PCIe memory-mapped I/O (Section 3.1): one of
the SSD's Base Address Registers exposes the flash address space to the host,
the host bridge routes physical addresses inside that window to the device,
and the CPU issues loads/stores (including atomics) directly against it.

The model here is deliberately simple — a latency-and-traffic model, not a
TLP-level simulation:

* MMIO **reads** are non-posted (full round trip, Table 2: 4.8 us / line).
* MMIO **writes** are posted; they complete when the data reaches the host
  bridge's write buffer (Table 2: 0.6 us / line).  Durability therefore
  needs the *write-verify read* barrier the persistence path issues (§3.5).
* **DMA** moves whole pages (used by page promotion and the paging
  baselines).
* Traffic counters record bytes moved in each direction so experiments can
  report I/O-traffic reductions and SSD-lifetime effects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.config import LatencyConfig
from repro.costs import counters
from repro.effects import effects, kernel
from repro.sim.sanitizers import PersistenceSanitizer
from repro.sim.stats import StatRegistry
from repro.units import TimeNs

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.faults.plan import FaultInjector


class PCIeFaultError(RuntimeError):
    """An injected PCIe fault dropped an MMIO transaction.

    ``kind`` is ``"timeout"`` (the completion never arrived; the penalty is
    the completion-timeout window) or ``"corrupt"`` (a poisoned/malformed
    completion detected by the host bridge; normal transfer cost was paid).
    Either way the operation did not take effect — posted write data never
    landed, a read returned no usable data — and the host bridge's retry
    policy decides what happens next.
    """

    def __init__(self, site: str, kind: str, latency_ns: int) -> None:
        super().__init__(f"PCIe fault at {site}: {kind}")
        self.site = site
        self.kind = kind
        #: Time the host observably lost on the failed transaction.
        self.latency_ns = latency_ns


class DeviceLostError(RuntimeError):
    """The PCIe link is down: the whole device has fail-stopped.

    Unlike :class:`PCIeFaultError` this is *not* retryable at the device
    level — the link never comes back — so it is deliberately not a
    subclass: it flies past the host bridge's per-page MMIO retry ladder
    and is handled by whoever composes devices (a fleet promotes a
    replica; a single-device system has lost the device for good).
    """

    def __init__(self, site: str, latency_ns: int) -> None:
        super().__init__(f"device lost at {site}: PCIe link down")
        self.site = site
        #: Time the host observably lost discovering the dead link (the
        #: completion-timeout window).
        self.latency_ns = latency_ns


class PCIeTransaction(enum.Enum):
    """Transaction kinds the link accounts for."""

    MMIO_READ = "mmio_read"
    MMIO_WRITE = "mmio_write"
    MMIO_ATOMIC = "mmio_atomic"
    DMA_TO_HOST = "dma_to_host"
    DMA_FROM_HOST = "dma_from_host"


@dataclass(frozen=True)
class BarWindow:
    """A Base Address Register window in host physical address space."""

    base: int
    size: int

    def __post_init__(self) -> None:
        if self.base < 0 or self.size <= 0:
            raise ValueError(f"invalid BAR window base={self.base} size={self.size}")

    @property
    def end(self) -> int:
        """One past the last byte of the window."""
        return self.base + self.size

    @kernel
    def contains(self, phys_addr: int) -> bool:
        return self.base <= phys_addr < self.end

    @kernel(may_raise=("ValueError",))
    def offset_of(self, phys_addr: int) -> int:
        """Device-relative offset of a host physical address."""
        if not self.contains(phys_addr):
            raise ValueError(
                f"address {phys_addr:#x} outside BAR [{self.base:#x}, {self.end:#x})"
            )
        return phys_addr - self.base


@counters(
    owner="pcie",
    conserve=(
        "verify_read_cost: pcie.mmio_reads == 1",
        "dma_to_host_cost: pcie.dma_ops == 1",
        "dma_from_host_cost: pcie.dma_ops == 1",
        "mmio_atomic_cost: pcie.mmio_atomics == 1",
    ),
)
class PCIeLink:
    """Cost and traffic accounting for one PCIe endpoint link."""

    def __init__(
        self,
        latency: LatencyConfig,
        cacheline_size: int = 64,
        stats: Optional[StatRegistry] = None,
        persistence_sanitizer: Optional[PersistenceSanitizer] = None,
        faults: Optional["FaultInjector"] = None,
    ) -> None:
        if cacheline_size <= 0:
            raise ValueError(f"cacheline_size must be > 0, got {cacheline_size}")
        self.latency = latency
        self.cacheline_size = cacheline_size
        self.stats = stats if stats is not None else StatRegistry()
        # Sanitizer hook: posted writes accumulate until a non-posted read
        # orders them (the PCIe producer/consumer ordering rule the §3.5
        # write-verify fence relies on).
        self.persistence_sanitizer = persistence_sanitizer
        self.faults = faults
        # Fail-stop flag: set by an injected pcie.device_loss fault or an
        # administrative kill_link(); permanent for the simulation's life.
        self._down = False
        self._reads = self.stats.counter("pcie.mmio_reads")
        self._device_losses = self.stats.counter("pcie.device_losses")
        self._writes = self.stats.counter("pcie.mmio_writes")
        self._atomics = self.stats.counter("pcie.mmio_atomics")
        self._dma_ops = self.stats.counter("pcie.dma_ops")
        self._bytes_to_device = self.stats.counter("pcie.bytes_to_device")
        self._bytes_from_device = self.stats.counter("pcie.bytes_from_device")
        self._timeouts = self.stats.counter("pcie.mmio_timeouts")
        self._corruptions = self.stats.counter("pcie.mmio_corruptions")

    @property
    def is_down(self) -> bool:
        """True once the link has fail-stopped (device loss)."""
        return self._down

    @effects("MUTATES_STATE", "MUTATES_STATS")
    def kill_link(self) -> None:
        """Fail-stop the link permanently (device loss).

        Idempotent; every transaction afterwards raises
        :class:`DeviceLostError` after the completion-timeout window.
        """
        if not self._down:
            self._down = True
            self._device_losses.add()

    def _check_link(self, site: str) -> None:
        if self._down:
            raise DeviceLostError(site, self.latency.mmio_timeout_ns)

    def _maybe_fault(self, op: str, line_cost_ns: int) -> None:
        """Draw the per-op fault sites; raises :class:`PCIeFaultError`
        or :class:`DeviceLostError`.

        Device loss is drawn first (it fail-stops the link), then
        timeout, then corrupt — independent seeded streams, so enabling
        one never reshuffles the others.  A faulted transaction still
        occupies the link (traffic was already counted) but is *not*
        announced to the persistence sanitizer: a dropped posted write
        never lands, and a failed read orders nothing.
        """
        self._check_link(f"pcie.{op}")
        if self.faults is None:
            return
        if self.faults.fires("pcie.device_loss"):
            self.kill_link()
            raise DeviceLostError(f"pcie.{op}", self.latency.mmio_timeout_ns)
        if self.faults.fires(f"pcie.{op}.timeout"):
            self._timeouts.add()
            raise PCIeFaultError(
                f"pcie.{op}", "timeout", self.latency.mmio_timeout_ns
            )
        if self.faults.fires(f"pcie.{op}.corrupt"):
            self._corruptions.add()
            raise PCIeFaultError(f"pcie.{op}", "corrupt", line_cost_ns)

    def _cachelines(self, size: int) -> int:
        if size <= 0:
            raise ValueError(f"transfer size must be > 0, got {size}")
        return -(-size // self.cacheline_size)  # ceiling division

    @effects("MUTATES_STATE", "MUTATES_STATS", "FAULT_HOOK")
    def mmio_read_cost(self, size: int) -> TimeNs:
        """Cost of a non-posted MMIO read of ``size`` bytes."""
        lines = self._cachelines(size)
        self._reads.add(lines)
        self._bytes_from_device.add(size)
        self._maybe_fault("mmio_read", lines * self.latency.mmio_read_cacheline_ns)
        if self.persistence_sanitizer is not None:
            self.persistence_sanitizer.on_ordering_read()
        return lines * self.latency.mmio_read_cacheline_ns

    @effects("MUTATES_STATE", "MUTATES_STATS", "FAULT_HOOK")
    def mmio_write_cost(self, size: int) -> TimeNs:
        """Cost of a posted MMIO write of ``size`` bytes."""
        lines = self._cachelines(size)
        self._writes.add(lines)
        self._bytes_to_device.add(size)
        self._maybe_fault("mmio_write", lines * self.latency.mmio_write_cacheline_ns)
        if self.persistence_sanitizer is not None:
            self.persistence_sanitizer.on_posted_tlp(lines)
        return lines * self.latency.mmio_write_cacheline_ns

    @effects("MUTATES_STATE", "MUTATES_STATS", "FAULT_HOOK")
    def mmio_atomic_cost(self, size: int) -> TimeNs:
        """Cost of a PCIe atomic (round trip: behaves like a read)."""
        lines = self._cachelines(size)
        self._atomics.add(1)
        self._bytes_to_device.add(size)
        self._bytes_from_device.add(size)
        self._maybe_fault("mmio_atomic", lines * self.latency.mmio_read_cacheline_ns)
        if self.persistence_sanitizer is not None:
            self.persistence_sanitizer.on_ordering_read()
        return lines * self.latency.mmio_read_cacheline_ns

    @effects("MUTATES_STATE", "MUTATES_STATS")
    def verify_read_cost(self) -> TimeNs:
        """Cost of the write-verify read flushing posted writes (§3.5)."""
        self._check_link("pcie.verify_read")
        self._reads.add(1)
        self._bytes_from_device.add(self.cacheline_size)
        if self.persistence_sanitizer is not None:
            self.persistence_sanitizer.on_ordering_read()
        return self.latency.mmio_verify_read_ns

    @effects("MUTATES_STATS")
    def dma_to_host_cost(self, size: int) -> TimeNs:
        """Cost of a device-initiated DMA into host DRAM (page promotion)."""
        self._check_link("pcie.dma_to_host")
        pages = self._cachelines(size) * self.cacheline_size
        self._dma_ops.add(1)
        self._bytes_from_device.add(size)
        # DMA cost scales with page-sized chunks of the transfer.
        chunk = 4_096
        chunks = -(-pages // chunk)
        return chunks * self.latency.dma_page_transfer_ns

    @effects("MUTATES_STATS")
    def dma_from_host_cost(self, size: int) -> TimeNs:
        """Cost of a DMA from host DRAM into the device (page write-back)."""
        self._check_link("pcie.dma_from_host")
        self._dma_ops.add(1)
        self._bytes_to_device.add(size)
        chunk = 4_096
        chunks = -(-size // chunk)
        return chunks * self.latency.dma_page_transfer_ns

    @property
    def bytes_to_device(self) -> int:
        return self._bytes_to_device.value

    @property
    def bytes_from_device(self) -> int:
        return self._bytes_from_device.value
