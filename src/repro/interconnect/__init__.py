"""PCIe interconnect model."""

from repro.interconnect.pcie import BarWindow, PCIeLink, PCIeTransaction

__all__ = ["PCIeLink", "BarWindow", "PCIeTransaction"]
