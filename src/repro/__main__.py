"""Command-line entry point: run paper experiments from the shell.

Usage::

    python -m repro list                # available experiments
    python -m repro run fig9            # one table/figure
    python -m repro run ablations
    python -m repro all [output.md]     # everything -> EXPERIMENTS.md (serial)
    python -m repro sweep [output.md]   # everything, parallel + cached
    python -m repro race [--seeds N]    # schedule-perturbation check
    python -m repro analyze [paths]     # simlint/simrace/simflow/simeffect/simcost
    python -m repro faults [--smoke]    # deterministic fault-injection campaign
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.experiments import ablations, breakdown, device_tech, fig8, fig9, fig10
from repro.experiments import fig11_12, fig13, fig14, interference, scorecard
from repro.experiments import table1, table2, table3


def _run_fig9() -> None:
    fig9.render_fig9a(fig9.run_fig9a()).print()
    fig9.render_fig9b(fig9.run_fig9b()).print()


def _run_fig11_12() -> None:
    result = fig11_12.run()
    fig11_12.render(result).print()
    for baseline in ("UnifiedMMap", "TraditionalStack"):
        print(
            f"max p99 reduction vs {baseline}: "
            f"{fig11_12.tail_latency_reduction(result, baseline)}x"
        )
    fig11_12.run_cdf().print()


def _run_fig14() -> None:
    fig14.render_threads(fig14.run_threads()).print()
    fig14.render_sweep(fig14.run_device_latency_sweep()).print()


def _run_ablations() -> None:
    ablations.render_promotion_policy(ablations.run_promotion_policy()).print()
    ablations.render_plb(ablations.run_plb()).print()
    ablations.render_cache_policy(ablations.run_cache_policy()).print()
    ablations.render_cacheable_mmio(ablations.run_cacheable_mmio()).print()
    ablations.render_logging_scheme(ablations.run_logging_scheme()).print()


EXPERIMENTS: Dict[str, Callable[[], None]] = {
    "table1": lambda: table1.render(table1.run()).print(),
    "table2": lambda: table2.render(table2.run()).print(),
    "table3": lambda: table3.render(table3.run()).print(),
    "fig8": lambda: fig8.render(fig8.run()).print(),
    "fig9": _run_fig9,
    "fig10": lambda: fig10.render(fig10.run()).print(),
    "fig11": _run_fig11_12,
    "fig12": _run_fig11_12,
    "fig13": lambda: fig13.render(fig13.run()).print(),
    "fig14": _run_fig14,
    "ablations": _run_ablations,
    "device-tech": lambda: device_tech.render(device_tech.run()).print(),
    "interference": lambda: interference.render(interference.run()).print(),
    "breakdown": lambda: breakdown.render(breakdown.run()).print(),
    "scorecard": lambda: scorecard.render(scorecard.run()).print(),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FlatFlash reproduction: run the paper's experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")
    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    all_parser = subparsers.add_parser(
        "all", help="run everything and write EXPERIMENTS.md"
    )
    all_parser.add_argument("output", nargs="?", default="EXPERIMENTS.md")
    from repro.sweep import cli as sweep_cli

    sweep_parser = subparsers.add_parser(
        "sweep", help="run all cells in parallel with the content-addressed cache"
    )
    sweep_cli.configure_parser(sweep_parser)
    from repro.experiments.race_check import positive_int

    race_parser = subparsers.add_parser(
        "race", help="perturb DES schedules and diff stats (simrace dynamic layer)"
    )
    race_parser.add_argument(
        "--seeds",
        type=positive_int,
        default=5,
        help="perturbed schedules per system/scheme (default 5)",
    )
    from repro.analysis import analyze

    analyze_parser = subparsers.add_parser(
        "analyze",
        help=(
            "run simlint + simrace + simflow + simeffect + simcost and "
            "merge the findings"
        ),
    )
    analyze.configure_parser(analyze_parser)

    faults_parser = subparsers.add_parser(
        "faults",
        help="run the deterministic fault-injection campaign (simfault)",
    )
    faults_parser.add_argument("--seed", type=int, default=0)
    faults_parser.add_argument("--smoke", action="store_true")
    faults_parser.add_argument("--json", metavar="PATH", default=None)
    faults_parser.add_argument(
        "--only", action="append", metavar="SCENARIO", default=None
    )

    args = parser.parse_args(argv)
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if args.command == "run":
        EXPERIMENTS[args.experiment]()
        return 0
    if args.command == "race":
        from repro.experiments.race_check import run_race_check

        return run_race_check(seeds=args.seeds)
    if args.command == "analyze":
        return analyze.run(args)
    if args.command == "faults":
        from repro.faults.campaign import main as faults_main

        faults_argv = ["--seed", str(args.seed)]
        if args.smoke:
            faults_argv.append("--smoke")
        if args.json:
            faults_argv += ["--json", args.json]
        for scenario in args.only or ():
            faults_argv += ["--only", scenario]
        return faults_main(faults_argv)
    if args.command == "sweep":
        return sweep_cli.run(args)
    if args.command == "all":
        from repro.experiments.run_all import generate
        from repro.sweep.document import write_document

        content = generate()
        write_document(args.output, content)
        print(f"wrote {args.output} ({len(content)} bytes)")
        return 0
    return 1  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        sys.exit(0)
