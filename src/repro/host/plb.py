"""Promotion Look-aside Buffer (PLB): consistency for in-flight promotions.

Promoting a page from SSD to host DRAM takes ~12 µs (Table 2); stalling the
application for that long would erase the benefit, and letting it run risks
losing stores that race the copy.  FlatFlash adds a small table to the host
bridge (§3.3, Fig. 4): one entry per in-flight promotion holding the source
SSD address, the destination DRAM frame, and a *Copied-CL* bit per cache
line.

Protocol (Fig. 4):

* each inbound line DMA-ed from the SSD sets its Copied bit — unless a CPU
  store already set it, in which case the inbound (stale) copy is dropped;
* a CPU store during promotion writes the DRAM frame directly and sets the
  line's Copied bit;
* a CPU load is served from DRAM when the bit is set, else forwarded to the
  SSD;
* when every line is copied the entry retires and the PTE/TLB are updated.

Lookups are CAM-indexed (one cycle, §3.3) so the model charges no latency
for them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.batch import batchable, reduction
from repro.costs import counters
from repro.effects import effects, kernel
from repro.sim import domain_tags
from repro.sim.stats import StatRegistry
from repro.units import PFN, HostPage, TimeNs


class PLBEntry:
    """One in-flight page promotion."""

    __slots__ = ("ssd_tag", "mem_tag", "copied", "inbound_pos", "complete_at_ns")

    def __init__(
        self, ssd_tag: HostPage, mem_tag: PFN, num_lines: int, complete_at_ns: TimeNs
    ) -> None:
        self.ssd_tag = ssd_tag  # source: host-visible SSD page number
        self.mem_tag = mem_tag  # destination: DRAM frame index
        self.copied: List[bool] = [False] * num_lines
        self.inbound_pos = 0  # next line the SSD-side copy will deliver
        self.complete_at_ns = complete_at_ns

    @property
    def all_copied(self) -> bool:
        return all(self.copied)

    def __repr__(self) -> str:
        done = sum(self.copied)
        return (
            f"PLBEntry(ssd={self.ssd_tag}, frame={self.mem_tag}, "
            f"copied={done}/{len(self.copied)})"
        )


@counters(
    owner="plb",
    conserve=(
        "lookup: plb.hits:total == 1",
        "plb.hits:hit + plb.hits:miss == plb.hits:total",
        "start: plb.promotions_started <= 1",
    ),
)
class PLB:
    """The PLB table: fixed entry count, keyed by SSD page tag."""

    def __init__(self, entries: int, stats: Optional[StatRegistry] = None) -> None:
        if entries <= 0:
            raise ValueError(f"PLB must have > 0 entries, got {entries}")
        self.capacity = entries
        self._by_ssd_tag: Dict[HostPage, PLBEntry] = {}
        self.stats = stats if stats is not None else StatRegistry()
        self._started = self.stats.counter("plb.promotions_started")
        self._dropped = self.stats.counter("plb.inbound_lines_dropped")
        self._redirects = self.stats.counter("plb.store_redirects")
        self._hits = self.stats.ratio("plb.hits")

    @property
    def in_flight(self) -> int:
        return len(self._by_ssd_tag)

    @property
    def has_free_entry(self) -> bool:
        return len(self._by_ssd_tag) < self.capacity

    @effects("MUTATES_STATE", "MUTATES_STATS")
    def start(
        self, ssd_tag: HostPage, mem_tag: PFN, num_lines: int, complete_at_ns: TimeNs
    ) -> Optional[PLBEntry]:
        """Begin tracking a promotion; None when the table is full."""
        domain_tags.check(ssd_tag, "HOST_PAGE", "PLB.start")
        domain_tags.check(mem_tag, "PFN", "PLB.start")
        if ssd_tag in self._by_ssd_tag:
            raise ValueError(f"promotion of SSD page {ssd_tag} already in flight")
        if not self.has_free_entry:
            return None
        entry = PLBEntry(ssd_tag, mem_tag, num_lines, complete_at_ns)
        self._by_ssd_tag[ssd_tag] = entry
        self._started.add()
        return entry

    @kernel
    def lookup(self, ssd_tag: HostPage) -> Optional[PLBEntry]:
        """CAM lookup by SSD page (one cycle: no cost charged)."""
        entry = self._by_ssd_tag.get(ssd_tag)
        self._hits.record(entry is not None)
        return entry

    @batchable
    def batch_lookup(self, ssd_tags: Iterable[HostPage]) -> List[Optional[PLBEntry]]:
        """CAM-probe a batch of SSD page tags (Fig. 4 lookup, vectorized).

        A positional gather over the certified :meth:`lookup` kernel:
        probes are independent, so a batched engine may issue them in any
        order and reassemble the result list by position.
        """
        entries = []
        for ssd_tag in ssd_tags:
            entries.append(self.lookup(ssd_tag))
        return entries

    @effects("MUTATES_STATE", "MUTATES_STATS")
    def inbound_line(self, entry: PLBEntry, line: int) -> bool:
        """An inbound line arrived from the SSD.

        Returns True when the copy should land in DRAM; False when a CPU
        store already owns the line and the inbound copy must be dropped
        (Fig. 4c, step 7).
        """
        if entry.copied[line]:
            self._dropped.add()
            return False
        entry.copied[line] = True
        return True

    @effects("MUTATES_STATE", "MUTATES_STATS")
    def cpu_store(self, entry: PLBEntry, line: int) -> None:
        """A CPU store hit the in-flight page: redirect to DRAM, own the line
        (Fig. 4b, steps 5-6)."""
        entry.copied[line] = True
        self._redirects.add()

    @kernel
    def cpu_load_from_dram(self, entry: PLBEntry, line: int) -> bool:
        """Where should a CPU load be served from?  True → DRAM (line already
        copied), False → forward to the SSD."""
        return entry.copied[line]

    @effects("MUTATES_STATE")
    def retire(self, entry: PLBEntry) -> None:
        """Promotion finished: free the entry for reuse (§3.3)."""
        removed = self._by_ssd_tag.pop(entry.ssd_tag, None)
        if removed is not entry:
            raise ValueError(f"entry for SSD page {entry.ssd_tag} not active")

    @batchable
    @reduction(var="retired", op="+")
    def batch_retire(self, entries: Iterable[PLBEntry]) -> int:
        """Retire a batch of completed promotions; returns how many.

        Each removal is keyed by its own entry's SSD tag (a keyed
        scatter: distinct slot per iteration), and the count is a
        declared commutative sum — reorder-safe under batching.
        """
        retired = 0
        for entry in entries:
            self._by_ssd_tag.pop(entry.ssd_tag, None)
            retired += 1
        return retired

    def entries(self) -> List[PLBEntry]:
        return list(self._by_ssd_tag.values())
