"""Processor cache model for the persistence path and cacheable MMIO.

Two paper mechanisms need a CPU cache:

* §3.5's byte-granular persistence: stores to a persistent region may sit
  in the processor cache, so applications must ``clflush``/``clwb`` the
  lines and fence (write-verify read) before the data is durable.
* §3.1's cacheable MMIO: with a coherent interconnect (CAPI/CCIX/GenZ) the
  lines backed by the SSD BAR may be cached, letting re-references hit at
  DRAM-like latency instead of paying a PCIe round trip each time.

The model is a set-associative write-back cache over host-physical cache
line addresses.  It only tracks presence/dirtiness — payloads live in the
backing stores — which is all the latency accounting needs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.sim.stats import StatRegistry


class CPUCache:
    """Set-associative write-back cache keyed by cache-line address."""

    def __init__(
        self,
        num_lines: int = 512,
        ways: int = 8,
        line_size: int = 64,
        stats: Optional[StatRegistry] = None,
    ) -> None:
        if num_lines <= 0 or ways <= 0 or num_lines < ways:
            raise ValueError(f"invalid cache shape lines={num_lines} ways={ways}")
        if line_size <= 0:
            raise ValueError(f"line_size must be > 0, got {line_size}")
        self.line_size = line_size
        self.ways = ways
        self.num_sets = max(1, num_lines // ways)
        # Each set: line address -> dirty flag, LRU-ordered (oldest first).
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = stats if stats is not None else StatRegistry()
        self._hits = self.stats.ratio("cpu_cache.hits")
        self._writebacks = self.stats.counter("cpu_cache.writebacks")
        self._flushes = self.stats.counter("cpu_cache.flushes")

    def _line_of(self, phys_addr: int) -> int:
        return phys_addr // self.line_size

    def _set_of(self, line: int) -> "OrderedDict[int, bool]":
        return self._sets[line % self.num_sets]

    def access(self, phys_addr: int, is_write: bool) -> Tuple[bool, Optional[int]]:
        """Access one line; returns (hit, evicted dirty line address or None).

        A miss installs the line, evicting the set's LRU line; if the victim
        is dirty its address is returned so the caller can charge the
        write-back to the right backing store.
        """
        line = self._line_of(phys_addr)
        cache_set = self._set_of(line)
        if line in cache_set:
            cache_set.move_to_end(line)
            if is_write:
                cache_set[line] = True
            self._hits.record(True)
            return True, None
        self._hits.record(False)
        evicted: Optional[int] = None
        if len(cache_set) >= self.ways:
            victim_line, victim_dirty = cache_set.popitem(last=False)
            if victim_dirty:
                self._writebacks.add()
                evicted = victim_line * self.line_size
        cache_set[line] = is_write
        return False, evicted

    def contains(self, phys_addr: int) -> bool:
        line = self._line_of(phys_addr)
        return line in self._set_of(line)

    def is_dirty(self, phys_addr: int) -> bool:
        line = self._line_of(phys_addr)
        return self._set_of(line).get(line, False)

    def flush_line(self, phys_addr: int) -> bool:
        """clflush: evict one line; returns True if a dirty line was flushed."""
        line = self._line_of(phys_addr)
        cache_set = self._set_of(line)
        self._flushes.add()
        dirty = cache_set.pop(line, False)
        return dirty

    def flush_range(self, phys_addr: int, size: int) -> int:
        """Flush every line overlapping [phys_addr, phys_addr+size).

        Returns the number of dirty lines flushed (each needs a write to the
        backing store).
        """
        if size <= 0:
            raise ValueError(f"size must be > 0, got {size}")
        first = phys_addr // self.line_size
        last = (phys_addr + size - 1) // self.line_size
        dirty_count = 0
        for line in range(first, last + 1):
            if self.flush_line(line * self.line_size):
                dirty_count += 1
        return dirty_count

    @property
    def hit_ratio(self) -> float:
        return self._hits.ratio
