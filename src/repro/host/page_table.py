"""Unified page table: virtual pages mapped to DRAM frames *or* SSD pages.

The defining property of FlatFlash's (and FlashMap's) unified address
translation is that a PTE can point at either domain (Fig. 3b): DRAM frames
for promoted pages, flash physical pages for everything else — and both are
*present*, so touching an SSD-resident page does not fault.  The paging
baselines use the same structure but keep SSD-resident PTEs non-present,
so every access to them raises a page fault.

The Persist (P) bit of §3.5 lives here too: it flags pages that belong to a
persistent memory region, travels with the physical address to the host
bridge, and excludes the page from promotion.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple

from repro.costs import counters
from repro.effects import effects, kernel
from repro.sim import domain_tags
from repro.sim.stats import StatRegistry
from repro.units import PFN, VPN, HostPage, TimeNs


class Domain(enum.Enum):
    """Where a virtual page's backing memory currently lives."""

    DRAM = "dram"
    SSD = "ssd"


class PageTableEntry:
    """One PTE of the unified page table."""

    __slots__ = ("vpn", "present", "domain", "frame_index", "ssd_page", "persist")

    def __init__(self, vpn: VPN) -> None:
        self.vpn = vpn
        self.present = False
        self.domain = Domain.SSD
        self.frame_index: Optional[PFN] = None
        self.ssd_page: Optional[HostPage] = None
        self.persist = False

    def point_to_dram(self, frame_index: PFN) -> None:
        self.domain = Domain.DRAM
        self.frame_index = frame_index
        self.present = True

    def point_to_ssd(self, ssd_page: HostPage, present: bool) -> None:
        """Point at an SSD page.  ``present`` is True for byte-addressable
        systems (direct access) and False for paging baselines (faults)."""
        self.domain = Domain.SSD
        self.ssd_page = ssd_page
        self.frame_index = None
        self.present = present

    def __repr__(self) -> str:
        target = (
            f"frame={self.frame_index}"
            if self.domain is Domain.DRAM
            else f"ssd_page={self.ssd_page}"
        )
        return (
            f"PTE(vpn={self.vpn}, present={self.present}, {target}, "
            f"persist={self.persist})"
        )


class PageFault(Exception):
    """Raised on access to a non-present page (paging baselines)."""

    def __init__(self, vpn: VPN) -> None:
        super().__init__(f"page fault on vpn {vpn}")
        self.vpn = vpn


@counters(
    owner="page_table",
    conserve=("walk: page_table.walks == 1",),
)
class PageTable:
    """vpn -> PTE mapping with walk-cost accounting."""

    def __init__(self, walk_cost_ns: TimeNs, stats: Optional[StatRegistry] = None) -> None:
        if walk_cost_ns < 0:
            raise ValueError(f"walk_cost_ns must be >= 0, got {walk_cost_ns}")
        self.walk_cost_ns = walk_cost_ns
        self._entries: Dict[VPN, PageTableEntry] = {}
        self.stats = stats if stats is not None else StatRegistry()
        self._walks = self.stats.counter("page_table.walks")

    @effects("MUTATES_STATE")
    def entry(self, vpn: VPN) -> PageTableEntry:
        """The PTE for ``vpn``, created on first reference."""
        domain_tags.check(vpn, "VPN", "PageTable.entry")
        pte = self._entries.get(vpn)
        if pte is None:
            pte = PageTableEntry(vpn)
            self._entries[vpn] = pte
        return pte

    @kernel
    def lookup(self, vpn: VPN) -> Optional[PageTableEntry]:
        """The PTE if it exists, without creating one."""
        return self._entries.get(vpn)

    @kernel(may_raise=("KeyError", "DomainTagError"))
    def walk(self, vpn: VPN) -> Tuple[PageTableEntry, TimeNs]:
        """A hardware page-table walk: returns (PTE, cost in ns)."""
        domain_tags.check(vpn, "VPN", "PageTable.walk")
        self._walks.add()
        pte = self._entries.get(vpn)
        if pte is None:
            raise KeyError(f"vpn {vpn} has no mapping (unmapped address)")
        return pte, self.walk_cost_ns

    def remove(self, vpn: VPN) -> Optional[PageTableEntry]:
        """Drop a mapping (munmap); returns the removed PTE if it existed."""
        return self._entries.pop(vpn, None)

    def mapped_vpns(self) -> Dict[VPN, PageTableEntry]:
        return dict(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
