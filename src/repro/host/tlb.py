"""TLB model: translation caching, shootdowns and lazy batched updates.

The simulator charges a page-table walk only on TLB misses.  Two update
paths matter to the paper:

* **Shootdown** (synchronous invalidate) when a page moves — its cost is
  small relative to SSD latencies (§3.3), but we account it.
* **Lazy batched updates** (§4): GC address changes are propagated to
  PTE/TLB entries in batches with a single interrupt, which
  :class:`repro.core.hierarchy.FlatFlash` drives via the device's remap
  table.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional

from repro.batch import batchable, reduction
from repro.costs import counters
from repro.effects import effects, kernel
from repro.sim import domain_tags
from repro.sim.stats import StatRegistry
from repro.units import VPN, TimeNs


@counters(
    owner="tlb",
    conserve=(
        "lookup: tlb.hits:total == 1",
        "tlb.hits:hit + tlb.hits:miss == tlb.hits:total",
        "invalidate: tlb.shootdowns == 1",
        "batch_invalidate: tlb.batch_updates <= 1",
    ),
)
class TLB:
    """A capacity-limited translation cache over virtual page numbers."""

    def __init__(
        self,
        entries: int,
        shootdown_cost_ns: TimeNs,
        stats: Optional[StatRegistry] = None,
    ) -> None:
        if entries <= 0:
            raise ValueError(f"TLB entries must be > 0, got {entries}")
        if shootdown_cost_ns < 0:
            raise ValueError(f"shootdown cost must be >= 0, got {shootdown_cost_ns}")
        self.capacity = entries
        self.shootdown_cost_ns = shootdown_cost_ns
        self._cached: "OrderedDict[VPN, None]" = OrderedDict()
        self.stats = stats if stats is not None else StatRegistry()
        self._hits = self.stats.ratio("tlb.hits")
        self._shootdowns = self.stats.counter("tlb.shootdowns")
        self._batch_updates = self.stats.counter("tlb.batch_updates")

    @kernel
    def lookup(self, vpn: VPN) -> bool:
        """True on a TLB hit; hit entries become most-recently used."""
        if vpn in self._cached:
            self._cached.move_to_end(vpn)
            self._hits.record(True)
            return True
        self._hits.record(False)
        return False

    @kernel(may_raise=("DomainTagError",))
    def fill(self, vpn: VPN) -> None:
        """Install a translation after a walk, evicting LRU if full."""
        domain_tags.check(vpn, "VPN", "TLB.fill")
        if vpn in self._cached:
            self._cached.move_to_end(vpn)
            return
        if len(self._cached) >= self.capacity:
            self._cached.popitem(last=False)
        self._cached[vpn] = None

    @effects("MUTATES_STATE", "MUTATES_STATS")
    def invalidate(self, vpn: VPN) -> TimeNs:
        """Shoot down one translation; returns the cost in ns."""
        self._shootdowns.add()
        self._cached.pop(vpn, None)
        return self.shootdown_cost_ns

    @batchable
    @reduction(var="count", op="+")
    @effects("MUTATES_STATE", "MUTATES_STATS")
    def batch_invalidate(self, vpns: Iterable[VPN]) -> TimeNs:
        """Lazily propagate a batch of address changes with one interrupt.

        Cost is a single shootdown regardless of batch size (§4's single-
        interrupt batch propagation).  Each drop is keyed by its own vpn
        and the count is a commutative sum, so the propagation loop is
        reorder-safe under batching.
        """
        count = 0
        for vpn in vpns:
            self._cached.pop(vpn, None)
            count += 1
        if count == 0:
            return 0
        self._batch_updates.add()
        return self.shootdown_cost_ns

    @property
    def hit_ratio(self) -> float:
        return self._hits.ratio

    def __len__(self) -> int:
        return len(self._cached)
