"""Host bridge (root complex): physical-address routing and the PLB.

The host bridge connects CPU, memory controller and PCIe (Fig. 2).  In the
simulator it does three jobs:

* classify host physical addresses into the DRAM region or the SSD BAR
  window and split them into (page, offset);
* carry the Persist (P) bit: during address translation the physical
  address is prefixed with the PTE's P bit, and the bridge moves it into
  the PCIe TLP's attribute field with the address bit masked out (§3.5);
* host the :class:`~repro.host.plb.PLB` for in-flight promotions.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.costs import counters
from repro.effects import effects, kernel
from repro.host.plb import PLB
from repro.interconnect.pcie import BarWindow
from repro.sim.sanitizers import PersistenceSanitizer
from repro.sim.stats import StatRegistry
from repro.units import LPN, PFN, HostPage, OffsetBytes, TimeNs

#: Bit position used to prefix physical addresses with the Persist flag.
PERSIST_BIT_SHIFT = 62


@counters(
    owner="bridge",
    conserve=(
        "backoff_ns: bridge.mmio_retries == 1",
        "note_failure: bridge.mmio_failures == 1",
        "bridge.degraded_pages <= bridge.mmio_failures",
    ),
)
class MMIORetryPolicy:
    """Bounded retry with exponential backoff for faulted MMIO accesses.

    The bridge retries a failed MMIO transaction up to ``max_retries``
    times, waiting ``backoff_base_ns * backoff_multiplier**attempt`` before
    each retry.  Failures are tracked per *logical* page (lpn — stable
    across GC relocation): after ``degraded_threshold`` consecutive
    failures on one page, that page is degraded permanently to the
    block/DMA path and its promotion is suppressed, so the system keeps
    serving accesses at block-I/O latency instead of erroring.

    The ladder is key-agnostic: the bridge tracks consecutive failures
    per logical page, and a :class:`~repro.fleet.FlatFlashFleet` reuses
    the same escalation keyed by *device index* to turn consecutive
    ``DeviceLostError`` observations into a failover declaration.
    """

    def __init__(
        self,
        max_retries: int,
        backoff_base_ns: int,
        backoff_multiplier: int,
        degraded_threshold: int,
        stats: Optional[StatRegistry] = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_base_ns < 0:
            raise ValueError(f"backoff_base_ns must be >= 0, got {backoff_base_ns}")
        if backoff_multiplier < 1:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got {backoff_multiplier}"
            )
        if degraded_threshold < 1:
            raise ValueError(
                f"degraded_threshold must be >= 1, got {degraded_threshold}"
            )
        self.max_retries = max_retries
        self.backoff_base_ns = backoff_base_ns
        self.backoff_multiplier = backoff_multiplier
        self.degraded_threshold = degraded_threshold
        self.stats = stats if stats is not None else StatRegistry()
        self._consecutive: Dict[LPN, int] = {}
        self._degraded: Set[LPN] = set()
        self._retries = self.stats.counter("bridge.mmio_retries")
        self._failures = self.stats.counter("bridge.mmio_failures")
        self._giveups = self.stats.counter("bridge.mmio_giveups")
        self._backoff_ns = self.stats.counter("bridge.mmio_backoff_ns")
        self._degraded_pages = self.stats.counter("bridge.degraded_pages")
        self._degraded_accesses = self.stats.counter("bridge.degraded_accesses")

    @effects("MUTATES_STATS")
    def backoff_ns(self, attempt: int) -> TimeNs:
        """Wait before retry number ``attempt`` (zero-based)."""
        wait = self.backoff_base_ns * self.backoff_multiplier**attempt
        self._backoff_ns.add(wait)
        self._retries.add()
        return wait

    @effects("MUTATES_STATE", "MUTATES_STATS")
    def note_failure(self, lpn: LPN) -> bool:
        """Record one failed MMIO transaction on a page; True if the page
        just crossed the degradation threshold."""
        self._failures.add()
        count = self._consecutive.get(lpn, 0) + 1
        self._consecutive[lpn] = count
        if count >= self.degraded_threshold and lpn not in self._degraded:
            self._degraded.add(lpn)
            self._degraded_pages.add()
            return True
        return False

    def note_success(self, lpn: LPN) -> None:
        """An MMIO transaction completed: the consecutive-failure run ends."""
        self._consecutive.pop(lpn, None)

    def note_giveup(self) -> None:
        """Retries exhausted without the page degrading: the access falls
        back to the block path once, but MMIO stays enabled for the page."""
        self._giveups.add()

    def note_degraded_access(self) -> None:
        self._degraded_accesses.add()

    def is_degraded(self, lpn: LPN) -> bool:
        return lpn in self._degraded

    @property
    def degraded_pages(self) -> int:
        return len(self._degraded)


@counters(
    owner="bridge",
    conserve=("route: bridge.requests_to_dram + bridge.requests_to_ssd == 1",),
)
class HostBridge:
    """Routes physical addresses and tracks in-flight promotions."""

    def __init__(
        self,
        dram_bytes: int,
        ssd_bar: BarWindow,
        page_size: int,
        plb_entries: int,
        stats: Optional[StatRegistry] = None,
        persistence_sanitizer: Optional[PersistenceSanitizer] = None,
    ) -> None:
        if dram_bytes <= 0:
            raise ValueError(f"dram_bytes must be > 0, got {dram_bytes}")
        if page_size <= 0:
            raise ValueError(f"page_size must be > 0, got {page_size}")
        if ssd_bar.base < dram_bytes:
            raise ValueError(
                f"SSD BAR base {ssd_bar.base:#x} overlaps DRAM of {dram_bytes} bytes"
            )
        self.dram_bytes = dram_bytes
        self.ssd_bar = ssd_bar
        self.page_size = page_size
        self.stats = stats if stats is not None else StatRegistry()
        self.persistence_sanitizer = persistence_sanitizer
        self.plb = PLB(plb_entries, stats=self.stats)
        # Installed by FlatFlash when fault injection is active; None keeps
        # the fault-free fast path byte-identical to the baseline.
        self.mmio_retry: Optional[MMIORetryPolicy] = None
        self._to_dram = self.stats.counter("bridge.requests_to_dram")
        self._to_ssd = self.stats.counter("bridge.requests_to_ssd")

    def register_shared(self, recorder) -> None:
        """Name the bridge's shared objects for the dynamic access
        recorder (:class:`repro.sim.race.AccessRecorder`): DES processes
        of one memory system all route through this bridge and its PLB."""
        recorder.register(self, "bridge")
        recorder.register(self.plb, "bridge.plb")
        recorder.register(self._to_dram, "bridge.requests_to_dram")
        recorder.register(self._to_ssd, "bridge.requests_to_ssd")

    # ------------------------------------------------------------------ #
    # Persist-bit handling (§3.5)
    # ------------------------------------------------------------------ #

    @staticmethod
    @kernel
    def tag_persist(phys_addr: int, persist: bool) -> int:
        """Prefix a physical address with the P bit (done at translation)."""
        if persist:
            return phys_addr | (1 << PERSIST_BIT_SHIFT)
        return phys_addr

    @staticmethod
    @kernel
    def split_persist(tagged_addr: int) -> Tuple[int, bool]:
        """Mask the P bit out of a tagged address: (address, persist)."""
        persist = bool(tagged_addr & (1 << PERSIST_BIT_SHIFT))
        return tagged_addr & ~(1 << PERSIST_BIT_SHIFT), persist

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    @effects("MUTATES_STATS")
    def route(self, tagged_addr: int) -> Tuple[str, int, int, bool]:
        """Classify a (possibly P-tagged) physical address.

        Returns ``(target, page, offset, persist)`` where target is
        ``"dram"`` (page = frame index) or ``"ssd"`` (page = device page
        number inside the BAR).
        """
        phys_addr, persist = self.split_persist(tagged_addr)
        if phys_addr < self.dram_bytes:
            frame = phys_addr // self.page_size
            if persist and self.persistence_sanitizer is not None:
                # Persist pages are pinned to the SSD (§3.5); a P-tagged
                # request landing in volatile DRAM breaks durability.
                self.persistence_sanitizer.on_persist_routed("dram", frame)
            self._to_dram.add()
            return "dram", frame, phys_addr % self.page_size, persist
        if self.ssd_bar.contains(phys_addr):
            self._to_ssd.add()
            offset = self.ssd_bar.offset_of(phys_addr)
            return "ssd", offset // self.page_size, offset % self.page_size, persist
        raise ValueError(f"physical address {phys_addr:#x} maps to no device")

    def dram_addr(self, frame_index: PFN, offset: OffsetBytes = 0) -> int:
        """Host physical address of a DRAM frame byte."""
        addr = frame_index * self.page_size + offset
        if addr >= self.dram_bytes:
            raise ValueError(f"frame {frame_index} outside DRAM")
        return addr

    def ssd_addr(self, device_page: HostPage, offset: OffsetBytes = 0) -> int:
        """Host physical address of a byte in the SSD BAR window."""
        addr = self.ssd_bar.base + device_page * self.page_size + offset
        if not self.ssd_bar.contains(addr):
            raise ValueError(f"device page {device_page} outside the BAR window")
        return addr
