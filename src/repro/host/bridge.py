"""Host bridge (root complex): physical-address routing and the PLB.

The host bridge connects CPU, memory controller and PCIe (Fig. 2).  In the
simulator it does three jobs:

* classify host physical addresses into the DRAM region or the SSD BAR
  window and split them into (page, offset);
* carry the Persist (P) bit: during address translation the physical
  address is prefixed with the PTE's P bit, and the bridge moves it into
  the PCIe TLP's attribute field with the address bit masked out (§3.5);
* host the :class:`~repro.host.plb.PLB` for in-flight promotions.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.host.plb import PLB
from repro.interconnect.pcie import BarWindow
from repro.sim.sanitizers import PersistenceSanitizer
from repro.sim.stats import StatRegistry
from repro.units import PFN, HostPage, OffsetBytes

#: Bit position used to prefix physical addresses with the Persist flag.
PERSIST_BIT_SHIFT = 62


class HostBridge:
    """Routes physical addresses and tracks in-flight promotions."""

    def __init__(
        self,
        dram_bytes: int,
        ssd_bar: BarWindow,
        page_size: int,
        plb_entries: int,
        stats: Optional[StatRegistry] = None,
        persistence_sanitizer: Optional[PersistenceSanitizer] = None,
    ) -> None:
        if dram_bytes <= 0:
            raise ValueError(f"dram_bytes must be > 0, got {dram_bytes}")
        if page_size <= 0:
            raise ValueError(f"page_size must be > 0, got {page_size}")
        if ssd_bar.base < dram_bytes:
            raise ValueError(
                f"SSD BAR base {ssd_bar.base:#x} overlaps DRAM of {dram_bytes} bytes"
            )
        self.dram_bytes = dram_bytes
        self.ssd_bar = ssd_bar
        self.page_size = page_size
        self.stats = stats if stats is not None else StatRegistry()
        self.persistence_sanitizer = persistence_sanitizer
        self.plb = PLB(plb_entries, stats=self.stats)
        self._to_dram = self.stats.counter("bridge.requests_to_dram")
        self._to_ssd = self.stats.counter("bridge.requests_to_ssd")

    def register_shared(self, recorder) -> None:
        """Name the bridge's shared objects for the dynamic access
        recorder (:class:`repro.sim.race.AccessRecorder`): DES processes
        of one memory system all route through this bridge and its PLB."""
        recorder.register(self, "bridge")
        recorder.register(self.plb, "bridge.plb")
        recorder.register(self._to_dram, "bridge.requests_to_dram")
        recorder.register(self._to_ssd, "bridge.requests_to_ssd")

    # ------------------------------------------------------------------ #
    # Persist-bit handling (§3.5)
    # ------------------------------------------------------------------ #

    @staticmethod
    def tag_persist(phys_addr: int, persist: bool) -> int:
        """Prefix a physical address with the P bit (done at translation)."""
        if persist:
            return phys_addr | (1 << PERSIST_BIT_SHIFT)
        return phys_addr

    @staticmethod
    def split_persist(tagged_addr: int) -> Tuple[int, bool]:
        """Mask the P bit out of a tagged address: (address, persist)."""
        persist = bool(tagged_addr & (1 << PERSIST_BIT_SHIFT))
        return tagged_addr & ~(1 << PERSIST_BIT_SHIFT), persist

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def route(self, tagged_addr: int) -> Tuple[str, int, int, bool]:
        """Classify a (possibly P-tagged) physical address.

        Returns ``(target, page, offset, persist)`` where target is
        ``"dram"`` (page = frame index) or ``"ssd"`` (page = device page
        number inside the BAR).
        """
        phys_addr, persist = self.split_persist(tagged_addr)
        if phys_addr < self.dram_bytes:
            frame = phys_addr // self.page_size
            if persist and self.persistence_sanitizer is not None:
                # Persist pages are pinned to the SSD (§3.5); a P-tagged
                # request landing in volatile DRAM breaks durability.
                self.persistence_sanitizer.on_persist_routed("dram", frame)
            self._to_dram.add()
            return "dram", frame, phys_addr % self.page_size, persist
        if self.ssd_bar.contains(phys_addr):
            self._to_ssd.add()
            offset = self.ssd_bar.offset_of(phys_addr)
            return "ssd", offset // self.page_size, offset % self.page_size, persist
        raise ValueError(f"physical address {phys_addr:#x} maps to no device")

    def dram_addr(self, frame_index: PFN, offset: OffsetBytes = 0) -> int:
        """Host physical address of a DRAM frame byte."""
        addr = frame_index * self.page_size + offset
        if addr >= self.dram_bytes:
            raise ValueError(f"frame {frame_index} outside DRAM")
        return addr

    def ssd_addr(self, device_page: HostPage, offset: OffsetBytes = 0) -> int:
        """Host physical address of a byte in the SSD BAR window."""
        addr = self.ssd_bar.base + device_page * self.page_size + offset
        if not self.ssd_bar.contains(addr):
            raise ValueError(f"device page {device_page} outside the BAR window")
        return addr
