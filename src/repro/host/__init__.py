"""Host-side substrate: DRAM, page table, TLB, CPU cache, bridge, PLB."""

from repro.host.bridge import HostBridge
from repro.host.cpu_cache import CPUCache
from repro.host.dram import Frame, HostDRAM
from repro.host.page_table import Domain, PageTable, PageTableEntry
from repro.host.plb import PLB, PLBEntry
from repro.host.tlb import TLB

__all__ = [
    "HostDRAM",
    "Frame",
    "PageTable",
    "PageTableEntry",
    "Domain",
    "TLB",
    "CPUCache",
    "PLB",
    "PLBEntry",
    "HostBridge",
]
