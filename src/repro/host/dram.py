"""Host DRAM: a fixed pool of page frames with LRU eviction order.

Host DRAM is the scarce resource every experiment sweeps (SSD:DRAM ratio,
working-set:DRAM ratio).  The model is a frame allocator: frames are owned
by virtual pages, carry optional real payloads, and an LRU list supplies
eviction victims when the pool is full (§3.3: "the least-recently used
pages will be evicted out for free space in host DRAM").
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional

from repro.sim.stats import StatRegistry


class Frame:
    """One physical page frame."""

    __slots__ = ("index", "vpn", "dirty", "data", "referenced")

    def __init__(self, index: int) -> None:
        self.index = index
        self.vpn: Optional[int] = None
        self.dirty = False
        self.data: Optional[bytearray] = None
        self.referenced = False

    @property
    def allocated(self) -> bool:
        return self.vpn is not None

    def __repr__(self) -> str:
        return f"Frame({self.index}, vpn={self.vpn}, dirty={self.dirty})"


class HostDRAM:
    """Frame pool with LRU ordering over allocated frames."""

    def __init__(
        self,
        num_frames: int,
        page_size: int,
        track_data: bool = True,
        policy: str = "lru",
        stats: Optional[StatRegistry] = None,
    ) -> None:
        if num_frames <= 0:
            raise ValueError(f"num_frames must be > 0, got {num_frames}")
        if page_size <= 0:
            raise ValueError(f"page_size must be > 0, got {page_size}")
        if policy not in ("lru", "clock"):
            raise ValueError(f"unknown eviction policy {policy!r}")
        self.num_frames = num_frames
        self.page_size = page_size
        self.track_data = track_data
        self.policy = policy
        self.frames = [Frame(i) for i in range(num_frames)]
        self._free = list(range(num_frames - 1, -1, -1))
        self._lru: "OrderedDict[int, None]" = OrderedDict()  # frame idx, LRU first
        self._clock_hand = 0
        self.stats = stats if stats is not None else StatRegistry()
        self._allocations = self.stats.counter("dram.allocations")

    @property
    def free_frames(self) -> int:
        return len(self._free)

    @property
    def allocated_frames(self) -> int:
        return self.num_frames - len(self._free)

    @property
    def is_full(self) -> bool:
        return not self._free

    def allocate(self, vpn: int, data: Optional[bytes] = None) -> Optional[Frame]:
        """Take a free frame for ``vpn``; None when DRAM is full."""
        if not self._free:
            return None
        frame = self.frames[self._free.pop()]
        frame.vpn = vpn
        frame.dirty = False
        if self.track_data:
            if data is not None and len(data) != self.page_size:
                raise ValueError(
                    f"frame data must be {self.page_size} bytes, got {len(data)}"
                )
            frame.data = bytearray(data) if data is not None else bytearray(self.page_size)
        self._lru[frame.index] = None
        self._lru.move_to_end(frame.index)
        self._allocations.add()
        return frame

    def free(self, frame: Frame) -> None:
        """Return a frame to the pool."""
        if not frame.allocated:
            raise ValueError(f"frame {frame.index} is not allocated")
        self._lru.pop(frame.index, None)
        frame.vpn = None
        frame.dirty = False
        frame.data = None
        self._free.append(frame.index)

    def touch(self, frame: Frame) -> None:
        """Record a use, making the frame most-recently-used."""
        frame.referenced = True
        if frame.index in self._lru:
            self._lru.move_to_end(frame.index)

    def lru_victim(self) -> Frame:
        """The least-recently-used allocated frame (not removed)."""
        if not self._lru:
            raise RuntimeError("no allocated frames to evict")
        index = next(iter(self._lru))
        return self.frames[index]

    def clock_victim(self) -> Frame:
        """Second-chance (CLOCK) victim: skips recently referenced frames.

        Kernel-style scan-resistant reclaim: the hand sweeps allocated
        frames, clearing reference bits; the first unreferenced frame is
        the victim.  Frames touched since the last sweep survive, so hot
        (e.g. vertex-state) pages are not displaced by one-shot scans.
        """
        if not self._lru:
            raise RuntimeError("no allocated frames to evict")
        allocated = list(self._lru)
        sweeps = 0
        while sweeps < 2 * len(allocated):
            self._clock_hand %= len(allocated)
            frame = self.frames[allocated[self._clock_hand]]
            self._clock_hand += 1
            sweeps += 1
            if frame.referenced:
                frame.referenced = False
            else:
                return frame
        return self.frames[allocated[0]]  # every frame hot: degrade to FIFO

    def victim(self) -> Frame:
        """A victim frame according to the configured policy."""
        if self.policy == "clock":
            return self.clock_victim()
        return self.lru_victim()

    def iter_lru(self) -> Iterator[Frame]:
        """Allocated frames from least- to most-recently used."""
        for index in self._lru:
            yield self.frames[index]

    # ------------------------------------------------------------------ #
    # Payload access
    # ------------------------------------------------------------------ #

    def read_bytes(self, frame: Frame, offset: int, size: int) -> Optional[bytes]:
        if frame.data is None:
            return None
        if offset < 0 or offset + size > self.page_size:
            raise ValueError(
                f"read [{offset}, {offset + size}) outside page of {self.page_size} bytes"
            )
        return bytes(frame.data[offset : offset + size])

    def write_bytes(self, frame: Frame, offset: int, data: bytes) -> None:
        frame.dirty = True
        if frame.data is None:
            return
        if offset < 0 or offset + len(data) > self.page_size:
            raise ValueError(
                f"write [{offset}, {offset + len(data)}) outside page "
                f"of {self.page_size} bytes"
            )
        frame.data[offset : offset + len(data)] = data
