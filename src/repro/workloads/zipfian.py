"""Skewed key distributions for the YCSB workloads (§5.4).

YCSB workloads B and D issue requests with a Zipfian distribution; D uses
the *latest* variant that skews toward recently inserted records.  The
generators here follow the YCSB definitions (Gray et al.'s rejection-free
Zipfian via the precomputed CDF) with numpy vectorization.
"""

from __future__ import annotations

import numpy as np

DEFAULT_THETA = 0.99  # YCSB's default Zipfian constant


class ZipfianGenerator:
    """Samples integers in [0, n) with P(i) proportional to 1/(i+1)^theta."""

    def __init__(self, n: int, theta: float = DEFAULT_THETA, seed: int = 1) -> None:
        if n <= 0:
            raise ValueError(f"n must be > 0, got {n}")
        if theta <= 0.0 or theta >= 1.0:
            # theta = 1 diverges with the closed form; YCSB uses 0.99.
            raise ValueError(f"theta must be in (0, 1), got {theta}")
        self.n = n
        self.theta = theta
        self._rng = np.random.default_rng(seed)
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), theta)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample(self, count: int = 1) -> np.ndarray:
        """Draw ``count`` skewed ranks (0 is the hottest)."""
        if count <= 0:
            raise ValueError(f"count must be > 0, got {count}")
        uniform = self._rng.random(count)
        return np.searchsorted(self._cdf, uniform, side="left")

    def sample_scattered(self, count: int = 1) -> np.ndarray:
        """Skewed ranks scrambled over the key space (hot keys spread out),
        matching YCSB's hashed item ordering."""
        ranks = self.sample(count)
        # A fixed affine permutation scatters hot ranks across [0, n).
        multiplier = 2654435761 % self.n
        if np.gcd(multiplier, self.n) != 1:
            multiplier = 1
            for candidate in range(2654435761 % self.n, 2654435761 % self.n + self.n):
                if np.gcd(candidate % self.n, self.n) == 1 and candidate % self.n > 1:
                    multiplier = candidate % self.n
                    break
        return (ranks * multiplier + 17) % self.n


class LatestGenerator:
    """YCSB's 'latest' distribution: skewed toward the newest records.

    Used by workload D (read latest): ranks are Zipfian distances from the
    most recently inserted key.
    """

    def __init__(self, initial_count: int, theta: float = DEFAULT_THETA, seed: int = 2) -> None:
        if initial_count <= 0:
            raise ValueError(f"initial_count must be > 0, got {initial_count}")
        self.count = initial_count
        self._zipf = ZipfianGenerator(initial_count, theta, seed)

    def record_insert(self) -> int:
        """A new record was inserted; returns its key."""
        key = self.count
        self.count += 1
        return key

    def sample(self, batch: int = 1) -> np.ndarray:
        """Keys skewed toward the most recent insert."""
        distances = self._zipf.sample(batch)
        keys = (self.count - 1) - distances
        return np.maximum(keys, 0)
