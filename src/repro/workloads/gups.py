"""HPCC-GUPS RandomAccess (§5.2, Fig. 9).

GUPS updates random 8-byte words of a huge in-memory table:
``Table[ran % TableSize] ^= ran``.  The table is sized several times the
available DRAM, so the workload is a worst case for paging — near-zero page
reuse — and the showcase for FlatFlash's direct byte-granular SSD access.

GUPS = giga-updates per second = updates / (elapsed seconds * 1e9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.memory_system import MappedRegion, MemorySystem
from repro.engine import AccessTrace, replay, replay_enabled


def compile_trace(
    region: MappedRegion,
    num_updates: int,
    rng: Optional[np.random.Generator] = None,
) -> AccessTrace:
    """Compile the RandomAccess stream to a flat trace (engine phase 1).

    Draws indices then values in the same order as :func:`run_gups`, so
    a shared generator stays stream-compatible between the two paths;
    each update becomes a load/store pair at the same word address.
    """
    if num_updates <= 0:
        raise ValueError(f"num_updates must be > 0, got {num_updates}")
    if rng is None:
        rng = np.random.default_rng(1234)
    words = region.size // 8
    indices = rng.integers(0, words, size=num_updates)
    rng.integers(0, 2**63, size=num_updates, dtype=np.uint64)  # values (unused)
    return AccessTrace.interleaved_rw(region.addr(0) + indices * 8, 8)


@dataclass
class GUPSResult:
    """Outcome of one GUPS run."""

    updates: int
    elapsed_ns: int
    page_movements: int

    @property
    def gups(self) -> float:
        """Giga-updates per simulated second."""
        if self.elapsed_ns == 0:
            return 0.0
        return self.updates / self.elapsed_ns

    @property
    def mean_update_ns(self) -> float:
        """Mean per-update latency (reporting only; never fed back into timing)."""
        if self.updates == 0:
            return 0.0
        return self.elapsed_ns / self.updates  # simlint: disable=SL003


def run_gups(
    system: MemorySystem,
    region: MappedRegion,
    num_updates: int,
    rng: Optional[np.random.Generator] = None,
    verify: bool = False,
) -> GUPSResult:
    """Run the RandomAccess kernel against a mapped table.

    Each update is a load-xor-store of one 64-bit word at a random table
    index.  With ``verify`` (and payload tracking on) the xor is computed
    on real data, so the table contents can be checked afterwards.
    """
    if num_updates <= 0:
        raise ValueError(f"num_updates must be > 0, got {num_updates}")
    if rng is None:
        rng = np.random.default_rng(1234)
    if not verify and replay_enabled(system):
        trace = compile_trace(region, num_updates, rng)
        start_ns = system.clock.now
        start_moves = system.page_movements
        replay(system, trace)
        return GUPSResult(
            updates=num_updates,
            elapsed_ns=system.clock.now - start_ns,
            page_movements=system.page_movements - start_moves,
        )
    words = region.size // 8
    indices = rng.integers(0, words, size=num_updates)
    values = rng.integers(0, 2**63, size=num_updates, dtype=np.uint64)
    start_ns = system.clock.now
    start_moves = system.page_movements
    if verify:
        for index, value in zip(indices, values):
            addr = region.addr(int(index) * 8)
            current, _ = system.load_u64(addr)
            system.store_u64(addr, current ^ int(value))
    else:
        for index in indices:
            addr = region.addr(int(index) * 8)
            system.load(addr, 8)
            system.store(addr, 8)
    return GUPSResult(
        updates=num_updates,
        elapsed_ns=system.clock.now - start_ns,
        page_movements=system.page_movements - start_moves,
    )
