"""FileBench-style metadata operation streams (§5.5, Fig. 13).

Each file-system operation is modelled as the set of *metadata updates* it
must persist (inode, directory entry, allocation bitmap, journal record —
8-256 bytes each, §3.5) plus the metadata reads it needs.  The block-based
engines in :mod:`repro.apps.filesystem` turn every update into page-sized
journal or copy-on-write I/O; FlatFlash persists the bytes directly.

Primitive sizes follow the paper's discussion: file creation allocates an
inode and updates the parent directory, which block file systems amplify
into 16-116 KB of write I/O [47]; VarMail emulates a mail server (one file
per message, fsync-heavy); WebServer emulates static serving plus log
appends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class MetadataOp:
    """One file-system operation's persistence footprint."""

    name: str
    #: Byte sizes of the metadata structures that must be made durable.
    updates: Tuple[int, ...]
    #: Metadata blocks that must be read first (directory lookup etc.).
    metadata_reads: int = 0
    #: File *data* bytes written alongside (page-granular on every system).
    data_bytes: int = 0

    @property
    def metadata_bytes(self) -> int:
        return sum(self.updates)


# Core primitives (Fig. 13's first three groups).  Update sets: inode,
# directory entry, allocation bitmap / free-list, and where applicable the
# parent inode's mtime.
CREATE_FILE = MetadataOp("CreateFile", updates=(256, 64, 32, 16), metadata_reads=2)
RENAME_FILE = MetadataOp("RenameFile", updates=(64, 64, 16, 16), metadata_reads=3)
CREATE_DIRECTORY = MetadataOp(
    "CreateDirectory", updates=(256, 64, 32, 32, 16), metadata_reads=2
)
DELETE_FILE = MetadataOp("DeleteFile", updates=(64, 32, 16), metadata_reads=2)
APPEND_SYNC = MetadataOp(
    "AppendSync", updates=(64, 32), metadata_reads=1, data_bytes=4096
)
READ_FILE = MetadataOp("ReadFile", updates=(), metadata_reads=2)
LOG_APPEND = MetadataOp("LogAppend", updates=(48,), metadata_reads=0, data_bytes=512)


@dataclass
class OpStream:
    """A named stream of metadata operations."""

    name: str
    ops: List[MetadataOp] = field(default_factory=list)

    def __iter__(self) -> Iterator[MetadataOp]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def total_metadata_bytes(self) -> int:
        return sum(op.metadata_bytes for op in self.ops)


def repeated_ops(op: MetadataOp, count: int) -> OpStream:
    """A microbenchmark stream: the same primitive ``count`` times."""
    if count <= 0:
        raise ValueError(f"count must be > 0, got {count}")
    return OpStream(op.name, [op] * count)


def varmail_ops(
    count: int, rng: Optional[np.random.Generator] = None
) -> OpStream:
    """VarMail: a mail server storing each message in a file.

    FileBench's varmail personality: create+write+fsync new mail, read
    mail, delete mail, append+fsync (flag updates) — roughly balanced, with
    every write path fsync-ed, which makes metadata persistence dominant.
    """
    if rng is None:
        rng = np.random.default_rng(99)
    mix = [
        (CREATE_FILE, 0.25),
        (APPEND_SYNC, 0.25),
        (READ_FILE, 0.25),
        (DELETE_FILE, 0.25),
    ]
    return _mixed_stream("VarMail", mix, count, rng)


def webserver_ops(
    count: int, rng: Optional[np.random.Generator] = None
) -> OpStream:
    """WebServer: mostly whole-file reads plus a synchronous access log."""
    if rng is None:
        rng = np.random.default_rng(100)
    mix = [
        (READ_FILE, 0.45),
        (LOG_APPEND, 0.5),
        (CREATE_FILE, 0.05),
    ]
    return _mixed_stream("WebServer", mix, count, rng)


def _mixed_stream(
    name: str,
    mix: List[Tuple[MetadataOp, float]],
    count: int,
    rng: np.random.Generator,
) -> OpStream:
    if count <= 0:
        raise ValueError(f"count must be > 0, got {count}")
    weights = np.array([weight for _op, weight in mix], dtype=np.float64)
    if not np.isclose(weights.sum(), 1.0):
        raise ValueError(f"op mix weights must sum to 1, got {weights.sum()}")
    choices = rng.choice(len(mix), size=count, p=weights)
    ops = [mix[int(choice)][0] for choice in choices]
    return OpStream(name, ops)


#: The five Fig. 13 workloads by name.
def workload_by_name(name: str, count: int, seed: int = 5) -> OpStream:
    rng = np.random.default_rng(seed)
    streams = {
        "CreateFile": lambda: repeated_ops(CREATE_FILE, count),
        "RenameFile": lambda: repeated_ops(RENAME_FILE, count),
        "CreateDirectory": lambda: repeated_ops(CREATE_DIRECTORY, count),
        "VarMail": lambda: varmail_ops(count, rng),
        "WebServer": lambda: webserver_ops(count, rng),
    }
    try:
        return streams[name]()
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(streams)}"
        ) from None


def compile_trace(
    stream: OpStream,
    base_addr: int,
    region_size: int,
    seed: int = 31,
    line_size: int = 64,
):
    """Compile the stream's metadata-*read* accesses to a flat trace
    (engine phase 1).

    Mirrors ``_FileSystemBase._read_metadata`` — each op's directory and
    inode lookups are random 64-byte loads over the metadata region,
    drawn from the same generator stream (``default_rng(seed)``) in the
    same order.  The persistence side (journal page writes, byte-granular
    persist stores) is block/persist-domain traffic, not plain memory
    loads/stores, so it is not representable as trace rows and stays on
    the scalar path.
    """
    from repro.engine import AccessTrace

    if region_size <= line_size:
        raise ValueError(f"region_size must exceed {line_size}, got {region_size}")
    rng = np.random.default_rng(seed)
    addrs: List[int] = []
    stamps: List[int] = []
    for index, op in enumerate(stream):
        for _ in range(op.metadata_reads):
            offset = int(rng.integers(0, region_size - line_size))
            addrs.append(base_addr + offset)
            stamps.append(index)
    return AccessTrace.from_columns(
        np.asarray(addrs, dtype=np.int64),
        line_size,
        0,
        timestamps=np.asarray(stamps, dtype=np.int64),
    )
