"""Yahoo Cloud Serving Benchmark workload mixes (§5.4, Figs. 11-12).

The paper runs workloads B and D against Redis:

* **B** — 95 % reads / 5 % updates, Zipfian keys (photo tagging);
* **D** — 95 % reads / 5 % inserts, latest-skewed reads (status updates).

A and C are included for completeness (A: 50/50 update-heavy; C: read-only)
— they are useful for ablations.  Key-value pairs are 64 bytes, matching
the paper's setup.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.workloads.zipfian import LatestGenerator, ZipfianGenerator


class OpType(enum.Enum):
    READ = "read"
    UPDATE = "update"
    INSERT = "insert"


@dataclass(frozen=True)
class YCSBWorkload:
    """One YCSB workload personality."""

    name: str
    read_ratio: float
    update_ratio: float
    insert_ratio: float
    distribution: str  # "zipfian", "latest" or "uniform"

    def validate(self) -> None:
        total = self.read_ratio + self.update_ratio + self.insert_ratio
        if not np.isclose(total, 1.0):
            raise ValueError(f"{self.name}: ratios sum to {total}, expected 1.0")
        if self.distribution not in ("zipfian", "latest", "uniform"):
            raise ValueError(f"{self.name}: unknown distribution {self.distribution!r}")


YCSB_A = YCSBWorkload("YCSB-A", 0.50, 0.50, 0.0, "zipfian")
YCSB_B = YCSBWorkload("YCSB-B", 0.95, 0.05, 0.0, "zipfian")
YCSB_C = YCSBWorkload("YCSB-C", 1.00, 0.00, 0.0, "zipfian")
YCSB_D = YCSBWorkload("YCSB-D", 0.95, 0.00, 0.05, "latest")

WORKLOADS = {w.name: w for w in (YCSB_A, YCSB_B, YCSB_C, YCSB_D)}

#: Key-value pair size used throughout §5.4.
RECORD_SIZE = 64


def generate_ops(
    workload: YCSBWorkload,
    num_ops: int,
    num_records: int,
    theta: float = 0.99,
    seed: int = 21,
    rng: Optional[np.random.Generator] = None,
) -> Iterator[Tuple[OpType, int]]:
    """Yield ``(op, key)`` pairs following the workload's mix and skew.

    ``theta`` tunes the Zipfian skew, which is how the paper adjusts the
    working-set size relative to DRAM ("adjust the working set sizes by
    setting the request distribution parameter in YCSB").
    """
    workload.validate()
    if num_ops <= 0:
        raise ValueError(f"num_ops must be > 0, got {num_ops}")
    if num_records <= 0:
        raise ValueError(f"num_records must be > 0, got {num_records}")
    if rng is None:
        rng = np.random.default_rng(seed)

    zipf = ZipfianGenerator(num_records, theta=theta, seed=seed + 1)
    latest = LatestGenerator(num_records, theta=theta, seed=seed + 2)
    rolls = rng.random(num_ops)
    read_cut = workload.read_ratio
    update_cut = workload.read_ratio + workload.update_ratio

    for roll in rolls:
        if roll < read_cut:
            op = OpType.READ
        elif roll < update_cut:
            op = OpType.UPDATE
        else:
            op = OpType.INSERT
        if op is OpType.INSERT:
            key = latest.record_insert()
            yield op, key
            continue
        if workload.distribution == "latest":
            key = int(latest.sample(1)[0])
        elif workload.distribution == "zipfian":
            key = int(zipf.sample_scattered(1)[0])
        else:
            key = int(rng.integers(0, num_records))
        yield op, key


def compile_trace(
    workload: YCSBWorkload,
    num_ops: int,
    num_records: int,
    base_addr: int,
    capacity_records: Optional[int] = None,
    record_size: int = RECORD_SIZE,
    theta: float = 0.99,
    seed: int = 21,
):
    """Compile the workload's op stream to a flat access trace (engine
    phase 1).

    Mirrors :func:`repro.apps.kvstore.run_ycsb`: each read becomes one
    ``record_size`` load and each update/insert one store, at
    ``base_addr + key * record_size`` with keys wrapped to
    ``capacity_records`` the way the driver wraps them.
    """
    from repro.engine import OP_LOAD, OP_STORE, AccessTrace

    if capacity_records is None:
        capacity_records = num_records
    addrs = np.empty(num_ops, dtype=np.int64)
    ops = np.empty(num_ops, dtype=np.uint8)
    for index, (op, key) in enumerate(
        generate_ops(workload, num_ops, num_records, theta=theta, seed=seed)
    ):
        if key >= capacity_records:
            key = key % capacity_records
        addrs[index] = base_addr + key * record_size
        ops[index] = OP_LOAD if op is OpType.READ else OP_STORE
    return AccessTrace.from_columns(addrs, record_size, ops)
