"""Workload generators reproducing the paper's benchmark access patterns."""

from repro.workloads.filebench import (
    APPEND_SYNC,
    CREATE_DIRECTORY,
    CREATE_FILE,
    DELETE_FILE,
    LOG_APPEND,
    READ_FILE,
    RENAME_FILE,
    MetadataOp,
    OpStream,
    repeated_ops,
    varmail_ops,
    webserver_ops,
    workload_by_name,
)
from repro.workloads.graphs import CSRGraph, connected_pairs_graph, power_law_graph
from repro.workloads.gups import GUPSResult, run_gups
from repro.workloads.oltp import (
    TATP,
    TPCB,
    TPCC,
    Transaction,
    TransactionSpec,
    generate_transactions,
)
from repro.workloads.synthetic import random_access, sequential_access, warm_up
from repro.workloads.trace import Trace, TraceRecorder, synthetic_trace
from repro.workloads.ycsb import (
    RECORD_SIZE,
    YCSB_A,
    YCSB_B,
    YCSB_C,
    YCSB_D,
    OpType,
    YCSBWorkload,
    generate_ops,
)
from repro.workloads.zipfian import LatestGenerator, ZipfianGenerator

__all__ = [
    "sequential_access",
    "random_access",
    "warm_up",
    "run_gups",
    "GUPSResult",
    "ZipfianGenerator",
    "LatestGenerator",
    "CSRGraph",
    "power_law_graph",
    "connected_pairs_graph",
    "MetadataOp",
    "OpStream",
    "CREATE_FILE",
    "RENAME_FILE",
    "CREATE_DIRECTORY",
    "DELETE_FILE",
    "APPEND_SYNC",
    "READ_FILE",
    "LOG_APPEND",
    "repeated_ops",
    "varmail_ops",
    "webserver_ops",
    "workload_by_name",
    "TPCC",
    "TPCB",
    "TATP",
    "Transaction",
    "TransactionSpec",
    "generate_transactions",
    "OpType",
    "YCSBWorkload",
    "YCSB_A",
    "YCSB_B",
    "YCSB_C",
    "YCSB_D",
    "RECORD_SIZE",
    "generate_ops",
    "Trace",
    "TraceRecorder",
    "synthetic_trace",
]
