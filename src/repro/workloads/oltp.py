"""OLTP transaction models: TPCC, TPCB, TATP (§5.6, Fig. 14).

Shore-Kits' three workloads differ in read/write balance and in how much
log each transaction produces — the paper measured 64-1,424 bytes of log
per transaction across them (§3.5).  The specs below capture those shapes:

* **TPCC** (order processing): medium read/write sets, large log records.
* **TPCB** (account updates): update-intensive, medium logs.
* **TATP** (subscriber lookups): read-mostly, tiny logs.

:func:`generate_transactions` expands a spec into concrete transactions —
record addresses drawn Zipfian-skewed over the table pages — which the
mini database engine in :mod:`repro.apps.database` executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass(frozen=True)
class TransactionSpec:
    """Shape of one transaction type."""

    name: str
    record_reads: int
    record_writes: int
    log_bytes_min: int
    log_bytes_max: int
    #: CPU time per transaction outside storage (ns).
    compute_ns: int
    record_size: int = 64

    def validate(self) -> None:
        if self.record_reads < 0 or self.record_writes < 0:
            raise ValueError(f"{self.name}: negative read/write counts")
        if not 0 < self.log_bytes_min <= self.log_bytes_max:
            raise ValueError(f"{self.name}: bad log size range")


TPCC = TransactionSpec(
    name="TPCC",
    record_reads=10,
    record_writes=6,
    log_bytes_min=600,
    log_bytes_max=1_424,
    compute_ns=18_000,
)

# The five TPC-C transaction types with the standard mix percentages.
# ``TPCC`` above is the traffic-weighted aggregate used by the headline
# figures; the per-type specs drive the mixed-workload generator.
TPCC_NEW_ORDER = TransactionSpec(
    "TPCC-NewOrder", record_reads=12, record_writes=10,
    log_bytes_min=700, log_bytes_max=1_424, compute_ns=20_000,
)
TPCC_PAYMENT = TransactionSpec(
    "TPCC-Payment", record_reads=4, record_writes=4,
    log_bytes_min=400, log_bytes_max=700, compute_ns=10_000,
)
TPCC_ORDER_STATUS = TransactionSpec(
    "TPCC-OrderStatus", record_reads=12, record_writes=0,
    log_bytes_min=64, log_bytes_max=128, compute_ns=8_000,
)
TPCC_DELIVERY = TransactionSpec(
    "TPCC-Delivery", record_reads=12, record_writes=12,
    log_bytes_min=600, log_bytes_max=1_000, compute_ns=25_000,
)
TPCC_STOCK_LEVEL = TransactionSpec(
    "TPCC-StockLevel", record_reads=20, record_writes=0,
    log_bytes_min=64, log_bytes_max=128, compute_ns=15_000,
)

#: TPC-C standard transaction mix: (spec, probability).
TPCC_MIX = [
    (TPCC_NEW_ORDER, 0.45),
    (TPCC_PAYMENT, 0.43),
    (TPCC_ORDER_STATUS, 0.04),
    (TPCC_DELIVERY, 0.04),
    (TPCC_STOCK_LEVEL, 0.04),
]

TPCB = TransactionSpec(
    name="TPCB",
    record_reads=3,
    record_writes=4,
    log_bytes_min=250,
    log_bytes_max=500,
    compute_ns=6_000,
)

TATP = TransactionSpec(
    name="TATP",
    record_reads=3,
    record_writes=1,
    log_bytes_min=64,
    log_bytes_max=200,
    compute_ns=3_000,
)

WORKLOADS = {"TPCC": TPCC, "TPCB": TPCB, "TATP": TATP}


@dataclass
class Transaction:
    """A concrete transaction: record offsets (bytes) plus its log size."""

    spec: TransactionSpec
    read_offsets: List[int]
    write_offsets: List[int]
    log_bytes: int


def generate_mixed_transactions(
    mix: List,
    count: int,
    table_bytes: int,
    skew: float = 0.6,
    rng: Optional[np.random.Generator] = None,
) -> List["Transaction"]:
    """Transactions drawn from a (spec, probability) mix, e.g. ``TPCC_MIX``.

    Types are interleaved in mix proportion, so a run exercises the full
    read-only/update spectrum the way a real TPC-C driver does.
    """
    if count <= 0:
        raise ValueError(f"count must be > 0, got {count}")
    if rng is None:
        rng = np.random.default_rng(29)
    weights = np.array([weight for _spec, weight in mix], dtype=np.float64)
    if not np.isclose(weights.sum(), 1.0):
        raise ValueError(f"mix weights must sum to 1, got {weights.sum()}")
    choices = rng.choice(len(mix), size=count, p=weights)
    transactions: List[Transaction] = []
    for choice in choices:
        spec = mix[int(choice)][0]
        transactions.extend(
            generate_transactions(spec, 1, table_bytes, skew=skew, rng=rng)
        )
    return transactions


def generate_transactions(
    spec: TransactionSpec,
    count: int,
    table_bytes: int,
    skew: float = 0.6,
    rng: Optional[np.random.Generator] = None,
) -> List[Transaction]:
    """Materialize ``count`` transactions over a table of ``table_bytes``.

    Record accesses are Zipf-skewed (hot rows), quantized to record
    boundaries.  ``skew`` in (0, 1): larger = hotter head.
    """
    spec.validate()
    if count <= 0:
        raise ValueError(f"count must be > 0, got {count}")
    if table_bytes < spec.record_size:
        raise ValueError("table smaller than one record")
    if rng is None:
        rng = np.random.default_rng(17)
    records = table_bytes // spec.record_size
    # Zipf-ish skew through a power transform of uniforms (cheap, smooth).
    def skewed(count_needed: int) -> np.ndarray:
        uniform = rng.random(count_needed)
        ranks = np.power(uniform, 1.0 / max(1e-6, (1.0 - skew)))
        return (ranks * records).astype(np.int64) % records

    transactions: List[Transaction] = []
    for _ in range(count):
        reads = skewed(spec.record_reads) if spec.record_reads else np.array([], dtype=np.int64)
        writes = skewed(spec.record_writes) if spec.record_writes else np.array([], dtype=np.int64)
        log_bytes = int(rng.integers(spec.log_bytes_min, spec.log_bytes_max + 1))
        transactions.append(
            Transaction(
                spec=spec,
                read_offsets=[int(r) * spec.record_size for r in reads],
                write_offsets=[int(w) * spec.record_size for w in writes],
                log_bytes=log_bytes,
            )
        )
    return transactions


def compile_trace(
    spec: TransactionSpec,
    count: int,
    table_bytes: int,
    base_addr: int,
    num_threads: int = 1,
    skew: float = 0.6,
    rng: Optional[np.random.Generator] = None,
):
    """Compile a transaction batch to a flat access trace (engine phase 1).

    Each transaction contributes its reads then its writes, 64-byte
    record accesses at ``base_addr + offset % table_bytes`` exactly as
    :class:`repro.apps.database.MiniDB`'s worker issues them.  The
    ``thread`` column carries the round-robin worker id and ``ts`` the
    transaction index, so the program order within a worker is
    recoverable.  Replay through the engine is intentionally NOT wired
    up for OLTP: the DES interleaving (each access's latency feeds the
    scheduler) makes the global order loop-carried — BATCH.json
    classifies the worker loop ORDER_DEPENDENT — so the MiniDB always
    runs the scalar path.
    """
    from repro.engine import OP_LOAD, OP_STORE, AccessTrace

    if num_threads <= 0:
        raise ValueError(f"num_threads must be > 0, got {num_threads}")
    transactions = generate_transactions(spec, count, table_bytes, skew=skew, rng=rng)
    addrs: List[int] = []
    ops: List[int] = []
    threads: List[int] = []
    stamps: List[int] = []
    for index, tx in enumerate(transactions):
        worker = index % num_threads
        for offset in tx.read_offsets:
            addrs.append(base_addr + offset % table_bytes)
            ops.append(OP_LOAD)
            threads.append(worker)
            stamps.append(index)
        for offset in tx.write_offsets:
            addrs.append(base_addr + offset % table_bytes)
            ops.append(OP_STORE)
            threads.append(worker)
            stamps.append(index)
    return AccessTrace.from_columns(
        np.asarray(addrs, dtype=np.int64),
        spec.record_size,
        np.asarray(ops, dtype=np.uint8),
        threads=np.asarray(threads, dtype=np.int64),
        timestamps=np.asarray(stamps, dtype=np.int64),
    )
