"""Synthetic power-law graphs for the graph-analytics experiments (§5.3).

The paper runs PageRank and Connected-Component Labeling over the Twitter
and Friendster social graphs.  Those datasets are not redistributable, so
we generate Chung-Lu style graphs with the same power-law degree skew the
paper's analysis depends on (§5.3 explicitly motivates graph locality with
the power-law distribution [21]).  Fig. 10's behaviour is driven by the
skew (hot high-degree vertices vs a long cold tail) and by the graph:DRAM
size ratio — both preserved here at reduced scale.

Graphs are stored in CSR form (indptr/indices), the layout GraphChi-style
engines stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CSRGraph:
    """Compressed sparse row adjacency."""

    num_vertices: int
    indptr: np.ndarray  # int64, len = num_vertices + 1
    indices: np.ndarray  # int64, len = num_edges

    @property
    def num_edges(self) -> int:
        return int(self.indices.shape[0])

    def degree(self, vertex: int) -> int:
        return int(self.indptr[vertex + 1] - self.indptr[vertex])

    def neighbors(self, vertex: int) -> np.ndarray:
        return self.indices[self.indptr[vertex] : self.indptr[vertex + 1]]

    def validate(self) -> None:
        if self.indptr.shape[0] != self.num_vertices + 1:
            raise ValueError("indptr length must be num_vertices + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != self.num_edges:
            raise ValueError("indptr must start at 0 and end at num_edges")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.num_edges and (
            self.indices.min() < 0 or self.indices.max() >= self.num_vertices
        ):
            raise ValueError("edge endpoints out of range")


def power_law_degrees(
    num_vertices: int,
    avg_degree: float,
    exponent: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Degree sequence following a truncated power law, rescaled to the
    requested average degree."""
    if num_vertices <= 0:
        raise ValueError(f"num_vertices must be > 0, got {num_vertices}")
    if avg_degree <= 0:
        raise ValueError(f"avg_degree must be > 0, got {avg_degree}")
    if exponent <= 1.0:
        raise ValueError(f"exponent must be > 1, got {exponent}")
    # Inverse-CDF sampling of P(d) ~ d^-exponent on [1, num_vertices).
    uniform = rng.random(num_vertices)
    raw = np.power(1.0 - uniform, -1.0 / (exponent - 1.0))
    raw = np.minimum(raw, float(num_vertices - 1) if num_vertices > 1 else 1.0)
    scaled = raw * (avg_degree / raw.mean())
    degrees = np.maximum(1, np.rint(scaled)).astype(np.int64)
    return degrees


def power_law_graph(
    num_vertices: int,
    avg_degree: float = 16.0,
    exponent: float = 2.1,
    seed: int = 3,
) -> CSRGraph:
    """A Chung-Lu style directed graph with power-law out- and in-degrees.

    Out-degrees follow the sampled power-law sequence; edge *targets* are
    drawn proportionally to a second power-law weight vector, giving the
    heavy-tailed in-degree skew (celebrity vertices) that creates the data
    locality the paper's promotion policy exploits.
    """
    rng = np.random.default_rng(seed)
    out_degrees = power_law_degrees(num_vertices, avg_degree, exponent, rng)
    num_edges = int(out_degrees.sum())
    in_weights = power_law_degrees(num_vertices, avg_degree, exponent, rng).astype(
        np.float64
    )
    probabilities = in_weights / in_weights.sum()
    targets = rng.choice(num_vertices, size=num_edges, p=probabilities)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(out_degrees, out=indptr[1:])
    graph = CSRGraph(num_vertices, indptr, targets.astype(np.int64))
    graph.validate()
    return graph


def connected_pairs_graph(num_vertices: int, num_components: int, seed: int = 4) -> CSRGraph:
    """A graph made of ``num_components`` chained components, for testing
    connected-component labeling with a known ground truth."""
    if num_components <= 0 or num_components > num_vertices:
        raise ValueError(
            f"need 0 < num_components <= num_vertices, got {num_components}/{num_vertices}"
        )
    rng = np.random.default_rng(seed)
    membership = np.sort(rng.integers(0, num_components, size=num_vertices))
    sources: list = []
    targets: list = []
    # Chain the vertices of each component so it is connected.
    for component in range(num_components):
        members = np.where(membership == component)[0]
        for left, right in zip(members[:-1], members[1:]):
            sources.append(left)
            targets.append(right)
            sources.append(right)
            targets.append(left)
    order = np.argsort(np.array(sources, dtype=np.int64), kind="stable")
    sources_arr = np.array(sources, dtype=np.int64)[order]
    targets_arr = np.array(targets, dtype=np.int64)[order]
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    counts = np.bincount(sources_arr, minlength=num_vertices)
    np.cumsum(counts, out=indptr[1:])
    graph = CSRGraph(num_vertices, indptr, targets_arr)
    graph.validate()
    return graph
