"""Synthetic cache-line access patterns (§5.1, Fig. 8).

The paper's first experiment maps a file spanning the whole SSD, warms the
system by touching the pages randomly, then measures the average latency of
sequential and random 64-byte accesses.  These functions reproduce that
driver against any :class:`~repro.core.memory_system.MemorySystem`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.memory_system import MappedRegion, MemorySystem
from repro.sim.stats import LatencyStats


def warm_up(
    system: MemorySystem,
    region: MappedRegion,
    num_accesses: int,
    rng: Optional[np.random.Generator] = None,
) -> None:
    """Touch random pages of the region to populate caches and DRAM."""
    if rng is None:
        rng = np.random.default_rng(42)
    line = system.config.geometry.cacheline_size
    pages = rng.integers(0, region.num_pages, size=num_accesses)
    lines_per_page = region.page_size // line
    offsets = rng.integers(0, lines_per_page, size=num_accesses) * line
    for page, offset in zip(pages, offsets):
        system.load(region.page_addr(int(page), int(offset)), line)


def sequential_access(
    system: MemorySystem,
    region: MappedRegion,
    num_ops: int,
    size: int = 64,
    write_ratio: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> LatencyStats:
    """Sequential cache-line sweep over the region; returns per-op latencies."""
    if not 0.0 <= write_ratio <= 1.0:
        raise ValueError(f"write_ratio must be in [0, 1], got {write_ratio}")
    if rng is None:
        rng = np.random.default_rng(7)
    stats = LatencyStats("sequential")
    writes = rng.random(num_ops) < write_ratio
    total_lines = region.size // size
    for op in range(num_ops):
        offset = (op % total_lines) * size
        addr = region.addr(offset)
        if writes[op]:
            result = system.store(addr, size)
        else:
            result = system.load(addr, size)
        stats.record(result.latency_ns)
    return stats


def random_access(
    system: MemorySystem,
    region: MappedRegion,
    num_ops: int,
    size: int = 64,
    write_ratio: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> LatencyStats:
    """Uniformly random cache-line accesses; returns per-op latencies."""
    if not 0.0 <= write_ratio <= 1.0:
        raise ValueError(f"write_ratio must be in [0, 1], got {write_ratio}")
    if rng is None:
        rng = np.random.default_rng(11)
    stats = LatencyStats("random")
    total_lines = region.size // size
    indices = rng.integers(0, total_lines, size=num_ops)
    writes = rng.random(num_ops) < write_ratio
    for line_index, is_write in zip(indices, writes):
        addr = region.addr(int(line_index) * size)
        if is_write:
            result = system.store(addr, size)
        else:
            result = system.load(addr, size)
        stats.record(result.latency_ns)
    return stats
