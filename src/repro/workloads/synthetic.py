"""Synthetic cache-line access patterns (§5.1, Fig. 8).

The paper's first experiment maps a file spanning the whole SSD, warms the
system by touching the pages randomly, then measures the average latency of
sequential and random 64-byte accesses.  These functions reproduce that
driver against any :class:`~repro.core.memory_system.MemorySystem`.

Each driver has a ``compile_*_trace`` twin that emits the identical access
stream as a flat :class:`~repro.engine.trace.AccessTrace` (engine phase 1);
the drivers replay it through :func:`repro.engine.replay` when the
system's config enables the engine, and fall back to the scalar per-op
loop otherwise — results are byte-identical either way.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.memory_system import MappedRegion, MemorySystem
from repro.engine import AccessTrace, replay, replay_enabled
from repro.sim.stats import LatencyStats


def compile_warmup_trace(
    region: MappedRegion,
    num_accesses: int,
    line_size: int,
    rng: Optional[np.random.Generator] = None,
) -> AccessTrace:
    """The :func:`warm_up` access stream as a flat trace."""
    if rng is None:
        rng = np.random.default_rng(42)
    pages = rng.integers(0, region.num_pages, size=num_accesses)
    lines_per_page = region.page_size // line_size
    offsets = rng.integers(0, lines_per_page, size=num_accesses) * line_size
    addrs = region.addr(0) + pages * region.page_size + offsets
    return AccessTrace.loads(addrs, line_size)


def warm_up(
    system: MemorySystem,
    region: MappedRegion,
    num_accesses: int,
    rng: Optional[np.random.Generator] = None,
) -> None:
    """Touch random pages of the region to populate caches and DRAM."""
    line = system.config.geometry.cacheline_size
    if replay_enabled(system):
        replay(system, compile_warmup_trace(region, num_accesses, line, rng))
        return
    if rng is None:
        rng = np.random.default_rng(42)
    pages = rng.integers(0, region.num_pages, size=num_accesses)
    lines_per_page = region.page_size // line
    offsets = rng.integers(0, lines_per_page, size=num_accesses) * line
    for page, offset in zip(pages, offsets):
        system.load(region.page_addr(int(page), int(offset)), line)


def compile_sequential_trace(
    region: MappedRegion,
    num_ops: int,
    size: int = 64,
    write_ratio: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> AccessTrace:
    """The :func:`sequential_access` stream as a flat trace."""
    if not 0.0 <= write_ratio <= 1.0:
        raise ValueError(f"write_ratio must be in [0, 1], got {write_ratio}")
    if rng is None:
        rng = np.random.default_rng(7)
    writes = rng.random(num_ops) < write_ratio
    total_lines = region.size // size
    offsets = (np.arange(num_ops, dtype=np.int64) % total_lines) * size
    return AccessTrace.from_columns(
        region.addr(0) + offsets, size, writes.astype(np.uint8)
    )


def sequential_access(
    system: MemorySystem,
    region: MappedRegion,
    num_ops: int,
    size: int = 64,
    write_ratio: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> LatencyStats:
    """Sequential cache-line sweep over the region; returns per-op latencies."""
    if not 0.0 <= write_ratio <= 1.0:
        raise ValueError(f"write_ratio must be in [0, 1], got {write_ratio}")
    stats = LatencyStats("sequential")
    if replay_enabled(system):
        trace = compile_sequential_trace(region, num_ops, size, write_ratio, rng)
        result = replay(system, trace)
        stats.extend(result.latencies.tolist())
        return stats
    if rng is None:
        rng = np.random.default_rng(7)
    writes = rng.random(num_ops) < write_ratio
    total_lines = region.size // size
    for op in range(num_ops):
        offset = (op % total_lines) * size
        addr = region.addr(offset)
        if writes[op]:
            result = system.store(addr, size)
        else:
            result = system.load(addr, size)
        stats.record(result.latency_ns)
    return stats


def compile_random_trace(
    region: MappedRegion,
    num_ops: int,
    size: int = 64,
    write_ratio: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> AccessTrace:
    """The :func:`random_access` stream as a flat trace."""
    if not 0.0 <= write_ratio <= 1.0:
        raise ValueError(f"write_ratio must be in [0, 1], got {write_ratio}")
    if rng is None:
        rng = np.random.default_rng(11)
    total_lines = region.size // size
    indices = rng.integers(0, total_lines, size=num_ops)
    writes = rng.random(num_ops) < write_ratio
    return AccessTrace.from_columns(
        region.addr(0) + indices * size, size, writes.astype(np.uint8)
    )


def random_access(
    system: MemorySystem,
    region: MappedRegion,
    num_ops: int,
    size: int = 64,
    write_ratio: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> LatencyStats:
    """Uniformly random cache-line accesses; returns per-op latencies."""
    if not 0.0 <= write_ratio <= 1.0:
        raise ValueError(f"write_ratio must be in [0, 1], got {write_ratio}")
    stats = LatencyStats("random")
    if replay_enabled(system):
        trace = compile_random_trace(region, num_ops, size, write_ratio, rng)
        result = replay(system, trace)
        stats.extend(result.latencies.tolist())
        return stats
    if rng is None:
        rng = np.random.default_rng(11)
    total_lines = region.size // size
    indices = rng.integers(0, total_lines, size=num_ops)
    writes = rng.random(num_ops) < write_ratio
    for line_index, is_write in zip(indices, writes):
        addr = region.addr(int(line_index) * size)
        if is_write:
            result = system.store(addr, size)
        else:
            result = system.load(addr, size)
        stats.record(result.latency_ns)
    return stats
