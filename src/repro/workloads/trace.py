"""Access-trace recording and replay.

Research workflows often need to run *the same* access stream against
several configurations (the paper does this implicitly by fixing seeds).
A :class:`Trace` captures (op, offset, size) tuples — either programmatic
or recorded live from a system via :class:`TraceRecorder` — saves them to
a compact ``.npz`` file, and replays them against any memory system,
returning the usual latency statistics.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.batch import batchable
from repro.core.memory_system import MappedRegion, MemorySystem
from repro.sim.stats import LatencyStats

#: op codes in the packed representation.
OP_LOAD = 0
OP_STORE = 1


@batchable
def pack_ops(entries: Iterable[Tuple[int, int, int]]) -> List[Tuple[int, int, int]]:
    """Validate and normalize raw (op, offset, size) triples into trace rows.

    The workload emit loop the vectorized engine batches: each row is
    checked and coerced independently of every other row (a positional
    gather with no carried state), so a batched replay may materialize
    the stream out of order and reassemble it by position.
    """
    packed: List[Tuple[int, int, int]] = []
    for op, offset, size in entries:
        op = int(op)
        offset = int(offset)
        size = int(size)
        if op not in (OP_LOAD, OP_STORE):
            raise ValueError(f"unknown op code {op}")
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        if size <= 0:
            raise ValueError(f"size must be > 0, got {size}")
        packed.append((op, offset, size))
    return packed


class Trace:
    """An ordered sequence of memory operations relative to a region base."""

    def __init__(self, ops: Optional[Iterable[Tuple[int, int, int]]] = None) -> None:
        self._ops: List[Tuple[int, int, int]] = list(ops) if ops is not None else []

    def append_load(self, offset: int, size: int) -> None:
        self._append(OP_LOAD, offset, size)

    def append_store(self, offset: int, size: int) -> None:
        self._append(OP_STORE, offset, size)

    def _append(self, op: int, offset: int, size: int) -> None:
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        if size <= 0:
            raise ValueError(f"size must be > 0, got {size}")
        self._ops.append((op, offset, size))

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self):
        return iter(self._ops)

    @property
    def footprint_bytes(self) -> int:
        """Highest byte touched plus one (0 for an empty trace)."""
        if not self._ops:
            return 0
        return max(offset + size for _op, offset, size in self._ops)

    @property
    def read_ratio(self) -> float:
        if not self._ops:
            return 0.0
        reads = sum(1 for op, _o, _s in self._ops if op == OP_LOAD)
        return reads / len(self._ops)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def save(self, path: str) -> None:
        """Write the trace as a compressed npz file."""
        packed = np.array(self._ops, dtype=np.int64).reshape(-1, 3)
        np.savez_compressed(path, ops=packed)

    @classmethod
    def load(cls, path: str) -> "Trace":
        with np.load(path) as archive:
            packed = archive["ops"]
        if packed.ndim != 2 or packed.shape[1] != 3:
            raise ValueError(f"malformed trace file {path!r}")
        return cls(pack_ops(packed))

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #

    def replay(
        self, system: MemorySystem, region: Optional[MappedRegion] = None
    ) -> LatencyStats:
        """Run the trace against a system; returns per-op latencies.

        Maps a region big enough for the trace footprint when none is given.
        """
        if region is None:
            pages = max(1, -(-self.footprint_bytes // system.page_size))
            region = system.mmap(pages, name="trace")
        if region.size < self.footprint_bytes:
            raise ValueError(
                f"region of {region.size} bytes too small for trace footprint "
                f"{self.footprint_bytes}"
            )
        stats = LatencyStats("trace")
        for op, offset, size in self._ops:
            addr = region.addr(offset)
            if op == OP_LOAD:
                result = system.load(addr, size)
            else:
                result = system.store(addr, size)
            stats.record(result.latency_ns)
        return stats


class TraceRecorder:
    """Wraps a memory system, recording every load/store it forwards.

    Offsets are recorded relative to ``region.base_addr`` so the trace can
    be replayed on any other system/region.
    """

    def __init__(self, system: MemorySystem, region: MappedRegion) -> None:
        self.system = system
        self.region = region
        self.trace = Trace()

    def load(self, addr: int, size: int):
        self.trace.append_load(addr - self.region.base_addr, size)
        return self.system.load(addr, size)

    def store(self, addr: int, size: int, data=None):
        self.trace.append_store(addr - self.region.base_addr, size)
        return self.system.store(addr, size, data)


def synthetic_trace(
    num_ops: int,
    footprint_bytes: int,
    read_ratio: float = 0.8,
    locality: float = 0.0,
    access_size: int = 64,
    seed: int = 1,
) -> Trace:
    """Generate a trace: uniform random, or hot-clustered with ``locality``.

    ``locality`` in [0, 1): that fraction of accesses hits the hottest 10%
    of the footprint.
    """
    if not 0.0 <= read_ratio <= 1.0:
        raise ValueError(f"read_ratio must be in [0, 1], got {read_ratio}")
    if not 0.0 <= locality < 1.0:
        raise ValueError(f"locality must be in [0, 1), got {locality}")
    if footprint_bytes < access_size:
        raise ValueError("footprint smaller than one access")
    rng = np.random.default_rng(seed)
    slots = footprint_bytes // access_size
    hot_slots = max(1, slots // 10)
    trace = Trace()
    for _ in range(num_ops):
        if rng.random() < locality:
            slot = int(rng.integers(0, hot_slots))
        else:
            slot = int(rng.integers(0, slots))
        offset = slot * access_size
        if rng.random() < read_ratio:
            trace.append_load(offset, access_size)
        else:
            trace.append_store(offset, access_size)
    return trace
