"""SB rule catalogue: declared batching contracts vs derived dependences.

SB001–SB006 police *declared* ``@batchable`` regions: the analysis
re-derives every loop-carried dependence and complains when the derived
facts contradict the contract the vectorized engine will rely on.
SB007 (batchable opportunity) only runs under ``--check-opportunities``
— it audits coverage, not correctness: loops the analysis proves
reorder-safe that nobody has declared yet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Set, Tuple

from repro.batch import COMMUTATIVE_OPS
from repro.analysis.simeffect.model import (
    FunctionInfo,
    MUTATES_STATS,
    READS_CLOCK,
    RNG,
)
from repro.analysis.simeffect.scan import transitive_unresolved, witness_chain
from repro.analysis.simbatch.model import (
    EVENT_EFFECTS,
    ORDER_DEPENDENT,
    REDUCTION,
    VECTORIZABLE,
    BatchAnalysis,
    CarriedDep,
    Contract,
    LoopFacts,
    _short,
)

Report = Callable[[str, str, int, int, str], None]

OPPORTUNITY_RULE_CODE = "SB007"

#: Callee effects that a batchable region tolerates without EFFECTS.json
#: certification: commutative stat bumps and clock *reads* (the clock
#: cannot move inside a batch, so every iteration reads the same value).
_HARMLESS_EFFECTS = {MUTATES_STATS, READS_CLOCK}


@dataclass
class Finding:
    code: str
    fn: FunctionInfo
    line: int
    col: int
    message: str


def _chain_str(chain: Tuple[str, ...]) -> str:
    return " -> ".join(_short(name) for name in chain)


def _witness(dep: CarriedDep) -> str:
    parts = [f"mutated at line {dep.line}"]
    if dep.read_line is not None:
        parts.append(f"carrying read at line {dep.read_line}")
    if dep.via:
        parts.append(f"via {_chain_str(dep.via)}")
    if dep.detail:
        parts.append(dep.detail)
    return "; ".join(parts)


def _declared(contract: Contract, dep: CarriedDep) -> bool:
    return any(
        r.var == dep.name and r.op == dep.op for r in contract.reductions
    )


def region_findings(analysis: BatchAnalysis) -> Iterator[Finding]:
    """SB001–SB006 findings over every declared @batchable region."""
    program = analysis.program
    for qualname in sorted(analysis.contracts):
        contract = analysis.contracts[qualname]
        if not contract.batchable:
            continue
        fn = program.functions[qualname]
        loops = analysis.loops_by_function.get(qualname, [])
        dep_names: Set[str] = set()
        for loop in loops:
            for dep in loop.carried:
                dep_names.add(dep.name)
                yield from _dep_findings(contract, fn, loop, dep)
        yield from _call_findings(analysis, fn)
        # SB006: contract elements the analysis cannot match to the code.
        if not loops:
            yield Finding(
                "SB006", fn, contract.line, 0,
                f"{_short(qualname)} is declared @batchable but contains no"
                " loop — stale contract",
            )
        for declared in contract.reductions:
            if declared.var not in dep_names:
                yield Finding(
                    "SB006", fn, contract.line, 0,
                    f"{_short(qualname)} declares @reduction(var="
                    f"'{declared.var}', op='{declared.op}') but '{declared.var}'"
                    " carries no loop dependence — stale contract",
                )


def _dep_findings(contract: Contract, fn: FunctionInfo, loop: LoopFacts,
                  dep: CarriedDep) -> Iterator[Finding]:
    where = f"batchable loop at line {loop.line}"
    if dep.kind == "fold":
        if _declared(contract, dep):
            return
        declared_ops = [r.op for r in contract.reductions if r.var == dep.name]
        if declared_ops:
            yield Finding(
                "SB001", fn, dep.line, 0,
                f"carried variable '{dep.name}' folds through '{dep.op}' but is"
                f" declared @reduction(op='{declared_ops[0]}') — {_witness(dep)}",
            )
        else:
            yield Finding(
                "SB001", fn, dep.line, 0,
                f"undeclared carried dependence through '{dep.name}' in"
                f" {where}; declare @reduction(var='{dep.name}',"
                f" op='{dep.op}') if the fold is intended — {_witness(dep)}",
            )
    elif dep.kind in ("recurrence", "control"):
        yield Finding(
            "SB001", fn, dep.line, 0,
            f"carried dependence through '{dep.name}' in {where} —"
            f" {_witness(dep)}",
        )
    elif dep.kind in ("output", "state"):
        yield Finding(
            "SB002", fn, dep.line, 0,
            f"order-sensitive reduction through '{dep.name}'"
            f" (last-writer-wins) in {where}; the surviving value depends on"
            f" iteration order and cannot be declared — {_witness(dep)}",
        )
    elif dep.kind == "container":
        if dep.op == "append":
            yield Finding(
                "SB002", fn, dep.line, 0,
                f"order-sensitive reduction: '{dep.name}' accumulates by"
                f" append in {where}; element order follows iteration order"
                f" — {_witness(dep)}",
            )
        else:
            yield Finding(
                "SB003", fn, dep.line, 0,
                f"cross-iteration aliasing: mutation of '{dep.name}' in"
                f" {where} is not keyed off the loop variable, so iterations"
                f" can hit the same slot — {_witness(dep)}",
            )
    elif dep.kind == "effect" and dep.name == RNG:
        yield Finding(
            "SB001", fn, dep.line, 0,
            f"carried dependence through the RNG stream in {where} —"
            f" {_witness(dep)}",
        )
    elif dep.kind == "effect" and dep.name in EVENT_EFFECTS and not dep.via:
        # A yield (or other event coupling) written directly in the loop
        # body has no call edge for the SB004 call scan to catch.
        yield Finding(
            "SB004", fn, dep.line, 0,
            f"{dep.name.lower().replace('_', ' ')} directly inside {where}"
            f" — {_witness(dep)}",
        )
    # EVENT_EFFECTS deps reached through callees surface via the region-
    # wide SB004 call scan; "callee"/"unresolved" deps via the SB005 scan.


def _call_findings(analysis: BatchAnalysis, fn: FunctionInfo) -> Iterator[Finding]:
    """SB004/SB005 over every call made inside a declared region."""
    program = analysis.program
    flagged: Set[Tuple[str, int]] = set()
    for edge in fn.calls:
        callee = program.functions.get(edge.callee)
        if callee is None:
            continue
        events = tuple(e for e in EVENT_EFFECTS if e in callee.effects)
        if events:
            key = (edge.callee, edge.line)
            if key not in flagged:
                flagged.add(key)
                chain = _chain_str(
                    tuple(witness_chain(program, edge.callee, events[0]))
                )
                yield Finding(
                    "SB004", fn, edge.line, 0,
                    f"{events[0].lower().replace('_', ' ')} inside batchable"
                    f" region {_short(fn.qualname)}: via {chain}",
                )
            continue
        if edge.callee in analysis.certified or callee.seeded:
            continue
        effects = set(callee.effects) - _HARMLESS_EFFECTS
        unresolved = transitive_unresolved(program, edge.callee)
        if not effects and not unresolved:
            continue  # effect-free, fully resolved helper
        reason = (
            f"effects: {', '.join(sorted(effects))}" if effects
            else "unresolved calls in its body"
        )
        yield Finding(
            "SB005", fn, edge.line, 0,
            f"batchable region {_short(fn.qualname)} calls"
            f" {_short(edge.callee)}, which is not certified in EFFECTS.json"
            f" ({reason})",
        )
    for line, description in fn.unresolved:
        yield Finding(
            "SB005", fn, line, 0,
            f"batchable region {_short(fn.qualname)} makes an unresolved call"
            f" ({description}); it cannot be certified",
        )


class Rule:
    """One SB rule; ``check`` walks the analysis and reports."""

    code = "SB000"
    title = ""
    sim_scope_only = True
    explanation = ""

    def check(self, analysis: BatchAnalysis, report: Report) -> None:
        raise NotImplementedError


class _RegionRule(Rule):
    def check(self, analysis: BatchAnalysis, report: Report) -> None:
        program = analysis.program
        for finding in region_findings(analysis):
            if finding.code == self.code:
                report(
                    finding.code,
                    program.paths[finding.fn.module],
                    finding.line,
                    finding.col,
                    finding.message,
                )


class CarriedDependence(_RegionRule):
    code = "SB001"
    title = "loop-carried dependence inside a declared @batchable loop"
    explanation = (
        "A loop declared batchable carries a value between iterations that "
        "is not a declared commutative reduction: a recurrence, an "
        "undeclared or mismatched fold, a data-dependent trip count, or an "
        "RNG stream.  Batching would replay iterations against the wrong "
        "predecessor state."
    )


class OrderSensitiveReduction(_RegionRule):
    code = "SB002"
    title = "undeclared order-sensitive reduction"
    explanation = (
        "A loop declared batchable folds state through an order-sensitive "
        "operator — a last-writer-wins overwrite or a positional append to "
        "shared storage.  No @reduction declaration can make it legal; the "
        "fold result depends on iteration order."
    )


class CrossIterationAliasing(_RegionRule):
    code = "SB003"
    title = "cross-iteration aliasing via container mutation"
    explanation = (
        "A loop declared batchable mutates a container through a key that "
        "does not vary with the loop variable, so two iterations can land "
        "on the same slot and the surviving value depends on order.  Keyed "
        "scatters (key derived from the loop variable) are fine."
    )


class EventCoupling(_RegionRule):
    code = "SB004"
    title = "yield/clock-advance/fault-hook inside a batchable region"
    explanation = (
        "A declared batchable region reaches SimClock.advance, a DES yield, "
        "or a fault hook.  Those couple each iteration to the global event "
        "order — time would pass in a different order under batching, and "
        "fault points would fire against different state."
    )


class UncertifiedCall(_RegionRule):
    code = "SB005"
    title = "batchable region calls a function not certified in EFFECTS.json"
    explanation = (
        "Every call inside a batchable region must be an EFFECTS.json-"
        "certified kernel, a trusted spec seed, or an effect-free helper.  "
        "Anything else mutates state the reorder proof does not cover."
    )


class StaleContract(_RegionRule):
    code = "SB006"
    title = "stale @batchable/@reduction contract vs analysis"
    explanation = (
        "The declared contract no longer matches the code: a @batchable "
        "function without a loop, or a @reduction variable that carries no "
        "loop dependence.  Stale declarations rot into false confidence."
    )


class BatchableOpportunity(Rule):
    code = OPPORTUNITY_RULE_CODE
    title = "loop provably batchable but not declared"
    explanation = (
        "The loop calls at least one certified kernel and the analysis "
        "proves it VECTORIZABLE or a commutative REDUCTION, but no "
        "@batchable contract covers it — the vectorized engine cannot "
        "batch what is not declared.  Only runs under --check-opportunities."
    )

    def check(self, analysis: BatchAnalysis, report: Report) -> None:
        program = analysis.program
        for loop in analysis.loops:
            contract = analysis.contracts.get(loop.function)
            if contract is not None and contract.batchable:
                continue
            if loop.classification == ORDER_DEPENDENT or not loop.kernel_calls:
                continue
            kernels = ", ".join(_short(k) for k in loop.kernel_calls)
            shape = loop.classification
            if loop.classification == REDUCTION:
                shape += "(" + ",".join(loop.reduction_ops) + ")"
            report(
                self.code, loop.path, loop.line, loop.col,
                f"loop in {_short(loop.function)} is provably {shape} and"
                f" calls certified kernel(s) {kernels}; declare @batchable"
                " so the vectorized engine may batch it",
            )


RULES: Tuple[Rule, ...] = (
    CarriedDependence(),
    OrderSensitiveReduction(),
    CrossIterationAliasing(),
    EventCoupling(),
    UncertifiedCall(),
    StaleContract(),
)

OPPORTUNITY_RULE = BatchableOpportunity()

RULES_BY_CODE = {rule.code: rule for rule in RULES + (OPPORTUNITY_RULE,)}


def check_opportunities(analysis: BatchAnalysis, report: Report) -> None:
    OPPORTUNITY_RULE.check(analysis, report)


def region_violation_codes(analysis: BatchAnalysis) -> dict:
    """Map of region qualname -> sorted violation codes (for BATCH.json)."""
    out: dict = {}
    for finding in region_findings(analysis):
        out.setdefault(finding.fn.qualname, set()).add(finding.code)
    return {qualname: sorted(codes) for qualname, codes in out.items()}
