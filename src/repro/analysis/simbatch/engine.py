"""simbatch engine: whole-program loop runs, suppressions, and BATCH.json.

Like simeffect and simcost, the unit of analysis is the file set: the
carried-state question crosses files through call edges, so all inputs
are parsed into one program, effect-solved, and only then are loops
classified and the SB rules fired.

:func:`build_report` emits ``BATCH.json`` — the reorder oracle for the
ROADMAP-item-1 vectorized engine, and the third committed oracle next
to ``EFFECTS.json`` (which functions are kernels) and ``COSTS.json``
(what each path charges).  It lists every hot-path loop with its
classification and, for ORDER_DEPENDENT loops, the concrete witness:
the mutated state, the carrying read, and the provenance through
callees.  Declared ``@batchable`` regions additionally carry a
``certified`` verdict the engine can trust without re-deriving it.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.batch import COMMUTATIVE_OPS
from repro.analysis.findings import (
    ALL_CODES,
    Violation,
    iter_python_files,
    parse_suppressions,
)
from repro.analysis.simeffect.engine import build_report as effects_report
from repro.analysis.simeffect.model import Program, build_program
from repro.analysis.simeffect.scan import fixpoint, scan_program
from repro.analysis.simbatch.model import (
    BatchAnalysis,
    LoopFacts,
    REDUCTION,
    VECTORIZABLE,
    _short,
    build_batch_analysis,
)
from repro.analysis.simbatch.rules import (
    OPPORTUNITY_RULE_CODE,
    RULES,
    RULES_BY_CODE,
    check_opportunities,
    region_violation_codes,
)

TOOL = "simbatch"

__all__ = [
    "TOOL", "BATCH_SCOPE_DIRS", "infer_batch_scope", "build", "solve",
    "analyze_sources", "analyze_paths", "read_sources",
    "build_report", "report_for_paths", "opportunity_violations",
]

#: The hot-path modules whose loops the vectorized engine may batch.
#: Wider than simeffect's sim scope: the workload emit loops and sweep
#: drivers generate the access streams the engine replays, so their
#: loops are classified too.
BATCH_SCOPE_DIRS = {"host", "core", "ssd", "interconnect", "workloads", "sweep"}


def infer_batch_scope(path: str) -> bool:
    parts = Path(path).parts
    for index, part in enumerate(parts[:-1]):
        if part == "repro" and parts[index + 1] in BATCH_SCOPE_DIRS:
            return True
    return False


def build(sources: Sequence[Tuple[str, str]]) -> Tuple[Program, List[Violation]]:
    """Parse + effect-solve the program; returns it plus SB000 findings."""
    parsed: List[Tuple[str, ast.Module, str]] = []
    errors: List[Violation] = []
    for path, source in sources:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            line = error.lineno or 1
            col = (error.offset or 1) - 1
            errors.append(
                Violation(path, line, col, "SB000", f"syntax error: {error.msg}")
            )
            continue
        parsed.append((path, tree, source))
    program = build_program(parsed)
    scan_program(program)
    fixpoint(program)  # callee effects + via provenance feed the witnesses
    return program, errors


def solve(program: Program) -> BatchAnalysis:
    """Classify every in-scope loop against the certified-kernel set."""
    certified = {
        "repro." + short for short in effects_report(program)["certified"]
    }
    return build_batch_analysis(program, certified, infer_batch_scope)


def _make_report(
    sources: Sequence[Tuple[str, str]],
    select: Optional[Iterable[str]],
    apply_suppressions: bool,
    violations: List[Violation],
) -> Callable[[str, str, int, int, str], None]:
    wanted = None if select is None else {code.upper() for code in select}
    suppressions: Dict[str, Dict[int, Set[str]]] = {}
    scope_by_path: Dict[str, bool] = {}
    for path, source in sources:
        scope_by_path[path] = infer_batch_scope(path)
        if apply_suppressions:
            suppressions[path] = parse_suppressions(source.splitlines(), TOOL)
    seen: Set[Tuple[str, int, int, str, str]] = set()

    def report(code: str, path: str, line: int, col: int, message: str) -> None:
        if wanted is not None and code not in wanted:
            return
        rule = RULES_BY_CODE.get(code)
        if rule is not None and rule.sim_scope_only and not scope_by_path.get(
            path, False
        ):
            return
        if apply_suppressions:
            codes = suppressions.get(path, {}).get(line)
            if codes is not None and (ALL_CODES in codes or code in codes):
                return
        key = (path, line, col, code, message)
        if key in seen:
            return
        seen.add(key)
        violations.append(Violation(path, line, col, code, message))

    return report


def analyze_sources(
    sources: Sequence[Tuple[str, str]],
    select: Optional[Iterable[str]] = None,
    apply_suppressions: bool = True,
) -> List[Violation]:
    """Analyze (path, source) pairs as one program; sorted violations."""
    program, violations = build(sources)
    analysis = solve(program)
    report = _make_report(sources, select, apply_suppressions, violations)
    for rule in RULES:
        rule.check(analysis, report)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return violations


def opportunity_violations(
    sources: Sequence[Tuple[str, str]],
    apply_suppressions: bool = True,
) -> List[Violation]:
    """The --check-opportunities pass: SB007 undeclared-batchable findings."""
    program, violations = build(sources)
    analysis = solve(program)
    report = _make_report(
        sources, [OPPORTUNITY_RULE_CODE], apply_suppressions, violations
    )
    check_opportunities(analysis, report)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return violations


def read_sources(paths: Iterable[str]) -> List[Tuple[str, str]]:
    return [
        (str(path), path.read_text(encoding="utf-8"))
        for path in iter_python_files(paths)
    ]


def analyze_paths(
    paths: Iterable[str],
    select: Optional[Iterable[str]] = None,
    apply_suppressions: bool = True,
) -> List[Violation]:
    return analyze_sources(
        read_sources(paths), select=select, apply_suppressions=apply_suppressions
    )


# --------------------------------------------------------------------------
# Batch report (BATCH.json)
# --------------------------------------------------------------------------


def _dep_json(dep) -> Dict[str, object]:
    return {
        "name": dep.name,
        "kind": dep.kind,
        "op": dep.op,
        "line": dep.line,
        "read_line": dep.read_line,
        "via": [_short(step) for step in dep.via],
        "detail": dep.detail,
    }


def _loop_json(loop: LoopFacts, declared: bool) -> Dict[str, object]:
    return {
        "function": _short(loop.function),
        "file": loop.path,
        "line": loop.line,
        "kind": loop.kind,
        "iterates": loop.iterates,
        "classification": loop.classification,
        "reduction_ops": list(loop.reduction_ops),
        "declared": declared,
        "carried": [_dep_json(dep) for dep in loop.carried],
        "calls": sorted(_short(callee) for callee in loop.calls),
        "kernel_calls": sorted(_short(callee) for callee in loop.kernel_calls),
    }


def _count_opportunities(analysis: BatchAnalysis) -> int:
    count = 0
    for loop in analysis.loops:
        contract = analysis.contracts.get(loop.function)
        if contract is not None and contract.batchable:
            continue
        if loop.classification != "ORDER_DEPENDENT" and loop.kernel_calls:
            count += 1
    return count


def build_report(program: Program, analysis: Optional[BatchAnalysis] = None
                 ) -> Dict[str, object]:
    """The machine-readable reorder oracle for BATCH.json."""
    if analysis is None:
        analysis = solve(program)
    violations_by_region = region_violation_codes(analysis)

    loops_json: List[Dict[str, object]] = []
    counts = {VECTORIZABLE: 0, REDUCTION: 0, "ORDER_DEPENDENT": 0}
    for loop in analysis.loops:
        contract = analysis.contracts.get(loop.function)
        declared = contract is not None and contract.batchable
        counts[loop.classification] = counts.get(loop.classification, 0) + 1
        loops_json.append(_loop_json(loop, declared))

    regions: List[Dict[str, object]] = []
    for qualname in sorted(analysis.contracts):
        contract = analysis.contracts[qualname]
        if not contract.batchable:
            continue
        fn = program.functions[qualname]
        loops = analysis.loops_by_function.get(qualname, [])
        codes = violations_by_region.get(qualname, [])
        certified = not codes and all(
            loop.classification in (VECTORIZABLE, REDUCTION) for loop in loops
        ) and bool(loops)
        kernel_calls: Set[str] = set()
        for loop in loops:
            kernel_calls.update(loop.kernel_calls)
        regions.append({
            "function": _short(qualname),
            "file": program.paths[fn.module],
            "line": fn.lineno,
            "reductions": [
                {"var": r.var, "op": r.op} for r in contract.reductions
            ],
            "loops": [loop.line for loop in loops],
            "kernel_calls": sorted(_short(k) for k in kernel_calls),
            "certified": certified,
            "violations": codes,
        })

    certified_regions = sum(1 for region in regions if region["certified"])
    return {
        "tool": TOOL,
        "schema_version": 1,
        "commutative_ops": sorted(COMMUTATIVE_OPS),
        "scope_dirs": sorted(BATCH_SCOPE_DIRS),
        "summary": {
            "loops": len(analysis.loops),
            "vectorizable": counts[VECTORIZABLE],
            "reduction": counts[REDUCTION],
            "order_dependent": counts["ORDER_DEPENDENT"],
            "regions": len(regions),
            "certified_regions": certified_regions,
            "opportunities": _count_opportunities(analysis),
        },
        "regions": regions,
        "loops": loops_json,
    }


def report_for_paths(paths: Iterable[str]) -> Dict[str, object]:
    program, _errors = build(read_sources(paths))
    return build_report(program)
