"""simbatch model: loops, contracts, and loop-carried dependences.

The unit of reasoning is the *loop*.  simeffect answers "what does this
function touch" and simcost answers "what does this path charge"; the
question left open for the ROADMAP-item-1 vectorized engine is "may the
iterations of this loop be batched and reordered".  This module
re-derives the answer from the program text:

* every ``for``/``while`` statement in the hot-path modules is found
  and its loop-carried dependences are classified — scalar folds,
  recurrences, last-writer-wins outputs, container mutations, and
  state carried through callees (resolved against simeffect's call
  graph and effect fixpoint, so a dependence hidden two calls deep
  still surfaces with its ``via`` witness chain);
* the ``@batchable`` / ``@reduction`` contracts from
  :mod:`repro.batch` are parsed syntactically (decorators work even on
  code that is never imported), giving the declared side that the SB
  rules compare against.

A loop is then VECTORIZABLE (no carried dependence), REDUCTION(op)
(carried only through commutative folds), or ORDER_DEPENDENT (anything
else, with a concrete witness: the mutated state, the carrying read,
and the provenance through callees).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.batch import COMMUTATIVE_OPS
from repro.analysis.simeffect.model import (
    ADVANCES_CLOCK,
    BUILTIN_CONTAINER_KINDS,
    CONTAINER_METHOD_TABLES,
    FAULT_HOOK,
    MUTATES_STATE,
    MUTATES_STATS,
    PERSISTS,
    RNG,
    YIELDS,
    ClassInfo,
    FunctionInfo,
    Program,
    TypeContext,
    _bind_target,
    _elem_of,
    _initial_env,
    infer_type,
)
from repro.analysis.simeffect.scan import witness_chain

# Loop classifications.
VECTORIZABLE = "VECTORIZABLE"
REDUCTION = "REDUCTION"
ORDER_DEPENDENT = "ORDER_DEPENDENT"

#: Effects that couple an iteration to the event loop / fault plan —
#: never legal inside a batchable region (SB004).
EVENT_EFFECTS = (ADVANCES_CLOCK, YIELDS, FAULT_HOOK)

#: Recognized fold operators for ``x <op>= e`` / ``x = x <op> e`` /
#: ``x = min(x, e)`` shapes.  ``-`` accumulates like ``+`` (a sum of
#: negated per-iteration terms), so it maps onto the ``+`` fold.
_AUG_OPS = {
    ast.Add: "+",
    ast.Sub: "+",
    ast.Mult: "*",
    ast.BitOr: "|",
    ast.BitAnd: "&",
    ast.BitXor: "^",
}

#: Container mutators whose first argument keys the mutated slot; when
#: the key varies with the loop iteration the writes land on distinct
#: slots (a scatter) and carry nothing.
_KEYED_MUTATORS = {"pop", "remove", "setdefault"}

#: Set mutators that are commutative and idempotent — reorder-safe no
#: matter what they are keyed by.
_COMMUTING_MUTATORS = {"add", "discard"}


@dataclass(frozen=True)
class DeclaredReduction:
    var: str
    op: str


@dataclass
class Contract:
    """Parsed ``@batchable`` / ``@reduction`` decorators of one function."""

    batchable: bool = False
    line: int = 0
    reductions: Tuple[DeclaredReduction, ...] = ()


@dataclass
class CarriedDep:
    """One loop-carried dependence with its witness.

    ``kind`` is one of ``fold`` (recognized accumulator), ``recurrence``
    (carried value read outside its own fold), ``control`` (read by a
    while condition), ``output`` (last-writer-wins value live after the
    loop), ``state`` (attribute store on shared state), ``container``
    (container mutation not keyed by the iteration), ``callee`` (state
    mutated through a called function), ``effect`` (clock/yield/fault/
    RNG coupling through a callee), or ``unresolved`` (call target the
    analysis cannot see).
    """

    name: str
    kind: str
    op: Optional[str]
    line: int
    read_line: Optional[int] = None
    via: Tuple[str, ...] = ()
    detail: str = ""


@dataclass
class LoopFacts:
    """One classified loop."""

    function: str
    path: str
    line: int
    col: int
    end_line: int
    kind: str                      # "for" | "while"
    iterates: str
    carried: List[CarriedDep] = field(default_factory=list)
    calls: List[str] = field(default_factory=list)         # program callees
    kernel_calls: List[str] = field(default_factory=list)  # certified subset
    classification: str = VECTORIZABLE
    reduction_ops: Tuple[str, ...] = ()


@dataclass
class BatchAnalysis:
    """Everything the SB rules and BATCH.json need."""

    program: Program
    certified: Set[str]                     # certified kernel qualnames
    loops: List[LoopFacts] = field(default_factory=list)
    contracts: Dict[str, Contract] = field(default_factory=dict)
    loops_by_function: Dict[str, List[LoopFacts]] = field(default_factory=dict)


def _short(qualname: str) -> str:
    return qualname.replace("repro.", "", 1)


# --------------------------------------------------------------------------
# Contract parsing (syntactic, mirrors simeffect's decorator handling)
# --------------------------------------------------------------------------


def _decorator_name(dec: ast.expr) -> Optional[str]:
    node = dec.func if isinstance(dec, ast.Call) else dec
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _const_str(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def parse_contract(fn: FunctionInfo) -> Optional[Contract]:
    """The ``@batchable``/``@reduction`` contract of ``fn``, if any."""
    node = fn.node
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    contract = Contract()
    found = False
    for dec in node.decorator_list:
        name = _decorator_name(dec)
        if name == "batchable":
            contract.batchable = True
            contract.line = dec.lineno
            found = True
        elif name == "reduction" and isinstance(dec, ast.Call):
            var = op = None
            args = list(dec.args)
            if args:
                var = _const_str(args[0])
            if len(args) > 1:
                op = _const_str(args[1])
            for kw in dec.keywords:
                if kw.arg == "var":
                    var = _const_str(kw.value)
                elif kw.arg == "op":
                    op = _const_str(kw.value)
            if var is not None and op is not None:
                contract.reductions += (DeclaredReduction(var, op),)
                found = True
    if not found:
        return None
    if not contract.line:
        contract.line = fn.lineno
    return contract


# --------------------------------------------------------------------------
# AST walking helpers (source order, nested defs pruned)
# --------------------------------------------------------------------------

_SKIP_STMTS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _stmt_bodies(stmt: ast.stmt) -> Iterator[List[ast.stmt]]:
    for name in ("body", "orelse", "finalbody"):
        body = getattr(stmt, name, None)
        if body:
            yield body
    for handler in getattr(stmt, "handlers", ()) or ():
        yield handler.body


def _walk_stmts(body: Sequence[ast.stmt]) -> Iterator[ast.stmt]:
    """Every statement under ``body`` in source order, skipping nested defs."""
    for stmt in body:
        if isinstance(stmt, _SKIP_STMTS):
            continue
        yield stmt
        for inner in _stmt_bodies(stmt):
            yield from _walk_stmts(inner)


def collect_loops(body: Sequence[ast.stmt]) -> List[ast.stmt]:
    return [
        stmt for stmt in _walk_stmts(body) if isinstance(stmt, (ast.For, ast.While))
    ]


def _walk_expr(node: ast.expr) -> Iterator[ast.AST]:
    """All nodes of an expression, skipping lambda bodies."""
    for child in ast.walk(node):
        if isinstance(child, ast.Lambda):
            continue
        yield child


def _target_names(target: ast.expr) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


def _load_names(node: Optional[ast.expr]) -> Set[str]:
    if node is None:
        return set()
    return {
        n.id
        for n in _walk_expr(node)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


def _expr_str(node: ast.expr, limit: int = 60) -> str:
    text = ast.unparse(node)
    return text if len(text) <= limit else text[: limit - 3] + "..."


# --------------------------------------------------------------------------
# Per-loop scan
# --------------------------------------------------------------------------


@dataclass
class _Write:
    line: int
    op: Optional[str]          # recognized fold op, "last", or "iter"
    value_names: Set[str]
    stmt_id: int


@dataclass
class _ContainerEvent:
    line: int
    receiver: ast.expr
    method: str                # method name, or "[]=" / "del[]" for subscripts
    key_names: Optional[Set[str]]   # None when the mutation has no key


class _LoopScan:
    """Name/container events of one loop body, in source order."""

    def __init__(self, loop: ast.stmt):
        self.loop = loop
        self.loop_targets: Set[str] = (
            _target_names(loop.target) if isinstance(loop, ast.For) else set()
        )
        self.test_names: Set[str] = (
            _load_names(loop.test) if isinstance(loop, ast.While) else set()
        )
        self.reads: Dict[str, List[Tuple[int, int]]] = {}   # name -> (line, stmt)
        self.writes: Dict[str, List[_Write]] = {}
        self.container_events: List[_ContainerEvent] = []
        self.attr_stores: List[Tuple[int, ast.expr, Optional[str]]] = []
        self.assignments: List[Tuple[Set[str], Set[str]]] = []
        self.comp_targets: Set[str] = set()
        self.append_receivers: Dict[str, int] = {}  # list name -> append count
        self.name_loads: Dict[str, int] = {}        # name -> total Load count
        self.has_yield = False
        self.yield_line = 0
        self._stmt_id = 0
        self._written_this_walk: Set[str] = set(self.loop_targets)
        if isinstance(loop, ast.While):
            self._expr(loop.test, self._next_stmt())
        for stmt in _walk_stmts(loop.body):
            self._stmt(stmt)

    # -- events ------------------------------------------------------------

    def _next_stmt(self) -> int:
        self._stmt_id += 1
        return self._stmt_id

    def _read(self, name: str, line: int, stmt_id: int) -> None:
        self.name_loads[name] = self.name_loads.get(name, 0) + 1
        if name in self._written_this_walk:
            return
        self.reads.setdefault(name, []).append((line, stmt_id))

    def _write(self, name: str, line: int, op: Optional[str],
               value_names: Set[str], stmt_id: int) -> None:
        self.writes.setdefault(name, []).append(
            _Write(line, op, value_names, stmt_id)
        )
        self._written_this_walk.add(name)

    # -- expression walk ---------------------------------------------------

    def _expr(self, node: Optional[ast.expr], stmt_id: int) -> None:
        if node is None:
            return
        for child in _walk_expr(node):
            if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
                self._read(child.id, child.lineno, stmt_id)
            elif isinstance(child, (ast.Yield, ast.YieldFrom, ast.Await)):
                if not self.has_yield:
                    self.has_yield = True
                    self.yield_line = child.lineno
            elif isinstance(child, ast.comprehension):
                self.comp_targets |= _target_names(child.target)
            elif isinstance(child, ast.Call) and isinstance(
                child.func, ast.Attribute
            ):
                receiver = child.func.value
                method = child.func.attr
                key = child.args[0] if child.args else None
                self.container_events.append(
                    _ContainerEvent(
                        child.lineno,
                        receiver,
                        method,
                        _load_names(key) if key is not None else None,
                    )
                )
                if method == "append" and isinstance(receiver, ast.Name):
                    self.append_receivers[receiver.id] = (
                        self.append_receivers.get(receiver.id, 0) + 1
                    )

    # -- statement walk ----------------------------------------------------

    def _fold_op(self, name: str, value: ast.expr) -> Tuple[Optional[str], Set[str]]:
        """Recognize ``name = name <op> e`` shapes; (op, other names)."""
        others = _load_names(value) - {name}
        if isinstance(value, ast.BinOp) and type(value.op) in _AUG_OPS:
            operands = {_expr_str(value.left), _expr_str(value.right)}
            if name in operands:
                return _AUG_OPS[type(value.op)], others
        if isinstance(value, ast.BoolOp):
            op = "or" if isinstance(value.op, ast.Or) else "and"
            for operand in value.values:
                if isinstance(operand, ast.Name) and operand.id == name:
                    return op, others
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("min", "max")
        ):
            for arg in value.args:
                if isinstance(arg, ast.Name) and arg.id == name:
                    return value.func.id, others
        return "last", others

    def _assign(self, targets: Sequence[ast.expr], value: Optional[ast.expr],
                line: int, aug_op: Optional[str] = None) -> None:
        stmt_id = self._next_stmt()
        # AugAssign reads its target before writing it.
        if aug_op is not None and len(targets) == 1 and isinstance(
            targets[0], ast.Name
        ):
            self._read(targets[0].id, line, stmt_id)
        self._expr(value, stmt_id)
        value_names = _load_names(value)
        target_names: Set[str] = set()
        for target in targets:
            if isinstance(target, ast.Name):
                if aug_op is not None:
                    op: Optional[str] = aug_op
                    others = value_names - {target.id}
                elif value is not None and len(targets) == 1:
                    op, others = self._fold_op(target.id, value)
                else:
                    op, others = "last", value_names
                self._write(target.id, line, op, others, stmt_id)
                target_names.add(target.id)
            elif isinstance(target, ast.Tuple):
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        self._write(elt.id, line, "last", value_names, stmt_id)
                        target_names.add(elt.id)
                    else:
                        self._store_target(elt, stmt_id, aug_op)
            else:
                self._store_target(target, stmt_id, aug_op)
        if target_names:
            self.assignments.append((target_names, value_names))

    def _store_target(self, target: ast.expr, stmt_id: int,
                      aug_op: Optional[str]) -> None:
        if isinstance(target, ast.Subscript):
            self._expr(target.value, stmt_id)
            self._expr(target.slice, stmt_id)
            self.container_events.append(
                _ContainerEvent(
                    target.lineno, target.value, "[]=", _load_names(target.slice)
                )
            )
        elif isinstance(target, ast.Attribute):
            self._expr(target.value, stmt_id)
            self.attr_stores.append((target.lineno, target, aug_op))

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.targets, stmt.value, stmt.lineno)
        elif isinstance(stmt, ast.AugAssign):
            self._assign(
                [stmt.target], stmt.value, stmt.lineno,
                aug_op=_AUG_OPS.get(type(stmt.op)),
            )
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign([stmt.target], stmt.value, stmt.lineno)
        elif isinstance(stmt, ast.For):
            stmt_id = self._next_stmt()
            self._expr(stmt.iter, stmt_id)
            iter_names = _load_names(stmt.iter)
            targets = _target_names(stmt.target)
            for name in targets:
                self._write(name, stmt.lineno, "iter", iter_names, stmt_id)
            self.assignments.append((targets, iter_names))
        elif isinstance(stmt, ast.While):
            self._expr(stmt.test, self._next_stmt())
        elif isinstance(stmt, ast.If):
            self._expr(stmt.test, self._next_stmt())
        elif isinstance(stmt, ast.Delete):
            stmt_id = self._next_stmt()
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    self._expr(target.value, stmt_id)
                    self._expr(target.slice, stmt_id)
                    self.container_events.append(
                        _ContainerEvent(
                            target.lineno, target.value, "del[]",
                            _load_names(target.slice),
                        )
                    )
        elif isinstance(stmt, (ast.Expr, ast.Return, ast.Raise, ast.Assert)):
            stmt_id = self._next_stmt()
            for name in ("value", "exc", "cause", "test", "msg"):
                self._expr(getattr(stmt, name, None), stmt_id)
        elif isinstance(stmt, ast.With):
            stmt_id = self._next_stmt()
            for item in stmt.items:
                self._expr(item.context_expr, stmt_id)
        # Try/If/With bodies arrive via _walk_stmts; nothing else reads names.


# --------------------------------------------------------------------------
# Dependence classification
# --------------------------------------------------------------------------


def _container_kind(ctx: TypeContext, receiver: ast.expr) -> Optional[str]:
    """The builtin container kind of ``receiver``'s type, if any."""
    ref = infer_type(ctx, receiver)
    kinds = ref.names & BUILTIN_CONTAINER_KINDS
    if len(kinds) == 1:
        return next(iter(kinds))
    return None


def _typing_env(program: Program, fn: FunctionInfo) -> TypeContext:
    """Flow-insensitive local typing: parameters plus body assignments."""
    module = program.modules[fn.module]
    cls = program.classes.get(fn.cls) if fn.cls else None
    env = _initial_env(program, module, cls, fn)
    ctx = TypeContext(program, module, cls, env)
    node = fn.node
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    for stmt in _walk_stmts(node.body):
        if isinstance(stmt, ast.Assign) and stmt.targets:
            value_type = infer_type(ctx, stmt.value)
            for target in stmt.targets:
                _bind_target(ctx, target, value_type)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            _bind_target(ctx, stmt.target, infer_type(ctx, stmt.value))
        elif isinstance(stmt, ast.For):
            _bind_target(ctx, stmt.target, _elem_of(infer_type(ctx, stmt.iter)))
    return ctx


def _fresh_lists(fn: FunctionInfo, before_line: int) -> Set[str]:
    """Names bound to a fresh list literal/ctor before ``before_line``."""
    node = fn.node
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    fresh: Set[str] = set()
    for stmt in _walk_stmts(node.body):
        if stmt.lineno >= before_line:
            continue
        if isinstance(stmt, ast.Assign):
            targets: Sequence[ast.expr] = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        else:
            continue
        value = stmt.value
        is_list = isinstance(value, ast.List) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "list"
        )
        for target in targets:
            if isinstance(target, ast.Name):
                if is_list:
                    fresh.add(target.id)
                else:
                    fresh.discard(target.id)
    return fresh


def _loads_after(fn: FunctionInfo, line: int) -> Dict[str, int]:
    """First Load line of each name read after ``line`` in the function."""
    node = fn.node
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    out: Dict[str, int] = {}
    for stmt in _walk_stmts(node.body):
        for child in ast.walk(stmt):
            if (
                isinstance(child, ast.Name)
                and isinstance(child.ctx, ast.Load)
                and child.lineno > line
            ):
                previous = out.get(child.id)
                if previous is None or child.lineno < previous:
                    out[child.id] = child.lineno
    return out


def _per_iteration_names(scan: _LoopScan, carried: Set[str]) -> Set[str]:
    """Names rebound from per-iteration values each time around the loop."""
    per_iter = set(scan.loop_targets)
    for _ in range(2):
        for targets, value_names in scan.assignments:
            if (
                value_names & per_iter
                and not value_names & carried
                and not targets & carried
            ):
                per_iter |= targets
    return per_iter


def _scalar_deps(scan: _LoopScan, live_after: Dict[str, int]) -> List[CarriedDep]:
    deps: List[CarriedDep] = []
    excluded = scan.loop_targets | scan.comp_targets
    upward = {
        name: sites[0]
        for name, sites in scan.reads.items()
        if name in scan.writes and name not in excluded
    }
    carried = set(upward)
    for name in sorted(carried):
        first_read_line, _ = upward[name]
        writes = scan.writes[name]
        write_lines = {w.stmt_id for w in writes}
        ops = {w.op for w in writes}
        if name in scan.test_names:
            deps.append(
                CarriedDep(
                    name, "control", None, writes[0].line,
                    read_line=scan.loop.lineno,
                    detail="read by the loop condition; the trip count depends"
                           " on earlier iterations",
                )
            )
            continue
        external_reads = [
            (line, sid)
            for line, sid in scan.reads.get(name, [])
            if sid not in write_lines
        ]
        cross = set().union(*(w.value_names for w in writes)) & (carried - {name})
        op = ops.pop() if len(ops) == 1 else None
        if op in COMMUTATIVE_OPS and not external_reads and not cross:
            deps.append(
                CarriedDep(name, "fold", op, writes[0].line,
                           read_line=first_read_line)
            )
        elif op == "last" and not external_reads:
            deps.append(
                CarriedDep(
                    name, "recurrence", None, writes[0].line,
                    read_line=first_read_line,
                    detail="overwritten from a value that reads its previous"
                           " iteration",
                )
            )
        else:
            detail = "carried value is read outside its own fold"
            if cross:
                detail = (
                    "fold term reads carried variable(s) "
                    + ", ".join(sorted(cross))
                )
            deps.append(
                CarriedDep(
                    name, "recurrence", op if op in COMMUTATIVE_OPS else None,
                    writes[0].line,
                    read_line=(external_reads[0][0] if external_reads
                               else first_read_line),
                    detail=detail,
                )
            )
    # Last-writer-wins outputs: written every iteration, never read inside
    # the loop, but consumed after it — the surviving value depends on
    # which iteration ran last.
    for name in sorted(set(scan.writes) - carried - excluded):
        after = live_after.get(name)
        if after is None:
            continue
        writes = scan.writes[name]
        if all(w.op == "iter" for w in writes):
            continue
        deps.append(
            CarriedDep(
                name, "output", "last", writes[-1].line, read_line=after,
                detail="last-writer-wins value read after the loop",
            )
        )
    return deps


def _container_deps(scan: _LoopScan, ctx: TypeContext, per_iter: Set[str],
                    gather: Set[str]) -> List[CarriedDep]:
    deps: List[CarriedDep] = []
    seen: Set[Tuple[str, int]] = set()

    def add(name: str, line: int, detail: str, op: Optional[str] = None) -> None:
        key = (name, line)
        if key not in seen:
            seen.add(key)
            deps.append(CarriedDep(name, "container", op, line, detail=detail))

    for event in scan.container_events:
        receiver_names = _load_names(event.receiver)
        if receiver_names & per_iter:
            continue  # mutating a per-iteration object is iteration-local
        name = _expr_str(event.receiver, 40)
        if event.method in ("[]=", "del[]"):
            if event.key_names and event.key_names & per_iter:
                continue  # keyed scatter: distinct slot per iteration
            add(name, event.line,
                "subscript key does not vary with the loop iteration")
            continue
        kind = _container_kind(ctx, event.receiver)
        if kind is None:
            continue  # program-class calls are handled via call edges
        table = CONTAINER_METHOD_TABLES.get(kind)
        if not isinstance(table, dict):
            continue  # all-pure kinds carry nothing
        if table.get(event.method, "mutate") == "pure":
            continue
        if kind in ("set", "frozenset") and event.method in _COMMUTING_MUTATORS:
            continue
        if event.method == "append" and isinstance(event.receiver, ast.Name):
            receiver = event.receiver.id
            if (
                receiver in gather
                and scan.name_loads.get(receiver, 0)
                == scan.append_receivers.get(receiver, 0)
            ):
                continue  # positional gather into a fresh local list
            add(receiver, event.line,
                "append to a shared container is an ordered fold", op="append")
            continue
        if event.method in _KEYED_MUTATORS:
            if event.key_names and event.key_names & per_iter:
                continue
            add(name, event.line,
                f".{event.method}() key does not vary with the loop iteration")
            continue
        add(name, event.line,
            f".{event.method}() mutates the container without a per-iteration"
            " key")
    for line, target, aug_op in scan.attr_stores:
        base_names = _load_names(target.value)
        if base_names & per_iter:
            continue
        deps.append(
            CarriedDep(
                _expr_str(target, 40), "state", aug_op or "last", line,
                detail="attribute store on state shared across iterations",
            )
        )
    return deps


def _callee_deps(program: Program, fn: FunctionInfo, certified: Set[str],
                 first: int, last: int) -> Tuple[List[CarriedDep], List[str], List[str]]:
    deps: List[CarriedDep] = []
    calls: List[str] = []
    kernel_calls: List[str] = []
    seen: Set[Tuple[str, str]] = set()
    for edge in fn.calls:
        if not first <= edge.line <= last:
            continue
        callee = program.functions.get(edge.callee)
        if callee is None:
            continue
        if edge.callee not in calls:
            calls.append(edge.callee)
        if edge.callee in certified:
            if edge.callee not in kernel_calls:
                kernel_calls.append(edge.callee)
            continue  # certified kernels are the declared-reorderable unit
        effects = callee.effects
        for effect in EVENT_EFFECTS + (RNG,):
            if effect in effects and (effect, edge.callee) not in seen:
                seen.add((effect, edge.callee))
                deps.append(
                    CarriedDep(
                        effect, "effect", None, edge.line,
                        via=tuple(witness_chain(program, edge.callee, effect)),
                        detail=f"{_short(edge.callee)} couples the iteration to"
                               f" the {effect.lower().replace('_', ' ')} stream",
                    )
                )
        for effect in (MUTATES_STATE, PERSISTS):
            if effect in effects and ("callee", edge.callee) not in seen:
                seen.add(("callee", edge.callee))
                deps.append(
                    CarriedDep(
                        _short(edge.callee), "callee", None, edge.line,
                        via=tuple(witness_chain(program, edge.callee, effect)),
                        detail="mutates shared state and is not a certified"
                               " kernel",
                    )
                )
                break
    for line, description in fn.unresolved:
        if first <= line <= last:
            deps.append(
                CarriedDep(
                    description, "unresolved", None, line,
                    detail="call target not resolved; independence cannot be"
                           " proven",
                )
            )
    return deps, calls, kernel_calls


def classify(carried: Sequence[CarriedDep]) -> Tuple[str, Tuple[str, ...]]:
    """(classification, fold ops) of a loop from its carried deps."""
    if not carried:
        return VECTORIZABLE, ()
    ops: Set[str] = set()
    for dep in carried:
        if dep.kind == "fold" and dep.op in COMMUTATIVE_OPS:
            ops.add(dep.op)
            continue
        return ORDER_DEPENDENT, ()
    return REDUCTION, tuple(sorted(ops))


def analyze_function(program: Program, fn: FunctionInfo, path: str,
                     certified: Set[str]) -> List[LoopFacts]:
    """Classify every loop of ``fn``."""
    node = fn.node
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    loops = collect_loops(node.body)
    if not loops:
        return []
    ctx = _typing_env(program, fn)
    out: List[LoopFacts] = []
    for loop in loops:
        end_line = getattr(loop, "end_lineno", loop.lineno) or loop.lineno
        scan = _LoopScan(loop)
        live_after = _loads_after(fn, end_line)
        deps = _scalar_deps(scan, live_after)
        carried_names = {d.name for d in deps if d.kind != "output"}
        per_iter = _per_iteration_names(scan, carried_names)
        gather = _fresh_lists(fn, loop.lineno)
        deps += _container_deps(scan, ctx, per_iter, gather)
        callee_deps, calls, kernel_calls = _callee_deps(
            program, fn, certified, loop.lineno, end_line
        )
        deps += callee_deps
        if scan.has_yield:
            deps.append(
                CarriedDep(
                    YIELDS, "effect", None, scan.yield_line,
                    detail="yield suspends the iteration into the event loop",
                )
            )
        classification, ops = classify(deps)
        if isinstance(loop, ast.For):
            kind, iterates = "for", _expr_str(loop.iter)
        else:
            kind, iterates = "while", _expr_str(loop.test)
        out.append(
            LoopFacts(
                function=fn.qualname,
                path=path,
                line=loop.lineno,
                col=loop.col_offset,
                end_line=end_line,
                kind=kind,
                iterates=iterates,
                carried=deps,
                calls=calls,
                kernel_calls=kernel_calls,
                classification=classification,
                reduction_ops=ops,
            )
        )
    return out


def build_batch_analysis(program: Program, certified: Set[str],
                         in_scope) -> BatchAnalysis:
    """Classify every loop of every in-scope function.

    ``in_scope`` is a ``path -> bool`` predicate (the simbatch hot-path
    scope, wider than simeffect's sim scope).
    """
    analysis = BatchAnalysis(program=program, certified=certified)
    for qualname in sorted(program.functions):
        fn = program.functions[qualname]
        if fn.seeded:
            continue
        path = program.paths.get(fn.module)
        if path is None or not in_scope(path):
            continue
        contract = parse_contract(fn)
        if contract is not None:
            analysis.contracts[qualname] = contract
        loops = analyze_function(program, fn, path, certified)
        if loops:
            analysis.loops.extend(loops)
            analysis.loops_by_function[qualname] = loops
    analysis.loops.sort(key=lambda loop: (loop.path, loop.line))
    return analysis
