"""simbatch: loop-dependence & batching-safety analysis.

The reorder oracle for the ROADMAP-item-1 vectorized engine: classifies
every hot-path loop as VECTORIZABLE, REDUCTION(op), or ORDER_DEPENDENT,
checks declared ``@batchable``/``@reduction`` contracts
(:mod:`repro.batch`) against the derived dependences (SB001–SB006), and
emits the committed ``BATCH.json`` report.
"""

from repro.analysis.simbatch.engine import (
    TOOL,
    analyze_paths,
    analyze_sources,
    build_report,
    opportunity_violations,
    report_for_paths,
)
from repro.analysis.simbatch.rules import OPPORTUNITY_RULE_CODE, RULES

__all__ = [
    "TOOL",
    "RULES",
    "OPPORTUNITY_RULE_CODE",
    "analyze_paths",
    "analyze_sources",
    "build_report",
    "opportunity_violations",
    "report_for_paths",
]
